//! `m3c` — the Mini-M3 compiler driver.
//!
//! ```text
//! m3c <check|run|serve|ir|disasm|tables|stats> <file.m3> [options]
//! m3c fuzz [--seed N] [--iters N] [--no-shrink]
//!
//! compile options:
//!   --o0 | --o2          optimization level (default --o2)
//!   --no-gc              disable gc support (§6.2 baseline)
//!   --split-paths        resolve ambiguous derivations by code duplication
//!   --scheme S           table scheme: full, full-packed, delta,
//!                        delta-previous, delta-packed, pp (default pp)
//!   --heap N             semispace size in words (run; default 65536)
//!   --gc C               collector: semispace (default), gen, par
//!                        (OS-thread mutators + parallel collection) or cms
//!                        (par plus concurrent SATB marking: only the final
//!                        evacuation pause stops the world) (run)
//!   --nursery N          nursery size in words with --gc gen (run;
//!                        default: a quarter semispace)
//!   --threads N          mutator threads with --gc par (run; default 1);
//!                        scheduler threads (serve)
//!   --gc-workers M       gc worker threads with --gc par/cms (run; default 4)
//!   --conc-workers M     concurrent marker threads with --gc cms (run;
//!                        default 2)
//!   --tlab-words N       thread-local allocation buffer size in words
//!                        with --gc par; 0 disables TLABs (run; default 1024)
//!   --torture            collect at every allocation (run, serve)
//!   --jit                baseline-compile procedures to native x86-64 at
//!                        load time (run; unsupported hosts or procedures
//!                        fall back to the interpreter, see --stats)
//!   --stats              print gc statistics after the output (run)
//!
//! serve options (allocation-service workload: green-thread requests
//! over OS threads, each allocating into a per-request region):
//!   --requests N         requests to serve (default 100)
//!   --green N            green-request slots (default 4 per thread)
//!   --region-words N     words per per-request region (default 4096)
//!   --burst N            requests admitted per scheduling gap (default 1)
//!   --quantum N          instructions per green-thread quantum
//!   --entry P            handler procedure (default: the module body;
//!                        may take the request id as its one argument)
//!   --oracle             shadow-verify gc maps before every collection
//!
//! fuzz options:
//!   --seed N             base seed (default 1); iteration i uses seed+i
//!   --iters N            programs to generate and check (default 100)
//!   --no-shrink          report the raw failing program unminimized
//! ```

use m3gc_compiler::driver;
use m3gc_fuzz::FuzzOptions;

fn usage() -> ! {
    eprintln!(
        "usage: m3c <check|run|serve|ir|disasm|tables|stats> <file.m3> \
         [--o0|--o2] [--no-gc] [--split-paths] [--scheme S] [--heap N] \
         [--gc semispace|gen|par|cms] [--nursery N] [--threads N] \
         [--gc-workers M] [--conc-workers M] [--tlab-words N] [--torture] \
         [--jit] [--stats]\n\
         \x20      m3c serve <file.m3> [--requests N] [--green N] \
         [--region-words N] [--burst N] [--quantum N] [--entry P] [--oracle]\n\
         \x20      m3c fuzz [--seed N] [--iters N] [--no-shrink]"
    );
    std::process::exit(2);
}

fn parse_fuzz_options(args: &[String]) -> Result<FuzzOptions, String> {
    let mut opts = FuzzOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" | "--iters" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("{arg} requires a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{arg}: {e}"))?;
                if arg == "--seed" {
                    opts.seed = v;
                } else {
                    opts.iters = v;
                }
            }
            "--no-shrink" => opts.shrink = false,
            other => return Err(format!("unknown fuzz option `{other}`")),
        }
    }
    Ok(opts)
}

fn fuzz(args: &[String]) -> ! {
    let opts = match parse_fuzz_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("m3c: {e}");
            usage();
        }
    };
    let report_every = (opts.iters / 10).max(1);
    let result = m3gc_fuzz::run_campaign(&opts, |iteration, _| {
        if (iteration + 1) % report_every == 0 {
            eprintln!("m3c fuzz: {}/{} cases done", iteration + 1, opts.iters);
        }
    });
    match result {
        Ok(summary) => {
            println!(
                "m3c fuzz: ok — {} conclusive, {} skipped (seed {}, {} iters)",
                summary.checked, summary.skipped, opts.seed, opts.iters
            );
            std::process::exit(0);
        }
        Err(failure) => {
            eprintln!("{failure}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        fuzz(&args[1..]);
    }
    if args.len() < 2 {
        usage();
    }
    let cmd = &args[0];
    let path = &args[1];
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("m3c: cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let result = if cmd == "serve" {
        match driver::parse_serve_options(&args[2..]) {
            Ok((options, config, load)) => driver::serve(&source, &options, config, load),
            Err(e) => {
                eprintln!("m3c: {e}");
                usage();
            }
        }
    } else {
        let (options, config) = match driver::parse_options(&args[2..]) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("m3c: {e}");
                usage();
            }
        };
        match cmd.as_str() {
            "check" => driver::check(&source),
            "run" => driver::run(&source, &options, config),
            "ir" => driver::ir(&source, &options),
            "disasm" => driver::disasm(&source, &options),
            "tables" => driver::tables(&source, &options),
            "stats" => driver::stats(&source, &options),
            _ => usage(),
        }
    };
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("m3c: {e}");
            std::process::exit(1);
        }
    }
}
