//! Umbrella crate for the m3gc workspace: re-exports every layer of the
//! PLDI '92 "Compiler Support for Garbage Collection in a Statically Typed
//! Language" reproduction so examples and integration tests can use one
//! import.
//!
//! See the README for the architecture and `DESIGN.md` for the system
//! inventory. The interesting crates:
//!
//! * [`core`] — gc-map tables (the paper's contribution),
//! * [`frontend`] — the Mini-Modula-3 language,
//! * [`opt`] — optimizations that create derived values,
//! * [`codegen`] — gc-point placement and map emission,
//! * [`vm`] — the VAX-flavoured virtual machine,
//! * [`runtime`] — the compacting collector and table-driven stack tracing,
//! * [`compiler`] — the end-to-end pipeline facade.

pub use m3gc_codegen as codegen;
pub use m3gc_compiler as compiler;
pub use m3gc_core as core;
pub use m3gc_frontend as frontend;
pub use m3gc_ir as ir;
pub use m3gc_jit as jit;
pub use m3gc_opt as opt;
pub use m3gc_runtime as runtime;
pub use m3gc_vm as vm;
