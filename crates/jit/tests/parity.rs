//! Interpreter-vs-JIT parity on hand-assembled modules.
//!
//! These tests drive [`JitEngine::run_thread`] against the plain
//! interpreter on the same module and assert byte-identical output,
//! identical step counts at completion, and identical traps (code *and*
//! trapping pc). On hosts without executable mappings the engine falls
//! back to the interpreter and the assertions hold trivially.

use std::sync::Mutex;

use m3gc_core::heap::{HeapType, TypeTable};
use m3gc_core::layout::BaseReg;
use m3gc_jit::JitEngine;
use m3gc_vm::asm::Assembler;
use m3gc_vm::machine::{Machine, MachineLayout, RunOutcome};
use m3gc_vm::module::{ProcMeta, VmModule};
use m3gc_vm::{AluOp, Instr, UnAluOp, VmTrap};

/// Serializes tests that mutate process-global environment variables.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn module_with(code: Vec<u8>, procs: Vec<ProcMeta>, types: TypeTable) -> VmModule {
    use m3gc_core::encode::{encode_module, Scheme};
    use m3gc_core::tables::ModuleTables;
    VmModule {
        code,
        procs,
        types,
        globals_words: 8,
        global_ptr_roots: vec![],
        main: 0,
        poll_pcs: vec![],
        gc_maps: encode_module(&ModuleTables::default(), Scheme::DELTA_MAIN_PP),
        logical_maps: ModuleTables::default(),
    }
}

fn layout() -> MachineLayout {
    MachineLayout { semi_words: 4096, stack_words: 512, max_threads: 2, ..MachineLayout::default() }
}

/// One engine's result: `(outcome, output, steps, pc)`.
type EngineRun = (RunOutcome, String, u64, u32);

/// Runs `module` to completion (or trap) under the interpreter and
/// under the JIT, returning `(outcome, output, steps, pc)` of each.
fn run_both(module: &VmModule) -> (EngineRun, EngineRun) {
    let interp = {
        let mut m = Machine::new(module.clone(), layout());
        let tid = m.spawn(0, &[]);
        let out = m.run_thread(tid, 1_000_000);
        (out, m.output.clone(), m.steps, m.threads[tid].pc)
    };
    let jit = {
        let mut m = Machine::new(module.clone(), layout());
        let engine = JitEngine::for_machine(&m);
        m.set_code_map(engine.code_map());
        let tid = m.spawn(0, &[]);
        let out = engine.run_thread(&mut m, tid, 1_000_000);
        (out, m.output.clone(), m.steps, m.threads[tid].pc)
    };
    (interp, jit)
}

fn assert_parity(module: &VmModule) {
    let (interp, jit) = run_both(module);
    assert_eq!(interp.0, jit.0, "outcome diverged");
    assert_eq!(interp.1, jit.1, "output diverged");
    assert_eq!(interp.2, jit.2, "steps diverged");
    assert_eq!(interp.3, jit.3, "final pc diverged");
}

#[test]
fn arithmetic_branches_and_loops() {
    let mut a = Assembler::new();
    // Sum 1..=100 with a backward branch, then exercise every ALU op on
    // awkward operands, printing as it goes.
    a.emit(&Instr::MovI { dst: 1, imm: 0 }); // acc
    a.emit(&Instr::MovI { dst: 2, imm: 1 }); // i
    a.emit(&Instr::MovI { dst: 3, imm: 100 });
    let top = a.here();
    a.emit(&Instr::Alu { op: AluOp::Add, dst: 1, a: 1, b: 2 });
    a.emit(&Instr::AluI { op: AluOp::Add, dst: 2, a: 2, imm: 1 });
    a.emit(&Instr::Alu { op: AluOp::Le, dst: 4, a: 2, b: 3 });
    a.emit(&Instr::Brt { cond: 4, target: top });
    a.emit(&Instr::Sys { code: 0, arg: 1 });
    a.emit(&Instr::Sys { code: 2, arg: 0 });
    // Division / modulo edge cases: by zero, by -1 at i64::MIN.
    a.emit(&Instr::MovI { dst: 5, imm: i64::MIN });
    a.emit(&Instr::MovI { dst: 6, imm: -1 });
    a.emit(&Instr::Alu { op: AluOp::Div, dst: 7, a: 5, b: 6 });
    a.emit(&Instr::Sys { code: 0, arg: 7 });
    a.emit(&Instr::Sys { code: 2, arg: 0 });
    a.emit(&Instr::Alu { op: AluOp::Mod, dst: 7, a: 5, b: 6 });
    a.emit(&Instr::Sys { code: 0, arg: 7 });
    a.emit(&Instr::MovI { dst: 6, imm: 0 });
    a.emit(&Instr::Alu { op: AluOp::Div, dst: 7, a: 5, b: 6 });
    a.emit(&Instr::Sys { code: 0, arg: 7 });
    a.emit(&Instr::AluI { op: AluOp::Mod, dst: 7, a: 5, imm: 0 });
    a.emit(&Instr::Sys { code: 0, arg: 7 });
    a.emit(&Instr::Sys { code: 2, arg: 0 });
    // Comparisons and unary ops.
    a.emit(&Instr::Alu { op: AluOp::Lt, dst: 7, a: 6, b: 5 });
    a.emit(&Instr::Sys { code: 0, arg: 7 });
    a.emit(&Instr::UnAlu { op: UnAluOp::Not, dst: 7, a: 7 });
    a.emit(&Instr::Sys { code: 0, arg: 7 });
    a.emit(&Instr::UnAlu { op: UnAluOp::Neg, dst: 7, a: 5 });
    a.emit(&Instr::Sys { code: 0, arg: 7 });
    a.emit(&Instr::Ret);
    let code = a.finish();
    let end = code.len() as u32;
    let m = module_with(
        code,
        vec![ProcMeta {
            name: "main".into(),
            entry_pc: 0,
            end_pc: end,
            frame_words: 4,
            save_regs: vec![],
            n_args: 0,
        }],
        TypeTable::default(),
    );
    assert_parity(&m);
}

/// Builds a two-procedure module: `main` loops calling `work(i, i*3)`
/// and prints the running sum; `work` touches frame slots, allocates,
/// and returns a combination of its arguments.
fn call_heavy_module() -> VmModule {
    let mut types = TypeTable::default();
    types.add(HeapType::Record { name: "Pair".into(), words: 2, ptr_offsets: vec![] });
    let mut a = Assembler::new();
    // main:
    a.emit(&Instr::MovI { dst: 6, imm: 0 }); // sum (callee-save)
    a.emit(&Instr::MovI { dst: 7, imm: 1 }); // i
    let top = a.here();
    a.emit(&Instr::Push { src: 7 });
    a.emit(&Instr::AluI { op: AluOp::Mul, dst: 1, a: 7, imm: 3 });
    a.emit(&Instr::Push { src: 1 });
    a.emit(&Instr::Call { proc: 1, nargs: 2 });
    a.emit(&Instr::Alu { op: AluOp::Add, dst: 6, a: 6, b: 0 });
    a.emit(&Instr::AluI { op: AluOp::Add, dst: 7, a: 7, imm: 1 });
    a.emit(&Instr::AluI { op: AluOp::Le, dst: 2, a: 7, imm: 40 });
    a.emit(&Instr::Brt { cond: 2, target: top });
    a.emit(&Instr::Sys { code: 0, arg: 6 });
    a.emit(&Instr::Ret);
    let work = a.here();
    // work(x, y): allocate a pair, store both args through it, reload,
    // spill to a frame slot, return x*y + x - y.
    a.emit(&Instr::LdF { dst: 1, breg: BaseReg::Ap, off: 0 });
    a.emit(&Instr::LdF { dst: 2, breg: BaseReg::Ap, off: 1 });
    a.emit(&Instr::Alloc { dst: 3, ty: 0 });
    a.emit(&Instr::St { base: 3, off: 1, src: 1 });
    a.emit(&Instr::StB { base: 3, off: 2, src: 2 });
    a.emit(&Instr::Ld { dst: 4, base: 3, off: 1 });
    a.emit(&Instr::Ld { dst: 5, base: 3, off: 2 });
    a.emit(&Instr::StF { breg: BaseReg::Fp, off: 0, src: 4 });
    a.emit(&Instr::Lea { dst: 1, breg: BaseReg::Fp, off: 0 });
    a.emit(&Instr::Ld { dst: 4, base: 1, off: 0 });
    a.emit(&Instr::Alu { op: AluOp::Mul, dst: 0, a: 4, b: 5 });
    a.emit(&Instr::Alu { op: AluOp::Add, dst: 0, a: 0, b: 4 });
    a.emit(&Instr::Alu { op: AluOp::Sub, dst: 0, a: 0, b: 5 });
    a.emit(&Instr::Ret);
    let code = a.finish();
    let end = code.len() as u32;
    module_with(
        code,
        vec![
            ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: work,
                frame_words: 2,
                save_regs: vec![],
                n_args: 0,
            },
            ProcMeta {
                name: "work".into(),
                entry_pc: work,
                end_pc: end,
                frame_words: 2,
                save_regs: vec![],
                n_args: 2,
            },
        ],
        types,
    )
}

#[test]
fn calls_allocation_and_frame_traffic() {
    assert_parity(&call_heavy_module());
}

#[test]
fn mixed_jit_and_interpreter_stacks() {
    let _guard = ENV_LOCK.lock().unwrap();
    let module = call_heavy_module();
    let baseline = {
        let mut m = Machine::new(module.clone(), layout());
        let tid = m.spawn(0, &[]);
        let out = m.run_thread(tid, 1_000_000);
        assert_eq!(out, RunOutcome::Finished);
        (m.output.clone(), m.steps)
    };
    // Exclude each procedure in turn: calls then cross the JIT/interp
    // boundary in both directions (JIT main → interpreted callee, and
    // interpreted main → JIT callee), linking through biased native
    // tokens on one side and bytecode pcs on the other.
    for excluded in ["main", "work"] {
        std::env::set_var("M3GC_JIT_EXCLUDE", excluded);
        let mut m = Machine::new(module.clone(), layout());
        let engine = JitEngine::for_machine(&m);
        std::env::remove_var("M3GC_JIT_EXCLUDE");
        m.set_code_map(engine.code_map());
        let tid = m.spawn(0, &[]);
        let out = engine.run_thread(&mut m, tid, 1_000_000);
        assert_eq!(out, RunOutcome::Finished, "excluded={excluded}");
        assert_eq!(m.output, baseline.0, "excluded={excluded}");
        assert_eq!(m.steps, baseline.1, "excluded={excluded}");
        let summary = engine.summary();
        if summary.enabled {
            assert_eq!(summary.procs_compiled, 1);
            assert_eq!(summary.fallbacks, vec![("excluded-proc", 1)]);
        }
    }
}

#[test]
fn traps_match_interpreter_exactly() {
    // Each case: (build, expected trap).
    type TrapCase = (Box<dyn Fn(&mut Assembler)>, VmTrap);
    let cases: Vec<TrapCase> = vec![
        (
            Box::new(|a| {
                // NIL deref: address 3 is inside the reserved zone.
                a.emit(&Instr::MovI { dst: 1, imm: 3 });
                a.emit(&Instr::Ld { dst: 2, base: 1, off: 0 });
            }),
            VmTrap::NilError,
        ),
        (
            Box::new(|a| {
                // Negative address is wild, not NIL.
                a.emit(&Instr::MovI { dst: 1, imm: -5 });
                a.emit(&Instr::St { base: 1, off: 0, src: 1 });
            }),
            VmTrap::WildAddress,
        ),
        (
            Box::new(|a| {
                // Way past the end of memory.
                a.emit(&Instr::MovI { dst: 1, imm: 1 << 40 });
                a.emit(&Instr::StB { base: 1, off: 0, src: 1 });
            }),
            VmTrap::WildAddress,
        ),
        (
            Box::new(|a| {
                a.emit(&Instr::MovI { dst: 1, imm: 7 });
                a.emit(&Instr::Sys { code: 5, arg: 1 });
            }),
            VmTrap::AssertError,
        ),
        (
            Box::new(|a| {
                a.emit(&Instr::Call { proc: 99, nargs: 0 });
            }),
            VmTrap::BadProc,
        ),
    ];
    for (i, (build, expect)) in cases.iter().enumerate() {
        let mut a = Assembler::new();
        build(&mut a);
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let (interp, jit) = run_both(&m);
        assert_eq!(interp.0, RunOutcome::Trap(*expect), "case {i}: interpreter trap");
        assert_eq!(interp.0, jit.0, "case {i}: trap diverged");
        assert_eq!(interp.3, jit.3, "case {i}: trapping pc diverged");
        assert_eq!(interp.2, jit.2, "case {i}: steps diverged");
    }
}

#[test]
fn globals_and_push_overflow() {
    let mut a = Assembler::new();
    a.emit(&Instr::MovI { dst: 1, imm: 1234 });
    a.emit(&Instr::StG { goff: 2, src: 1 });
    a.emit(&Instr::LdG { dst: 2, goff: 2 });
    a.emit(&Instr::Sys { code: 0, arg: 2 });
    a.emit(&Instr::LeaG { dst: 3, goff: 2 });
    a.emit(&Instr::Ld { dst: 4, base: 3, off: 0 });
    a.emit(&Instr::Sys { code: 0, arg: 4 });
    // Now push until the stack overflows; both engines must trap at the
    // same step with the same pc.
    let top = a.here();
    a.emit(&Instr::Push { src: 4 });
    a.emit(&Instr::Jmp { target: top });
    let code = a.finish();
    let end = code.len() as u32;
    let m = module_with(
        code,
        vec![ProcMeta {
            name: "main".into(),
            entry_pc: 0,
            end_pc: end,
            frame_words: 0,
            save_regs: vec![],
            n_args: 0,
        }],
        TypeTable::default(),
    );
    let (interp, jit) = run_both(&m);
    assert_eq!(interp.0, RunOutcome::Trap(VmTrap::StackOverflow));
    assert_eq!(interp, jit);
}

#[test]
fn fuel_exhaustion_stops_cleanly() {
    // An infinite loop: with a bounded budget both engines report
    // out-of-fuel; the JIT's backward-edge fuel checks bound the
    // overshoot to the loop body length.
    let mut a = Assembler::new();
    a.emit(&Instr::MovI { dst: 1, imm: 0 });
    let top = a.here();
    a.emit(&Instr::AluI { op: AluOp::Add, dst: 1, a: 1, imm: 1 });
    a.emit(&Instr::Jmp { target: top });
    let code = a.finish();
    let end = code.len() as u32;
    let m = module_with(
        code,
        vec![ProcMeta {
            name: "main".into(),
            entry_pc: 0,
            end_pc: end,
            frame_words: 0,
            save_regs: vec![],
            n_args: 0,
        }],
        TypeTable::default(),
    );
    let mut mi = Machine::new(m.clone(), layout());
    let ti = mi.spawn(0, &[]);
    assert_eq!(mi.run_thread(ti, 10_000), m3gc_vm::machine::RunOutcome::OutOfFuel);
    let mut mj = Machine::new(m, layout());
    let engine = JitEngine::for_machine(&mj);
    mj.set_code_map(engine.code_map());
    let tj = mj.spawn(0, &[]);
    assert_eq!(engine.run_thread(&mut mj, tj, 10_000), RunOutcome::OutOfFuel);
    // Native code checks fuel only at polls and backward edges, so it
    // may overshoot the budget by up to one loop body (2 instructions
    // here) before the backedge check fires.
    assert!(
        mj.steps >= mi.steps && mj.steps - mi.steps <= 2,
        "fuel overshoot out of bounds: interp {} vs jit {}",
        mi.steps,
        mj.steps
    );
}
