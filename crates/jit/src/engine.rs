//! The JIT engine: compiled-code ownership, the native↔interpreter
//! boundary, and the run loops.
//!
//! One [`JitEngine`] serves one machine. At load time it template-
//! compiles every eligible procedure into a single executable region
//! (an enter/exit thunk followed by the procedure blobs) and builds the
//! [`CodeMap`] keying every native call-return address to its bytecode
//! gc-point. At run time [`JitEngine::run_thread`] (sequential) and
//! [`JitEngine::run_burst`] (parallel mutator) interleave native bursts
//! with single-step interpretation: any pc with a registered native
//! entry runs natively; everything else — procedures that fell back,
//! gc handshakes, traps — is the interpreter's, unchanged.
//!
//! The collectors never change: a JIT frame differs from an interpreted
//! frame only in its linkage word (a [`JIT_RETPC_BIAS`]ed native return
//! token instead of a bytecode pc), and the stack walker resolves that
//! token through the shared `CodeMap` before consulting the ordinary
//! pc-keyed gc tables.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use m3gc_vm::codemap::{CodeMap, JIT_RETPC_BIAS};
use m3gc_vm::isa::Instr;
use m3gc_vm::machine::{Machine, RunOutcome, StepOutcome, ThreadStatus};
use m3gc_vm::par::{Mutator, ParMachine, ParStep};
use m3gc_vm::VmTrap;

use crate::compile::Fallback;
#[cfg(all(target_arch = "x86_64", unix))]
use crate::compile::{Flavor, Helpers};
#[cfg(all(target_arch = "x86_64", unix))]
use crate::exec::ExecMem;

/// Gate for everything that emits or executes native code.
macro_rules! native_target {
    () => {
        cfg!(all(target_arch = "x86_64", unix))
    };
}

// ---------------------------------------------------------------------
// The native execution context.
// ---------------------------------------------------------------------

/// Mutable state shared between the engine and a native activation.
///
/// Compiled code addresses fields at the `OFF_*` byte offsets below
/// (`rbx` holds the context pointer for the whole activation), so the
/// layout is frozen: `#[repr(C)]`, all fields 8 bytes, order matching
/// the offset constants. `layout_matches_offsets` in the tests pins
/// every offset with `mem::offset_of!`.
#[repr(C)]
pub struct JitContext {
    /// `&thread.regs[0]` / `&mutator.regs[0]` — the live register file
    /// (`r13` in compiled code; writes land directly in the VM state).
    pub regs: *mut i64,
    /// `&mem[0]` — VM memory base (`r14`).
    pub mem: *mut i64,
    /// Frame pointer (word index). Copied from the thread at entry and
    /// written back at exit.
    pub fp: i64,
    /// Stack pointer.
    pub sp: i64,
    /// Argument pointer.
    pub ap: i64,
    /// Instruction budget; decremented once per retired instruction,
    /// checked (`<= 0` exits) at safepoint polls and loop back-edges.
    pub fuel: i64,
    /// The shared gc-request flag (`Machine::gc_pending` /
    /// `ParMachine::gc_request`) — the *same* byte the interpreter
    /// polls, read at every native gc-point.
    pub gc_flag: *const u8,
    /// Exit trampoline: restores callee-save registers and returns to
    /// [`JitEngine`]'s enter call. Compiled code leaves via an indirect
    /// jump through this field with an exit reason in `rax`.
    pub exit_thunk: *const u8,
    /// Bytecode pc the exit concerns (next pc, gc-point pc, trap pc, or
    /// a raw linkage word for returns — see the `EXIT_*` docs).
    pub exit_pc: i64,
    /// Trap code for [`EXIT_TRAP`].
    pub exit_aux: i64,
    /// This thread's stack limit (overflow checks).
    pub stack_limit: i64,
    /// Native safepoint polls executed (stats).
    pub polls: i64,
    /// `&machine.alloc_ptr` — sequential bump-allocation cursor (null
    /// for parallel machines; they allocate through the helper only).
    pub alloc_ptr_p: *mut i64,
    /// `&machine.alloc_fast_limit` — the one compare of the fast path;
    /// pinned to `i64::MIN` under gc-torture, which diverts every
    /// allocation to the helper and keeps forced-gc counting exact.
    pub alloc_fast_limit_p: *const i64,
    /// `&machine.allocations`.
    pub alloc_count_p: *mut u64,
    /// `&machine.words_allocated`.
    pub words_p: *mut u64,
    /// The owning `Machine` (sequential) or `ParMachine` (parallel),
    /// type-erased for the helper call-outs.
    pub machine: *mut (),
    /// The thread id as a pointer-sized integer (sequential) or the
    /// `&mut Mutator` (parallel).
    pub mutator: *mut (),
    /// Shadow side table: the decoded instruction each instrumentation
    /// call-out reports (`instrs[instr_id]`).
    pub instrs: *const Instr,
}

/// Byte offsets of [`JitContext`] fields, used by the template
/// compiler. Each is pinned by a unit test.
pub const OFF_REGS: i32 = 0x00;
#[allow(missing_docs)]
pub const OFF_MEM: i32 = 0x08;
#[allow(missing_docs)]
pub const OFF_FP: i32 = 0x10;
#[allow(missing_docs)]
pub const OFF_SP: i32 = 0x18;
#[allow(missing_docs)]
pub const OFF_AP: i32 = 0x20;
#[allow(missing_docs)]
pub const OFF_FUEL: i32 = 0x28;
#[allow(missing_docs)]
pub const OFF_GC_FLAG: i32 = 0x30;
#[allow(missing_docs)]
pub const OFF_EXIT_THUNK: i32 = 0x38;
#[allow(missing_docs)]
pub const OFF_EXIT_PC: i32 = 0x40;
#[allow(missing_docs)]
pub const OFF_EXIT_AUX: i32 = 0x48;
#[allow(missing_docs)]
pub const OFF_STACK_LIMIT: i32 = 0x50;
#[allow(missing_docs)]
pub const OFF_POLLS: i32 = 0x58;
#[allow(missing_docs)]
pub const OFF_ALLOC_PTR_P: i32 = 0x60;
#[allow(missing_docs)]
pub const OFF_ALLOC_FAST_LIMIT_P: i32 = 0x68;
#[allow(missing_docs)]
pub const OFF_ALLOC_COUNT_P: i32 = 0x70;
#[allow(missing_docs)]
pub const OFF_WORDS_P: i32 = 0x78;

/// Native code ran out of fuel at a check; `exit_pc` is the next pc to
/// execute.
pub const EXIT_FUEL: i64 = 0;
/// A safepoint poll observed the gc flag; `exit_pc` is the gc-point pc
/// (no state of that instruction has executed).
pub const EXIT_GC: i64 = 1;
/// An allocation found the heap full; `exit_pc` is the `ALLOC` pc (to
/// be retried after the collection).
pub const EXIT_NEEDGC: i64 = 2;
/// Control transfer: a call (`exit_pc` = callee entry pc) or a return
/// (`exit_pc` = the raw linkage word — a bytecode pc or a biased native
/// token).
pub const EXIT_TRANSFER: i64 = 3;
/// The thread finished (`HALT`, or `RET` through the bottom-frame
/// sentinel).
pub const EXIT_FINISHED: i64 = 4;
/// Abnormal termination; `exit_aux` holds the `VmTrap` code and
/// `exit_pc` the trapping pc (the interpreter, too, leaves the pc at
/// the trapping instruction).
pub const EXIT_TRAP: i64 = 5;

#[cfg(all(target_arch = "x86_64", unix))]
type EnterFn = unsafe extern "sysv64" fn(*mut JitContext, *const u8) -> i64;

/// The executable region plus the entry points into it.
#[cfg(all(target_arch = "x86_64", unix))]
struct NativeState {
    /// Keeps the mapping alive; dropped last.
    _mem: ExecMem,
    enter: EnterFn,
    exit_thunk: *const u8,
    /// Base of the procedure blobs (thunk excluded); all `CodeMap`
    /// offsets are relative to this.
    code_base: *const u8,
}

// ---------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------

/// Compile- and run-time counters for the `--stats` report.
#[derive(Debug)]
pub struct JitStats {
    /// Procedures in the module.
    pub procs_total: usize,
    /// Procedures compiled to native code.
    pub procs_compiled: usize,
    /// Bytes of generated code (thunk + blobs).
    pub code_bytes: usize,
    /// Wall-clock compile time.
    pub compile_micros: u64,
    /// Per-reason interpreter fallbacks, in [`Fallback::all`] order.
    pub fallbacks: Vec<(&'static str, u64)>,
    /// Safepoint polls executed in native code.
    pub native_polls: AtomicU64,
}

/// A plain-data snapshot of [`JitStats`] for reporting.
#[derive(Debug, Clone)]
pub struct JitSummary {
    /// True when native code is installed (at least one procedure
    /// compiled and mapped executable).
    pub enabled: bool,
    /// Procedures in the module.
    pub procs_total: usize,
    /// Procedures compiled to native code.
    pub procs_compiled: usize,
    /// Bytes of generated code.
    pub code_bytes: usize,
    /// Wall-clock compile time.
    pub compile_micros: u64,
    /// Safepoint polls executed in native code so far.
    pub native_polls: u64,
    /// `(reason, count)` for every fallback reason with a nonzero
    /// count.
    pub fallbacks: Vec<(&'static str, u64)>,
}

// ---------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------

/// Owns the compiled code, its [`CodeMap`], and the run loops. Built
/// once per execution from the already-configured machine; shared
/// read-only between mutator threads in parallel mode.
pub struct JitEngine {
    #[cfg(all(target_arch = "x86_64", unix))]
    native: Option<NativeState>,
    map: Arc<CodeMap>,
    /// Shadow side table; `JitContext::instrs` points into it.
    instrs: Vec<Instr>,
    stats: JitStats,
}

// SAFETY: the code region is immutable (RX) after construction and the
// raw pointers only reference it; `instrs` and `map` are read-only.
unsafe impl Send for JitEngine {}
unsafe impl Sync for JitEngine {}

impl JitEngine {
    /// Builds an engine for a sequential machine. Never fails: anything
    /// that cannot be compiled is recorded as a counted fallback and
    /// runs interpreted.
    #[must_use]
    pub fn for_machine(m: &Machine) -> JitEngine {
        let shadow = m.shadow.is_some();
        let is_gc = gc_point_table(&m.module.code, |pc| m.is_gc_point_pc(pc));
        build_engine(
            &m.module,
            &is_gc,
            BuildFlavor { par: false, shadow, cms: false, conc_evac: false },
            m.mem.len(),
            None,
        )
    }

    /// Builds an engine for a parallel machine. Allocation-service
    /// region mode excludes the JIT structurally (escape tracking is
    /// interpreter-only).
    #[must_use]
    pub fn for_par(vm: &ParMachine) -> JitEngine {
        let structural = (vm.region_words() > 0).then_some(Fallback::RegionMode);
        let flavor = BuildFlavor {
            par: true,
            shadow: vm.shadow.is_some(),
            cms: vm.cms.is_some(),
            conc_evac: vm.cms.as_ref().is_some_and(|h| h.conc_evac.load(Ordering::Relaxed)),
        };
        let is_gc = gc_point_table(&vm.module.code, |pc| vm.is_gc_point_pc(pc));
        build_engine(&vm.module, &is_gc, flavor, vm.mem.len(), structural)
    }

    /// The gc-map for compiled code, to be installed on the machine
    /// ([`Machine::set_code_map`] / [`ParMachine::set_code_map`]) so the
    /// interpreter's `RET` and the stack walker resolve native return
    /// tokens.
    #[must_use]
    pub fn code_map(&self) -> Arc<CodeMap> {
        Arc::clone(&self.map)
    }

    /// True when at least one procedure runs natively.
    #[must_use]
    pub fn is_native(&self) -> bool {
        #[cfg(all(target_arch = "x86_64", unix))]
        {
            self.native.is_some()
        }
        #[cfg(not(all(target_arch = "x86_64", unix)))]
        {
            false
        }
    }

    /// Snapshot of the engine's counters.
    #[must_use]
    pub fn summary(&self) -> JitSummary {
        JitSummary {
            enabled: self.is_native(),
            procs_total: self.stats.procs_total,
            procs_compiled: self.stats.procs_compiled,
            code_bytes: self.stats.code_bytes,
            compile_micros: self.stats.compile_micros,
            native_polls: self.stats.native_polls.load(Ordering::Relaxed),
            fallbacks: self.stats.fallbacks.iter().filter(|&&(_, n)| n > 0).copied().collect(),
        }
    }

    /// Test hook for the gc-map mutation test: clones the map, nudges
    /// the native-offset key of gc-point `idx` by `delta`, installs the
    /// corrupted clone as this engine's map and returns it (the caller
    /// must install the same `Arc` on the machine — both the engine's
    /// transfer resolution and the interpreter/walker resolution go
    /// through the map, and the test corrupts *the* map, not one copy).
    #[doc(hidden)]
    pub fn corrupt_gc_point_key(&mut self, idx: usize, delta: i32) -> (Arc<CodeMap>, (u32, u32)) {
        let mut map = CodeMap::clone(&self.map);
        let (old, new) = map.corrupt_gc_point_key(idx, delta);
        let arc = Arc::new(map);
        self.map = Arc::clone(&arc);
        (arc, (old, new))
    }

    // -----------------------------------------------------------------
    // Sequential run loop.
    // -----------------------------------------------------------------

    /// Drop-in replacement for [`Machine::run_thread`]: runs thread
    /// `tid` until it finishes, needs a collection, blocks at a
    /// gc-point, traps, or exhausts `fuel` instructions — with every pc
    /// that has compiled code executing natively.
    pub fn run_thread(&self, m: &mut Machine, tid: usize, fuel: u64) -> RunOutcome {
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return RunOutcome::OutOfFuel;
            }
            let pc = m.threads[tid].pc;
            if m.gc_pending && m.is_gc_point_pc(pc) {
                m.threads[tid].status = ThreadStatus::BlockedAtGcPoint;
                return RunOutcome::AtGcPoint;
            }
            #[cfg(all(target_arch = "x86_64", unix))]
            if let Some(native) = self.native.as_ref() {
                if let Some(off) = self.map.entry_native_off(pc) {
                    let fuel_in = i64::try_from(remaining).unwrap_or(i64::MAX);
                    let mut ctx = seq_context(m, tid, fuel_in, native.exit_thunk, &self.instrs);
                    // SAFETY: the context points at live machine state;
                    // the target is an instruction-start offset inside
                    // the mapped region; compiled code upholds the VM's
                    // bounds invariants (it performs the same checks as
                    // the interpreter).
                    let reason =
                        unsafe { (native.enter)(&mut ctx, native.code_base.add(off as usize)) };
                    let executed = u64::try_from(fuel_in - ctx.fuel).unwrap_or(0);
                    m.steps += executed;
                    remaining = remaining.saturating_sub(executed);
                    self.stats.native_polls.fetch_add(ctx.polls as u64, Ordering::Relaxed);
                    let t = &mut m.threads[tid];
                    t.fp = ctx.fp;
                    t.sp = ctx.sp;
                    t.ap = ctx.ap;
                    match reason {
                        EXIT_FUEL => {
                            t.pc = ctx.exit_pc as u32;
                        }
                        EXIT_GC => {
                            t.pc = ctx.exit_pc as u32;
                            t.status = ThreadStatus::BlockedAtGcPoint;
                            return RunOutcome::AtGcPoint;
                        }
                        EXIT_NEEDGC => {
                            t.pc = ctx.exit_pc as u32;
                            t.status = ThreadStatus::BlockedAtGcPoint;
                            m.gc_pending = true;
                            return RunOutcome::NeedGc;
                        }
                        EXIT_TRANSFER => {
                            t.pc = resolve_transfer(&self.map, ctx.exit_pc);
                        }
                        EXIT_FINISHED => {
                            t.pc = ctx.exit_pc as u32;
                            t.status = ThreadStatus::Finished;
                            return RunOutcome::Finished;
                        }
                        EXIT_TRAP => {
                            t.pc = ctx.exit_pc as u32;
                            return RunOutcome::Trap(VmTrap::from_code(ctx.exit_aux));
                        }
                        other => unreachable!("unknown jit exit reason {other}"),
                    }
                    continue;
                }
            }
            // Interpreter fallback, one instruction at a time (the next
            // pc may well be back in native code).
            remaining -= 1;
            match m.step(tid) {
                StepOutcome::Normal => {}
                StepOutcome::NeedGc => return RunOutcome::NeedGc,
                StepOutcome::AtGcPoint => return RunOutcome::AtGcPoint,
                StepOutcome::Finished => return RunOutcome::Finished,
                StepOutcome::Trap(t) => return RunOutcome::Trap(t),
            }
        }
    }

    // -----------------------------------------------------------------
    // Parallel run loop.
    // -----------------------------------------------------------------

    /// Runs up to `max` instructions of `mu`, mixing native bursts and
    /// interpreted steps. Returns the stopping condition and the number
    /// of instructions executed ([`ParStep::Normal`] means the budget
    /// was exhausted). Mirrors a `ParMachine::step` loop exactly,
    /// including the park-before-execute safepoint protocol.
    pub fn run_burst(&self, vm: &ParMachine, mu: &mut Mutator, max: u64) -> (ParStep, u64) {
        let mut executed: u64 = 0;
        while executed < max {
            let pc = mu.pc;
            if vm.is_gc_point_pc(pc) && vm.gc_request.load(Ordering::Relaxed) {
                return (ParStep::AtSafepoint, executed);
            }
            #[cfg(all(target_arch = "x86_64", unix))]
            if let Some(native) = self.native.as_ref() {
                if let Some(off) = self.map.entry_native_off(pc) {
                    let budget = i64::try_from(max - executed).unwrap_or(i64::MAX);
                    let mut ctx = par_context(vm, mu, budget, native.exit_thunk, &self.instrs);
                    // SAFETY: as in `run_thread`; the parallel memory is
                    // `AtomicI64` (same layout as `i64`), and native
                    // plain loads/stores are relaxed atomic accesses on
                    // x86-64.
                    let reason =
                        unsafe { (native.enter)(&mut ctx, native.code_base.add(off as usize)) };
                    let ran = u64::try_from(budget - ctx.fuel).unwrap_or(0);
                    executed += ran;
                    mu.steps += ran;
                    self.stats.native_polls.fetch_add(ctx.polls as u64, Ordering::Relaxed);
                    mu.fp = ctx.fp;
                    mu.sp = ctx.sp;
                    mu.ap = ctx.ap;
                    match reason {
                        EXIT_FUEL => {
                            mu.pc = ctx.exit_pc as u32;
                        }
                        EXIT_GC => {
                            mu.pc = ctx.exit_pc as u32;
                            return (ParStep::AtSafepoint, executed);
                        }
                        EXIT_NEEDGC => {
                            mu.pc = ctx.exit_pc as u32;
                            return (ParStep::NeedGc, executed);
                        }
                        EXIT_TRANSFER => {
                            mu.pc = resolve_transfer(&self.map, ctx.exit_pc);
                        }
                        EXIT_FINISHED => {
                            mu.pc = ctx.exit_pc as u32;
                            return (ParStep::Finished, executed);
                        }
                        EXIT_TRAP => {
                            mu.pc = ctx.exit_pc as u32;
                            return (ParStep::Trap(VmTrap::from_code(ctx.exit_aux)), executed);
                        }
                        other => unreachable!("unknown jit exit reason {other}"),
                    }
                    continue;
                }
            }
            match vm.step(mu) {
                ParStep::Normal => executed += 1,
                ParStep::AtSafepoint => return (ParStep::AtSafepoint, executed),
                // These outcomes executed (or attempted) an instruction
                // — `mu.steps` was bumped by `step` — so they count
                // against the budget like their native counterparts.
                other => return (other, executed + 1),
            }
        }
        (ParStep::Normal, executed)
    }
}

/// `exit_pc` of an [`EXIT_TRANSFER`]: either a callee entry / plain
/// return pc, or a biased token from returning into a JIT frame.
fn resolve_transfer(map: &CodeMap, raw: i64) -> u32 {
    if raw >= JIT_RETPC_BIAS {
        map.resolve_ret(raw).expect("jit return token resolves to no registered gc-point")
    } else {
        raw as u32
    }
}

/// `is_gc_point` as a dense table over `0..=code.len()`.
fn gc_point_table(code: &[u8], is_gc: impl Fn(u32) -> bool) -> Vec<bool> {
    (0..=code.len() as u32).map(is_gc).collect()
}

// ---------------------------------------------------------------------
// Context construction.
// ---------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", unix))]
fn seq_context(
    m: &mut Machine,
    tid: usize,
    fuel: i64,
    exit_thunk: *const u8,
    instrs: &[Instr],
) -> JitContext {
    let (regs, fp, sp, ap, stack_limit) = {
        let t = &mut m.threads[tid];
        (t.regs.as_mut_ptr(), t.fp, t.sp, t.ap, t.stack_limit)
    };
    JitContext {
        regs,
        mem: m.mem.as_mut_ptr(),
        fp,
        sp,
        ap,
        fuel,
        gc_flag: (&raw const m.gc_pending).cast(),
        exit_thunk,
        exit_pc: 0,
        exit_aux: 0,
        stack_limit,
        polls: 0,
        alloc_ptr_p: &raw mut m.alloc_ptr,
        alloc_fast_limit_p: m.jit_alloc_fast_limit_ptr(),
        alloc_count_p: &raw mut m.allocations,
        words_p: &raw mut m.words_allocated,
        machine: std::ptr::from_mut(m).cast(),
        mutator: tid as *mut (),
        instrs: instrs.as_ptr(),
    }
}

#[cfg(all(target_arch = "x86_64", unix))]
fn par_context(
    vm: &ParMachine,
    mu: &mut Mutator,
    fuel: i64,
    exit_thunk: *const u8,
    instrs: &[Instr],
) -> JitContext {
    JitContext {
        regs: mu.regs.as_mut_ptr(),
        // AtomicI64 has the same in-memory representation as i64; the
        // generated plain 64-bit loads/stores are relaxed atomic
        // accesses on x86-64, exactly like the interpreter's
        // `load(R)`/`store(R)`.
        mem: vm.mem.as_ptr().cast::<i64>().cast_mut(),
        fp: mu.fp,
        sp: mu.sp,
        ap: mu.ap,
        fuel,
        gc_flag: std::ptr::from_ref(&vm.gc_request).cast(),
        exit_thunk,
        exit_pc: 0,
        exit_aux: 0,
        stack_limit: mu.stack_limit,
        polls: 0,
        alloc_ptr_p: std::ptr::null_mut(),
        alloc_fast_limit_p: std::ptr::null(),
        alloc_count_p: std::ptr::null_mut(),
        words_p: std::ptr::null_mut(),
        machine: std::ptr::from_ref(vm).cast_mut().cast(),
        mutator: std::ptr::from_mut(mu).cast(),
        instrs: instrs.as_ptr(),
    }
}

// ---------------------------------------------------------------------
// Runtime helpers (native code calls out to these).
// ---------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", unix))]
mod helpers {
    use super::JitContext;
    use m3gc_vm::machine::Machine;
    use m3gc_vm::par::{Mutator, ParMachine};
    use m3gc_vm::shadow::Tag;
    use m3gc_vm::VmTrap;

    /// Helper return protocol: 0 = ok, 1 = needs-gc, `2 + code` = trap.
    fn trap_code(t: VmTrap) -> i64 {
        2 + t.to_code()
    }

    // -- sequential ---------------------------------------------------

    pub unsafe extern "sysv64" fn seq_alloc(
        ctx: *mut JitContext,
        packed: i64,
        len: i64,
        _pc: i64,
    ) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let m = unsafe { &mut *ctx.machine.cast::<Machine>() };
        let ty = (packed >> 16) as u16;
        let dst = (packed & 0xffff) as usize;
        match m.jit_try_alloc(ty, len) {
            Ok(Some(addr)) => {
                unsafe { ctx.regs.add(dst).write(addr) };
                let tid = ctx.mutator as usize;
                if let Some(sh) = m.shadow.as_deref_mut() {
                    sh.regs[tid][dst] = Tag::Ptr;
                }
                0
            }
            Ok(None) => 1,
            Err(t) => trap_code(t),
        }
    }

    pub unsafe extern "sysv64" fn seq_stb(ctx: *mut JitContext, addr: i64, value: i64) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let m = unsafe { &mut *ctx.machine.cast::<Machine>() };
        m.jit_note_barrier(addr, value);
        0
    }

    pub unsafe extern "sysv64" fn seq_sys(ctx: *mut JitContext, code: i64, arg: i64) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let m = unsafe { &mut *ctx.machine.cast::<Machine>() };
        match m.jit_sys(code as u8, arg) {
            Ok(()) => 0,
            Err(t) => trap_code(t),
        }
    }

    pub unsafe extern "sysv64" fn seq_shadow(ctx: *mut JitContext, instr_id: i64) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let m = unsafe { &mut *ctx.machine.cast::<Machine>() };
        let tid = ctx.mutator as usize;
        // The shadow tracker reads the thread's frame cursors; registers
        // are already live (the context's `regs` aliases them).
        {
            let t = &mut m.threads[tid];
            t.fp = ctx.fp;
            t.sp = ctx.sp;
            t.ap = ctx.ap;
        }
        let ins = unsafe { &*ctx.instrs.add(instr_id as usize) };
        match m.jit_shadow_step(tid, ins) {
            None => 0,
            Some(t) => trap_code(t),
        }
    }

    // -- parallel -----------------------------------------------------

    pub unsafe extern "sysv64" fn par_alloc(
        ctx: *mut JitContext,
        packed: i64,
        len: i64,
        _pc: i64,
    ) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let vm = unsafe { &*ctx.machine.cast::<ParMachine>() };
        let mu = unsafe { &mut *ctx.mutator.cast::<Mutator>() };
        let ty = (packed >> 16) as u16;
        let dst = (packed & 0xffff) as usize;
        match vm.try_alloc(mu, ty, len) {
            Ok(Some(addr)) => {
                mu.regs[dst] = addr;
                if vm.shadow.is_some() {
                    mu.reg_tags[dst] = Tag::Ptr;
                }
                0
            }
            Ok(None) => 1,
            Err(t) => trap_code(t),
        }
    }

    pub unsafe extern "sysv64" fn par_stb(ctx: *mut JitContext, addr: i64, value: i64) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let vm = unsafe { &*ctx.machine.cast::<ParMachine>() };
        let mu = unsafe { &mut *ctx.mutator.cast::<Mutator>() };
        match vm.jit_store_barrier(mu, addr, value) {
            Ok(()) => 0,
            Err(t) => trap_code(t),
        }
    }

    pub unsafe extern "sysv64" fn par_heap_load(ctx: *mut JitContext, addr: i64, dst: i64) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let vm = unsafe { &*ctx.machine.cast::<ParMachine>() };
        let mu = unsafe { &mut *ctx.mutator.cast::<Mutator>() };
        match vm.jit_heap_load(mu, dst as u8, addr) {
            Ok(()) => 0,
            Err(t) => trap_code(t),
        }
    }

    pub unsafe extern "sysv64" fn par_heap_store(
        ctx: *mut JitContext,
        addr: i64,
        value: i64,
    ) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let vm = unsafe { &*ctx.machine.cast::<ParMachine>() };
        match vm.jit_heap_store(addr, value) {
            Ok(()) => 0,
            Err(t) => trap_code(t),
        }
    }

    pub unsafe extern "sysv64" fn par_sys(ctx: *mut JitContext, code: i64, arg: i64) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let vm = unsafe { &*ctx.machine.cast::<ParMachine>() };
        let mu = unsafe { &mut *ctx.mutator.cast::<Mutator>() };
        match vm.jit_sys(mu, code as u8, arg) {
            Ok(()) => 0,
            Err(t) => trap_code(t),
        }
    }

    pub unsafe extern "sysv64" fn par_shadow(ctx: *mut JitContext, instr_id: i64) -> i64 {
        let ctx = unsafe { &mut *ctx };
        let vm = unsafe { &*ctx.machine.cast::<ParMachine>() };
        let mu = unsafe { &mut *ctx.mutator.cast::<Mutator>() };
        mu.fp = ctx.fp;
        mu.sp = ctx.sp;
        mu.ap = ctx.ap;
        let ins = unsafe { &*ctx.instrs.add(instr_id as usize) };
        match vm.jit_shadow_step(mu, ins) {
            None => 0,
            Some(t) => trap_code(t),
        }
    }
}

// ---------------------------------------------------------------------
// Engine construction.
// ---------------------------------------------------------------------

/// `Flavor` plus nothing — alias so the non-native build doesn't pull
/// the compiler types into its signature.
#[derive(Clone, Copy)]
struct BuildFlavor {
    par: bool,
    shadow: bool,
    cms: bool,
    conc_evac: bool,
}

fn build_engine(
    module: &m3gc_vm::VmModule,
    is_gc_point: &[bool],
    flavor: BuildFlavor,
    mem_words: usize,
    structural: Option<Fallback>,
) -> JitEngine {
    let started = std::time::Instant::now();
    let nprocs = module.procs.len();
    let mut counts: Vec<(&'static str, u64)> =
        Fallback::all().iter().map(|f| (f.key(), 0)).collect();
    let bump = |counts: &mut Vec<(&'static str, u64)>, f: Fallback, n: u64| {
        let key = f.key();
        for c in counts.iter_mut() {
            if c.0 == key {
                c.1 += n;
            }
        }
    };

    let mut structural = structural;
    if structural.is_none() && std::env::var("M3GC_JIT_DISABLE").is_ok_and(|v| v == "1") {
        structural = Some(Fallback::ForcedByEnv);
    }
    if structural.is_none() && (mem_words == 0 || mem_words > i32::MAX as usize) {
        // Word addresses must fit the imm32 bounds-check compares.
        structural = Some(Fallback::UnsupportedOpcode);
    }
    if structural.is_none() && !native_target!() {
        structural = Some(Fallback::UnsupportedArch);
    }

    if let Some(reason) = structural {
        bump(&mut counts, reason, nprocs as u64);
        return JitEngine {
            #[cfg(all(target_arch = "x86_64", unix))]
            native: None,
            map: Arc::new(CodeMap::default()),
            instrs: Vec::new(),
            stats: JitStats {
                procs_total: nprocs,
                procs_compiled: 0,
                code_bytes: 0,
                compile_micros: started.elapsed().as_micros() as u64,
                fallbacks: counts,
                native_polls: AtomicU64::new(0),
            },
        };
    }

    #[cfg(all(target_arch = "x86_64", unix))]
    {
        compile_native(module, is_gc_point, flavor, mem_words, started, counts, bump)
    }
    #[cfg(not(all(target_arch = "x86_64", unix)))]
    {
        let _ = (is_gc_point, flavor, mem_words);
        unreachable!("structural UnsupportedArch fallback handles non-native targets")
    }
}

#[cfg(all(target_arch = "x86_64", unix))]
fn compile_native(
    module: &m3gc_vm::VmModule,
    is_gc_point: &[bool],
    flavor: BuildFlavor,
    mem_words: usize,
    started: std::time::Instant,
    mut counts: Vec<(&'static str, u64)>,
    mut bump: impl FnMut(&mut Vec<(&'static str, u64)>, Fallback, u64),
) -> JitEngine {
    use crate::emit::{EmitState, Reg};

    let flavor = Flavor {
        par: flavor.par,
        shadow: flavor.shadow,
        cms: flavor.cms,
        conc_evac: flavor.conc_evac,
    };
    let helpers = if flavor.par {
        Helpers {
            alloc: helpers::par_alloc as *const () as usize as i64,
            stb: helpers::par_stb as *const () as usize as i64,
            sys: helpers::par_sys as *const () as usize as i64,
            shadow: helpers::par_shadow as *const () as usize as i64,
            heap_load: helpers::par_heap_load as *const () as usize as i64,
            heap_store: helpers::par_heap_store as *const () as usize as i64,
        }
    } else {
        Helpers {
            alloc: helpers::seq_alloc as *const () as usize as i64,
            stb: helpers::seq_stb as *const () as usize as i64,
            sys: helpers::seq_sys as *const () as usize as i64,
            shadow: helpers::seq_shadow as *const () as usize as i64,
            // Sequential machines never set the conc-evac flavor, so
            // these templates are never emitted.
            heap_load: 0,
            heap_store: 0,
        }
    };

    let excluded: std::collections::HashSet<String> = std::env::var("M3GC_JIT_EXCLUDE")
        .map(|v| v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect())
        .unwrap_or_default();

    // The enter/exit thunk: the one ABI boundary. `enter(ctx, target)`
    // saves the SysV callee-save registers, pins rbx/r13/r14, and jumps
    // into the blob; blobs leave via an indirect jump to the exit half,
    // which unwinds the same frame. The `sub rsp, 8` keeps rsp ≡ 0
    // (mod 16) inside blobs so helper `call`s land SysV-aligned.
    let mut e = EmitState::new();
    for r in [Reg::Rbp, Reg::Rbx, Reg::R12, Reg::R13, Reg::R14, Reg::R15] {
        e.push(r);
    }
    e.sub_rsp_imm8(8);
    e.mov_rr(Reg::Rbx, Reg::Rdi);
    e.load(Reg::R13, Reg::Rbx, OFF_REGS);
    e.load(Reg::R14, Reg::Rbx, OFF_MEM);
    e.jmp_r(Reg::Rsi);
    let exit_off = e.here() as usize;
    e.add_rsp_imm8(8);
    for r in [Reg::R15, Reg::R14, Reg::R13, Reg::R12, Reg::Rbx, Reg::Rbp] {
        e.pop(r);
    }
    e.ret();
    let thunk = e.finish();
    let thunk_len = thunk.len();

    let decoded = m3gc_vm::decode::DecodedCode::new(&module.code);
    let mut builder = CodeMap::builder();
    let mut blob: Vec<u8> = Vec::new();
    let mut instrs: Vec<Instr> = Vec::new();
    let mut compiled = 0usize;
    for (i, meta) in module.procs.iter().enumerate() {
        if excluded.contains(&meta.name) {
            bump(&mut counts, Fallback::ExcludedProc, 1);
            continue;
        }
        match crate::compile::compile_proc(
            module,
            &decoded,
            i,
            blob.len() as u32,
            flavor,
            helpers,
            is_gc_point,
            mem_words as i64,
            &mut instrs,
        ) {
            Ok(art) => {
                let start = blob.len() as u32;
                blob.extend_from_slice(&art.code);
                builder.add_proc(i, start, blob.len() as u32);
                for (off, pc) in art.gc_points {
                    builder.add_gc_point(off, pc);
                }
                for (pc, off) in art.entries {
                    builder.add_entry(pc, off);
                }
                compiled += 1;
            }
            Err(f) => bump(&mut counts, f, 1),
        }
    }

    let mut native = None;
    let mut code_bytes = 0usize;
    if compiled > 0 {
        let mut full = thunk;
        full.extend_from_slice(&blob);
        code_bytes = full.len();
        match ExecMem::new(&full) {
            Some(mem) => {
                let base = mem.base();
                // SAFETY: offset 0 of the region is the enter thunk,
                // whose signature is exactly `EnterFn`.
                let enter: EnterFn = unsafe { std::mem::transmute(base) };
                // SAFETY: both offsets are inside the mapped region.
                let (exit_thunk, code_base) = unsafe { (base.add(exit_off), base.add(thunk_len)) };
                native = Some(NativeState { _mem: mem, enter, exit_thunk, code_base });
            }
            None => {
                // Executable mappings refused (hardened kernel): the
                // compiled procedures all fall back.
                bump(&mut counts, Fallback::UnsupportedArch, compiled as u64);
                compiled = 0;
                code_bytes = 0;
            }
        }
    }
    let map = if native.is_some() { builder.finish() } else { CodeMap::default() };

    JitEngine {
        native,
        map: Arc::new(map),
        instrs,
        stats: JitStats {
            procs_total: module.procs.len(),
            procs_compiled: compiled,
            code_bytes,
            compile_micros: started.elapsed().as_micros() as u64,
            fallbacks: counts,
            native_polls: AtomicU64::new(0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::offset_of;

    #[test]
    fn layout_matches_offsets() {
        assert_eq!(offset_of!(JitContext, regs), OFF_REGS as usize);
        assert_eq!(offset_of!(JitContext, mem), OFF_MEM as usize);
        assert_eq!(offset_of!(JitContext, fp), OFF_FP as usize);
        assert_eq!(offset_of!(JitContext, sp), OFF_SP as usize);
        assert_eq!(offset_of!(JitContext, ap), OFF_AP as usize);
        assert_eq!(offset_of!(JitContext, fuel), OFF_FUEL as usize);
        assert_eq!(offset_of!(JitContext, gc_flag), OFF_GC_FLAG as usize);
        assert_eq!(offset_of!(JitContext, exit_thunk), OFF_EXIT_THUNK as usize);
        assert_eq!(offset_of!(JitContext, exit_pc), OFF_EXIT_PC as usize);
        assert_eq!(offset_of!(JitContext, exit_aux), OFF_EXIT_AUX as usize);
        assert_eq!(offset_of!(JitContext, stack_limit), OFF_STACK_LIMIT as usize);
        assert_eq!(offset_of!(JitContext, polls), OFF_POLLS as usize);
        assert_eq!(offset_of!(JitContext, alloc_ptr_p), OFF_ALLOC_PTR_P as usize);
        assert_eq!(offset_of!(JitContext, alloc_fast_limit_p), OFF_ALLOC_FAST_LIMIT_P as usize);
        assert_eq!(offset_of!(JitContext, alloc_count_p), OFF_ALLOC_COUNT_P as usize);
        assert_eq!(offset_of!(JitContext, words_p), OFF_WORDS_P as usize);
    }
}
