//! The baseline template compiler: byte-encoded ISA → x86-64.
//!
//! No register allocation: VM registers live in memory (`r13` points at
//! the running thread's register file) and every template loads its
//! operands, computes, and stores back. Three host registers are pinned
//! for the whole native activation:
//!
//! * `rbx` — the [`JitContext`](crate::engine::JitContext),
//! * `r13` — VM register file (`&thread.regs[0]`),
//! * `r14` — VM memory base (`&mem[0]`; VM addresses are word indices,
//!   so accesses are `[r14 + addr*8]`).
//!
//! `fp`/`sp`/`ap` live as context fields. Intra-procedure branches are
//! native jumps; `Call`/`Ret` perform the full linkage protocol (push
//! biased native return token, new frame, zero locals) and then *exit
//! to the engine* for the control transfer — the engine re-enters the
//! target immediately, so the only cross-procedure cost is one
//! context round-trip.
//!
//! Per-instruction template order mirrors the interpreter's `step`:
//! `[safepoint poll if the pc is a gc-point] [fuel decrement] [shadow
//! call-out if instrumented] [body]`. Every instruction start is
//! registered as a native re-entry point, so the engine can resume
//! native execution at any interpreter pc (mixed stacks, gc resume,
//! allocation retry).

use m3gc_core::heap::{HeapType, TypeId};
use m3gc_core::layout::BaseReg;
use m3gc_vm::codemap::JIT_RETPC_BIAS;
use m3gc_vm::decode::DecodedCode;
use m3gc_vm::isa::{AluOp, Instr, UnAluOp};
use m3gc_vm::machine::GLOBAL_BASE;
use m3gc_vm::module::VmModule;
use m3gc_vm::VmTrap;

use crate::emit::{Cc, EmitState, Label, Reg};
use crate::engine::{
    EXIT_FINISHED, EXIT_FUEL, EXIT_GC, EXIT_NEEDGC, EXIT_TRANSFER, EXIT_TRAP, OFF_ALLOC_COUNT_P,
    OFF_ALLOC_FAST_LIMIT_P, OFF_ALLOC_PTR_P, OFF_AP, OFF_EXIT_AUX, OFF_EXIT_PC, OFF_EXIT_THUNK,
    OFF_FP, OFF_FUEL, OFF_GC_FLAG, OFF_POLLS, OFF_SP, OFF_STACK_LIMIT, OFF_WORDS_P,
};

/// Why a procedure was left to the interpreter. Reasons are structural
/// (whole-engine) or per-procedure; each is counted for `--stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// Host is not x86-64/unix (or executable mappings are refused).
    UnsupportedArch,
    /// `M3GC_JIT_DISABLE=1` forced the interpreter (CI's portable-path
    /// check).
    ForcedByEnv,
    /// Procedure named in `M3GC_JIT_EXCLUDE` (mixed-stack testing).
    ExcludedProc,
    /// Allocation-service region mode is active; its escape tracking is
    /// interpreter-only.
    RegionMode,
    /// An operand does not fit the template encodings (oversized global
    /// offset, out-of-procedure branch target, giant frame).
    UnsupportedOpcode,
    /// The compiled blob exceeded the per-procedure size cap.
    CodeTooLarge,
}

impl Fallback {
    /// Stable stats key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Fallback::UnsupportedArch => "unsupported-arch",
            Fallback::ForcedByEnv => "forced-by-env",
            Fallback::ExcludedProc => "excluded-proc",
            Fallback::RegionMode => "region-mode",
            Fallback::UnsupportedOpcode => "unsupported-opcode",
            Fallback::CodeTooLarge => "code-too-large",
        }
    }

    /// Every reason, for stats rendering order.
    #[must_use]
    pub fn all() -> &'static [Fallback] {
        &[
            Fallback::UnsupportedArch,
            Fallback::ForcedByEnv,
            Fallback::ExcludedProc,
            Fallback::RegionMode,
            Fallback::UnsupportedOpcode,
            Fallback::CodeTooLarge,
        ]
    }
}

/// What the compiled code must do at `StB`/`Alloc`/shadow boundaries.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Flavor {
    /// Parallel machine (helper-only allocation, atomic-memory rules).
    pub par: bool,
    /// Shadow instrumentation armed: every instruction calls out to the
    /// shadow tracker (slow, used by the precision oracle / fuzzing).
    pub shadow: bool,
    /// Concurrent marking possible: `StB` must run the SATB barrier
    /// helper instead of a plain store.
    pub cms: bool,
    /// Concurrent evacuation possible: `Ld`/`St` must run the
    /// self-healing forwarding helpers instead of plain accesses.
    pub conc_evac: bool,
}

/// Absolute addresses of the runtime call-out functions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Helpers {
    pub alloc: i64,
    pub stb: i64,
    pub sys: i64,
    pub shadow: i64,
    /// Forwarding-aware heap load (conc-evac flavor only; 0 otherwise).
    pub heap_load: i64,
    /// Forwarding-aware heap store (conc-evac flavor only; 0 otherwise).
    pub heap_store: i64,
}

/// One compiled procedure, offsets blob-relative except where noted.
pub(crate) struct ProcArtifact {
    pub code: Vec<u8>,
    /// `(global native offset, bytecode pc)` of every call continuation
    /// (the native return address the pushed token points at).
    pub gc_points: Vec<(u32, u32)>,
    /// `(bytecode pc, global native offset)` of every instruction start.
    pub entries: Vec<(u32, u32)>,
}

/// Per-procedure blob size cap; a baseline template should never get
/// near this, so exceeding it means something pathological.
const MAX_BLOB_BYTES: usize = 1 << 20;

/// Largest record (in words, header included) zeroed inline on the
/// allocation fast path; bigger objects take the helper.
const MAX_INLINE_ALLOC_WORDS: u32 = 16;

struct ProcCompiler<'a> {
    e: EmitState,
    module: &'a VmModule,
    flavor: Flavor,
    helpers: Helpers,
    global_base: u32,
    mem_len: i64,
    /// Pending out-of-line exit stubs.
    stubs: Vec<(Label, StubKind)>,
    gc_points: Vec<(u32, u32)>,
    entries: Vec<(u32, u32)>,
    instr_table: &'a mut Vec<Instr>,
}

#[derive(Clone, Copy)]
enum StubKind {
    /// Plain exit: `exit_pc = pc`, `rax = reason`, optional trap code.
    Exit { pc: u32, reason: i64, trap: Option<VmTrap> },
    /// Helper returned nonzero in rax: 1 → needs-gc exit, else trap
    /// with code `rax - 2`.
    HelperOutcome { pc: u32 },
    /// Effective address in rcx was below the global base: NIL if
    /// non-negative, wild otherwise.
    MemLow { pc: u32 },
}

impl<'a> ProcCompiler<'a> {
    fn stub(&mut self, kind: StubKind) -> Label {
        let l = self.e.new_label();
        self.stubs.push((l, kind));
        l
    }

    fn exit_stub(&mut self, pc: u32, reason: i64) -> Label {
        self.stub(StubKind::Exit { pc, reason, trap: None })
    }

    fn trap_stub(&mut self, pc: u32, trap: VmTrap) -> Label {
        self.stub(StubKind::Exit { pc, reason: EXIT_TRAP, trap: Some(trap) })
    }

    /// `mov qword [rbx+EXIT_PC], pc; mov rax, reason; jmp [rbx+EXIT_THUNK]`
    fn emit_exit(&mut self, pc: u32, reason: i64) {
        self.e.store_imm32(Reg::Rbx, OFF_EXIT_PC, pc as i32);
        self.e.mov_ri(Reg::Rax, reason);
        self.e.jmp_mem(Reg::Rbx, OFF_EXIT_THUNK);
    }

    fn emit_stubs(&mut self) {
        for (label, kind) in std::mem::take(&mut self.stubs) {
            self.e.bind(label);
            match kind {
                StubKind::Exit { pc, reason, trap } => {
                    if let Some(t) = trap {
                        self.e.store_imm32(Reg::Rbx, OFF_EXIT_AUX, t.to_code() as i32);
                    }
                    self.emit_exit(pc, reason);
                }
                StubKind::HelperOutcome { pc } => {
                    let trap = self.e.new_label();
                    self.e.cmp_ri(Reg::Rax, 1);
                    self.e.jcc(Cc::Ne, trap);
                    self.emit_exit(pc, EXIT_NEEDGC);
                    self.e.bind(trap);
                    self.e.add_ri(Reg::Rax, -2);
                    self.e.store(Reg::Rbx, OFF_EXIT_AUX, Reg::Rax);
                    self.emit_exit(pc, EXIT_TRAP);
                }
                StubKind::MemLow { pc } => {
                    let wild = self.e.new_label();
                    self.e.cmp_ri(Reg::Rcx, 0);
                    self.e.jcc(Cc::L, wild);
                    self.e.store_imm32(Reg::Rbx, OFF_EXIT_AUX, VmTrap::NilError.to_code() as i32);
                    self.emit_exit(pc, EXIT_TRAP);
                    self.e.bind(wild);
                    self.e.store_imm32(
                        Reg::Rbx,
                        OFF_EXIT_AUX,
                        VmTrap::WildAddress.to_code() as i32,
                    );
                    self.emit_exit(pc, EXIT_TRAP);
                }
            }
        }
    }

    /// VM register slot as a (base, disp) pair off `r13`.
    fn vm_reg_disp(r: u8) -> i32 {
        i32::from(r) * 8
    }

    fn load_vm_reg(&mut self, dst: Reg, r: u8) {
        self.e.load(dst, Reg::R13, Self::vm_reg_disp(r));
    }

    fn store_vm_reg(&mut self, r: u8, src: Reg) {
        self.e.store(Reg::R13, Self::vm_reg_disp(r), src);
    }

    /// Safepoint poll + fuel check, emitted at every gc-point pc.
    fn emit_poll(&mut self, pc: u32) {
        self.e.inc_mem(Reg::Rbx, OFF_POLLS);
        self.e.load(Reg::Rax, Reg::Rbx, OFF_GC_FLAG);
        self.e.load_byte_zx(Reg::Rax, Reg::Rax, 0);
        self.e.test_rr(Reg::Rax, Reg::Rax);
        let gc = self.exit_stub(pc, EXIT_GC);
        self.e.jcc(Cc::Ne, gc);
        self.e.cmp_mem_imm32(Reg::Rbx, OFF_FUEL, 0);
        let fuel = self.exit_stub(pc, EXIT_FUEL);
        self.e.jcc(Cc::Le, fuel);
    }

    /// Fuel check guarding a taken backward edge to `target`.
    fn emit_backedge_fuel_check(&mut self, target: u32) {
        self.e.cmp_mem_imm32(Reg::Rbx, OFF_FUEL, 0);
        let fuel = self.exit_stub(target, EXIT_FUEL);
        self.e.jcc(Cc::Le, fuel);
    }

    /// `call helper(ctx, a1, a2, a3)` with the SysV argument registers.
    /// Arguments must already sit in rsi/rdx/rcx as needed.
    fn emit_helper_call(&mut self, addr: i64) {
        self.e.mov_rr(Reg::Rdi, Reg::Rbx);
        self.e.mov_ri(Reg::Rax, addr);
        self.e.call_r(Reg::Rax);
    }

    /// Shadow instrumentation call-out; traps exit at `pc`.
    fn emit_shadow_call(&mut self, pc: u32, instr_id: u32) {
        self.e.mov_ri(Reg::Rsi, i64::from(instr_id));
        self.emit_helper_call(self.helpers.shadow);
        self.e.test_rr(Reg::Rax, Reg::Rax);
        let out = self.stub(StubKind::HelperOutcome { pc });
        self.e.jcc(Cc::Ne, out);
    }

    /// Effective-address computation + bounds check, leaving the checked
    /// VM word address in `rcx`. Traps mirror `Machine::read`/`write`:
    /// `[0, GLOBAL_BASE)` is NIL, anything else out of range is wild.
    fn emit_addr_check(&mut self, pc: u32) {
        self.e.cmp_ri(Reg::Rcx, GLOBAL_BASE as i64 as i32);
        let low = self.stub(StubKind::MemLow { pc });
        self.e.jcc(Cc::L, low);
        self.e.cmp_ri(Reg::Rcx, self.mem_len as i32);
        let wild = self.trap_stub(pc, VmTrap::WildAddress);
        self.e.jcc(Cc::Ge, wild);
    }

    /// reg[base] + off → rcx, bounds-checked.
    fn emit_reg_addr(&mut self, pc: u32, base: u8, off: i32) {
        self.load_vm_reg(Reg::Rcx, base);
        if off != 0 {
            self.e.add_ri(Reg::Rcx, off);
        }
        self.emit_addr_check(pc);
    }

    /// FP/SP/AP + off → rcx, bounds-checked.
    fn emit_frame_addr(&mut self, pc: u32, breg: BaseReg, off: i32) {
        let disp = match breg {
            BaseReg::Fp => OFF_FP,
            BaseReg::Sp => OFF_SP,
            BaseReg::Ap => OFF_AP,
        };
        self.e.load(Reg::Rcx, Reg::Rbx, disp);
        if off != 0 {
            self.e.add_ri(Reg::Rcx, off);
        }
        self.emit_addr_check(pc);
    }

    /// The `AluOp` result of rax ⊙ rcx, left in rax.
    fn emit_alu_op(&mut self, op: AluOp) {
        match op {
            AluOp::Add => self.e.add_rr(Reg::Rax, Reg::Rcx),
            AluOp::Sub => self.e.sub_rr(Reg::Rax, Reg::Rcx),
            AluOp::Mul => self.e.imul_rr(Reg::Rax, Reg::Rcx),
            AluOp::And => self.e.and_rr(Reg::Rax, Reg::Rcx),
            AluOp::Or => self.e.or_rr(Reg::Rax, Reg::Rcx),
            AluOp::Xor => self.e.xor_rr(Reg::Rax, Reg::Rcx),
            AluOp::Div | AluOp::Mod => {
                // Guarded idiv matching `AluOp::eval`'s wrapping
                // semantics: b == 0 → 0; b == -1 → wrapping negate
                // (Div) or 0 (Mod); no #DE possible.
                let zero = self.e.new_label();
                let minus1 = self.e.new_label();
                let done = self.e.new_label();
                self.e.test_rr(Reg::Rcx, Reg::Rcx);
                self.e.jcc(Cc::E, zero);
                self.e.cmp_ri(Reg::Rcx, -1);
                self.e.jcc(Cc::E, minus1);
                self.e.cqo();
                self.e.idiv(Reg::Rcx);
                if op == AluOp::Mod {
                    self.e.mov_rr(Reg::Rax, Reg::Rdx);
                }
                self.e.jmp(done);
                self.e.bind(minus1);
                if op == AluOp::Div {
                    self.e.neg(Reg::Rax);
                    self.e.jmp(done);
                    self.e.bind(zero);
                    self.e.mov_ri(Reg::Rax, 0);
                } else {
                    self.e.bind(zero);
                    self.e.mov_ri(Reg::Rax, 0);
                }
                self.e.bind(done);
            }
            AluOp::Eq | AluOp::Ne | AluOp::Lt | AluOp::Le | AluOp::Gt | AluOp::Ge => {
                let cc = match op {
                    AluOp::Eq => Cc::E,
                    AluOp::Ne => Cc::Ne,
                    AluOp::Lt => Cc::L,
                    AluOp::Le => Cc::Le,
                    AluOp::Gt => Cc::G,
                    _ => Cc::Ge,
                };
                self.e.cmp_rr(Reg::Rax, Reg::Rcx);
                self.e.setcc_zx(cc, Reg::Rax);
            }
        }
    }

    /// Allocation helper call-out: packed = ty << 16 | dst.
    fn emit_alloc_helper(&mut self, pc: u32, ty: u16, dst: u8, len_reg: Option<u8>) {
        self.e.mov_ri(Reg::Rsi, (i64::from(ty) << 16) | i64::from(dst));
        match len_reg {
            Some(r) => self.load_vm_reg(Reg::Rdx, r),
            None => self.e.mov_ri(Reg::Rdx, 0),
        }
        self.e.mov_ri(Reg::Rcx, i64::from(pc));
        self.emit_helper_call(self.helpers.alloc);
        self.e.test_rr(Reg::Rax, Reg::Rax);
        let out = self.stub(StubKind::HelperOutcome { pc });
        self.e.jcc(Cc::Ne, out);
    }

    fn emit_instr(
        &mut self,
        pc: u32,
        next_pc: u32,
        ins: &Instr,
        is_gc_point: bool,
        labels: &std::collections::HashMap<u32, Label>,
    ) -> Result<(), Fallback> {
        self.entries.push((pc, self.global_base + self.e.here()));
        if is_gc_point {
            self.emit_poll(pc);
        }
        self.e.dec_mem(Reg::Rbx, OFF_FUEL);
        if self.flavor.shadow {
            let id = self.instr_table.len() as u32;
            self.instr_table.push(ins.clone());
            self.emit_shadow_call(pc, id);
        }
        match *ins {
            Instr::MovI { dst, imm } => {
                if let Ok(v) = i32::try_from(imm) {
                    self.e.store_imm32(Reg::R13, Self::vm_reg_disp(dst), v);
                } else {
                    self.e.mov_ri(Reg::Rax, imm);
                    self.store_vm_reg(dst, Reg::Rax);
                }
            }
            Instr::Mov { dst, src } => {
                self.load_vm_reg(Reg::Rax, src);
                self.store_vm_reg(dst, Reg::Rax);
            }
            Instr::Alu { op, dst, a, b } => {
                self.load_vm_reg(Reg::Rax, a);
                self.load_vm_reg(Reg::Rcx, b);
                self.emit_alu_op(op);
                self.store_vm_reg(dst, Reg::Rax);
            }
            Instr::AluI { op, dst, a, imm } => {
                self.load_vm_reg(Reg::Rax, a);
                self.e.mov_ri(Reg::Rcx, imm);
                self.emit_alu_op(op);
                self.store_vm_reg(dst, Reg::Rax);
            }
            Instr::UnAlu { op, dst, a } => {
                self.load_vm_reg(Reg::Rax, a);
                match op {
                    UnAluOp::Neg => self.e.neg(Reg::Rax),
                    UnAluOp::Not => {
                        self.e.test_rr(Reg::Rax, Reg::Rax);
                        self.e.setcc_zx(Cc::E, Reg::Rax);
                    }
                }
                self.store_vm_reg(dst, Reg::Rax);
            }
            Instr::Ld { dst, base, off } => {
                if self.flavor.conc_evac {
                    // Concurrent evacuation: the load must resolve
                    // forwarding and self-heal stale references, so the
                    // whole access (bounds checks included) runs in the
                    // helper, byte-identical to the interpreter's.
                    self.load_vm_reg(Reg::Rsi, base);
                    if off != 0 {
                        self.e.add_ri(Reg::Rsi, off);
                    }
                    self.e.mov_ri(Reg::Rdx, i64::from(dst));
                    self.emit_helper_call(self.helpers.heap_load);
                    self.e.test_rr(Reg::Rax, Reg::Rax);
                    let out = self.stub(StubKind::HelperOutcome { pc });
                    self.e.jcc(Cc::Ne, out);
                } else {
                    self.emit_reg_addr(pc, base, off);
                    self.e.load_sib8(Reg::Rax, Reg::R14, Reg::Rcx, 0);
                    self.store_vm_reg(dst, Reg::Rax);
                }
            }
            Instr::St { base, off, src } => {
                if self.flavor.conc_evac {
                    // Concurrent evacuation: the store must replay into
                    // a published copy if the object moved under it.
                    self.load_vm_reg(Reg::Rsi, base);
                    if off != 0 {
                        self.e.add_ri(Reg::Rsi, off);
                    }
                    self.load_vm_reg(Reg::Rdx, src);
                    self.emit_helper_call(self.helpers.heap_store);
                    self.e.test_rr(Reg::Rax, Reg::Rax);
                    let out = self.stub(StubKind::HelperOutcome { pc });
                    self.e.jcc(Cc::Ne, out);
                } else {
                    self.emit_reg_addr(pc, base, off);
                    self.load_vm_reg(Reg::Rax, src);
                    self.e.store_sib8(Reg::R14, Reg::Rcx, 0, Reg::Rax);
                }
            }
            Instr::StB { base, off, src } => {
                if self.flavor.cms {
                    // Concurrent marking: the whole barrier store
                    // (bounds checks included) runs in the helper so
                    // the SATB protocol is byte-identical to the
                    // interpreter's.
                    self.load_vm_reg(Reg::Rsi, base);
                    if off != 0 {
                        self.e.add_ri(Reg::Rsi, off);
                    }
                    self.load_vm_reg(Reg::Rdx, src);
                    self.emit_helper_call(self.helpers.stb);
                    self.e.test_rr(Reg::Rax, Reg::Rax);
                    let out = self.stub(StubKind::HelperOutcome { pc });
                    self.e.jcc(Cc::Ne, out);
                } else {
                    self.emit_reg_addr(pc, base, off);
                    self.load_vm_reg(Reg::Rax, src);
                    self.e.store_sib8(Reg::R14, Reg::Rcx, 0, Reg::Rax);
                    if !self.flavor.par {
                        // Sequential: the generational remembered-set
                        // hook (and its counters) live in the helper.
                        self.e.mov_rr(Reg::Rsi, Reg::Rcx);
                        self.e.mov_rr(Reg::Rdx, Reg::Rax);
                        self.emit_helper_call(self.helpers.stb);
                    }
                }
            }
            Instr::LdF { dst, breg, off } => {
                self.emit_frame_addr(pc, breg, off);
                self.e.load_sib8(Reg::Rax, Reg::R14, Reg::Rcx, 0);
                self.store_vm_reg(dst, Reg::Rax);
            }
            Instr::StF { breg, off, src } => {
                self.emit_frame_addr(pc, breg, off);
                self.load_vm_reg(Reg::Rax, src);
                self.e.store_sib8(Reg::R14, Reg::Rcx, 0, Reg::Rax);
            }
            Instr::Lea { dst, breg, off } => {
                let disp = match breg {
                    BaseReg::Fp => OFF_FP,
                    BaseReg::Sp => OFF_SP,
                    BaseReg::Ap => OFF_AP,
                };
                self.e.load(Reg::Rax, Reg::Rbx, disp);
                if off != 0 {
                    self.e.add_ri(Reg::Rax, off);
                }
                self.store_vm_reg(dst, Reg::Rax);
            }
            Instr::LdG { dst, goff } => {
                let addr = global_slot_disp(goff).ok_or(Fallback::UnsupportedOpcode)?;
                self.e.load(Reg::Rax, Reg::R14, addr);
                self.store_vm_reg(dst, Reg::Rax);
            }
            Instr::StG { goff, src } => {
                let addr = global_slot_disp(goff).ok_or(Fallback::UnsupportedOpcode)?;
                self.load_vm_reg(Reg::Rax, src);
                self.e.store(Reg::R14, addr, Reg::Rax);
            }
            Instr::LeaG { dst, goff } => {
                self.e.store_imm32(
                    Reg::R13,
                    Self::vm_reg_disp(dst),
                    i32::try_from(GLOBAL_BASE as u64 + u64::from(goff))
                        .map_err(|_| Fallback::UnsupportedOpcode)?,
                );
            }
            Instr::Push { src } => {
                self.e.load(Reg::Rax, Reg::Rbx, OFF_SP);
                self.e.cmp_r_mem(Reg::Rax, Reg::Rbx, OFF_STACK_LIMIT);
                let over = self.trap_stub(pc, VmTrap::StackOverflow);
                self.e.jcc(Cc::Ge, over);
                self.load_vm_reg(Reg::Rcx, src);
                self.e.store_sib8(Reg::R14, Reg::Rax, 0, Reg::Rcx);
                self.e.lea(Reg::Rcx, Reg::Rax, 1);
                self.e.store(Reg::Rbx, OFF_SP, Reg::Rcx);
            }
            Instr::Call { proc, nargs } => {
                let Some(meta) = self.module.procs.get(proc as usize) else {
                    let bad = self.trap_stub(pc, VmTrap::BadProc);
                    self.e.jmp(bad);
                    return Ok(());
                };
                let fw =
                    i32::try_from(meta.frame_words).map_err(|_| Fallback::UnsupportedOpcode)?;
                // Overflow check: sp + 3 + frame_words >= stack_limit.
                self.e.load(Reg::Rax, Reg::Rbx, OFF_SP);
                self.e.lea(Reg::Rcx, Reg::Rax, 3 + fw);
                self.e.cmp_r_mem(Reg::Rcx, Reg::Rbx, OFF_STACK_LIMIT);
                let over = self.trap_stub(pc, VmTrap::StackOverflow);
                self.e.jcc(Cc::Ge, over);
                // Linkage: mem[sp] = biased native return token (patched
                // once the continuation offset is known), saved fp, ap.
                self.e.lea_sib8(Reg::Rdx, Reg::R14, Reg::Rax, 0);
                let token_at = self.e.mov_ri64_patchable(Reg::Rsi, 0);
                self.e.store(Reg::Rdx, 0, Reg::Rsi);
                self.e.load(Reg::Rdi, Reg::Rbx, OFF_FP);
                self.e.store(Reg::Rdx, 8, Reg::Rdi);
                self.e.load(Reg::Rdi, Reg::Rbx, OFF_AP);
                self.e.store(Reg::Rdx, 16, Reg::Rdi);
                // ap = sp - nargs; fp = sp + 3; sp = fp + frame_words.
                self.e.lea(Reg::Rdi, Reg::Rax, -i32::from(nargs));
                self.e.store(Reg::Rbx, OFF_AP, Reg::Rdi);
                self.e.lea(Reg::Rdi, Reg::Rax, 3);
                self.e.store(Reg::Rbx, OFF_FP, Reg::Rdi);
                self.e.store(Reg::Rbx, OFF_SP, Reg::Rcx);
                // Zero the callee frame: mem[fp..sp].
                self.e.lea_sib8(Reg::Rdi, Reg::R14, Reg::Rdi, 0);
                self.e.xor_rr(Reg::Rax, Reg::Rax);
                self.e.mov_ri(Reg::Rcx, i64::from(meta.frame_words));
                self.e.rep_stosq();
                // Transfer to the callee's entry pc via the engine.
                self.emit_exit(meta.entry_pc, EXIT_TRANSFER);
                // The continuation: this native offset *is* the return
                // address the token denotes, and the gc-point for the
                // bytecode return pc.
                let cont = self.e.here();
                self.e.patch_imm64(token_at, JIT_RETPC_BIAS + i64::from(self.global_base + cont));
                self.gc_points.push((self.global_base + cont, next_pc));
            }
            Instr::Ret => {
                self.e.load(Reg::Rax, Reg::Rbx, OFF_FP);
                self.e.lea_sib8(Reg::Rcx, Reg::R14, Reg::Rax, -24);
                self.e.load(Reg::Rdx, Reg::Rcx, 0);
                self.e.cmp_ri(Reg::Rdx, -1);
                let fin = self.e.new_label();
                self.e.jcc(Cc::E, fin);
                self.e.load(Reg::Rsi, Reg::Rcx, 8);
                self.e.load(Reg::Rdi, Reg::Rcx, 16);
                self.e.load(Reg::Rax, Reg::Rbx, OFF_AP);
                self.e.store(Reg::Rbx, OFF_SP, Reg::Rax);
                self.e.store(Reg::Rbx, OFF_FP, Reg::Rsi);
                self.e.store(Reg::Rbx, OFF_AP, Reg::Rdi);
                // exit_pc carries the raw linkage word: a bytecode pc
                // from an interpreted caller or a biased token from a
                // JIT caller; the engine resolves either.
                self.e.store(Reg::Rbx, OFF_EXIT_PC, Reg::Rdx);
                self.e.mov_ri(Reg::Rax, EXIT_TRANSFER);
                self.e.jmp_mem(Reg::Rbx, OFF_EXIT_THUNK);
                self.e.bind(fin);
                // Leave pc at the `Ret` itself, as the interpreter does
                // on the bottom-frame sentinel.
                self.e.store_imm32(Reg::Rbx, OFF_EXIT_PC, pc as i32);
                self.e.mov_ri(Reg::Rax, EXIT_FINISHED);
                self.e.jmp_mem(Reg::Rbx, OFF_EXIT_THUNK);
            }
            Instr::Jmp { target } => {
                let label = *labels.get(&target).ok_or(Fallback::UnsupportedOpcode)?;
                if target <= pc {
                    self.emit_backedge_fuel_check(target);
                }
                self.e.jmp(label);
            }
            Instr::Brt { cond, target } | Instr::Brf { cond, target } => {
                let label = *labels.get(&target).ok_or(Fallback::UnsupportedOpcode)?;
                let taken = match ins {
                    Instr::Brt { .. } => Cc::Ne,
                    _ => Cc::E,
                };
                self.load_vm_reg(Reg::Rax, cond);
                self.e.test_rr(Reg::Rax, Reg::Rax);
                if target <= pc {
                    let skip = self.e.new_label();
                    let not_taken = match taken {
                        Cc::Ne => Cc::E,
                        _ => Cc::Ne,
                    };
                    self.e.jcc(not_taken, skip);
                    self.emit_backedge_fuel_check(target);
                    self.e.jmp(label);
                    self.e.bind(skip);
                } else {
                    self.e.jcc(taken, label);
                }
            }
            Instr::Alloc { dst, ty } => {
                let inline_words = (!self.flavor.par
                    && !self.flavor.shadow
                    && (ty as usize) < self.module.types.len())
                .then(|| self.module.types.get(TypeId(u32::from(ty))))
                .and_then(|desc| match desc {
                    HeapType::Record { .. } => Some(desc.object_words(0)),
                    HeapType::Array { .. } => None,
                })
                .filter(|&w| w <= MAX_INLINE_ALLOC_WORDS);
                match inline_words {
                    Some(words) => self.emit_inline_alloc(pc, ty, dst, words),
                    None => self.emit_alloc_helper(pc, ty, dst, None),
                }
            }
            Instr::AllocA { dst, ty, len } => self.emit_alloc_helper(pc, ty, dst, Some(len)),
            Instr::GcPoint => {}
            Instr::Sys { code, arg } => {
                self.e.mov_ri(Reg::Rsi, i64::from(code));
                self.load_vm_reg(Reg::Rdx, arg);
                self.emit_helper_call(self.helpers.sys);
                self.e.test_rr(Reg::Rax, Reg::Rax);
                let out = self.stub(StubKind::HelperOutcome { pc });
                self.e.jcc(Cc::Ne, out);
            }
            Instr::Halt => {
                self.e.store_imm32(Reg::Rbx, OFF_EXIT_PC, pc as i32);
                self.e.mov_ri(Reg::Rax, EXIT_FINISHED);
                self.e.jmp_mem(Reg::Rbx, OFF_EXIT_THUNK);
            }
        }
        Ok(())
    }

    /// The sequential bump fast path for a fixed-size record: one
    /// compare against `alloc_fast_limit` (pinned to `i64::MIN` under
    /// gc-torture, so the slow-path helper keeps exact accounting),
    /// unrolled zeroing, header store, counter bumps.
    fn emit_inline_alloc(&mut self, pc: u32, ty: u16, dst: u8, words: u32) {
        let total = words as i32;
        let slow = self.e.new_label();
        let done = self.e.new_label();
        self.e.load(Reg::Rcx, Reg::Rbx, OFF_ALLOC_PTR_P);
        self.e.load(Reg::Rax, Reg::Rcx, 0);
        self.e.lea(Reg::Rdx, Reg::Rax, total);
        self.e.load(Reg::Rsi, Reg::Rbx, OFF_ALLOC_FAST_LIMIT_P);
        self.e.cmp_r_mem(Reg::Rdx, Reg::Rsi, 0);
        self.e.jcc(Cc::G, slow);
        self.e.store(Reg::Rcx, 0, Reg::Rdx);
        for k in 1..total {
            self.e.store_sib8_imm32(Reg::R14, Reg::Rax, k * 8, 0);
        }
        self.e.store_sib8_imm32(Reg::R14, Reg::Rax, 0, i32::from(ty));
        self.e.load(Reg::Rsi, Reg::Rbx, OFF_ALLOC_COUNT_P);
        self.e.inc_mem(Reg::Rsi, 0);
        self.e.load(Reg::Rsi, Reg::Rbx, OFF_WORDS_P);
        self.e.add_mem_imm32(Reg::Rsi, 0, total);
        self.store_vm_reg(dst, Reg::Rax);
        self.e.jmp(done);
        self.e.bind(slow);
        self.emit_alloc_helper(pc, ty, dst, None);
        self.e.bind(done);
    }
}

fn global_slot_disp(goff: u32) -> Option<i32> {
    i32::try_from((GLOBAL_BASE as u64 + u64::from(goff)) * 8).ok()
}

/// Compiles one procedure. `global_base` is the blob's offset within
/// the engine's code region (gc-point keys and entry offsets are
/// registered globally); `is_gc_point` comes from the module's gc maps.
#[allow(clippy::too_many_arguments)] // one call site, in the engine's compile loop
pub(crate) fn compile_proc(
    module: &VmModule,
    decoded: &DecodedCode,
    proc_idx: usize,
    global_base: u32,
    flavor: Flavor,
    helpers: Helpers,
    is_gc_point: &[bool],
    mem_len: i64,
    instr_table: &mut Vec<Instr>,
) -> Result<ProcArtifact, Fallback> {
    let meta = &module.procs[proc_idx];
    let instr_table_mark = instr_table.len();
    let mut c = ProcCompiler {
        e: EmitState::new(),
        module,
        flavor,
        helpers,
        global_base,
        mem_len,
        stubs: Vec::new(),
        gc_points: Vec::new(),
        entries: Vec::new(),
        instr_table,
    };

    // Pre-scan: collect branch targets (they need labels) and validate
    // that every target stays inside the procedure.
    let mut targets = std::collections::HashMap::new();
    let mut pc = meta.entry_pc;
    while pc < meta.end_pc {
        let (ins, next) = decoded.at(pc);
        if let Instr::Jmp { target } | Instr::Brt { target, .. } | Instr::Brf { target, .. } = ins {
            if !meta.contains(*target) {
                return Err(Fallback::UnsupportedOpcode);
            }
            targets.entry(*target).or_insert_with(|| c.e.new_label());
        }
        pc = *next;
    }

    let mut pc = meta.entry_pc;
    let compile = loop {
        if pc >= meta.end_pc {
            break Ok(());
        }
        let (ins, next) = decoded.at(pc).clone();
        if let Some(&label) = targets.get(&pc) {
            c.e.bind(label);
        }
        if let Err(f) = c.emit_instr(pc, next, &ins, is_gc_point[pc as usize], &targets) {
            break Err(f);
        }
        if c.e.here() as usize > MAX_BLOB_BYTES {
            break Err(Fallback::CodeTooLarge);
        }
        pc = next;
    };
    if let Err(f) = compile {
        c.instr_table.truncate(instr_table_mark);
        return Err(f);
    }
    c.emit_stubs();
    let ProcCompiler { e, gc_points, entries, .. } = c;
    Ok(ProcArtifact { code: e.finish(), gc_points, entries })
}
