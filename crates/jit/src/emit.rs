//! A minimal x86-64 instruction emitter.
//!
//! Exactly the subset the template compiler needs: 64-bit register and
//! memory moves (base + scaled-index addressing for the word-addressed
//! VM memory), ALU ops, `setcc`, relative branches with label fixups,
//! and indirect calls/jumps for runtime call-outs. Memory operands
//! always use disp32 encodings — bigger code, but one uniform encoding
//! path (this is a *baseline* compiler).
//!
//! Labels follow the classic two-phase scheme: `new_label` allocates,
//! `bind` pins a label to the current offset, branch emitters record a
//! pending rel32 fixup when the target is unbound, and `finish` patches
//! every fixup.

/// General-purpose register numbers (hardware encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(dead_code)] // the full register file, documented even where unused
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    fn low3(self) -> u8 {
        (self as u8) & 7
    }
    fn ext(self) -> bool {
        (self as u8) >= 8
    }
}

/// Condition codes (the `cc` in `jcc`/`setcc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(dead_code)]
pub enum Cc {
    /// Equal / zero.
    E = 0x4,
    /// Not equal / not zero.
    Ne = 0x5,
    /// Less (signed).
    L = 0xC,
    /// Greater or equal (signed).
    Ge = 0xD,
    /// Less or equal (signed).
    Le = 0xE,
    /// Greater (signed).
    G = 0xF,
    /// Sign (negative).
    S = 0x8,
}

/// A branch target; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Code buffer + label state.
#[derive(Debug, Default)]
pub struct EmitState {
    code: Vec<u8>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
}

impl EmitState {
    #[must_use]
    pub fn new() -> EmitState {
        EmitState::default()
    }

    /// Current offset (== next instruction's address, blob-relative).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    #[must_use]
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Pins `label` to the current offset.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Patches every pending fixup and returns the finished code.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        for &(pos, label) in &self.fixups {
            let target = self.labels[label.0].expect("branch to unbound label");
            let rel = target as i64 - (pos as i64 + 4);
            let rel = i32::try_from(rel).expect("rel32 overflow");
            self.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.code
    }

    fn byte(&mut self, b: u8) {
        self.code.push(b);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.code.extend_from_slice(bs);
    }

    fn imm32(&mut self, v: i32) {
        self.bytes(&v.to_le_bytes());
    }

    fn rex(&mut self, w: bool, reg: bool, index: bool, base: bool) {
        let mut b = 0x40;
        if w {
            b |= 8;
        }
        if reg {
            b |= 4;
        }
        if index {
            b |= 2;
        }
        if base {
            b |= 1;
        }
        self.byte(b);
    }

    /// ModRM `mod=10` (disp32) with a plain base register; emits the SIB
    /// byte required when the base is rsp/r12.
    fn modrm_base_disp32(&mut self, reg_field: u8, base: Reg, disp: i32) {
        if base.low3() == 4 {
            // rsp/r12 as base need a SIB byte (index = none).
            self.byte(0x80 | (reg_field << 3) | 4);
            self.byte(0x24);
        } else {
            self.byte(0x80 | (reg_field << 3) | base.low3());
        }
        self.imm32(disp);
    }

    /// ModRM+SIB for `[base + index*8 + disp32]`.
    fn modrm_sib8_disp32(&mut self, reg_field: u8, base: Reg, index: Reg, disp: i32) {
        assert!(index.low3() != 4 || index.ext(), "rsp cannot be an index");
        self.byte(0x80 | (reg_field << 3) | 4);
        self.byte(0xC0 | (index.low3() << 3) | base.low3()); // scale=8
        self.imm32(disp);
    }

    // ---- register moves -------------------------------------------------

    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(true, src.ext(), false, dst.ext());
        self.byte(0x89);
        self.byte(0xC0 | (src.low3() << 3) | dst.low3());
    }

    /// `mov dst, imm` — movabs for wide values, sign-extended imm32
    /// otherwise.
    pub fn mov_ri(&mut self, dst: Reg, imm: i64) {
        if let Ok(v) = i32::try_from(imm) {
            self.rex(true, false, false, dst.ext());
            self.byte(0xC7);
            self.byte(0xC0 | dst.low3());
            self.imm32(v);
        } else {
            self.rex(true, false, false, dst.ext());
            self.byte(0xB8 | dst.low3());
            self.bytes(&imm.to_le_bytes());
        }
    }

    /// `mov dst, imm` always in the 10-byte movabs form, returning the
    /// offset of the imm64 so it can be patched later.
    pub fn mov_ri64_patchable(&mut self, dst: Reg, imm: i64) -> usize {
        self.rex(true, false, false, dst.ext());
        self.byte(0xB8 | dst.low3());
        let at = self.code.len();
        self.bytes(&imm.to_le_bytes());
        at
    }

    /// Patches an imm64 recorded by [`EmitState::mov_ri64_patchable`].
    pub fn patch_imm64(&mut self, at: usize, imm: i64) {
        self.code[at..at + 8].copy_from_slice(&imm.to_le_bytes());
    }

    // ---- memory moves ---------------------------------------------------

    /// `mov dst, [base + disp]`
    pub fn load(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(true, dst.ext(), false, base.ext());
        self.byte(0x8B);
        self.modrm_base_disp32(dst.low3(), base, disp);
    }

    /// `mov [base + disp], src`
    pub fn store(&mut self, base: Reg, disp: i32, src: Reg) {
        self.rex(true, src.ext(), false, base.ext());
        self.byte(0x89);
        self.modrm_base_disp32(src.low3(), base, disp);
    }

    /// `mov qword [base + disp], imm32`
    pub fn store_imm32(&mut self, base: Reg, disp: i32, imm: i32) {
        self.rex(true, false, false, base.ext());
        self.byte(0xC7);
        self.modrm_base_disp32(0, base, disp);
        self.imm32(imm);
    }

    /// `mov dst, [base + index*8 + disp]`
    pub fn load_sib8(&mut self, dst: Reg, base: Reg, index: Reg, disp: i32) {
        self.rex(true, dst.ext(), index.ext(), base.ext());
        self.byte(0x8B);
        self.modrm_sib8_disp32(dst.low3(), base, index, disp);
    }

    /// `mov [base + index*8 + disp], src`
    pub fn store_sib8(&mut self, base: Reg, index: Reg, disp: i32, src: Reg) {
        self.rex(true, src.ext(), index.ext(), base.ext());
        self.byte(0x89);
        self.modrm_sib8_disp32(src.low3(), base, index, disp);
    }

    /// `mov qword [base + index*8 + disp], imm32`
    pub fn store_sib8_imm32(&mut self, base: Reg, index: Reg, disp: i32, imm: i32) {
        self.rex(true, false, index.ext(), base.ext());
        self.byte(0xC7);
        self.modrm_sib8_disp32(0, base, index, disp);
        self.imm32(imm);
    }

    /// `lea dst, [base + index*8 + disp]`
    pub fn lea_sib8(&mut self, dst: Reg, base: Reg, index: Reg, disp: i32) {
        self.rex(true, dst.ext(), index.ext(), base.ext());
        self.byte(0x8D);
        self.modrm_sib8_disp32(dst.low3(), base, index, disp);
    }

    /// `lea dst, [base + disp]`
    pub fn lea(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(true, dst.ext(), false, base.ext());
        self.byte(0x8D);
        self.modrm_base_disp32(dst.low3(), base, disp);
    }

    /// `movzx dst, byte [base + disp]`
    pub fn load_byte_zx(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(true, dst.ext(), false, base.ext());
        self.bytes(&[0x0F, 0xB6]);
        self.modrm_base_disp32(dst.low3(), base, disp);
    }

    // ---- ALU ------------------------------------------------------------

    fn alu_rr(&mut self, opcode: u8, dst: Reg, src: Reg) {
        self.rex(true, src.ext(), false, dst.ext());
        self.byte(opcode);
        self.byte(0xC0 | (src.low3() << 3) | dst.low3());
    }

    pub fn add_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x01, dst, src);
    }
    pub fn sub_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x29, dst, src);
    }
    pub fn and_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x21, dst, src);
    }
    pub fn or_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x09, dst, src);
    }
    pub fn xor_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x31, dst, src);
    }
    pub fn cmp_rr(&mut self, a: Reg, b: Reg) {
        self.alu_rr(0x39, a, b);
    }

    /// `imul dst, src`
    pub fn imul_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(true, dst.ext(), false, src.ext());
        self.bytes(&[0x0F, 0xAF]);
        self.byte(0xC0 | (dst.low3() << 3) | src.low3());
    }

    fn alu_ri(&mut self, ext_op: u8, dst: Reg, imm: i32) {
        self.rex(true, false, false, dst.ext());
        self.byte(0x81);
        self.byte(0xC0 | (ext_op << 3) | dst.low3());
        self.imm32(imm);
    }

    pub fn add_ri(&mut self, dst: Reg, imm: i32) {
        self.alu_ri(0, dst, imm);
    }
    pub fn cmp_ri(&mut self, dst: Reg, imm: i32) {
        self.alu_ri(7, dst, imm);
    }

    /// `cmp qword [base + disp], imm32`
    pub fn cmp_mem_imm32(&mut self, base: Reg, disp: i32, imm: i32) {
        self.rex(true, false, false, base.ext());
        self.byte(0x81);
        self.modrm_base_disp32(7, base, disp);
        self.imm32(imm);
    }

    /// `cmp a, qword [base + disp]`
    pub fn cmp_r_mem(&mut self, a: Reg, base: Reg, disp: i32) {
        self.rex(true, a.ext(), false, base.ext());
        self.byte(0x3B);
        self.modrm_base_disp32(a.low3(), base, disp);
    }

    pub fn test_rr(&mut self, a: Reg, b: Reg) {
        self.rex(true, b.ext(), false, a.ext());
        self.byte(0x85);
        self.byte(0xC0 | (b.low3() << 3) | a.low3());
    }

    pub fn neg(&mut self, r: Reg) {
        self.rex(true, false, false, r.ext());
        self.byte(0xF7);
        self.byte(0xC0 | (3 << 3) | r.low3());
    }

    /// `cqo` (sign-extend rax into rdx:rax).
    pub fn cqo(&mut self) {
        self.bytes(&[0x48, 0x99]);
    }

    /// `idiv r` (rdx:rax / r → quotient rax, remainder rdx).
    pub fn idiv(&mut self, r: Reg) {
        self.rex(true, false, false, r.ext());
        self.byte(0xF7);
        self.byte(0xC0 | (7 << 3) | r.low3());
    }

    /// `setcc dst_low8; movzx dst, dst_low8`
    pub fn setcc_zx(&mut self, cc: Cc, dst: Reg) {
        // setcc needs a REX prefix to address sil/dil/r8b+ uniformly.
        self.rex(false, false, false, dst.ext());
        self.bytes(&[0x0F, 0x90 | cc as u8]);
        self.byte(0xC0 | dst.low3());
        self.rex(true, dst.ext(), false, dst.ext());
        self.bytes(&[0x0F, 0xB6]);
        self.byte(0xC0 | (dst.low3() << 3) | dst.low3());
    }

    /// `inc qword [base + disp]`
    pub fn inc_mem(&mut self, base: Reg, disp: i32) {
        self.rex(true, false, false, base.ext());
        self.byte(0xFF);
        self.modrm_base_disp32(0, base, disp);
    }

    /// `dec qword [base + disp]`
    pub fn dec_mem(&mut self, base: Reg, disp: i32) {
        self.rex(true, false, false, base.ext());
        self.byte(0xFF);
        self.modrm_base_disp32(1, base, disp);
    }

    /// `add qword [base + disp], imm32`
    pub fn add_mem_imm32(&mut self, base: Reg, disp: i32, imm: i32) {
        self.rex(true, false, false, base.ext());
        self.byte(0x81);
        self.modrm_base_disp32(0, base, disp);
        self.imm32(imm);
    }

    // ---- control flow ---------------------------------------------------

    pub fn jmp(&mut self, label: Label) {
        self.byte(0xE9);
        self.fixups.push((self.code.len(), label));
        self.imm32(0);
    }

    pub fn jcc(&mut self, cc: Cc, label: Label) {
        self.bytes(&[0x0F, 0x80 | cc as u8]);
        self.fixups.push((self.code.len(), label));
        self.imm32(0);
    }

    /// `jmp qword [base + disp]`
    pub fn jmp_mem(&mut self, base: Reg, disp: i32) {
        self.rex(false, false, false, base.ext());
        self.byte(0xFF);
        self.modrm_base_disp32(4, base, disp);
    }

    /// `jmp r`
    pub fn jmp_r(&mut self, r: Reg) {
        self.rex(false, false, false, r.ext());
        self.byte(0xFF);
        self.byte(0xC0 | (4 << 3) | r.low3());
    }

    /// `call r`
    pub fn call_r(&mut self, r: Reg) {
        self.rex(false, false, false, r.ext());
        self.byte(0xFF);
        self.byte(0xC0 | (2 << 3) | r.low3());
    }

    pub fn push(&mut self, r: Reg) {
        if r.ext() {
            self.byte(0x41);
        }
        self.byte(0x50 | r.low3());
    }

    pub fn pop(&mut self, r: Reg) {
        if r.ext() {
            self.byte(0x41);
        }
        self.byte(0x58 | r.low3());
    }

    pub fn ret(&mut self) {
        self.byte(0xC3);
    }

    /// `sub rsp, imm8` / `add rsp, imm8` for alignment padding.
    pub fn sub_rsp_imm8(&mut self, imm: i8) {
        self.bytes(&[0x48, 0x83, 0xEC, imm as u8]);
    }
    pub fn add_rsp_imm8(&mut self, imm: i8) {
        self.bytes(&[0x48, 0x83, 0xC4, imm as u8]);
    }

    /// `rep stosq` (rcx qwords of rax at [rdi]).
    pub fn rep_stosq(&mut self) {
        self.bytes(&[0xF3, 0x48, 0xAB]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_fixups_patch() {
        let mut e = EmitState::new();
        let back = e.new_label();
        let fwd = e.new_label();
        e.bind(back);
        e.mov_ri(Reg::Rax, 1);
        e.jcc(Cc::E, fwd);
        e.jmp(back);
        e.bind(fwd);
        e.ret();
        let code = e.finish();
        // jcc rel32 sits after the 7-byte mov; its rel points at ret.
        let jcc_rel = i32::from_le_bytes(code[9..13].try_into().unwrap());
        assert_eq!(13 + jcc_rel as usize + 5, code.len() - 1 + 5);
        // backward jmp points at offset 0.
        let jmp_rel = i32::from_le_bytes(code[14..18].try_into().unwrap());
        assert_eq!(18i64 + i64::from(jmp_rel), 0);
    }

    #[cfg(all(target_arch = "x86_64", unix))]
    #[test]
    fn emitted_alu_executes() {
        use crate::exec::ExecMem;
        // fn(a: rdi, b: rsi) -> a*b + 7, exercising mov/imul/add/setcc paths.
        let mut e = EmitState::new();
        e.mov_rr(Reg::Rax, Reg::Rdi);
        e.imul_rr(Reg::Rax, Reg::Rsi);
        e.add_ri(Reg::Rax, 7);
        e.ret();
        let code = e.finish();
        let Some(mem) = ExecMem::new(&code) else { return };
        let f: extern "sysv64" fn(i64, i64) -> i64 = unsafe { std::mem::transmute(mem.base()) };
        assert_eq!(f(6, 7), 49);
        assert_eq!(f(-3, 5), -8);
    }
}
