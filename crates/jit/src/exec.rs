//! Executable memory for JIT-compiled code.
//!
//! One `mmap`'d region per engine, written read-write and then flipped
//! to read-execute (W^X). The libc symbols are declared directly — the
//! Rust standard library already links libc on unix targets, so no
//! crate dependency is needed — and everything is gated to
//! `x86_64`/unix; other targets get the structural fallback path in
//! [`crate::engine`].

#![cfg(all(target_arch = "x86_64", unix))]

use std::ffi::c_void;
use std::ptr;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
    fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
}

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const PROT_EXEC: i32 = 4;
const MAP_PRIVATE: i32 = 2;
#[cfg(target_os = "linux")]
const MAP_ANONYMOUS: i32 = 0x20;
#[cfg(not(target_os = "linux"))]
const MAP_ANONYMOUS: i32 = 0x1000;
const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// A mapped read-execute code region. Unmapped on drop.
pub struct ExecMem {
    base: *mut u8,
    len: usize,
}

// The region is immutable (RX) after construction; sharing raw pointers
// to it across threads is safe.
unsafe impl Send for ExecMem {}
unsafe impl Sync for ExecMem {}

impl ExecMem {
    /// Maps `code` into fresh executable memory. `None` when the kernel
    /// refuses anonymous executable mappings (hardened configurations) —
    /// the engine then falls back to the interpreter.
    #[must_use]
    pub fn new(code: &[u8]) -> Option<ExecMem> {
        assert!(!code.is_empty(), "mapping an empty code region");
        let page = 4096usize;
        let len = code.len().div_ceil(page) * page;
        // SAFETY: anonymous private mapping; no aliasing with any Rust
        // allocation.
        let base = unsafe {
            mmap(ptr::null_mut(), len, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0)
        };
        if base == MAP_FAILED || base.is_null() {
            return None;
        }
        // SAFETY: `base..base+len` is exactly the region just mapped RW.
        unsafe {
            ptr::copy_nonoverlapping(code.as_ptr(), base.cast::<u8>(), code.len());
            if mprotect(base, len, PROT_READ | PROT_EXEC) != 0 {
                munmap(base, len);
                return None;
            }
        }
        Some(ExecMem { base: base.cast(), len })
    }

    /// Base address of the mapped code.
    #[must_use]
    pub fn base(&self) -> *const u8 {
        self.base
    }

    /// Mapped length in bytes (page-rounded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false — empty regions are never mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Drop for ExecMem {
    fn drop(&mut self) {
        // SAFETY: base/len are the exact mapping from `new`.
        unsafe {
            munmap(self.base.cast(), self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_executes_a_return_constant() {
        // mov eax, 42; ret
        let code = [0xb8, 42, 0, 0, 0, 0xc3];
        let Some(mem) = ExecMem::new(&code) else {
            eprintln!("executable mappings unavailable; skipping");
            return;
        };
        let f: extern "sysv64" fn() -> i32 = unsafe { std::mem::transmute(mem.base()) };
        assert_eq!(f(), 42);
    }
}
