//! Baseline native JIT with gc-maps keyed by native return addresses.
//!
//! The paper's thesis is that the compiler can emit tables precise
//! enough for the collector to walk *any* stopped frame. The rest of
//! this repository proves that for a byte-coded interpreter whose
//! frames hold bytecode pcs; this crate pushes the claim to its
//! logical end: procedures are template-compiled to x86-64 at load
//! time, and a JIT frame's linkage word holds a **biased native return
//! address** instead of a pc. A [`CodeMap`](m3gc_vm::codemap::CodeMap)
//! resolves such a token — by floor search over the registered native
//! call-return offsets — to the bytecode gc-point it stands for, after
//! which the ordinary pc-keyed machinery (table decoder, decode cache,
//! stack watermarks, killed-slot deltas) applies unchanged. No
//! collector source changes: semispace, generational, parallel and
//! concurrent-marking collectors all walk mixed interpreter/JIT stacks
//! through the one resolution seam.
//!
//! The compiler ([`compile`]) is a classic baseline/template design:
//! no register allocation (VM registers stay in memory), every
//! interpreter-observable effect reproduced exactly — the same bounds
//! checks, the same trap codes, the same safepoint protocol (native
//! code polls the *same* gc flag at the *same* gc-point pcs and parks
//! with the same blocked status), the same allocation fast path
//! discipline (one compare against the torture-aware fast limit).
//! Anything the templates cannot express falls back per-procedure to
//! the interpreter with a counted, `--stats`-visible reason, and mixed
//! stacks — JIT calling interpreted and vice versa — walk correctly
//! because call/return transfers always round-trip through the engine.
//!
//! Layering: `m3gc-core` ← `m3gc-vm` ← **`m3gc-jit`** ← `m3gc-runtime`.
//! The runtime constructs a [`JitEngine`] when `--jit` is set and
//! drives [`JitEngine::run_thread`] / [`JitEngine::run_burst`] instead
//! of the interpreter loops; everything else is unchanged.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod compile;
pub mod emit;
pub mod engine;
pub mod exec;

pub use compile::Fallback;
pub use engine::{JitContext, JitEngine, JitStats, JitSummary};
