(* takl — the Gabriel benchmark: Takeuchi's function over lists instead of
   integers. A well-known call-heavy benchmark (paper §6.1); it allocates
   its three argument lists up front and then recurses furiously without
   allocating, so nearly every gc-point is a call with live pointer
   arguments. *)
MODULE Takl;

TYPE
  List = REF RECORD head: INTEGER; tail: List END;

PROCEDURE Listn(n: INTEGER): List =
VAR l: List; i: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    WITH c = NEW(List) DO
      c.head := i;
      c.tail := l;
      l := c;
    END;
  END;
  RETURN l;
END Listn;

PROCEDURE Shorterp(x, y: List): BOOLEAN =
BEGIN
  WHILE y # NIL DO
    IF x = NIL THEN RETURN TRUE; END;
    x := x.tail;
    y := y.tail;
  END;
  RETURN FALSE;
END Shorterp;

PROCEDURE Mas(x, y, z: List): List =
BEGIN
  IF NOT Shorterp(y, x) THEN
    RETURN z;
  END;
  RETURN Mas(Mas(x.tail, y, z), Mas(y.tail, z, x), Mas(z.tail, x, y));
END Mas;

PROCEDURE Length(l: List): INTEGER =
VAR n: INTEGER;
BEGIN
  n := 0;
  WHILE l # NIL DO INC(n); l := l.tail; END;
  RETURN n;
END Length;

VAR result: List;
BEGIN
  result := Mas(Listn(18), Listn(12), Listn(6));
  PutInt(Length(result));
  PutLn();
END Takl.
