(* fieldlist — models the paper's second benchmark (§6.1): command parsing
   for a UNIX shell. Splits command lines into whitespace-separated
   fields, builds per-command field lists, and looks each command up in a
   table of known builtins. Like the original, it consists of short
   routines with frequent calls. *)
MODULE FieldList;

TYPE
  Str = REF ARRAY OF CHAR;
  Field = REF RECORD
    text: Str;
    next: Field;
  END;
  Command = REF RECORD
    name: Field;      (* first field *)
    args: Field;      (* rest *)
    argCount: INTEGER;
  END;
  NameEntry = REF RECORD
    name: Str;
    code: INTEGER;
    next: NameEntry;
  END;

VAR
  builtins: NameEntry;

PROCEDURE StrEqual(a, b: Str): BOOLEAN =
VAR i: INTEGER;
BEGIN
  IF NUMBER(a) # NUMBER(b) THEN RETURN FALSE; END;
  FOR i := 0 TO LAST(a) DO
    IF a[i] # b[i] THEN RETURN FALSE; END;
  END;
  RETURN TRUE;
END StrEqual;

PROCEDURE Substring(s: Str; from, len: INTEGER): Str =
VAR out: Str; i: INTEGER;
BEGIN
  out := NEW(Str, len);
  FOR i := 0 TO len - 1 DO
    out[i] := s[from + i];
  END;
  RETURN out;
END Substring;

PROCEDURE IsSpace(c: CHAR): BOOLEAN =
BEGIN
  RETURN (c = ' ') OR (c = '\t');
END IsSpace;

(* Splits a line into a field list (in order). *)
PROCEDURE Split(line: Str): Field =
VAR
  first, last, f: Field;
  i, start: INTEGER;
BEGIN
  first := NIL;
  last := NIL;
  i := 0;
  WHILE i < NUMBER(line) DO
    WHILE (i < NUMBER(line)) AND IsSpace(line[i]) DO INC(i); END;
    IF i < NUMBER(line) THEN
      start := i;
      WHILE (i < NUMBER(line)) AND (NOT IsSpace(line[i])) DO INC(i); END;
      f := NEW(Field);
      f.text := Substring(line, start, i - start);
      f.next := NIL;
      IF last = NIL THEN
        first := f;
      ELSE
        last.next := f;
      END;
      last := f;
    END;
  END;
  RETURN first;
END Split;

PROCEDURE CountFields(f: Field): INTEGER =
VAR n: INTEGER;
BEGIN
  n := 0;
  WHILE f # NIL DO INC(n); f := f.next; END;
  RETURN n;
END CountFields;

PROCEDURE Parse(line: Str): Command =
VAR c: Command; fields: Field;
BEGIN
  fields := Split(line);
  c := NEW(Command);
  IF fields = NIL THEN
    c.name := NIL;
    c.args := NIL;
    c.argCount := 0;
  ELSE
    c.name := fields;
    c.args := fields.next;
    c.argCount := CountFields(fields.next);
  END;
  RETURN c;
END Parse;

PROCEDURE AddBuiltin(name: Str; code: INTEGER) =
VAR e: NameEntry;
BEGIN
  e := NEW(NameEntry);
  e.name := name;
  e.code := code;
  e.next := builtins;
  builtins := e;
END AddBuiltin;

(* Returns the builtin code, or -1 for external commands. *)
PROCEDURE Lookup(name: Str): INTEGER =
VAR e: NameEntry;
BEGIN
  e := builtins;
  WHILE e # NIL DO
    IF StrEqual(e.name, name) THEN RETURN e.code; END;
    e := e.next;
  END;
  RETURN -1;
END Lookup;

PROCEDURE ProcessLine(line: Str; VAR totalArgs, builtinHits: INTEGER) =
VAR c: Command; code: INTEGER;
BEGIN
  c := Parse(line);
  IF c.name # NIL THEN
    totalArgs := totalArgs + c.argCount;
    code := Lookup(c.name.text);
    IF code >= 0 THEN INC(builtinHits); END;
  END;
END ProcessLine;

VAR
  totalArgs, builtinHits, round: INTEGER;
BEGIN
  builtins := NIL;
  AddBuiltin("cd", 1);
  AddBuiltin("echo", 2);
  AddBuiltin("set", 3);
  AddBuiltin("exit", 4);
  AddBuiltin("alias", 5);
  AddBuiltin("umask", 6);
  totalArgs := 0;
  builtinHits := 0;
  FOR round := 1 TO 15 DO
    ProcessLine("ls -l /tmp", totalArgs, builtinHits);
    ProcessLine("echo hello world", totalArgs, builtinHits);
    ProcessLine("cd ..", totalArgs, builtinHits);
    ProcessLine("grep -n main ./src/shell.c", totalArgs, builtinHits);
    ProcessLine("set prompt = %", totalArgs, builtinHits);
    ProcessLine("   ", totalArgs, builtinHits);
    ProcessLine("alias ll ls -l", totalArgs, builtinHits);
    ProcessLine("cat a b c d e f g", totalArgs, builtinHits);
    ProcessLine("exit", totalArgs, builtinHits);
  END;
  PutInt(totalArgs);
  PutChar(' ');
  PutInt(builtinHits);
  PutLn();
END FieldList.
