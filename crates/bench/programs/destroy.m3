(* destroy — the paper's gc-stress benchmark (§6.1, §6.3): builds a
   complete tree of a given branching factor and depth, then repeatedly
   builds a new subtree of a fixed intermediate height and replaces a
   randomly chosen subtree of the same height with it. Heavily recursive;
   triggers collection frequently, which stresses the table-decoding code
   at gc time. *)
MODULE Destroy;

CONST
  Branch = 3;       (* branching factor *)
  Depth = 6;        (* total tree depth *)
  SubHeight = 3;    (* height of replaced subtrees *)
  Iterations = 60;  (* replacement rounds *)

TYPE
  Node = REF RECORD
    value: INTEGER;
    kids: Kids;
  END;
  Kids = REF ARRAY OF Node;

VAR
  root: Node;
  seed: INTEGER;
  built: INTEGER;

(* A small linear congruential generator, entirely in-language. *)
PROCEDURE NextRandom(bound: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  IF seed < 0 THEN seed := -seed; END;
  RETURN seed MOD bound;
END NextRandom;

PROCEDURE Build(height: INTEGER): Node =
VAR n: Node; i: INTEGER;
BEGIN
  n := NEW(Node);
  INC(built);
  n.value := height;
  IF height > 0 THEN
    n.kids := NEW(Kids, Branch);
    FOR i := 0 TO Branch - 1 DO
      n.kids[i] := Build(height - 1);
    END;
  ELSE
    n.kids := NIL;
  END;
  RETURN n;
END Build;

(* Walks down to a random node at height `target` and returns its parent
   (so the child can be replaced). *)
PROCEDURE RandomParentAt(n: Node; height, target: INTEGER): Node =
VAR k: INTEGER;
BEGIN
  IF height = target + 1 THEN
    RETURN n;
  END;
  k := NextRandom(Branch);
  RETURN RandomParentAt(n.kids[k], height - 1, target);
END RandomParentAt;

PROCEDURE Replace() =
VAR parent: Node; slot: INTEGER;
BEGIN
  parent := RandomParentAt(root, Depth, SubHeight);
  slot := NextRandom(Branch);
  parent.kids[slot] := Build(SubHeight);
END Replace;

PROCEDURE CountNodes(n: Node): INTEGER =
VAR total, i: INTEGER;
BEGIN
  IF n = NIL THEN RETURN 0; END;
  total := 1;
  IF n.kids # NIL THEN
    FOR i := 0 TO Branch - 1 DO
      total := total + CountNodes(n.kids[i]);
    END;
  END;
  RETURN total;
END CountNodes;

VAR i: INTEGER;
BEGIN
  seed := 74755;
  built := 0;
  root := Build(Depth);
  FOR i := 1 TO Iterations DO
    Replace();
  END;
  PutInt(CountNodes(root));
  PutChar(' ');
  PutInt(built);
  PutLn();
END Destroy.
