(* typereg — models the paper's first benchmark (§6.1): type registration
   and type comparison using structural equivalence, as in the Modula-3
   runtime. A "real program rather than a synthetic benchmark": many short
   routines with frequent calls, so most calls are gc-points.

   Type descriptors are heap records; a registry keeps one canonical
   descriptor per structural equivalence class. The module builds a batch
   of synthetic types with deliberate duplicates and reports the number of
   canonical types and the duplicate hits. *)
MODULE TypeReg;

CONST
  KindInt = 0;
  KindBool = 1;
  KindChar = 2;
  KindRef = 3;
  KindRecord = 4;
  KindArray = 5;

TYPE
  Type = REF RECORD
    kind: INTEGER;
    target: Type;        (* KindRef: referent; KindArray: element *)
    lo, hi: INTEGER;     (* KindArray bounds *)
    fields: FieldList;   (* KindRecord *)
  END;
  FieldList = REF RECORD
    name: INTEGER;       (* field names are interned as integers *)
    fieldType: Type;
    next: FieldList;
  END;
  RegEntry = REF RECORD
    canon: Type;
    next: RegEntry;
  END;

VAR
  registry: RegEntry;
  canonCount, dupHits: INTEGER;

PROCEDURE MkPrim(kind: INTEGER): Type =
VAR t: Type;
BEGIN
  t := NEW(Type);
  t.kind := kind;
  RETURN t;
END MkPrim;

PROCEDURE MkRef(target: Type): Type =
VAR t: Type;
BEGIN
  t := NEW(Type);
  t.kind := KindRef;
  t.target := target;
  RETURN t;
END MkRef;

PROCEDURE MkArray(lo, hi: INTEGER; elem: Type): Type =
VAR t: Type;
BEGIN
  t := NEW(Type);
  t.kind := KindArray;
  t.lo := lo;
  t.hi := hi;
  t.target := elem;
  RETURN t;
END MkArray;

PROCEDURE MkField(name: INTEGER; ft: Type; rest: FieldList): FieldList =
VAR f: FieldList;
BEGIN
  f := NEW(FieldList);
  f.name := name;
  f.fieldType := ft;
  f.next := rest;
  RETURN f;
END MkField;

PROCEDURE MkRecord(fields: FieldList): Type =
VAR t: Type;
BEGIN
  t := NEW(Type);
  t.kind := KindRecord;
  t.fields := fields;
  RETURN t;
END MkRecord;

(* Structural equivalence; descriptors here are acyclic, so plain
   recursion suffices. *)
PROCEDURE FieldsEqual(a, b: FieldList): BOOLEAN =
BEGIN
  WHILE (a # NIL) AND (b # NIL) DO
    IF a.name # b.name THEN RETURN FALSE; END;
    IF NOT Equal(a.fieldType, b.fieldType) THEN RETURN FALSE; END;
    a := a.next;
    b := b.next;
  END;
  RETURN (a = NIL) AND (b = NIL);
END FieldsEqual;

PROCEDURE Equal(a, b: Type): BOOLEAN =
BEGIN
  IF a = b THEN RETURN TRUE; END;
  IF (a = NIL) OR (b = NIL) THEN RETURN FALSE; END;
  IF a.kind # b.kind THEN RETURN FALSE; END;
  IF a.kind = KindRef THEN RETURN Equal(a.target, b.target); END;
  IF a.kind = KindArray THEN
    RETURN (a.lo = b.lo) AND (a.hi = b.hi) AND Equal(a.target, b.target);
  END;
  IF a.kind = KindRecord THEN RETURN FieldsEqual(a.fields, b.fields); END;
  RETURN TRUE;  (* primitives of the same kind *)
END Equal;

(* Registers a type: returns the canonical representative. *)
PROCEDURE Register(t: Type): Type =
VAR e: RegEntry;
BEGIN
  e := registry;
  WHILE e # NIL DO
    IF Equal(e.canon, t) THEN
      INC(dupHits);
      RETURN e.canon;
    END;
    e := e.next;
  END;
  e := NEW(RegEntry);
  e.canon := t;
  e.next := registry;
  registry := e;
  INC(canonCount);
  RETURN t;
END Register;

(* Builds one synthetic type from a small seed; seeds that are congruent
   modulo 7 produce structurally identical types, giving duplicates. *)
PROCEDURE Synthesize(n: INTEGER): Type =
VAR shape, i: INTEGER; f: FieldList; elem: Type;
BEGIN
  shape := n MOD 7;
  IF shape = 0 THEN RETURN MkPrim(KindInt); END;
  IF shape = 1 THEN RETURN MkRef(MkPrim(KindInt)); END;
  IF shape = 2 THEN RETURN MkArray(1, 10, MkPrim(KindChar)); END;
  IF shape = 3 THEN
    f := MkField(1, MkPrim(KindInt), NIL);
    f := MkField(2, MkRef(MkPrim(KindBool)), f);
    RETURN MkRecord(f);
  END;
  IF shape = 4 THEN
    elem := MkRecord(MkField(3, MkPrim(KindInt), NIL));
    RETURN MkRef(MkArray(0, 4, MkRef(elem)));
  END;
  IF shape = 5 THEN
    f := NIL;
    FOR i := 1 TO 4 DO
      f := MkField(i, MkPrim(KindInt), f);
    END;
    RETURN MkRecord(f);
  END;
  (* shape = 6: nested refs *)
  RETURN MkRef(MkRef(MkRef(MkPrim(KindChar))));
END Synthesize;

VAR n: INTEGER; t, c: Type;
BEGIN
  registry := NIL;
  canonCount := 0;
  dupHits := 0;
  FOR n := 1 TO 120 DO
    t := Synthesize(n);
    c := Register(t);
    ASSERT(Equal(c, t));
  END;
  PutInt(canonCount);
  PutChar(' ');
  PutInt(dupHits);
  PutLn();
END TypeReg.
