//! Micro-benchmarks backing the paper's performance discussion
//! (dependency-free: a plain timing harness, `harness = false`):
//!
//! * `decode/lookup/*` — per-lookup cost of decoding gc-point tables under
//!   the compact δ-main+PP scheme vs uncompressed full information (§6.1's
//!   "compactly encoded tables are likely to have higher decoding
//!   overhead", ablation A1);
//! * `decode/cached/*` — the same lookups through a warm [`DecodeCache`]:
//!   what repeated collections actually pay;
//! * `encode/*` — table emission cost per scheme;
//! * `trace/stack_trace` — a full stack walk with derived-value
//!   un/re-derivation on a paused `destroy` (§6.3), cold cache vs warm;
//! * `collect/full` — a complete collection on the same state;
//! * `end_to_end/takl` — whole-program run of the call-heavy benchmark.
//!
//! [`DecodeCache`]: m3gc_core::decode::DecodeCache

use std::hint::black_box;
use std::time::Instant;

use m3gc_bench::{compile_benchmark, program};
use m3gc_core::decode::{DecodeCache, DecoderIndex, TableDecoder};
use m3gc_core::encode::{encode_module, Scheme};
use m3gc_runtime::collector;
use m3gc_vm::machine::{Machine, MachineLayout, RunOutcome, ThreadStatus};

/// Times `f` over `iters` iterations (after one warmup call) and prints a
/// per-iteration figure.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
    println!("{name:<44} {per:>10.2} us/iter");
}

fn decode_benchmarks() {
    let module = compile_benchmark(program("destroy"), true);
    for scheme in [Scheme::DELTA_MAIN_PP, Scheme::FULL_PLAIN, Scheme::FULL_PACKED] {
        let encoded = encode_module(&module.logical_maps, scheme);
        let decoder = TableDecoder::build(&encoded).expect("well-formed tables");
        let pcs: Vec<u32> = decoder.gc_point_pcs().collect();
        bench(&format!("decode/lookup/{scheme}"), 200, || {
            for &pc in &pcs {
                black_box(decoder.lookup(black_box(pc)));
            }
        });
        let mut cache = DecodeCache::build(&encoded).expect("well-formed tables");
        bench(&format!("decode/cached/{scheme}"), 200, || {
            for &pc in &pcs {
                black_box(cache.lookup(&encoded.bytes, black_box(pc)));
            }
        });
    }
}

fn encode_benchmarks() {
    let module = compile_benchmark(program("FieldList"), true);
    for scheme in Scheme::TABLE2 {
        bench(&format!("encode/{scheme}"), 200, || {
            black_box(encode_module(black_box(&module.logical_maps), scheme));
        });
    }
}

/// Runs destroy until its first genuine heap exhaustion and returns the
/// machine with every thread blocked at a gc-point.
fn paused_destroy() -> Machine {
    let module = compile_benchmark(program("destroy"), true);
    let mut machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 8 * 1024,
            stack_words: 1 << 15,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let main = machine.module.main;
    let tid = machine.spawn(main, &[]);
    match machine.run_thread(tid, u64::MAX) {
        RunOutcome::NeedGc => machine,
        other => panic!("destroy did not reach a collection: {other:?}"),
    }
}

fn trace_benchmarks() {
    let mut machine = paused_destroy();
    bench("trace/stack_trace (cold cache each iter)", 200, || {
        let mut cache = DecodeCache::build(&machine.module.gc_maps).expect("valid maps");
        black_box(collector::trace_only(&mut machine, &mut cache));
    });
    let mut cache = DecodeCache::build(&machine.module.gc_maps).expect("valid maps");
    bench("trace/stack_trace (warm cache)", 200, || {
        black_box(collector::trace_only(&mut machine, &mut cache));
    });
}

fn collect_benchmarks() {
    let mut machine = paused_destroy();
    let mut cache = DecodeCache::build(&machine.module.gc_maps).expect("valid maps");
    bench("collect/full", 100, || {
        // Each collection flips semispaces; re-block the threads (their
        // pcs have not moved) so the next iteration can collect again.
        let stats = collector::collect(&mut machine, &mut cache);
        machine.gc_pending = true;
        for t in &mut machine.threads {
            if t.status == ThreadStatus::Runnable {
                t.status = ThreadStatus::BlockedAtGcPoint;
            }
        }
        black_box(stats);
    });
    let _ = DecoderIndex::build(&machine.module.gc_maps).expect("valid maps");
}

fn end_to_end() {
    bench("end_to_end/takl", 5, || {
        let module = compile_benchmark(program("takl"), true);
        let out = m3gc_compiler::run_module(module, 1 << 16).expect("takl runs");
        black_box(out.steps);
    });
}

fn main() {
    decode_benchmarks();
    encode_benchmarks();
    trace_benchmarks();
    collect_benchmarks();
    end_to_end();
}
