//! Criterion micro-benchmarks backing the paper's performance discussion:
//!
//! * `decode/*` — per-lookup cost of decoding gc-point tables under the
//!   compact δ-main+PP scheme vs uncompressed full information (§6.1's
//!   "compactly encoded tables are likely to have higher decoding
//!   overhead", ablation A1);
//! * `encode/*` — table emission cost per scheme;
//! * `trace/stack_trace` — a full stack walk with derived-value
//!   un/re-derivation on a paused `destroy` (§6.3);
//! * `collect/full` — a complete collection on the same state;
//! * `end_to_end/takl` — whole-program run of the call-heavy benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use m3gc_bench::{compile_benchmark, program};
use m3gc_core::decode::{DecoderIndex, TableDecoder};
use m3gc_core::encode::{encode_module, Scheme};
use m3gc_runtime::collector;
use m3gc_vm::machine::{Machine, MachineConfig, RunOutcome, ThreadStatus};

fn decode_benchmarks(c: &mut Criterion) {
    let module = compile_benchmark(program("destroy"), true);
    let mut group = c.benchmark_group("decode");
    for scheme in [Scheme::DELTA_MAIN_PP, Scheme::FULL_PLAIN, Scheme::FULL_PACKED] {
        let encoded = encode_module(&module.logical_maps, scheme);
        let decoder = TableDecoder::new(&encoded);
        let pcs: Vec<u32> = decoder.gc_point_pcs().collect();
        group.bench_function(format!("lookup/{scheme}"), |b| {
            b.iter(|| {
                for &pc in &pcs {
                    black_box(decoder.lookup(black_box(pc)));
                }
            });
        });
    }
    group.finish();
}

fn encode_benchmarks(c: &mut Criterion) {
    let module = compile_benchmark(program("FieldList"), true);
    let mut group = c.benchmark_group("encode");
    for scheme in Scheme::TABLE2 {
        group.bench_function(format!("{scheme}"), |b| {
            b.iter(|| black_box(encode_module(black_box(&module.logical_maps), scheme)));
        });
    }
    group.finish();
}

/// Runs destroy until its first genuine heap exhaustion and returns the
/// machine with every thread blocked at a gc-point.
fn paused_destroy() -> Machine {
    let module = compile_benchmark(program("destroy"), true);
    let mut machine = Machine::new(
        module,
        MachineConfig { semi_words: 8 * 1024, stack_words: 1 << 15, max_threads: 2 },
    );
    let main = machine.module.main;
    let tid = machine.spawn(main, &[]);
    match machine.run_thread(tid, u64::MAX) {
        RunOutcome::NeedGc => machine,
        other => panic!("destroy did not reach a collection: {other:?}"),
    }
}

fn trace_benchmarks(c: &mut Criterion) {
    let mut machine = paused_destroy();
    let index = DecoderIndex::build(&machine.module.gc_maps).expect("valid maps");
    c.bench_function("trace/stack_trace", |b| {
        b.iter(|| black_box(collector::trace_only(&mut machine, &index)));
    });
}

fn collect_benchmarks(c: &mut Criterion) {
    let mut machine = paused_destroy();
    let index = DecoderIndex::build(&machine.module.gc_maps).expect("valid maps");
    c.bench_function("collect/full", |b| {
        b.iter(|| {
            // Each collection flips semispaces; re-block the threads (their
            // pcs have not moved) so the next iteration can collect again.
            let stats = collector::collect(&mut machine, &index);
            machine.gc_pending = true;
            for t in &mut machine.threads {
                if t.status == ThreadStatus::Runnable {
                    t.status = ThreadStatus::BlockedAtGcPoint;
                }
            }
            black_box(stats)
        });
    });
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("takl", |b| {
        b.iter(|| {
            let module = compile_benchmark(program("takl"), true);
            let out = m3gc_compiler::run_module(module, 1 << 16).expect("takl runs");
            black_box(out.steps)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    decode_benchmarks,
    encode_benchmarks,
    trace_benchmarks,
    collect_benchmarks,
    end_to_end
);
criterion_main!(benches);
