//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! The four benchmark programs are the paper's: `typereg` (type
//! registration with structural equivalence), `FieldList` (shell command
//! parsing), `takl` (Takeuchi over lists) and `destroy` (tree
//! build/replace, gc-intensive). Each is compiled unoptimized and
//! optimized, with full gc support.
//!
//! Binaries (see DESIGN.md's experiment index):
//!
//! * `table1` — program statistics (Size, NGC, NPTRS, NDEL, NREG, NDER);
//! * `table2` — table sizes as a percentage of code size under all six
//!   encoding schemes, plus the pc-map 1-vs-2-byte ablation (A3);
//! * `effects` — §6.2: instruction-level diff between compiles with gc
//!   support on and off;
//! * `timings` — §6.3: stack-trace time vs total collection time on
//!   `destroy`, per collection and per frame;
//! * `pathstrat` — Figure 2: path variables vs path splitting;
//! * `loopgc` — ablation A2: loop gc-points on/off.

use m3gc_compiler::{compile, Options};
use m3gc_core::encode::Scheme;
use m3gc_core::pcmap::{pcmap_cost, PcMapCost};
use m3gc_core::stats::{size_report, table_stats, SizeReport, TableStats};
use m3gc_vm::VmModule;

/// The paper's benchmark programs, as (name, Mini-M3 source).
pub const PROGRAMS: [(&str, &str); 4] = [
    ("typereg", include_str!("../programs/typereg.m3")),
    ("FieldList", include_str!("../programs/fieldlist.m3")),
    ("takl", include_str!("../programs/takl.m3")),
    ("destroy", include_str!("../programs/destroy.m3")),
];

/// Looks up a benchmark source by name.
///
/// # Panics
///
/// Panics if the name is unknown.
#[must_use]
pub fn program(name: &str) -> &'static str {
    PROGRAMS
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
        .1
}

/// Compiles a benchmark at the given optimization setting (with full gc
/// support, the paper's configuration).
///
/// # Panics
///
/// Panics if the program does not compile (the sources are fixed).
#[must_use]
pub fn compile_benchmark(source: &str, optimized: bool) -> VmModule {
    let opts = if optimized { Options::o2() } else { Options::o0() };
    compile(source, &opts).unwrap_or_else(|e| panic!("benchmark does not compile: {e}"))
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Program name (`-opt` suffix when optimized).
    pub name: String,
    /// Code size in bytes.
    pub size: usize,
    /// Table statistics (NGC, NPTRS, NDEL, NREG, NDER).
    pub stats: TableStats,
}

/// Computes Table 1: statistics for each benchmark, unoptimized and
/// optimized.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for (name, src) in PROGRAMS {
        for optimized in [false, true] {
            let module = compile_benchmark(src, optimized);
            let suffix = if optimized { "-opt" } else { "" };
            rows.push(Table1Row {
                name: format!("{name}{suffix}"),
                size: module.code_size(),
                stats: table_stats(&module.logical_maps),
            });
        }
    }
    rows
}

/// One row of Table 2: size reports for the six schemes, in the paper's
/// column order (FullInfo {Plain, Packing}, δ-main {Plain, Previous,
/// Packing, PP}).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Program name.
    pub name: String,
    /// Code size in bytes.
    pub code_size: usize,
    /// Reports in [`Scheme::TABLE2`] order.
    pub reports: Vec<SizeReport>,
    /// pc-map cost ablation (A3).
    pub pcmap: PcMapCost,
}

/// Computes Table 2.
#[must_use]
pub fn table2() -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for (name, src) in PROGRAMS {
        for optimized in [false, true] {
            let module = compile_benchmark(src, optimized);
            let suffix = if optimized { "-opt" } else { "" };
            let code = module.code_size();
            let reports = Scheme::TABLE2
                .iter()
                .map(|&s| size_report(&module.logical_maps, s, code))
                .collect();
            rows.push(Table2Row {
                name: format!("{name}{suffix}"),
                code_size: code,
                reports,
                pcmap: pcmap_cost(&module.logical_maps),
            });
        }
    }
    rows
}

/// Writes a benchmark's machine-readable result line to
/// `BENCH_<name>.json` at the repository root (where CI and tooling
/// pick it up), in addition to whatever the benchmark printed. Falls
/// back to the current directory if the root cannot be located.
///
/// # Panics
///
/// Panics if the file cannot be written — a bench run whose results
/// vanish silently is worse than a failed run.
pub fn write_bench_json(name: &str, json_line: &str) {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").is_file() && p.join("ROADMAP.md").is_file())
        .unwrap_or_else(|| std::path::Path::new("."));
    let path = root.join(format!("BENCH_{name}.json"));
    let mut contents = json_line.trim_end().to_string();
    contents.push('\n');
    std::fs::write(&path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Expected outputs of the benchmark programs (used by tests and the
/// runner to validate every configuration).
#[must_use]
pub fn expected_output(name: &str) -> &'static str {
    match name {
        "typereg" => "7 113\n",
        "FieldList" => "315 75\n",
        "takl" => "7\n",
        "destroy" => "1093 3493\n",
        other => panic!("unknown benchmark `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_compiler::{reference_output, run_module};

    #[test]
    fn benchmarks_compile_both_ways() {
        for (name, src) in PROGRAMS {
            let m0 = compile_benchmark(src, false);
            let m2 = compile_benchmark(src, true);
            assert!(m0.code_size() > 0 && m2.code_size() > 0, "{name}");
            assert!(!m0.logical_maps.procs.is_empty(), "{name} has gc tables");
            assert!(!m2.logical_maps.procs.is_empty(), "{name}-opt has gc tables");
        }
    }

    #[test]
    fn reference_outputs_are_stable() {
        for (name, src) in PROGRAMS {
            let out = reference_output(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out, expected_output(name), "{name}");
        }
    }

    #[test]
    fn benchmarks_run_on_the_vm_with_gc() {
        for (name, src) in PROGRAMS {
            // Heaps sized to force several collections per program.
            let semi = match name {
                "destroy" => 16 * 1024,
                _ => 8 * 1024,
            };
            for optimized in [false, true] {
                let module = compile_benchmark(src, optimized);
                let out = run_module(module, semi)
                    .unwrap_or_else(|e| panic!("{name} (opt={optimized}): {e}"));
                assert_eq!(out.output, expected_output(name), "{name} opt={optimized}");
            }
        }
    }

    #[test]
    fn destroy_actually_collects() {
        let module = compile_benchmark(program("destroy"), true);
        let out = run_module(module, 8 * 1024).unwrap();
        assert!(out.collections >= 3, "destroy should be gc-intensive, got {}", out.collections);
        assert_eq!(out.output, expected_output("destroy"));
    }

    #[test]
    fn table1_has_eight_rows_with_tables() {
        let rows = table1();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.size > 0);
            assert!(r.stats.ngc > 0, "{} has gc-points", r.name);
            assert!(r.stats.nptrs > 0, "{} has pointers", r.name);
        }
    }

    #[test]
    fn table2_compression_shape_matches_paper() {
        // PP must always be the smallest δ-main variant, and packing must
        // always shrink full-info.
        for row in table2() {
            let pct: Vec<f64> = row.reports.iter().map(|r| r.percent_of_code).collect();
            let (full_plain, full_pack, d_plain, d_prev, d_pack, d_pp) =
                (pct[0], pct[1], pct[2], pct[3], pct[4], pct[5]);
            assert!(full_pack < full_plain, "{}: packing shrinks full-info", row.name);
            assert!(d_pack < d_plain, "{}: packing shrinks delta-main", row.name);
            assert!(d_prev <= d_plain, "{}: previous never grows", row.name);
            assert!(d_pp <= d_pack && d_pp <= d_prev, "{}: PP is smallest", row.name);
        }
    }
}
