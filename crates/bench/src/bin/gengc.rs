//! Generational-collection experiment: minor vs full pause times.
//!
//! The workload (`GenChurn`) is the generational hypothesis on purpose: a
//! large, stable tenured set (an array of nodes built up front) plus a
//! loop allocating short-lived nodes, a fraction of which are stored into
//! the old array — exactly the old→young edges only the compiler-emitted
//! write barrier can reveal to a minor collection.
//!
//! The same compiled module runs under both heaps (the barrier
//! instruction degenerates to a plain store on a semispace heap), so the
//! comparison isolates the collector:
//!
//! * **semispace** — every collection evacuates the whole live set,
//!   including the stable tenured data, every time;
//! * **generational** — minor collections copy only nursery survivors,
//!   consulting the remembered set instead of the tenured space.
//!
//! Reported: mean/max minor and major pause vs full semispace pause, the
//! promotion rate, write-barrier counters, the wall-clock cost of barrier
//! execution (barrier vs barrier-free code on a semispace heap, where the
//! barrier does nothing useful), and a machine-readable JSON line. The
//! acceptance bar is a mean minor pause at least 5× below the mean full
//! semispace pause (2× in `--quick` mode, sized for CI smoke runs).

use std::time::Instant;

use m3gc_compiler::{compile, Options};
use m3gc_runtime::scheduler::{ExecOutcome, Executor};
use m3gc_runtime::{GcStrategy, RuntimeOptions, StatsReport};
use m3gc_vm::machine::HeapStrategy;

const SEMI_WORDS: usize = 1 << 15;
const NURSERY_WORDS: usize = 512;
const TENURED_NODES: usize = 1200;

fn genchurn(iters: usize) -> String {
    format!(
        "MODULE GenChurn;
TYPE Node = REF RECORD x: INTEGER; next: Node END;
     Arr = REF ARRAY OF Node;
VAR keep: Arr; i, s: INTEGER;
BEGIN
  keep := NEW(Arr, {k});
  FOR i := 0 TO {k} - 1 DO
    keep[i] := NEW(Node);
    keep[i].x := i;
  END;
  FOR i := 1 TO {iters} DO
    WITH t = NEW(Node) DO
      t.x := i;
      IF i MOD 4 = 0 THEN
        keep[(i DIV 4) MOD {k}].next := t;
      END;
    END;
  END;
  s := 0;
  FOR i := 0 TO {k} - 1 DO
    s := s + keep[i].x;
    IF keep[i].next # NIL THEN s := s + 1; END;
  END;
  PutInt(s);
END GenChurn.",
        k = TENURED_NODES,
        iters = iters,
    )
}

fn run_on(module: m3gc_vm::VmModule, heap: HeapStrategy) -> (ExecOutcome, f64) {
    let mut opts = RuntimeOptions::new().semi_words(SEMI_WORDS).stack_words(1 << 14).max_threads(2);
    if let HeapStrategy::Generational { nursery_words, promote_age } = heap {
        opts = opts
            .strategy(GcStrategy::Generational)
            .nursery_words(nursery_words)
            .promote_age(promote_age);
    }
    let machine = opts.build_machine(module);
    let mut ex = Executor::new(machine, opts);
    let t0 = Instant::now();
    let out = ex.run_main().unwrap_or_else(|e| panic!("benchmark run failed: {e}"));
    (out, t0.elapsed().as_secs_f64())
}

fn mean_max_us(pauses: &[f64]) -> (f64, f64) {
    if pauses.is_empty() {
        return (0.0, 0.0);
    }
    let mean = pauses.iter().sum::<f64>() / pauses.len() as f64;
    let max = pauses.iter().cloned().fold(0.0, f64::max);
    (mean, max)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 12_000 } else { 120_000 };
    let min_ratio = if quick { 2.0 } else { 5.0 };
    let src = genchurn(iters);

    let module = compile(&src, &Options::o2()).expect("benchmark compiles");
    let mut no_barrier_opts = Options::o2();
    no_barrier_opts.codegen.gc.write_barriers = false;
    let module_nb = compile(&src, &no_barrier_opts).expect("benchmark compiles");

    // The comparison: one module, two heaps.
    let gen_heap = HeapStrategy::Generational { nursery_words: NURSERY_WORDS, promote_age: 2 };
    let (gen_out, _) = run_on(module.clone(), gen_heap);
    let (semi_out, semi_wall) = run_on(module.clone(), HeapStrategy::Semispace);
    assert_eq!(gen_out.output, semi_out.output, "collectors must agree on program results");

    // Barrier overhead: same program, barriers vs no barriers, both on a
    // semispace heap where the barrier is pure overhead. Best-of-N tames
    // scheduling noise on runs this short.
    let reps = if quick { 2 } else { 5 };
    let mut wall_barrier = f64::INFINITY;
    let mut wall_plain = f64::INFINITY;
    for _ in 0..reps {
        let (wb_out, wb) = run_on(module.clone(), HeapStrategy::Semispace);
        assert_eq!(wb_out.output, semi_out.output);
        wall_barrier = wall_barrier.min(wb);
        let (nb_out, wp) = run_on(module_nb.clone(), HeapStrategy::Semispace);
        assert_eq!(nb_out.output, semi_out.output);
        wall_plain = wall_plain.min(wp);
    }
    let overhead_pct = (wall_barrier / wall_plain - 1.0) * 100.0;
    let _ = semi_wall;

    let to_us = |s: &m3gc_runtime::GcStats| s.total_time.as_secs_f64() * 1e6;
    let minor_pauses: Vec<f64> = gen_out
        .gc_each
        .iter()
        .filter(|s| s.kind == m3gc_core::stats::GcKind::Minor)
        .map(to_us)
        .collect();
    let major_pauses: Vec<f64> = gen_out
        .gc_each
        .iter()
        .filter(|s| s.kind == m3gc_core::stats::GcKind::Major)
        .map(to_us)
        .collect();
    let full_pauses: Vec<f64> = semi_out.gc_each.iter().map(to_us).collect();

    let (minor_mean, minor_max) = mean_max_us(&minor_pauses);
    let (major_mean, major_max) = mean_max_us(&major_pauses);
    let (full_mean, full_max) = mean_max_us(&full_pauses);
    let ratio = full_mean / minor_mean.max(f64::MIN_POSITIVE);

    let promotion_rate = gen_out.gc_total.promoted_objects as f64
        / (gen_out.gc_total.objects_copied as f64).max(1.0);
    let b = gen_out.barrier;

    println!("GenChurn: {TENURED_NODES} tenured nodes, {iters} mutator iterations");
    println!("  semispace: {} collection(s)", semi_out.collections);
    println!("    full pause    mean {full_mean:>9.2} us   max {full_max:>9.2} us");
    println!(
        "  generational: {} minor, {} major (nursery {NURSERY_WORDS} words)",
        gen_out.minor_collections, gen_out.major_collections
    );
    println!("    minor pause   mean {minor_mean:>9.2} us   max {minor_max:>9.2} us");
    println!("    major pause   mean {major_mean:>9.2} us   max {major_max:>9.2} us");
    println!("    full/minor mean pause ratio {ratio:>6.1}x");
    println!(
        "    promoted {} of {} copied object(s) ({:.1}%)",
        gen_out.gc_total.promoted_objects,
        gen_out.gc_total.objects_copied,
        promotion_rate * 100.0
    );
    println!(
        "    barriers: {} executed, {} recorded, {} deduped, {} filtered",
        b.executed,
        b.recorded,
        b.deduped,
        b.filtered()
    );
    println!(
        "    remembered slots drained {} / re-recorded {}",
        gen_out.gc_total.remembered_processed, gen_out.gc_total.remembered_added
    );
    println!(
        "    barrier wall-clock overhead on a semispace heap: {overhead_pct:+.1}% \
         ({wall_barrier:.3}s vs {wall_plain:.3}s)"
    );

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rep = StatsReport::new("gengc");
    rep.put("quick", quick);
    // The pause-ratio bar scales with --quick, not with host cores — the
    // workload is single-threaded, so the assertion is always armed.
    rep.host(cores, true);
    rep.put("iters", iters);
    rep.put("minor_mean_us", minor_mean);
    rep.put("minor_max_us", minor_max);
    rep.put("major_mean_us", major_mean);
    rep.put("major_max_us", major_max);
    rep.put("full_mean_us", full_mean);
    rep.put("full_max_us", full_max);
    rep.put("pause_ratio", ratio);
    rep.put("minors", gen_out.minor_collections);
    rep.put("majors", gen_out.major_collections);
    rep.put("full_collections", semi_out.collections);
    rep.put("promoted_objects", gen_out.gc_total.promoted_objects);
    rep.put("promotion_rate", promotion_rate);
    rep.put("barrier_executed", b.executed);
    rep.put("barrier_recorded", b.recorded);
    rep.put("barrier_deduped", b.deduped);
    rep.put("barrier_filtered", b.filtered());
    rep.put("barrier_overhead_pct", overhead_pct);
    rep.put("outputs_match", true);
    let json = rep.to_json();
    println!("{json}");
    m3gc_bench::write_bench_json("gengc", &json);

    assert!(gen_out.minor_collections >= 10, "workload must exercise minor collections");
    assert!(b.recorded + b.deduped > 0, "old→young stores must reach the remembered set");
    assert!(
        ratio >= min_ratio,
        "minor pauses must be at least {min_ratio}x cheaper than full collections, got {ratio:.1}x"
    );
}
