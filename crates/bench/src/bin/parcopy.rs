//! Parallel-copy experiment: work-stealing evacuation scalability.
//!
//! The workload builds a large live ternary tree (the worst case for a
//! copying collector: every collection must evacuate the whole live
//! set) and then churns garbage while periodic forced collections fire.
//! The same compiled module runs under the parallel runtime twice —
//! with 1 gc worker and with N (default 4) — and the mean copy-phase
//! time over the full-live-set collections is compared.
//!
//! The speedup assertion (≥1.5× with 4 workers) only arms when the host
//! actually has ≥4 hardware threads and the run is not `--quick`: on a
//! smaller machine the workers time-slice one core and the bench
//! degenerates to a report-only smoke test of the parallel collector.
//! Either way the run validates output correctness against the
//! single-threaded semispace collector and writes `BENCH_parcopy.json`.

use std::time::Duration;

use m3gc_compiler::{compile, run_module, run_module_par_opts, Options};
use m3gc_runtime::parallel::{ParGcStats, ParOutcome};
use m3gc_runtime::{GcStrategy, RuntimeOptions, StatsReport};

/// Live ternary tree of `depth` levels plus a garbage churn loop. All
/// mutable state is procedure-local except the tree root, which must
/// stay live across collections (single mutator, so the shared global
/// is safe).
fn parcopy_src(depth: usize, churn: usize) -> String {
    format!(
        "MODULE ParCopy;
TYPE Node = REF RECORD a, b, c: Node; x: INTEGER END;
VAR root: Node;

PROCEDURE Build(d: INTEGER): Node =
VAR n: Node;
BEGIN
  n := NEW(Node);
  n.x := d;
  IF d > 0 THEN
    n.a := Build(d - 1);
    n.b := Build(d - 1);
    n.c := Build(d - 1);
  END;
  RETURN n;
END Build;

PROCEDURE Sum(n: Node): INTEGER =
BEGIN
  IF n = NIL THEN RETURN 0; END;
  RETURN (n.x + Sum(n.a) + Sum(n.b) + Sum(n.c)) MOD 1000003;
END Sum;

PROCEDURE Churn(rounds: INTEGER): INTEGER =
VAR t: Node; i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    t := NEW(Node);
    t.x := i;
    s := (s + t.x) MOD 1000003;
  END;
  RETURN s;
END Churn;

BEGIN
  root := Build({depth});
  PutInt(Churn({churn}));
  PutInt(Sum(root));
END ParCopy.",
    )
}

/// Mean copy-phase time over the collections that evacuated the bulk
/// of the live set (at least half the maximum observed), skipping the
/// partial collections during tree construction.
fn copy_mean_us(gc_each: &[ParGcStats]) -> (f64, u64, u64) {
    let max_words = gc_each.iter().map(|s| s.words_copied).max().unwrap_or(0);
    let full: Vec<&ParGcStats> =
        gc_each.iter().filter(|s| s.words_copied * 2 >= max_words).collect();
    assert!(!full.is_empty(), "no full-live-set collections observed");
    let mean =
        full.iter().map(|s| s.copy_time).sum::<Duration>().as_secs_f64() * 1e6 / full.len() as f64;
    let steals: u64 = full.iter().map(|s| s.steals.iter().sum::<u64>()).sum();
    (mean, full.len() as u64, steals)
}

fn run_with_workers(
    module: m3gc_vm::VmModule,
    semi_words: usize,
    workers: usize,
    force_every: u64,
) -> ParOutcome {
    let opts = RuntimeOptions::new()
        .strategy(GcStrategy::Parallel)
        .semi_words(semi_words)
        .threads(1)
        .gc_workers(workers)
        .force_every_allocs(Some(force_every));
    run_module_par_opts(module, opts)
        .unwrap_or_else(|e| panic!("parcopy run ({workers} workers) failed: {e}"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Depth 10 → (3^11-1)/2 = 88573 live nodes; depth 7 → 3280.
    let (depth, churn, semi_words, force_every) =
        if quick { (7, 30_000, 1 << 16, 10_000) } else { (10, 200_000, 1 << 20, 50_000) };
    let workers = 4;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let src = parcopy_src(depth, churn);
    let module = compile(&src, &Options::o2()).expect("benchmark compiles");

    // Correctness baseline: the single-threaded semispace collector.
    let baseline = run_module(module.clone(), semi_words).expect("baseline run");

    let one = run_with_workers(module.clone(), semi_words, 1, force_every);
    let many = run_with_workers(module.clone(), semi_words, workers, force_every);
    assert_eq!(one.output, baseline.output, "1-worker parallel run must match semispace");
    assert_eq!(many.output, baseline.output, "{workers}-worker parallel run must match semispace");
    assert!(one.collections >= 3, "workload must force repeated collections");

    let live_objects = many.gc_each.iter().map(|s| s.objects_copied).max().unwrap_or(0);
    let (mean_1, full_1, _) = copy_mean_us(&one.gc_each);
    let (mean_n, full_n, steals_n) = copy_mean_us(&many.gc_each);
    let speedup = mean_1 / mean_n.max(f64::MIN_POSITIVE);
    let handshake_max_us =
        many.gc_each.iter().map(|s| s.handshake_time.as_secs_f64() * 1e6).fold(0.0, f64::max);

    // Only assert scalability where the hardware can deliver it; record
    // exactly why whenever the assertion stays off.
    let asserted = !quick && cores >= workers;
    let skip_reason = if asserted {
        String::new()
    } else if quick {
        "quick mode is a report-only smoke run".to_string()
    } else {
        format!("host has {cores} hardware thread(s), the assertion needs >= {workers}")
    };

    println!("ParCopy: ternary tree depth {depth} (~{live_objects} live objects), {churn} churn allocations");
    println!(
        "  host: {cores} hardware thread(s); speedup assertion {}",
        if asserted { "armed" } else { "off (report only)" }
    );
    if !asserted {
        eprintln!("parcopy: warning: speedup assertion not armed: {skip_reason}");
    }
    println!("  1 worker:  copy phase mean {mean_1:>10.2} us over {full_1} full collection(s)");
    println!("  {workers} workers: copy phase mean {mean_n:>10.2} us over {full_n} full collection(s), {steals_n} steal(s)");
    println!("  speedup {speedup:.2}x; handshake max {handshake_max_us:.2} us");

    let mut rep = StatsReport::new("parcopy");
    rep.put("quick", quick);
    rep.host(cores, asserted);
    rep.put("depth", depth);
    rep.put("live_objects", live_objects);
    rep.put("workers", workers);
    rep.put("copy_mean_us_1", mean_1);
    rep.put("copy_mean_us_n", mean_n);
    rep.put("speedup", speedup);
    rep.put("steals", steals_n);
    rep.put("handshake_max_us", handshake_max_us);
    rep.put("skip_reason", skip_reason.as_str());
    rep.put("outputs_match", true);
    let json = rep.to_json();
    println!("{json}");
    m3gc_bench::write_bench_json("parcopy", &json);

    if asserted {
        assert!(
            speedup >= 1.5,
            "{workers} gc workers must beat 1 worker by >=1.5x on a large live heap, got {speedup:.2}x"
        );
    }
}
