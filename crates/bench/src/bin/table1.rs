//! Regenerates **Table 1** of the paper: statistics of each benchmark
//! program — code size in bytes, number of gc-points with non-empty
//! tables (NGC), total pointer locations (NPTRS), and the number of
//! non-empty delta (NDEL), register (NREG) and derivation (NDER) tables.

fn main() {
    println!("Table 1: Statistics of each of the benchmark programs");
    println!("(reproduction; sizes are for the m3gc VM's byte-encoded ISA)\n");
    println!(
        "{:<16} {:>7} {:>6} {:>7} {:>6} {:>6} {:>6}",
        "Program", "Size", "NGC", "NPTRS", "NDEL", "NREG", "NDER"
    );
    for row in m3gc_bench::table1() {
        let s = &row.stats;
        println!(
            "{:<16} {:>7} {:>6} {:>7} {:>6} {:>6} {:>6}",
            row.name, row.size, s.ngc, s.nptrs, s.ndel, s.nreg, s.nder
        );
    }
    println!(
        "\nNGC counts gc-points with at least one non-empty table; NDEL/NREG/NDER\n\
         count non-empty stack, register, and derivations tables (paper §6.1)."
    );
}
