//! Regenerates the **Figure 2 / §4** comparison: *path variables* vs
//! *path splitting* for ambiguous derivations.
//!
//! None of the paper's benchmarks (nor ours) contain ambiguous
//! derivations — the paper says exactly that — so, like the paper's own
//! Figure 2, this experiment uses the canonical example: an invariant
//! conditional hoisted out of a loop leaves `t` derived from either
//! `&P[0]+1` or `&Q[0]+1`. We build that (post-hoist) IR directly and
//! compile it both ways, reporting code size, table size and the dynamic
//! instruction overhead of each strategy.

use m3gc_codegen::{compile_program, CodegenOptions};
use m3gc_ir::builder::FuncBuilder;
use m3gc_ir::{BinOp, Instr, Program, RuntimeFn, TempKind};
use m3gc_opt::split::split_paths;

/// Builds the Figure 2 program: main allocates P and Q, then calls a
/// function that selects t := P+1 or t := Q+1 under an "invariant"
/// condition and loops reading `*(t + i)`, allocating each iteration so
/// every iteration has a gc-point where `t` is live.
fn figure2_program(iterations: i64) -> Program {
    let mut p = Program::new();
    let arr = p.types.add(m3gc_core::heap::HeapType::Array {
        name: "A".into(),
        elem_words: 1,
        elem_ptr_offsets: vec![],
    });
    // fig2(P, Q, inv): INTEGER
    let mut fb = FuncBuilder::with_ret(
        "fig2",
        &[TempKind::Ptr, TempKind::Ptr, TempKind::Int],
        Some(TempKind::Int),
    );
    let t = fb.temp(TempKind::Int);
    let i = fb.temp(TempKind::Int);
    let sum = fb.temp(TempKind::Int);
    let two = fb.constant(2);
    fb.push(Instr::Const { dst: i, value: 0 });
    fb.push(Instr::Const { dst: sum, value: 0 });
    let ba = fb.block();
    let bb = fb.block();
    let header = fb.block();
    let body = fb.block();
    let exit = fb.block();
    fb.br(fb.param(2), ba, bb);
    fb.switch_to(ba);
    fb.push(Instr::Bin { dst: t, op: BinOp::Add, a: fb.param(0), b: two });
    fb.jump(header);
    fb.switch_to(bb);
    fb.push(Instr::Bin { dst: t, op: BinOp::Add, a: fb.param(1), b: two });
    fb.jump(header);
    fb.switch_to(header);
    let lim = fb.constant(iterations);
    let c = fb.bin(BinOp::Lt, i, lim);
    fb.br(c, body, exit);
    fb.switch_to(body);
    // Allocate garbage: a gc-point at which t (derived) is live.
    let len1 = fb.constant(1);
    let junk = fb.new_object(arr, Some(len1));
    let _ = junk;
    let idx = fb.bin(BinOp::Mod, i, two);
    let addr = fb.bin(BinOp::Add, t, idx);
    let v = fb.load(addr, 0, TempKind::Int);
    let ns = fb.bin(BinOp::Add, sum, v);
    fb.push(Instr::Copy { dst: sum, src: ns });
    let one = fb.constant(1);
    let ni = fb.bin(BinOp::Add, i, one);
    fb.push(Instr::Copy { dst: i, src: ni });
    fb.jump(header);
    fb.switch_to(exit);
    fb.ret(Some(sum));
    let fig2 = p.add_func(fb.finish());

    // main: allocate P=[.., 7, 8, ..], Q=[.., 30, 40 ..]; call fig2 twice.
    let mut mb = FuncBuilder::new("main", &[]);
    let len4 = mb.constant(4);
    let arr_p = mb.new_object(arr, Some(len4));
    let arr_q = mb.new_object(arr, Some(len4));
    for (obj, base) in [(arr_p, 7i64), (arr_q, 30)] {
        for w in 0..4 {
            let cv = mb.constant(base + w);
            mb.store(obj, w as i32 + 2, cv);
        }
    }
    let sel1 = mb.constant(1);
    let r1 = mb.call(fig2, vec![arr_p, arr_q, sel1], Some(TempKind::Int)).unwrap();
    mb.call_runtime(RuntimeFn::PrintInt, vec![r1]);
    let sel0 = mb.constant(0);
    let r0 = mb.call(fig2, vec![arr_p, arr_q, sel0], Some(TempKind::Int)).unwrap();
    mb.call_runtime(RuntimeFn::PrintInt, vec![r0]);
    // Keep the trailing block well-formed.
    mb.ret(None);
    let main = p.add_func(mb.finish());
    p.main = main;
    p
}

struct Measured {
    code_bytes: usize,
    table_bytes: usize,
    nder: usize,
    path_vars_needed: bool,
    steps: u64,
    collections: u64,
    output: String,
}

fn measure(mut prog: Program) -> Measured {
    let ambiguous_before =
        prog.funcs.iter().map(|f| m3gc_ir::deriv::find_ambiguous(f).len()).sum::<usize>();
    let module = compile_program(&mut prog, &CodegenOptions::default());
    let stats = m3gc_core::stats::table_stats(&module.logical_maps);
    let table_bytes = module.gc_maps.bytes.len();
    let code_bytes = module.code_size();
    let opts = m3gc_runtime::RuntimeOptions::new().semi_words(512).stack_words(4096).max_threads(2);
    let machine = opts.build_machine(module);
    let mut ex = m3gc_runtime::Executor::new(machine, opts);
    let out = match ex.run_main() {
        Ok(o) => o,
        Err(e) => panic!("figure2 run failed: {e}"),
    };
    let _ = ex.machine.run_thread(0, 0); // keep the machine alive for inspection
    Measured {
        code_bytes,
        table_bytes,
        nder: stats.nder,
        path_vars_needed: ambiguous_before > 0,
        steps: out.steps,
        collections: out.collections,
        output: out.output,
    }
}

fn main() {
    println!("Figure 2 / §4: path variables vs path splitting\n");
    let iters = 2000;

    let with_vars = measure(figure2_program(iters));
    let with_split = {
        let mut prog = figure2_program(iters);
        for f in &mut prog.funcs {
            split_paths(f);
        }
        measure(prog)
    };
    assert_eq!(with_vars.output, with_split.output, "strategies must agree");

    println!("{:<22} {:>12} {:>12}", "", "path vars", "path split");
    println!("{:<22} {:>12} {:>12}", "code bytes", with_vars.code_bytes, with_split.code_bytes);
    println!(
        "{:<22} {:>12} {:>12}",
        "gc table bytes", with_vars.table_bytes, with_split.table_bytes
    );
    println!("{:<22} {:>12} {:>12}", "derivation tables", with_vars.nder, with_split.nder);
    println!(
        "{:<22} {:>12} {:>12}",
        "ambiguity remains", with_vars.path_vars_needed, with_split.path_vars_needed
    );
    println!("{:<22} {:>12} {:>12}", "dynamic steps", with_vars.steps, with_split.steps);
    println!("{:<22} {:>12} {:>12}", "collections", with_vars.collections, with_split.collections);
    println!(
        "\nPaper shape check: the path-variable scheme adds assignments (dynamic\n\
         cost) while path splitting increases code size (static cost); the\n\
         paper chose path variables because ambiguous derivations are rare —\n\
         indeed none of the four benchmarks has any."
    );
}
