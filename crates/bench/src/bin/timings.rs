//! Regenerates the **§6.3** measurement on `destroy`: the cost of
//! table-driven stack tracing relative to total collection time.
//!
//! The paper ran destroy with "collection being a stack trace" vs
//! "collection being a null call" and derived per-collection and
//! per-frame stack-tracing costs, concluding tracing is a small fraction
//! (< ~6%, best estimate 1.7%) of total gc time. We measure both sides
//! directly on the same system:
//!
//! * real collections under a small heap (total gc time, trace time,
//!   frames traced — the collector separates the phases), and
//! * the paper's methodology: forced collection events where the
//!   "collection" is a full collection, a stack trace only, or a null
//!   call, on a heap large enough to never fill.

use m3gc_bench::{expected_output, program};
use m3gc_compiler::{compile, Options};
use m3gc_runtime::scheduler::{Executor, GcMode};
use m3gc_runtime::RuntimeOptions;
use std::time::Duration;

fn run(semi: usize, mode: GcMode, force: Option<u64>) -> m3gc_runtime::scheduler::ExecOutcome {
    let module = compile(program("destroy"), &Options::o2()).expect("compiles");
    let opts = RuntimeOptions::new()
        .semi_words(semi)
        .stack_words(1 << 15)
        .max_threads(2)
        .gc_mode(mode)
        .force_every_allocs(force);
    let machine = opts.build_machine(module);
    let mut ex = Executor::new(machine, opts);
    let out = ex.run_main().expect("destroy runs");
    assert_eq!(out.output, expected_output("destroy"), "wrong output under {mode:?}");
    out
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    println!("§6.3: Stack tracing cost on destroy (branching 3, depth 6)\n");

    // Real collections under a small heap.
    let real = run(8 * 1024, GcMode::Full, None);
    let n = real.collections.max(1);
    let per_total = micros(real.gc_total.total_time) / n as f64;
    let per_trace = micros(real.gc_total.trace_time) / n as f64;
    let frames = real.gc_total.frames_traced as f64 / n as f64;
    println!("Real collections (8K-word semispaces):");
    println!("  collections:              {}", real.collections);
    println!("  objects copied/collection: {:.0}", real.gc_total.objects_copied as f64 / n as f64);
    println!("  frames traced/collection:  {frames:.1}");
    println!("  total gc time/collection:  {per_total:.1} us");
    println!("  stack trace/collection:    {per_trace:.1} us");
    println!("  stack trace/frame:         {:.2} us", per_trace / frames.max(1.0));
    println!(
        "  trace share of gc time:    {:.1}%",
        100.0 * real.gc_total.trace_time.as_secs_f64()
            / real.gc_total.total_time.as_secs_f64().max(1e-12)
    );

    // The paper's methodology: forced events every N allocations, huge heap.
    let every = 400;
    println!("\nForced collection events every {every} allocations (1M-word semispaces):");
    let base = run(1 << 20, GcMode::Null, Some(every));
    let trace = run(1 << 20, GcMode::TraceOnly, Some(every));
    let full = run(1 << 20, GcMode::Full, Some(every));
    let events = trace.collections.max(1);
    println!("  events:                    {events}");
    println!(
        "  stack trace/event:         {:.1} us  ({:.1} frames/event)",
        micros(trace.gc_total.trace_time) / events as f64,
        trace.gc_total.frames_traced as f64 / events as f64
    );
    println!(
        "  full collection/event:     {:.1} us",
        micros(full.gc_total.total_time) / full.collections.max(1) as f64
    );
    println!(
        "  trace-only : full ratio    {:.1}%",
        100.0 * trace.gc_total.trace_time.as_secs_f64()
            / full.gc_total.total_time.as_secs_f64().max(1e-12)
    );
    let _ = base; // the Null run validates that forced events preserve semantics

    println!(
        "\nPaper shape check: stack tracing (locating + decoding tables, walking\n\
         frames, un/re-deriving) is a small fraction of total collection time\n\
         (the paper's 90%-confidence bound was < 6%, best estimate 1.7%)."
    );
}
