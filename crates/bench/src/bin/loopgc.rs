//! Ablation **A2** (§5.3): loop gc-points on vs off.
//!
//! With pre-emptive threads, a collection may be requested while a thread
//! sits in a computational loop that never allocates; the paper inserts a
//! gc-point in every loop without a guaranteed one so resumed threads
//! reach a gc-point in bounded time. This experiment measures what the
//! insertion costs (gc-points, table bytes, code bytes, dynamic steps)
//! and demonstrates the failure mode it prevents: with loop gc-points
//! off, a thread spinning in a pure loop never reaches a gc-point and the
//! collection protocol gets stuck.

use m3gc_compiler::{compile, CallPolicy, GcConfig, Options};
use m3gc_core::stats::table_stats;
use m3gc_runtime::scheduler::{ExecError, Executor};
use m3gc_runtime::RuntimeOptions;

/// Thread 1 spins in a non-allocating loop; thread 0 allocates until a
/// collection is needed.
const SRC: &str = "MODULE Spin;
TYPE R = REF RECORD x: INTEGER END;
PROCEDURE Spin(n: INTEGER): INTEGER =
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO n DO
    s := (s + i) MOD 1000003;
  END;
  RETURN s;
END Spin;
VAR r: R; i: INTEGER;
BEGIN
  FOR i := 1 TO 300 DO
    r := NEW(R);
    r.x := i;
  END;
  PutInt(r.x);
END Spin.";

fn build(loop_gc_points: bool) -> m3gc_vm::VmModule {
    let gc = GcConfig {
        emit_tables: true,
        calls: CallPolicy::AllCalls,
        loop_gc_points,
        ..GcConfig::default()
    };
    compile(SRC, &Options::o2().with_gc(gc)).expect("compiles")
}

fn run_two_threads(loop_gc_points: bool) -> Result<(u64, u64), ExecError> {
    let module = build(loop_gc_points);
    let opts =
        RuntimeOptions::new().semi_words(256).stack_words(4096).max_threads(3).max_advance(200_000);
    let machine = opts.build_machine(module);
    let mut ex = Executor::new(machine, opts);
    ex.machine.spawn(ex.machine.module.main, &[]);
    let spin =
        ex.machine.module.procs.iter().position(|p| p.name == "Spin").expect("spin proc") as u16;
    // A long spin: far more iterations than the advance budget allows
    // without a gc-point.
    ex.machine.spawn(spin, &[2_000_000]);
    let out = ex.run()?;
    Ok((out.collections, out.steps))
}

fn main() {
    println!("A2 (§5.3): loop gc-points on/off\n");
    for on in [true, false] {
        let module = build(on);
        let stats = table_stats(&module.logical_maps);
        println!(
            "loop gc-points {:<3}: code {:>5} B, tables {:>5} B, gc-points {:>3}",
            if on { "ON" } else { "OFF" },
            module.code_size(),
            module.gc_maps.bytes.len(),
            stats.total_gc_points,
        );
    }
    println!("\nTwo threads: one allocating, one spinning in a pure loop:");
    match run_two_threads(true) {
        Ok((gcs, steps)) => {
            println!("  ON : completed, {gcs} collections, {steps} steps");
        }
        Err(e) => println!("  ON : UNEXPECTED failure: {e}"),
    }
    match run_two_threads(false) {
        Ok((gcs, steps)) => println!(
            "  OFF: completed ({gcs} collections, {steps} steps) — only possible if \
             the spinner finished before the first collection"
        ),
        Err(ExecError::StuckThread { thread }) => println!(
            "  OFF: stuck — thread {thread} never reached a gc-point \
             (the §5.3 failure mode the loop gc-points prevent)"
        ),
        Err(e) => println!("  OFF: failed: {e}"),
    }
    println!(
        "\nPaper shape check: loop gc-points add a modest number of gc-points\n\
         and table bytes, and are what bounds the advance-to-gc-point wait in\n\
         a pre-emptive multi-threaded environment."
    );
}
