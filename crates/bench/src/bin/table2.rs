//! Regenerates **Table 2** of the paper: gc-table sizes as a percentage
//! of code size, under Full Info {Plain, Packing} and δ-main {Plain,
//! Previous, Packing, Previous+Packing}. Also reports the §5.2 pc-map
//! ablation (fixed 2-byte vs variable 1-byte distances, DESIGN.md A3).

fn main() {
    println!("Table 2: Table sizes as a percentage of code size\n");
    println!(
        "{:<16} {:>9} | {:>8} {:>8} | {:>8} {:>9} {:>8} {:>8}",
        "", "", "Full", "Info", "", "δ-main", "", ""
    );
    println!(
        "{:<16} {:>9} | {:>8} {:>8} | {:>8} {:>9} {:>8} {:>8}",
        "Program", "Code(B)", "Plain", "Packing", "Plain", "Previous", "Packing", "PP"
    );
    let rows = m3gc_bench::table2();
    for row in &rows {
        let p: Vec<f64> = row.reports.iter().map(|r| r.percent_of_code).collect();
        println!(
            "{:<16} {:>9} | {:>8.1} {:>8.1} | {:>8.1} {:>9.1} {:>8.1} {:>8.1}",
            row.name, row.code_size, p[0], p[1], p[2], p[3], p[4], p[5]
        );
    }

    // Section breakdown for the production scheme (δ-main + PP).
    println!("\nSection breakdown under δ-main+Previous+Packing (bytes):");
    println!(
        "{:<16} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Program", "headers", "ground", "pcmap", "descr", "stack", "regs", "deriv"
    );
    for row in &rows {
        let s = row.reports[5].sizes;
        println!(
            "{:<16} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6}",
            row.name, s.headers, s.ground, s.pcmap, s.descriptors, s.stack, s.regs, s.derivations
        );
    }

    // A3: the pc-map distance ablation.
    println!("\nA3: pc-map distances, fixed 2-byte (emitted) vs variable (link-time):");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>10}",
        "Program", "points", "2-byte(B)", "vlq(B)", "1B-dists"
    );
    for row in &rows {
        let c = row.pcmap;
        println!(
            "{:<16} {:>8} {:>9} {:>9} {:>9}%",
            row.name,
            c.total_points,
            c.fixed_two_byte,
            c.variable,
            (100 * c.one_byte_distances).checked_div(c.total_points).unwrap_or(0)
        );
    }
    println!(
        "\nPaper shape check: δ-main Plain ≈ 45% of code dropping to ≈ 16% with\n\
         Previous+Packing; most pc-map distances fit one byte (§5.2)."
    );
}
