//! Liveness-driven gc-map experiment: float retained by dead stack
//! slots, with and without map pruning.
//!
//! The workload (`LiveMap`) is the float hypothesis on purpose: each
//! round builds a sizable list into a frame slot (the slot is real —
//! the list head is passed VAR), checksums it, and then churns
//! short-lived allocations while the dead list still sits in the frame.
//! Full maps keep the slot in every gc-point's root set until the frame
//! pops, so every minor collection inside the churn window copies — and
//! eventually promotes — a list the program can never touch again.
//! Liveness-pruned maps kill the slot at the first churn gc-point, so
//! the list dies in the nursery.
//!
//! The same source compiles twice ({pruned, full} maps) and runs on the
//! same generational heap, so the comparison isolates the maps:
//! reported are the words-copied and promotion deltas (retained-heap
//! float), the minor-pause split, and the kill counters
//! (`roots_killed`, `float_words_avoided`). The acceptance bar is
//! `roots_killed > 0` and a words-copied ratio (full / pruned) of at
//! least 1.3 (1.15 in `--quick` mode, sized for CI smoke runs).

use m3gc_compiler::{compile, Options};
use m3gc_runtime::scheduler::{ExecOutcome, Executor};
use m3gc_runtime::{GcStrategy, RuntimeOptions, StatsReport};

const SEMI_WORDS: usize = 1 << 15;
const NURSERY_WORDS: usize = 512;
const LIST_NODES: usize = 120;
const CHURN_ALLOCS: usize = 600;

fn livemap_src(rounds: usize) -> String {
    format!(
        "MODULE LiveMap;
TYPE Node = REF RECORD v: INTEGER; next: Node END;

PROCEDURE Build(VAR l: Node; n: INTEGER) =
VAR i: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    WITH c = NEW(Node) DO c.v := i; c.next := l; l := c; END;
  END;
END Build;

PROCEDURE Round(r: INTEGER): INTEGER =
VAR big, t: Node; s, i: INTEGER;
BEGIN
  Build(big, {nodes});
  s := 0;
  t := big;
  WHILE t # NIL DO s := (s * 31 + t.v + r) MOD 1000003; t := t.next; END;
  (* big is dead from here on: the churn below floats it under full
     maps, while pruned maps kill the slot at the first gc-point. *)
  FOR i := 1 TO {churn} DO
    WITH j = NEW(Node) DO j.v := i; END;
  END;
  RETURN s;
END Round;

PROCEDURE Work(): INTEGER =
VAR s, r: INTEGER;
BEGIN
  s := 0;
  FOR r := 1 TO {rounds} DO
    s := (s + Round(r)) MOD 1000003;
  END;
  RETURN s;
END Work;

BEGIN
  PutInt(Work());
END LiveMap.",
        nodes = LIST_NODES,
        churn = CHURN_ALLOCS,
        rounds = rounds,
    )
}

fn run_gen(module: m3gc_vm::VmModule) -> ExecOutcome {
    let opts = RuntimeOptions::new()
        .semi_words(SEMI_WORDS)
        .stack_words(1 << 14)
        .max_threads(2)
        .strategy(GcStrategy::Generational)
        .nursery_words(NURSERY_WORDS)
        .promote_age(2);
    let machine = opts.build_machine(module);
    let mut ex = Executor::new(machine, opts);
    ex.run_main().unwrap_or_else(|e| panic!("benchmark run failed: {e}"))
}

fn minor_mean_max_us(out: &ExecOutcome) -> (f64, f64) {
    let pauses: Vec<f64> = out
        .gc_each
        .iter()
        .filter(|s| s.kind == m3gc_core::stats::GcKind::Minor)
        .map(|s| s.total_time.as_secs_f64() * 1e6)
        .collect();
    if pauses.is_empty() {
        return (0.0, 0.0);
    }
    let mean = pauses.iter().sum::<f64>() / pauses.len() as f64;
    let max = pauses.iter().cloned().fold(0.0, f64::max);
    (mean, max)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 40 } else { 200 };
    let min_ratio = if quick { 1.15 } else { 1.3 };
    let src = livemap_src(rounds);

    let pruned_mod = compile(&src, &Options::o2()).expect("benchmark compiles");
    let full_mod = compile(&src, &Options::o2().with_live_maps(false)).expect("benchmark compiles");

    let pruned = run_gen(pruned_mod);
    let full = run_gen(full_mod);
    assert_eq!(pruned.output, full.output, "map pruning must be invisible to the program");

    let (pruned_minor_mean, pruned_minor_max) = minor_mean_max_us(&pruned);
    let (full_minor_mean, full_minor_max) = minor_mean_max_us(&full);
    let copied_ratio =
        full.gc_total.words_copied as f64 / (pruned.gc_total.words_copied as f64).max(1.0);

    println!(
        "LiveMap: {rounds} round(s), {LIST_NODES}-node list dead across {CHURN_ALLOCS} \
         churn alloc(s) per round"
    );
    println!(
        "  pruned maps: {} minor / {} major, {} word(s) copied, {} promoted",
        pruned.minor_collections,
        pruned.major_collections,
        pruned.gc_total.words_copied,
        pruned.gc_total.promoted_words
    );
    println!(
        "    kills: {} root(s) killed, {} float word(s) avoided",
        pruned.gc_total.roots_killed, pruned.gc_total.float_words_avoided
    );
    println!("    minor pause  mean {pruned_minor_mean:>9.2} us   max {pruned_minor_max:>9.2} us");
    println!(
        "  full maps:   {} minor / {} major, {} word(s) copied, {} promoted",
        full.minor_collections,
        full.major_collections,
        full.gc_total.words_copied,
        full.gc_total.promoted_words
    );
    println!("    minor pause  mean {full_minor_mean:>9.2} us   max {full_minor_max:>9.2} us");
    println!("  retained-heap float: full/pruned words-copied ratio {copied_ratio:.2}x");

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rep = StatsReport::new("livemap");
    rep.put("quick", quick);
    // The words-copied ratio scales with --quick, not with host cores —
    // the workload is single-threaded, so the assertion is always armed.
    rep.host(cores, true);
    rep.put("rounds", rounds);
    rep.put("list_nodes", LIST_NODES);
    rep.put("churn_allocs", CHURN_ALLOCS);
    rep.put("roots_killed", pruned.gc_total.roots_killed);
    rep.put("float_words_avoided", pruned.gc_total.float_words_avoided);
    rep.put("pruned_words_copied", pruned.gc_total.words_copied);
    rep.put("full_words_copied", full.gc_total.words_copied);
    rep.put("pruned_promoted_words", pruned.gc_total.promoted_words);
    rep.put("full_promoted_words", full.gc_total.promoted_words);
    rep.put("copied_ratio", copied_ratio);
    rep.put("pruned_minors", pruned.minor_collections);
    rep.put("full_minors", full.minor_collections);
    rep.put("pruned_minor_mean_us", pruned_minor_mean);
    rep.put("pruned_minor_max_us", pruned_minor_max);
    rep.put("full_minor_mean_us", full_minor_mean);
    rep.put("full_minor_max_us", full_minor_max);
    rep.put("outputs_match", true);
    let json = rep.to_json();
    println!("{json}");
    m3gc_bench::write_bench_json("livemap", &json);

    assert!(
        pruned.gc_total.roots_killed > 0,
        "the dead list slot must be killed at the churn gc-points"
    );
    assert!(
        pruned.gc_total.float_words_avoided > 0,
        "at least one kill must null a still-live referent"
    );
    assert_eq!(full.gc_total.roots_killed, 0, "full maps must not kill anything");
    assert!(
        copied_ratio >= min_ratio,
        "full maps must retain at least {min_ratio}x the copied words of pruned maps, \
         got {copied_ratio:.2}x"
    );
}
