//! Allocation-service benchmark: sustained request load over the
//! region-enabled parallel runtime.
//!
//! The workload is the server hypothesis on purpose: every request
//! allocates a request-sized mix of objects (an open array sized by the
//! request id, cons-list churn, a record or two) into its per-request
//! region and exits, so the runtime should reclaim nearly all of it in
//! O(1) at request exit. Three deliberate complications keep the run
//! honest:
//!
//! * a configurable **slow-request fraction** (`--slow-every N`) does
//!   ~30× the allocation work, overflowing its region into the shared
//!   heap and pinning the region across other requests' collections;
//! * an **escape fraction** (1 in 100) publishes a record into a module
//!   global, so its region cannot be bulk-reclaimed and the collection
//!   must promote the escapee instead;
//! * the **precision oracle** is armed, so every collection
//!   shadow-verifies the gc maps — an escaping object that region
//!   reclamation dropped would trap, not corrupt.
//!
//! Reported: requests/sec, allocation rate, stop-the-world pause and
//! request-latency percentiles (p50/p99/max) and the full region
//! ledger, as text and as `BENCH_serve.json`. The acceptance bar is a
//! region-reclaim ratio ≥ 0.9: at least 90% of region-allocated words
//! must die with their request rather than be promoted by tracing.
//! `--quick` runs a 1 000-request CI smoke with the same assertions.

use m3gc_compiler::{compile, Options};
use m3gc_runtime::serve::ServeExecutor;
use m3gc_runtime::{GcStrategy, RuntimeOptions, ServeLoad, StatsReport};

/// The request handler: mixed allocation sizes, slow requests every
/// `slow_every`, an escaping store every 100th request.
fn serve_src(slow_every: u64) -> String {
    format!(
        "MODULE ServeBench;
TYPE Node = REF RECORD v: INTEGER; next: Node END;
     Arr = REF ARRAY OF INTEGER;
     Req = REF RECORD id: INTEGER END;
VAR last: Req;

PROCEDURE Chew(n: INTEGER): INTEGER =
VAR l: Node; i, s: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    WITH c = NEW(Node) DO c.v := i; c.next := l; l := c; END;
    IF i MOD 8 = 0 THEN l := NIL; END;
  END;
  s := 0;
  WHILE l # NIL DO s := s + l.v; l := l.next; END;
  RETURN s;
END Chew;

PROCEDURE Handle(id: INTEGER) =
VAR a: Arr; i, s: INTEGER;
BEGIN
  a := NEW(Arr, 8 + (id MOD 57));
  FOR i := 0 TO LAST(a) DO a[i] := id + i; END;
  s := Chew(40);
  IF id MOD {slow_every} = 0 THEN
    FOR i := 1 TO 30 DO
      s := (s + Chew(60) + a[i MOD (LAST(a) + 1)]) MOD 1000003;
    END;
  END;
  IF id MOD 100 = 0 THEN
    WITH r = NEW(Req) DO r.id := id + s - s; last := r; END;
  END;
END Handle;

BEGIN
  last := NIL;
END ServeBench.",
    )
}

fn arg_value(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|e| panic!("{flag}: {e}")))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let requests = arg_value(&args, "--requests", if quick { 1_000 } else { 10_000 });
    let slow_every = arg_value(&args, "--slow-every", 16).max(1);
    let threads = arg_value(&args, "--threads", 2).max(1) as usize;
    let green_slots = arg_value(&args, "--green", 16).max(1) as usize;
    let region_words = arg_value(&args, "--region-words", 1 << 12).max(1) as usize;

    let module = compile(&serve_src(slow_every), &Options::o2()).expect("benchmark compiles");
    let opts = RuntimeOptions::new()
        .strategy(GcStrategy::Parallel)
        .semi_words(1 << 18)
        .stack_words(1 << 14)
        .serve(region_words, green_slots)
        .threads(threads)
        .gc_workers(2)
        .oracle(true);
    let load = ServeLoad { requests, burst: 8, entry: Some("Handle".to_string()) };

    println!(
        "Serve: {requests} request(s), {threads} thread(s) x {green_slots} green slot(s), \
         {region_words}-word regions, 1 in {slow_every} slow, 1 in 100 escaping, oracle armed"
    );
    let vm = opts.build_par_machine(module);
    let mut ex = ServeExecutor::new(vm, opts, load);
    let view = ex.config_view();
    let out = ex.run().unwrap_or_else(|e| panic!("serve run failed: {e}"));
    let s = &out.stats;

    let mut rep = StatsReport::new("serve");
    rep.put("quick", quick);
    // The reclaim-ratio bar is a property of the region design, not of
    // host parallelism — it is always armed.
    rep.host(cores, true);
    rep.put("slow_every", slow_every);
    rep.put("escape_every", 100_u64);
    rep.add_serve(view, s);
    rep.put("region_reclaim_ratio", s.region_reclaim_ratio());
    print!("{}", rep.to_text());

    let json = rep.to_json();
    println!("{json}");
    m3gc_bench::write_bench_json("serve", &json);

    assert_eq!(s.requests, requests, "every admitted request must complete");
    assert_eq!(s.regions_created, requests, "one region per request");
    assert!(s.collections > 0, "the load must drive collections");
    assert!(s.region_escapes > 0, "the escape fraction must mark regions escaped");
    assert!(
        s.regions_reclaimed_fast * 2 > s.regions_created,
        "most requests must exit via the O(1) region reset, got {}/{}",
        s.regions_reclaimed_fast,
        s.regions_created
    );
    let ratio = s.region_reclaim_ratio();
    assert!(
        ratio >= 0.9,
        "region reclamation must recover >=90% of request-local words \
         (oracle-verified), got {:.1}% ({} of {} words promoted)",
        ratio * 100.0,
        s.region_words_promoted,
        s.region_alloc_words
    );
    println!("serve: ok — {:.1}% of region words reclaimed with their request", ratio * 100.0);
}
