//! Regenerates the **§6.2** measurement: the effect of gc support on the
//! generated code. Each benchmark is compiled twice — gc support on and
//! off — at both optimization levels, and the instruction streams are
//! compared (ignoring the pure gc-point markers, which exist only to give
//! pre-empted threads a bounded wait).
//!
//! The paper found *no effect on optimized code*; the handful of
//! unoptimized-code differences came from preserving indirect references
//! and clobbered base values, and it notes those effects "are not likely
//! to occur on load/store architectures" — which our VM is, so the
//! expected result here is zero differences, reported faithfully.

use m3gc_bench::PROGRAMS;
use m3gc_compiler::{compile, Options};
use m3gc_vm::decode::DecodedCode;
use m3gc_vm::isa::Instr;

/// Decodes a module's instructions, dropping `GcPoint` markers (present
/// only in the gc build) and normalizing branch targets from byte
/// addresses to instruction indices — inserted markers shift every later
/// address, which would otherwise count as spurious differences.
fn instructions(module: &m3gc_vm::VmModule) -> Vec<Instr> {
    let decoded = DecodedCode::new(&module.code);
    // pc of each instruction, and its index among the *kept* instructions.
    let mut pc_to_kept = std::collections::HashMap::new();
    let mut kept_index = 0u32;
    let mut pcs = Vec::new();
    {
        let mut pos = 0u32;
        for (ins, next) in &decoded.instrs {
            pcs.push(pos);
            if !matches!(ins, Instr::GcPoint) {
                pc_to_kept.insert(pos, kept_index);
                kept_index += 1;
            }
            pos = *next;
        }
        // End-of-code target (e.g. a branch past the last instruction).
        pc_to_kept.insert(pos, kept_index);
    }
    // A branch target that lands on a GcPoint maps to the next kept
    // instruction.
    let resolve = |target: u32| -> u32 {
        let mut t = target;
        loop {
            if let Some(&k) = pc_to_kept.get(&t) {
                return k;
            }
            // Skip over the marker at t (advance to the following pc).
            let idx = pcs.binary_search(&t).expect("branch target on boundary");
            t = decoded.instrs[idx].1;
        }
    };
    decoded
        .instrs
        .iter()
        .filter(|(i, _)| !matches!(i, Instr::GcPoint))
        .map(|(i, _)| match *i {
            Instr::Jmp { target } => Instr::Jmp { target: resolve(target) },
            Instr::Brt { cond, target } => Instr::Brt { cond, target: resolve(target) },
            Instr::Brf { cond, target } => Instr::Brf { cond, target: resolve(target) },
            ref other => other.clone(),
        })
        .collect()
}

/// Longest-common-subsequence based difference count (insertions +
/// deletions).
fn diff_count(a: &[Instr], b: &[Instr]) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![0usize; (m + 1) * (n + 1)];
    for i in 1..=n {
        for j in 1..=m {
            dp[i * (m + 1) + j] = if a[i - 1] == b[j - 1] {
                dp[(i - 1) * (m + 1) + j - 1] + 1
            } else {
                dp[(i - 1) * (m + 1) + j].max(dp[i * (m + 1) + j - 1])
            };
        }
    }
    let lcs = dp[n * (m + 1) + m];
    (n - lcs) + (m - lcs)
}

fn main() {
    println!("§6.2: Effects of gc support on the generated code\n");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>8}",
        "Program", "gc(B)", "no-gc(B)", "instr-diff", "verdict"
    );
    for (name, src) in PROGRAMS {
        for (suffix, with_gc, without_gc) in
            [("", Options::o0(), Options::o0_no_gc()), ("-opt", Options::o2(), Options::o2_no_gc())]
        {
            let m_gc = compile(src, &with_gc).expect("compiles");
            let m_no = compile(src, &without_gc).expect("compiles");
            let i_gc = instructions(&m_gc);
            let i_no = instructions(&m_no);
            let d = diff_count(&i_gc, &i_no);
            let verdict = if d == 0 { "identical" } else { "differs" };
            println!(
                "{:<16} {:>10} {:>10} {:>12} {:>9}",
                format!("{name}{suffix}"),
                m_gc.code_size(),
                m_no.code_size(),
                d,
                verdict
            );
        }
    }
    println!(
        "\nInstruction streams compared with gc-point markers removed and branch\n\
         targets normalized. Three benchmarks compile identically with and\n\
         without gc support — the paper's headline result. destroy, the one\n\
         benchmark whose loops keep derived values (interior pointers into the\n\
         kids arrays) live across gc-points, differs slightly: the dead-base\n\
         rule (§4) extends base live ranges, changing register assignments and\n\
         adding ~1% code — the analogue of the paper's 'two moves inserted to\n\
         preserve a clobbered base value' in FieldList."
    );
}
