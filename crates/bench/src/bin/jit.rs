//! Baseline-JIT experiment: interpreter vs native wall clock.
//!
//! Two kernels run under the sequential executor twice — once
//! interpreted, once with `--jit` — and the wall-clock times are
//! compared:
//!
//! * **loop**: a tight arithmetic loop with no allocation, the best
//!   case for a template compiler (interpreter dispatch is the whole
//!   cost). The ≥3× speedup assertion arms on this kernel.
//! * **call**: recursion plus list allocation under a small semispace,
//!   so collections fire mid-run and the JIT's code-map stack walks are
//!   on the hot path too.
//!
//! Both engines must produce identical output, identical step counts,
//! and — because collection points are deterministic — an identical
//! collection schedule (same count, same words evacuated): the "pause
//! parity" check. Pause *times* are reported side by side but not
//! asserted (native mutator time shrinks, pause time should not grow).
//!
//! The speedup assertion only arms when the host actually compiled the
//! kernels to native code (x86-64 with executable mappings) and the run
//! is not `--quick`; otherwise the bench degenerates to a report-only
//! smoke test and records `skip_reason`. Either way it writes
//! `BENCH_jit.json`.

use std::time::{Duration, Instant};

use m3gc_compiler::{compile, Options};
use m3gc_runtime::scheduler::ExecOutcome;
use m3gc_runtime::{Executor, GcStrategy, RuntimeOptions, StatsReport};
use m3gc_vm::VmModule;

/// Tight arithmetic loop: no allocation, no calls inside the loop.
fn loop_src(n: u64) -> String {
    format!(
        "MODULE JitLoop;

PROCEDURE Mix(n: INTEGER): INTEGER =
VAR i, a, b: INTEGER;
BEGIN
  a := 1;
  b := 0;
  FOR i := 1 TO n DO
    a := (a * 31 + i) MOD 1000003;
    IF a MOD 2 = 0 THEN
      b := (b + a) MOD 1000003;
    ELSE
      b := (b + 7 * a) MOD 1000003;
    END;
  END;
  RETURN b;
END Mix;

BEGIN
  PutInt(Mix({n}));
  PutLn();
END JitLoop."
    )
}

/// Call- and allocation-heavy kernel: every round pushes a node through
/// a call, and every 16th round walks the list recursively. The list is
/// clipped so the heap churns and the semispace collects repeatedly.
fn call_src(rounds: u64) -> String {
    format!(
        "MODULE JitCall;
TYPE Node = REF RECORD val: INTEGER; next: Node; END;
VAR head: Node;

PROCEDURE Push(v: INTEGER): Node =
VAR p: Node;
BEGIN
  p := NEW(Node);
  p.val := v;
  p.next := head;
  RETURN p;
END Push;

PROCEDURE Len(p: Node): INTEGER =
BEGIN
  IF p = NIL THEN RETURN 0; END;
  RETURN 1 + Len(p.next);
END Len;

PROCEDURE Churn(rounds: INTEGER): INTEGER =
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    head := Push(i);
    IF i MOD 16 = 0 THEN
      s := (s + Len(head)) MOD 1000003;
      head := NIL;
    END;
  END;
  RETURN s;
END Churn;

BEGIN
  PutInt(Churn({rounds}));
  PutLn();
END JitCall."
    )
}

struct Timed {
    outcome: ExecOutcome,
    wall: Duration,
    compiled: usize,
    enabled: bool,
    /// `(reason, count)` for every nonzero fallback reason, so a
    /// `skip_reason` of "did not compile" is explained in the artifact.
    fallbacks: Vec<(&'static str, u64)>,
}

/// Best-of-`reps` wall clock for one module under one engine. Each rep
/// rebuilds the executor so JIT compilation time is inside the measured
/// window — the bench compares end-to-end load-and-run cost.
fn run_timed(module: &VmModule, semi_words: usize, jit: bool, reps: u32) -> Timed {
    let mut best: Option<Timed> = None;
    for _ in 0..reps {
        let opts =
            RuntimeOptions::new().strategy(GcStrategy::Semispace).semi_words(semi_words).jit(jit);
        let start = Instant::now();
        let mut ex = Executor::try_new(opts.build_machine(module.clone()), opts)
            .expect("benchmark module has valid maps");
        let outcome = ex.run_main().expect("benchmark run");
        let wall = start.elapsed();
        let summary = ex.jit_summary();
        let t = Timed {
            outcome,
            wall,
            compiled: summary.as_ref().map_or(0, |s| s.procs_compiled),
            enabled: summary.as_ref().is_some_and(|s| s.enabled),
            fallbacks: summary.as_ref().map_or_else(Vec::new, |s| s.fallbacks.clone()),
        };
        if best.as_ref().is_none_or(|b| t.wall < b.wall) {
            best = Some(t);
        }
    }
    best.unwrap()
}

fn pause_max_us(o: &ExecOutcome) -> f64 {
    o.gc_each.iter().map(|s| s.total_time.as_secs_f64() * 1e6).fold(0.0, f64::max)
}

/// Interp-vs-jit pair for one kernel: identical output, identical step
/// count, identical collection schedule. Returns the speedup.
fn compare(name: &str, interp: &Timed, jit: &Timed) -> f64 {
    assert_eq!(jit.outcome.output, interp.outcome.output, "{name}: outputs diverge");
    assert_eq!(jit.outcome.steps, interp.outcome.steps, "{name}: step counts diverge");
    // Pause parity: the JIT must not change *what* the collector does.
    assert_eq!(
        jit.outcome.collections, interp.outcome.collections,
        "{name}: collection counts diverge"
    );
    assert_eq!(
        jit.outcome.gc_total.words_copied, interp.outcome.gc_total.words_copied,
        "{name}: evacuated words diverge"
    );
    let speedup = interp.wall.as_secs_f64() / jit.wall.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "  {name}: interp {:>8.2} ms, jit {:>8.2} ms ({} proc(s) native) — {speedup:.2}x; \
         {} gc(s), pause max {:.1} us interp / {:.1} us jit",
        interp.wall.as_secs_f64() * 1e3,
        jit.wall.as_secs_f64() * 1e3,
        jit.compiled,
        jit.outcome.collections,
        pause_max_us(&interp.outcome),
        pause_max_us(&jit.outcome),
    );
    speedup
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (loop_n, call_rounds, reps) =
        if quick { (200_000, 50_000, 1) } else { (8_000_000, 600_000, 3) };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let loop_mod = compile(&loop_src(loop_n), &Options::o2()).expect("loop kernel compiles");
    let call_mod = compile(&call_src(call_rounds), &Options::o2()).expect("call kernel compiles");

    println!("Jit: loop kernel {loop_n} iteration(s), call kernel {call_rounds} round(s)");

    let loop_interp = run_timed(&loop_mod, 1 << 16, false, reps);
    let loop_jit = run_timed(&loop_mod, 1 << 16, true, reps);
    // A small semispace so the call kernel collects repeatedly.
    let call_interp = run_timed(&call_mod, 1 << 12, false, reps);
    let call_jit = run_timed(&call_mod, 1 << 12, true, reps);
    assert!(call_jit.outcome.collections >= 3, "call kernel must force repeated collections");

    let loop_speedup = compare("loop", &loop_interp, &loop_jit);
    let call_speedup = compare("call", &call_interp, &call_jit);

    // Only assert the speedup where native code actually ran: on an
    // unsupported host every procedure falls back to the interpreter
    // and the two runs measure the same engine.
    let native = loop_jit.enabled && loop_jit.compiled > 0;
    let asserted = !quick && native;
    let skip_reason = if asserted {
        String::new()
    } else if !native {
        "host did not compile the kernels to native code".to_string()
    } else {
        "quick mode is a report-only smoke run".to_string()
    };
    println!(
        "  speedup assertion {}",
        if asserted { "armed (>=3x on the loop kernel)" } else { "off (report only)" }
    );
    if !asserted {
        eprintln!("jit: warning: speedup assertion not armed: {skip_reason}");
    }

    let mut rep = StatsReport::new("jit");
    rep.put("quick", quick);
    rep.host(cores, asserted);
    rep.put("loop_iters", loop_n);
    rep.put("call_rounds", call_rounds);
    rep.put("loop_interp_ms", loop_interp.wall.as_secs_f64() * 1e3);
    rep.put("loop_jit_ms", loop_jit.wall.as_secs_f64() * 1e3);
    rep.put("loop_speedup", loop_speedup);
    rep.put("call_interp_ms", call_interp.wall.as_secs_f64() * 1e3);
    rep.put("call_jit_ms", call_jit.wall.as_secs_f64() * 1e3);
    rep.put("call_speedup", call_speedup);
    rep.put("call_collections", call_jit.outcome.collections);
    rep.put("call_pause_max_us_interp", pause_max_us(&call_interp.outcome));
    rep.put("call_pause_max_us_jit", pause_max_us(&call_jit.outcome));
    // Per-reason fallback counts (same shape as `--stats`'s
    // `jit_fallbacks`), so the artifact explains *why* a host fell
    // back, not just that it did.
    let mut fb = String::from("{");
    for (i, (reason, n)) in loop_jit.fallbacks.iter().enumerate() {
        if i > 0 {
            fb.push(',');
        }
        use std::fmt::Write as _;
        let _ = write!(fb, "\"{reason}\":{n}");
    }
    fb.push('}');
    rep.put_raw("jit_fallbacks", fb);
    rep.put("skip_reason", skip_reason.as_str());
    rep.put("outputs_match", true);
    let json = rep.to_json();
    println!("{json}");
    m3gc_bench::write_bench_json("jit", &json);

    if asserted {
        assert!(
            loop_speedup >= 3.0,
            "native code must beat the interpreter by >=3x on the loop kernel, got {loop_speedup:.2}x"
        );
    }
}
