//! Decode-cache experiment: cold vs warm collections.
//!
//! The paper (§6.3) prices each collection's stack trace as if every live
//! gc-point's table entry had to be decoded from scratch — with the
//! *Previous*-compressed schemes that means re-walking the procedure's
//! entries from its first gc-point every time. The runtime instead keeps a
//! [`DecodeCache`] for the module's lifetime, so only the *first*
//! collection that visits a pc pays the sequential decode; later
//! collections are pure memo hits.
//!
//! This experiment runs the loop-heavy benchmarks under gc-torture
//! (forced collection every allocation), splits the first collection
//! (cold) from the rest (warm), and reports the decode-operation counts
//! plus a direct cold-vs-warm wall-clock trace comparison on a paused
//! machine. The acceptance bar is a ≥2× reduction in decode operations on
//! warm collections; on steady-state loops the warm count is typically
//! zero.
//!
//! [`DecodeCache`]: m3gc_core::decode::DecodeCache

use std::time::Instant;

use m3gc_bench::{compile_benchmark, program};
use m3gc_core::decode::DecodeCache;
use m3gc_runtime::collector;
use m3gc_runtime::{Executor, RuntimeOptions, StatsReport};
use m3gc_vm::machine::{Machine, MachineLayout, RunOutcome};

/// Allocation-per-iteration loop: the motivating workload, where every
/// collection stops in the same handful of gc-points.
const LOOPALLOC: &str = "MODULE LoopAlloc;
TYPE R = REF RECORD x: INTEGER END;
VAR r: R; i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 500 DO
    r := NEW(R);
    r.x := i;
    s := (s + r.x) MOD 1000003;
  END;
  PutInt(s);
END LoopAlloc.";

/// One torture run's summary, for the machine-readable report.
struct TortureResult {
    name: &'static str,
    collections: u64,
    cold_ops: u64,
    warm_mean_ops: f64,
    warm_hit_rate: f64,
}

fn torture(name: &'static str, module: m3gc_vm::VmModule, semi_words: usize) -> TortureResult {
    let opts = RuntimeOptions::new()
        .semi_words(semi_words)
        .stack_words(1 << 15)
        .max_threads(2)
        .torture(true);
    let machine = opts.build_machine(module);
    let mut ex = Executor::new(machine, opts);
    ex.machine.spawn(ex.machine.module.main, &[]);
    let out = ex.run().expect("benchmark completes");
    assert!(out.collections >= 2, "{name}: need repeated collections");

    let cold = &out.gc_each[0];
    let warm = &out.gc_each[1..];
    let warm_ops: u64 = warm.iter().map(|s| s.decode_ops).sum();
    let warm_mean = warm_ops as f64 / warm.len() as f64;
    let warm_hits: u64 = warm.iter().map(|s| s.decode_hits).sum();
    let warm_lookups: u64 = warm.iter().map(|s| s.decode_hits + s.decode_misses).sum();
    let total_ops = cold.decode_ops + warm_ops;
    let ratio = if warm_mean > 0.0 {
        format!("{:.1}x", cold.decode_ops as f64 / warm_mean)
    } else {
        "inf".to_string()
    };

    println!("{name}:");
    println!("  collections           {:>8}", out.collections);
    println!("  cold decode ops       {:>8}   (first collection)", cold.decode_ops);
    println!("  warm decode ops/coll  {warm_mean:>8.2}   (mean of the rest)");
    println!("  cold/warm ratio       {ratio:>8}");
    println!(
        "  warm hit rate         {:>7.1}%   ({warm_hits}/{warm_lookups} lookups)",
        100.0 * warm_hits as f64 / warm_lookups as f64,
    );
    println!(
        "  total ops ≤ memo size {:>8}   (each pc decoded at most once: {})",
        total_ops,
        ex.decode_cache().memoized_points(),
    );
    assert!(
        warm_mean * 2.0 <= cold.decode_ops as f64,
        "{name}: warm collections must decode at least 2x fewer points"
    );
    println!();
    TortureResult {
        name,
        collections: out.collections,
        cold_ops: cold.decode_ops,
        warm_mean_ops: warm_mean,
        warm_hit_rate: warm_hits as f64 / (warm_lookups as f64).max(1.0),
    }
}

/// Runs `destroy` to its first heap exhaustion and times repeated stack
/// traces with a fresh cache per trace (cold) vs one reused cache
/// (warm). Returns `(cold_us, warm_us)` per trace.
fn trace_timing() -> (f64, f64) {
    let module = compile_benchmark(program("destroy"), true);
    let mut machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 8 * 1024,
            stack_words: 1 << 15,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let main = machine.module.main;
    let tid = machine.spawn(main, &[]);
    assert!(matches!(machine.run_thread(tid, u64::MAX), RunOutcome::NeedGc));

    const ITERS: u32 = 500;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let mut cache = DecodeCache::build(&machine.module.gc_maps).expect("valid maps");
        collector::trace_only(&mut machine, &mut cache);
    }
    let cold = t0.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS);

    let mut cache = DecodeCache::build(&machine.module.gc_maps).expect("valid maps");
    let t1 = Instant::now();
    for _ in 0..ITERS {
        collector::trace_only(&mut machine, &mut cache);
    }
    let warm = t1.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS);

    println!("destroy, paused at first exhaustion ({ITERS} traces each):");
    println!("  cold trace (fresh cache) {cold:>9.2} us");
    println!("  warm trace (kept cache)  {warm:>9.2} us   ({:.1}x)", cold / warm);
    (cold, warm)
}

fn main() {
    println!("Decode cache: cold vs warm collections (gc-torture, 1 alloc/gc)\n");
    let results = [
        torture("LoopAlloc", compile_benchmark(LOOPALLOC, true), 1 << 14),
        torture("takl", compile_benchmark(program("takl"), true), 1 << 14),
        torture("destroy", compile_benchmark(program("destroy"), true), 16 * 1024),
    ];
    let (trace_cold_us, trace_warm_us) = trace_timing();

    let programs: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"collections\":{},\"cold_ops\":{},\
                 \"warm_mean_ops\":{:.3},\"warm_hit_rate\":{:.4}}}",
                r.name, r.collections, r.cold_ops, r.warm_mean_ops, r.warm_hit_rate
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rep = StatsReport::new("decodecache");
    // The 2x cold/warm decode-op assertion is host-independent — always armed.
    rep.host(cores, true);
    rep.put_raw("programs", format!("[{}]", programs.join(",")));
    rep.put("trace_cold_us", trace_cold_us);
    rep.put("trace_warm_us", trace_warm_us);
    rep.put("trace_speedup", trace_cold_us / trace_warm_us.max(f64::MIN_POSITIVE));
    let json = rep.to_json();
    println!("{json}");
    m3gc_bench::write_bench_json("decodecache", &json);
}
