//! Allocation and root-scan fast-path experiment.
//!
//! Part A — TLAB throughput: four OS-thread mutators run an
//! allocation-dominated workload twice on the same compiled module, once
//! with TLABs disabled (`tlab_words = 0`: every `NEW` is a CAS on the
//! shared frontier) and once with the default TLAB size (one CAS per
//! ~1 KiW refill). The comparison is end-to-end allocation throughput.
//! The ≥2× speedup assertion only arms when the host has ≥4 hardware
//! threads and the run is not `--quick`; `--quick` still asserts TLABs
//! are at least break-even on such hosts.
//!
//! Part B — stack watermarks: a single-threaded generational run recurses
//! ~200 frames deep (each frame pinning a live cell) and then churns
//! garbage at the bottom through dozens of minor collections. The cold
//! recursion frames never change, so warm minors must splice them from
//! the watermark cache instead of re-decoding: the bench asserts ≥50% of
//! all traced frames were spliced. Shadow mode and the oracle are armed,
//! so every splice is also verified bit-identical to a full rescan.
//!
//! Writes `BENCH_allocfast.json` either way.

use std::time::Instant;

use m3gc_compiler::{compile, run_module, run_module_par_opts, Options};
use m3gc_runtime::parallel::ParOutcome;
use m3gc_runtime::{Executor, GcStrategy, RuntimeOptions, StatsReport};
use m3gc_vm::machine::HeapStrategy;
use m3gc_vm::DEFAULT_TLAB_WORDS;

/// Procedure-local allocation churn: every `NEW` is garbage by the next
/// iteration, so collections stay cheap and the run time is dominated by
/// the allocation path itself.
fn alloc_src(iters: usize) -> String {
    format!(
        "MODULE AllocFast;
TYPE R = REF RECORD a, b: INTEGER END;

PROCEDURE Work(): INTEGER =
VAR r: R; i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO {iters} DO
    r := NEW(R);
    r.a := i;
    s := (s + r.a) MOD 1000003;
  END;
  RETURN s;
END Work;

BEGIN
  PutInt(Work());
END AllocFast.",
    )
}

/// Deep recursion with a live cell per frame, then garbage churn at the
/// bottom: the cold frames are identical across the bottom's minor
/// collections, so the watermark cache must carry them.
fn deepscan_src(depth: usize, churn: usize) -> String {
    format!(
        "MODULE DeepScan;
TYPE Cell = REF RECORD v: INTEGER END;

PROCEDURE Churn(rounds: INTEGER): INTEGER =
VAR t: Cell; i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    t := NEW(Cell);
    t.v := i;
    s := (s + t.v) MOD 1000003;
  END;
  RETURN s;
END Churn;

PROCEDURE Deep(d: INTEGER): INTEGER =
VAR c: Cell;
BEGIN
  c := NEW(Cell);
  c.v := d;
  IF d > 0 THEN
    RETURN (c.v + Deep(d - 1)) MOD 1000003;
  END;
  RETURN (c.v + Churn({churn})) MOD 1000003;
END Deep;

BEGIN
  PutInt(Deep({depth}));
END DeepScan.",
    )
}

fn run_par(
    module: m3gc_vm::VmModule,
    semi_words: usize,
    mutators: usize,
    tlab_words: usize,
) -> (ParOutcome, f64) {
    let opts = RuntimeOptions::new()
        .strategy(GcStrategy::Parallel)
        .semi_words(semi_words)
        .stack_words(1 << 15)
        .threads(mutators)
        .tlab_words(tlab_words)
        .gc_workers(2);
    let t0 = Instant::now();
    let out = run_module_par_opts(module, opts)
        .unwrap_or_else(|e| panic!("allocfast run (tlab_words={tlab_words}) failed: {e}"));
    let secs = t0.elapsed().as_secs_f64();
    (out, secs)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = 4;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // --- Part A: TLAB vs shared-CAS allocation throughput. ---
    let iters = if quick { 300_000 } else { 2_000_000 };
    let semi_words = 1 << 20;
    let module = compile(&alloc_src(iters), &Options::o2()).expect("benchmark compiles");

    let (base, base_secs) = run_par(module.clone(), semi_words, threads, 0);
    let (tlab, tlab_secs) = run_par(module.clone(), semi_words, threads, DEFAULT_TLAB_WORDS);
    assert_eq!(base.outputs.len(), threads);
    assert_eq!(base.output, tlab.output, "TLABs must not perturb program semantics");
    assert_eq!(base.tlab_allocs, 0, "disabled TLABs must not serve fast-path allocations");
    assert!(tlab.tlab_refills > 0, "default TLABs must refill on this workload");
    assert!(
        tlab.tlab_allocs * 10 >= tlab.allocations * 9,
        "TLAB fast path must serve the vast majority of allocations, got {}/{}",
        tlab.tlab_allocs,
        tlab.allocations
    );

    // Waste: words handed to TLABs but discarded at retirement, as a
    // share of every word the mutators consumed (useful + discarded).
    let consumed = (tlab.words_allocated + tlab.tlab_waste_words) as f64;
    let waste_pct = 100.0 * tlab.tlab_waste_words as f64 / consumed.max(f64::MIN_POSITIVE);

    let base_tp = base.allocations as f64 / base_secs.max(f64::MIN_POSITIVE);
    let tlab_tp = tlab.allocations as f64 / tlab_secs.max(f64::MIN_POSITIVE);
    let speedup = tlab_tp / base_tp.max(f64::MIN_POSITIVE);

    // Contention only exists when the mutators truly run in parallel.
    let asserted = !quick && cores >= threads;
    let skip_reason = if asserted {
        String::new()
    } else if cores < threads {
        format!("host has {cores} hardware thread(s), the assertion needs >= {threads}")
    } else {
        "quick mode asserts break-even only".to_string()
    };

    println!("AllocFast: {threads} mutators x {iters} allocations");
    println!(
        "  host: {cores} hardware thread(s); 2x speedup assertion {}",
        if asserted { "armed" } else { "off" }
    );
    if !asserted {
        eprintln!("allocfast: warning: speedup assertion not armed: {skip_reason}");
    }
    println!("  shared CAS: {base_tp:>12.0} allocs/s ({base_secs:.3} s)");
    println!(
        "  tlab {DEFAULT_TLAB_WORDS}w: {tlab_tp:>12.0} allocs/s ({tlab_secs:.3} s), \
         {} refill(s), {} waste word(s) ({waste_pct:.2}% of consumed)",
        tlab.tlab_refills, tlab.tlab_waste_words
    );
    println!("  speedup {speedup:.2}x");

    // --- Part B: watermark splice rate on warm minors. ---
    let (depth, churn) = if quick { (200, 5_000) } else { (200, 20_000) };
    let deep_module = compile(&deepscan_src(depth, churn), &Options::o2()).expect("compiles");
    let deep_semi = 1 << 16;
    let reference = run_module(deep_module.clone(), deep_semi).expect("semispace reference");

    let heap = match HeapStrategy::generational_for(deep_semi) {
        HeapStrategy::Generational { promote_age, .. } => {
            HeapStrategy::Generational { nursery_words: 512, promote_age }
        }
        HeapStrategy::Semispace => unreachable!("generational_for is generational"),
    };
    let mut deep_opts = RuntimeOptions::new()
        .semi_words(deep_semi)
        .stack_words(1 << 15)
        .max_threads(4)
        .oracle(true);
    if let HeapStrategy::Generational { nursery_words, promote_age } = heap {
        deep_opts = deep_opts
            .strategy(GcStrategy::Generational)
            .nursery_words(nursery_words)
            .promote_age(promote_age);
    }
    let machine = deep_opts.build_machine(deep_module);
    let mut ex = Executor::new(machine, deep_opts);
    let deep = ex.run_main().expect("generational deep-recursion run");
    assert_eq!(deep.output, reference.output, "watermarks must not perturb program semantics");
    assert!(deep.minor_collections >= 5, "workload must drive repeated minors");

    let traced = deep.gc_total.frames_traced;
    let spliced = deep.gc_total.frames_spliced;
    let splice_ratio = spliced as f64 / (traced as f64).max(f64::MIN_POSITIVE);
    println!(
        "  watermark: depth {depth}, {} minor(s), {spliced} of {traced} frame(s) spliced \
         ({:.1}%)",
        deep.minor_collections,
        100.0 * splice_ratio
    );

    let mut rep = StatsReport::new("allocfast");
    rep.put("quick", quick);
    rep.host(cores, asserted);
    rep.put("threads", threads);
    rep.put("iters", iters);
    rep.put("tlab_words", DEFAULT_TLAB_WORDS);
    rep.put("base_allocs_per_s", base_tp);
    rep.put("tlab_allocs_per_s", tlab_tp);
    rep.put("speedup", speedup);
    rep.put("tlab_refills", tlab.tlab_refills);
    rep.put("tlab_fast_allocs", tlab.tlab_allocs);
    rep.put("tlab_waste_words", tlab.tlab_waste_words);
    rep.put("tlab_waste_pct", waste_pct);
    rep.put("wm_depth", depth);
    rep.put("wm_minors", deep.minor_collections);
    rep.put("frames_traced", traced);
    rep.put("frames_spliced", spliced);
    rep.put("splice_ratio", splice_ratio);
    rep.put("skip_reason", skip_reason.as_str());
    rep.put("outputs_match", true);
    let json = rep.to_json();
    println!("{json}");
    m3gc_bench::write_bench_json("allocfast", &json);

    // Deterministic regardless of host: warm minors at the bottom of the
    // recursion must carry the cold frames via the watermark cache.
    assert!(
        splice_ratio >= 0.5,
        "deep-recursion minors must splice >=50% of traced frames, got {spliced}/{traced}"
    );
    if asserted {
        assert!(
            speedup >= 2.0,
            "TLAB allocation must beat the shared frontier by >=2x at {threads} threads, \
             got {speedup:.2}x"
        );
    } else if cores >= threads {
        assert!(
            speedup >= 1.0,
            "TLAB allocation must at least break even at {threads} threads, got {speedup:.2}x"
        );
    }
}
