//! Concurrent-marking experiment: what fraction of the stop-the-world
//! pause does tracing account for?
//!
//! The workload is the worst case for pause-time tracing: a long live
//! *linked chain* every collection must evacuate, plus a garbage churn
//! loop. A chain has no trace parallelism — the parallel collector's
//! work-stealing trace degenerates to one worker chasing pointers for
//! the whole pause — but the marked *bitmap* partitions into chunks
//! regardless of pointer structure, so cms moves the serial chase off
//! the pause (concurrent markers walk the chain while the mutator
//! churns) and keeps only the chunk-parallel evacuation stopped. Both
//! runs use the same compiled module and heap size, so the live set at
//! each collection is equal, and both are validated against the
//! single-threaded semispace baseline.
//!
//! The headline assertions — cms final pause ≤ 0.5× the parallel
//! collector's full pause, and end-to-end throughput within 10% — only
//! arm on a full (non-`--quick`) run with ≥4 hardware threads: on a
//! smaller host the markers time-slice the mutator's core and the bench
//! degenerates to a report-only smoke test. Either way the run writes
//! `BENCH_cms.json` with the measured pauses and a `skip_reason` when
//! the assertions stay off.

use std::time::Duration;

use m3gc_compiler::{compile, run_module, run_module_par_opts, Options};
use m3gc_runtime::parallel::{ParGcStats, ParOutcome};
use m3gc_runtime::{GcStrategy, RuntimeOptions, StatsReport};

/// A live chain of `length` nodes plus a garbage churn loop (single
/// mutator, so the shared chain head is safe). The churn does a little
/// arithmetic per allocation so the heap fills at a realistic mutator
/// rate rather than an allocation-only sprint — that slack is what lets
/// the concurrent markers finish the chain walk before the occupancy
/// trigger's final pause.
fn cms_src(length: usize, churn: usize) -> String {
    format!(
        "MODULE CmsBench;
TYPE Node = REF RECORD v: INTEGER; next: Node END;
VAR head: Node;

PROCEDURE Build(n: INTEGER) =
VAR t: Node; i: INTEGER;
BEGIN
  FOR i := 1 TO n DO
    t := NEW(Node);
    t.v := i;
    t.next := head;
    head := t;
  END;
END Build;

PROCEDURE Sum(): INTEGER =
VAR p: Node; s: INTEGER;
BEGIN
  s := 0;
  p := head;
  WHILE p # NIL DO
    s := (s + p.v) MOD 1000003;
    p := p.next;
  END;
  RETURN s;
END Sum;

PROCEDURE Churn(rounds: INTEGER): INTEGER =
VAR t, u: Node; i, j, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    t := NEW(Node);
    t.v := i;
    (* Overwrite a live pointer field and restore it: the chain is
       unchanged and t stays garbage, but each store is a deletion-
       barrier site, so churn during concurrent marking enqueues
       SATB old values instead of exercising only allocation. *)
    u := head.next;
    head.next := t;
    head.next := u;
    FOR j := 1 TO 8 DO
      s := (s + t.v * j) MOD 1000003;
    END;
  END;
  RETURN s;
END Churn;

BEGIN
  Build({length});
  PutInt(Churn({churn}));
  PutInt(Sum());
END CmsBench.",
    )
}

/// Mean stop-the-world pause (`total_time`: the whole pause for the
/// parallel collector, the *final* pause for cms) over the collections
/// that evacuated the bulk of the live set — at least half the maximum
/// observed — skipping the partial collections during tree construction.
fn pause_mean_us(gc_each: &[ParGcStats]) -> (f64, u64) {
    let max_words = gc_each.iter().map(|s| s.words_copied).max().unwrap_or(0);
    let full: Vec<&ParGcStats> =
        gc_each.iter().filter(|s| s.words_copied * 2 >= max_words).collect();
    assert!(!full.is_empty(), "no full-live-set collections observed");
    let mean =
        full.iter().map(|s| s.total_time).sum::<Duration>().as_secs_f64() * 1e6 / full.len() as f64;
    (mean, full.len() as u64)
}

fn timed_run(module: m3gc_vm::VmModule, opts: RuntimeOptions, label: &str) -> (ParOutcome, f64) {
    let t0 = std::time::Instant::now();
    let out = run_module_par_opts(module, opts)
        .unwrap_or_else(|e| panic!("cms bench {label} run failed: {e}"));
    (out, t0.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // A 3-word node: 150K live nodes fill ~450K of the 1M-word space.
    // Churn is sized so the occupancy trigger fires several full cycles.
    let (length, churn, semi_words) =
        if quick { (6_000, 100_000, 1 << 16) } else { (150_000, 600_000, 1 << 20) };
    let workers = 4;
    let conc_workers = 2;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let src = cms_src(length, churn);
    let module = compile(&src, &Options::o2()).expect("benchmark compiles");

    // Correctness baseline: the single-threaded semispace collector.
    let baseline = run_module(module.clone(), semi_words).expect("baseline run");

    let par_opts = RuntimeOptions::new()
        .strategy(GcStrategy::Parallel)
        .semi_words(semi_words)
        .threads(1)
        .gc_workers(workers);
    let cms_opts = RuntimeOptions::new()
        .strategy(GcStrategy::Cms)
        .semi_words(semi_words)
        .threads(1)
        .gc_workers(workers)
        .conc_workers(conc_workers);
    let evac_opts = RuntimeOptions::new()
        .strategy(GcStrategy::Cms)
        .semi_words(semi_words)
        .threads(1)
        .gc_workers(workers)
        .conc_workers(conc_workers)
        .conc_evac(true);
    let (par, par_secs) = timed_run(module.clone(), par_opts, "parallel");
    let (cms, cms_secs) = timed_run(module.clone(), cms_opts, "cms");
    let (evac, evac_secs) = timed_run(module.clone(), evac_opts, "cms+conc-evac");
    assert_eq!(par.output, baseline.output, "parallel run must match semispace");
    assert_eq!(cms.output, baseline.output, "cms run must match semispace");
    assert_eq!(evac.output, baseline.output, "conc-evac run must match semispace");
    assert!(par.collections >= 3, "workload must trigger repeated parallel collections");
    assert!(cms.collections >= 3, "workload must trigger repeated cms cycles");
    assert!(cms.gc_each.iter().all(|s| s.cms_cycle), "every cms collection is a cms cycle");
    if !quick {
        // The churn loop overwrites live pointer fields, so concurrent
        // marking must observe deletion-barrier traffic.
        assert!(
            cms.satb_enqueued > 0,
            "churn during concurrent marking must enqueue SATB old values"
        );
    }

    let live_objects = par.gc_each.iter().map(|s| s.objects_copied).max().unwrap_or(0);
    let (par_pause_us, par_full) = pause_mean_us(&par.gc_each);
    let (cms_final_us, cms_full) = pause_mean_us(&cms.gc_each);
    let snap_us = cms.gc_each.iter().map(|s| s.snapshot_pause.as_secs_f64() * 1e6);
    let snap_mean_us = snap_us.clone().sum::<f64>() / cms.gc_each.len() as f64;
    let snap_max_us = snap_us.fold(0.0, f64::max);
    let mark_mean_us =
        cms.gc_each.iter().map(|s| s.mark_concurrent.as_secs_f64() * 1e6).sum::<f64>()
            / cms.gc_each.len() as f64;
    let pause_ratio = cms_final_us / par_pause_us.max(f64::MIN_POSITIVE);
    let slowdown = cms_secs / par_secs.max(f64::MIN_POSITIVE);

    // The conc-evac run: final pauses over the cycles that actually
    // evacuated concurrently (early forced collections before a cycle's
    // select handshake fall back to pause-time copying and are judged
    // like plain cms collections).
    let evac_cycles: Vec<&ParGcStats> = evac.gc_each.iter().filter(|s| s.evac_cycle).collect();
    let (evac_final_us, evac_full) = if evac_cycles.is_empty() {
        pause_mean_us(&evac.gc_each)
    } else {
        let mean = evac_cycles.iter().map(|s| s.total_time).sum::<Duration>().as_secs_f64() * 1e6
            / evac_cycles.len() as f64;
        (mean, evac_cycles.len() as u64)
    };
    let cycle_mean_us = |f: fn(&ParGcStats) -> Duration| {
        evac_cycles.iter().map(|s| f(s).as_secs_f64() * 1e6).sum::<f64>()
            / (evac_cycles.len().max(1)) as f64
    };
    let evac_select_us = cycle_mean_us(|s| s.evac_select_pause);
    let evac_conc_us = cycle_mean_us(|s| s.evac_conc_time);
    let evac_pause_ratio = evac_final_us / cms_final_us.max(f64::MIN_POSITIVE);
    let evac_slowdown = evac_secs / par_secs.max(f64::MIN_POSITIVE);

    // The mutator, the markers and the evacuation workers all need real
    // hardware threads for the pause split to mean anything; record
    // exactly why whenever the assertions stay off.
    let asserted = !quick && cores >= workers;
    let skip_reason = if asserted {
        String::new()
    } else if quick {
        "quick mode is a report-only smoke run".to_string()
    } else {
        format!("host has {cores} hardware thread(s), the assertion needs >= {workers}")
    };

    println!(
        "Cms: live chain of {length} nodes (~{live_objects} objects evacuated), {churn} churn allocations"
    );
    println!(
        "  host: {cores} hardware thread(s); pause/throughput assertions {}",
        if asserted { "armed" } else { "off (report only)" }
    );
    if !asserted {
        eprintln!("cms: warning: pause/throughput assertions not armed: {skip_reason}");
    }
    println!(
        "  par: full pause mean {par_pause_us:>10.2} us over {par_full} full collection(s), {par_secs:.3} s total"
    );
    println!(
        "  cms: final pause mean {cms_final_us:>10.2} us over {cms_full} full cycle(s), {cms_secs:.3} s total"
    );
    println!(
        "  cms: snapshot pause mean {snap_mean_us:.2} us / max {snap_max_us:.2} us, concurrent mark mean {mark_mean_us:.2} us"
    );
    println!(
        "  final/full pause ratio {pause_ratio:.2}; satb {} enqueue(s), {} drained",
        cms.satb_enqueued, cms.satb_drained
    );
    println!(
        "  evac: final pause mean {evac_final_us:>10.2} us over {evac_full} evacuating cycle(s), {evac_secs:.3} s total"
    );
    println!(
        "  evac: select pause mean {evac_select_us:.2} us, concurrent copy mean {evac_conc_us:.2} us"
    );
    println!(
        "  evac: moved {} object(s) / {} word(s) concurrently; healed {} load(s), {} store(s); evac/cms final ratio {evac_pause_ratio:.2}",
        evac.evac_objects, evac.evac_words, evac.evac_healed_loads, evac.evac_healed_stores
    );

    let mut rep = StatsReport::new("cms");
    rep.put("quick", quick);
    rep.host(cores, asserted);
    rep.put("chain_length", length);
    rep.put("live_objects", live_objects);
    rep.put("workers", workers);
    rep.put("conc_workers", conc_workers);
    rep.put("par_pause_mean_us", par_pause_us);
    rep.put("cms_final_pause_mean_us", cms_final_us);
    rep.put("cms_snapshot_pause_mean_us", snap_mean_us);
    rep.put("cms_snapshot_pause_max_us", snap_max_us);
    rep.put("cms_mark_concurrent_mean_us", mark_mean_us);
    rep.put("pause_ratio", pause_ratio);
    rep.put("par_secs", par_secs);
    rep.put("cms_secs", cms_secs);
    rep.put("slowdown", slowdown);
    rep.put("satb_enqueued", cms.satb_enqueued);
    rep.put("satb_drained", cms.satb_drained);
    rep.put("evac_cycles", evac_full);
    rep.put("evac_final_pause_mean_us", evac_final_us);
    rep.put("evac_select_pause_mean_us", evac_select_us);
    rep.put("evac_conc_copy_mean_us", evac_conc_us);
    rep.put("evac_objects", evac.evac_objects);
    rep.put("evac_words", evac.evac_words);
    rep.put("evac_healed_loads", evac.evac_healed_loads);
    rep.put("evac_healed_stores", evac.evac_healed_stores);
    rep.put("evac_pause_ratio", evac_pause_ratio);
    rep.put("evac_secs", evac_secs);
    rep.put("evac_slowdown", evac_slowdown);
    rep.put("skip_reason", skip_reason.as_str());
    rep.put("outputs_match", true);
    let json = rep.to_json();
    println!("{json}");
    m3gc_bench::write_bench_json("cms", &json);

    if asserted {
        assert!(
            pause_ratio <= 0.5,
            "cms final pause must be <= 0.5x the parallel full pause at equal live set, got {pause_ratio:.2}x"
        );
        assert!(
            slowdown <= 1.10,
            "cms throughput must stay within 10% of the parallel collector, got {slowdown:.2}x slower"
        );
        assert!(
            !evac_cycles.is_empty(),
            "the conc-evac run must complete at least one concurrent evacuation cycle"
        );
        assert!(
            evac_pause_ratio <= 0.5,
            "conc-evac final pause must be <= 0.5x the cms pause-time-copy final pause, got {evac_pause_ratio:.2}x"
        );
    }
}
