//! Linear-scan register allocation.
//!
//! Each temp gets one location for its whole lifetime: a register, a spill
//! slot, or (for parameters) its incoming `AP` argument slot. Temps whose
//! live interval crosses a call may only use **callee-save** registers —
//! this is what lets the collector reconstruct the register contents of a
//! suspended frame from callee save areas (§3): caller-save registers
//! never carry gc-relevant values across a call.

use m3gc_ir::bitset::BitSet;
use m3gc_ir::cfg;
use m3gc_ir::deriv::DerivAnalysis;
use m3gc_ir::liveness::{liveness, Liveness};
use m3gc_ir::{BlockId, Function, Instr, Temp};
use m3gc_vm::isa::FIRST_CALLEE_SAVE;

/// Caller-save registers available for allocation (r0 and r1 are reserved
/// as scratch).
pub const CALLER_SAVE_POOL: [u8; 4] = [2, 3, 4, 5];
/// Callee-save registers available for allocation.
pub const CALLEE_SAVE_POOL: [u8; 6] = [6, 7, 8, 9, 10, 11];
/// Scratch registers used when materializing spilled operands.
pub const SCRATCH: [u8; 2] = [0, 1];

/// Where a temp lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TempLoc {
    /// A general-purpose register.
    Reg(u8),
    /// A frame spill slot (index into the spill area; the frame layout
    /// turns it into an FP offset).
    Spill(u32),
    /// The incoming argument word `AP + index` (parameters only).
    ApSlot(u32),
    /// Never used; reads yield garbage, writes are discarded via scratch.
    Unused,
}

/// The allocation result for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location of each temp.
    pub locs: Vec<TempLoc>,
    /// Callee-save registers this function uses (must be saved).
    pub used_callee_saves: Vec<u8>,
    /// Number of spill slots.
    pub n_spills: u32,
    /// Liveness (reused by the emitter for gc-point live sets).
    pub liveness: Liveness,
    /// Block layout order used for linearization.
    pub order: Vec<BlockId>,
    /// Linear position of the first instruction of each block.
    pub block_start: Vec<u32>,
}

#[derive(Debug, Clone)]
struct Interval {
    temp: Temp,
    start: u32,
    end: u32,
    crosses_call: bool,
}

/// Computes the linear position of every instruction: blocks in `order`,
/// one position per instruction plus one for the terminator.
fn block_starts(f: &Function, order: &[BlockId]) -> Vec<u32> {
    let mut starts = vec![0u32; f.blocks.len()];
    let mut pos = 0u32;
    for &b in order {
        starts[b.index()] = pos;
        pos += f.block(b).instrs.len() as u32 + 1;
    }
    starts
}

/// Allocates registers for `f`.
///
/// `deriv` drives the dead-base liveness extension (pass the analysis the
/// emitter will also use); with gc support off, pass a no-derivations
/// analysis.
#[must_use]
pub fn allocate(f: &Function, deriv: Option<&DerivAnalysis>) -> Allocation {
    let order = cfg::reverse_postorder(f);
    let block_start = block_starts(f, &order);
    let lv = liveness(f, deriv);
    let n = f.temp_count();

    let mut start = vec![u32::MAX; n];
    let mut end = vec![0u32; n];
    let mut extend = |t: usize, p: u32| {
        if p < start[t] {
            start[t] = p;
        }
        if p > end[t] {
            end[t] = p;
        }
    };

    // Parameters are live from position 0.
    for p in 0..f.n_params {
        extend(p, 0);
    }
    let mut call_positions: Vec<u32> = Vec::new();
    for &b in &order {
        let block = f.block(b);
        let p0 = block_start[b.index()];
        for t in lv.live_in[b.index()].iter() {
            extend(t, p0);
        }
        for t in lv.live_out[b.index()].iter() {
            extend(t, p0 + block.instrs.len() as u32);
        }
        let after = lv.live_after_each(f, b, deriv);
        let mut uses = Vec::new();
        for (i, ins) in block.instrs.iter().enumerate() {
            let pos = p0 + i as u32;
            if let Some(d) = ins.def() {
                extend(d.index(), pos);
            }
            uses.clear();
            ins.uses(&mut uses);
            for &u in &uses {
                extend(u.index(), pos);
            }
            for t in after[i].iter() {
                extend(t, pos + 1);
            }
            if let Instr::Call { args, .. } = ins {
                call_positions.push(pos);
                // Bases of derived arguments must survive the call so the
                // collector can update the pushed derived values (§3/§4).
                if let Some(d) = deriv {
                    let mut support = Vec::new();
                    for &a in args {
                        if d.is_derived(a) {
                            d.expand_support(a, &mut support);
                        }
                    }
                    for s in support {
                        extend(s.index(), pos + 1);
                    }
                }
            }
        }
        uses.clear();
        block.term.uses(&mut uses);
        let tpos = p0 + block.instrs.len() as u32;
        for &u in &uses {
            extend(u.index(), tpos);
        }
    }
    call_positions.sort_unstable();

    let crosses_call = |s: u32, e: u32| -> bool {
        // A value crosses the call at position p when it is live into the
        // callee's execution: its interval starts no later than p and ends
        // strictly after it. (A call's own result starts at p and may end
        // later — it is written after the callee returns, so treating it
        // as crossing is conservative but harmless.)
        call_positions.iter().any(|&p| s <= p && e > p)
    };

    let mut intervals: Vec<Interval> = (0..n)
        .filter(|&t| start[t] != u32::MAX)
        // By-ref (VAR) parameters are pinned to their incoming AP slot:
        // they hold possibly-interior addresses that the *caller's*
        // derivation record updates in place, so every use must re-read
        // the slot rather than a (potentially stale) register copy.
        .filter(|&t| !f.byref_params.get(t).copied().unwrap_or(false))
        .map(|t| Interval {
            temp: Temp(t as u32),
            start: start[t],
            end: end[t],
            crosses_call: crosses_call(start[t], end[t]),
        })
        .collect();
    intervals.sort_by_key(|iv| iv.start);

    let mut locs = vec![TempLoc::Unused; n];
    for (p, &byref) in f.byref_params.iter().enumerate() {
        if byref {
            locs[p] = TempLoc::ApSlot(p as u32);
        }
    }
    let mut active: Vec<(u32 /*end*/, u8 /*reg*/, Temp)> = Vec::new();
    let mut free_caller: Vec<u8> = CALLER_SAVE_POOL.to_vec();
    let mut free_callee: Vec<u8> = CALLEE_SAVE_POOL.to_vec();
    let mut used_callee_saves: Vec<u8> = Vec::new();
    let mut n_spills = 0u32;

    for iv in &intervals {
        // Expire finished intervals (strictly before this start: equal
        // endpoints conservatively conflict).
        active.retain(|&(e, r, _)| {
            if e < iv.start {
                if CALLEE_SAVE_POOL.contains(&r) {
                    free_callee.push(r);
                } else {
                    free_caller.push(r);
                }
                false
            } else {
                true
            }
        });
        let reg = if iv.crosses_call {
            free_callee.pop()
        } else {
            free_caller.pop().or_else(|| free_callee.pop())
        };
        match reg {
            Some(r) => {
                if CALLEE_SAVE_POOL.contains(&r) && !used_callee_saves.contains(&r) {
                    used_callee_saves.push(r);
                }
                locs[iv.temp.index()] = TempLoc::Reg(r);
                active.push((iv.end, r, iv.temp));
            }
            None => {
                // Spill. Parameters fall back to their incoming slot.
                if iv.temp.index() < f.n_params {
                    locs[iv.temp.index()] = TempLoc::ApSlot(iv.temp.0);
                } else {
                    locs[iv.temp.index()] = TempLoc::Spill(n_spills);
                    n_spills += 1;
                }
            }
        }
    }
    used_callee_saves.sort_unstable();
    debug_assert!(used_callee_saves.iter().all(|r| *r >= FIRST_CALLEE_SAVE));
    Allocation { locs, used_callee_saves, n_spills, liveness: lv, order, block_start }
}

/// The set of temps live at a given linear program point, restricted to
/// those with a real location.
#[must_use]
pub fn live_located(alloc: &Allocation, live: &BitSet) -> Vec<Temp> {
    live.iter()
        .map(|i| Temp(i as u32))
        .filter(|t| alloc.locs[t.index()] != TempLoc::Unused)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::deriv::analyze_and_resolve;
    use m3gc_ir::{BinOp, FuncId, TempKind};

    #[test]
    fn values_across_calls_use_callee_save_or_spill() {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Int], Some(TempKind::Int));
        let x = b.constant(5);
        let _ = b.call(FuncId(0), vec![b.param(0)], Some(TempKind::Int));
        let r = b.bin(BinOp::Add, x, x); // x lives across the call
        b.ret(Some(r));
        let f = b.finish();
        let alloc = allocate(&f, None);
        match alloc.locs[x.index()] {
            TempLoc::Reg(r) => {
                assert!(CALLEE_SAVE_POOL.contains(&r), "x must be callee-save, got r{r}");
                assert!(alloc.used_callee_saves.contains(&r));
            }
            TempLoc::Spill(_) => {}
            other => panic!("unexpected loc {other:?}"),
        }
    }

    #[test]
    fn short_lived_values_prefer_caller_save() {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Int], Some(TempKind::Int));
        let x = b.constant(5);
        let y = b.bin(BinOp::Add, x, b.param(0));
        b.ret(Some(y));
        let f = b.finish();
        let alloc = allocate(&f, None);
        match alloc.locs[x.index()] {
            TempLoc::Reg(r) => assert!(CALLER_SAVE_POOL.contains(&r), "got r{r}"),
            other => panic!("unexpected loc {other:?}"),
        }
        assert!(alloc.used_callee_saves.is_empty());
        assert_eq!(alloc.n_spills, 0);
    }

    #[test]
    fn pressure_forces_spills() {
        // Create more simultaneously-live temps than registers.
        let mut b = FuncBuilder::with_ret("f", &[], Some(TempKind::Int));
        let temps: Vec<_> = (0..15).map(|i| b.constant(i)).collect();
        // Use them all at the end so they are simultaneously live.
        let mut acc = temps[0];
        for &t in &temps[1..] {
            acc = b.bin(BinOp::Add, acc, t);
        }
        b.ret(Some(acc));
        let f = b.finish();
        let alloc = allocate(&f, None);
        assert!(alloc.n_spills > 0, "expected spills with 15 live temps");
    }

    #[test]
    fn spilled_params_use_ap_slots() {
        // Eight parameters all live across a call: only six callee-save
        // registers exist, so at least two params fall back to their
        // incoming AP slots.
        let params = vec![TempKind::Int; 8];
        let mut b = FuncBuilder::with_ret("f", &params, Some(TempKind::Int));
        let _ = b.call(FuncId(0), vec![], None);
        let mut acc = b.param(0);
        for p in 1..8 {
            acc = b.bin(BinOp::Add, acc, b.param(p));
        }
        b.ret(Some(acc));
        let f = b.finish();
        let alloc = allocate(&f, None);
        let ap_params = (0..8)
            .filter(|&p| matches!(alloc.locs[p], TempLoc::ApSlot(i) if i == p as u32))
            .count();
        let reg_params = (0..8).filter(|&p| matches!(alloc.locs[p], TempLoc::Reg(_))).count();
        assert_eq!(ap_params + reg_params, 8);
        assert!(ap_params >= 2, "expected at least two AP-homed params, got {ap_params}");
    }

    #[test]
    fn derived_bases_survive_calls() {
        // d = p + i pushed as arg; base p must be callee-save/memory even
        // though its last plain use is the call itself.
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr, TempKind::Int]);
        let d = b.bin(BinOp::Add, b.param(0), b.param(1));
        let _ = b.call(FuncId(0), vec![d], None);
        b.ret(None);
        let mut f = b.finish();
        let deriv = analyze_and_resolve(&mut f);
        let alloc = allocate(&f, Some(&deriv));
        match alloc.locs[0] {
            TempLoc::Reg(r) => assert!(
                CALLEE_SAVE_POOL.contains(&r),
                "base must survive the call in a callee-save register, got r{r}"
            ),
            TempLoc::ApSlot(_) | TempLoc::Spill(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unused_temps_get_no_location() {
        let mut b = FuncBuilder::new("f", &[]);
        let t = b.temp(TempKind::Int);
        let _ = t;
        b.ret(None);
        let f = b.finish();
        let alloc = allocate(&f, None);
        assert_eq!(alloc.locs[t.index()], TempLoc::Unused);
    }
}
