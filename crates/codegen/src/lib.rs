//! IR → VM code generation with gc-map emission.
//!
//! This crate implements the compiler-side half of the paper:
//!
//! * **gc-point placement** (§5.3): calls are gc-points (all of them, or —
//!   with the interprocedural refinement — only calls to transitively
//!   allocating procedures), allocations are gc-points, and loops that do
//!   not execute a guaranteed gc-point on every iteration get an explicit
//!   one on the back edge so pre-empted threads reach a gc-point in
//!   bounded time;
//! * **liveness-driven map emission**: at every gc-point the generator
//!   records which frame slots and registers hold live tidy pointers and
//!   the derivation of every live derived value (with path variables for
//!   ambiguous ones), honouring the *dead base* rule — the bases of a
//!   derived value pushed as a `VAR` argument stay live (and in
//!   callee-save registers or memory) for the duration of the call;
//! * **register allocation** ([`regalloc`]): linear scan over liveness
//!   intervals; values live across calls use callee-save registers or
//!   spill, so a suspended frame's register contents can always be
//!   reconstructed from save areas;
//! * **frame layout**: callee-save area, source variable slots, spill
//!   slots — all described by ground-table entries relative to `FP`/`AP`
//!   exactly as in Figure 4.

pub mod emit;
pub mod gcpoints;
pub mod regalloc;

use m3gc_core::encode::Scheme;
use m3gc_ir::Program;
use m3gc_vm::VmModule;

/// Which calls are gc-points (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallPolicy {
    /// Every call except non-allocating runtime services — the paper's
    /// implementation (required for pre-emptive threads).
    AllCalls,
    /// Only calls to (transitively) allocating procedures — the
    /// interprocedural refinement the paper mentions; sound only
    /// single-threaded.
    AllocatingOnly,
}

/// GC-related code generation configuration.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Emit gc maps and apply gc liveness rules. Turning this off gives
    /// the §6.2 baseline compiler for code-difference measurements.
    pub emit_tables: bool,
    /// Which calls are gc-points.
    pub calls: CallPolicy,
    /// Insert gc-points in loops without a guaranteed one.
    pub loop_gc_points: bool,
    /// Emit write barriers ([`m3gc_vm::isa::Instr::StB`]) at pointer
    /// stores into heap objects, for generational collection. Barriers
    /// are elided when the stored value is statically a non-pointer or
    /// the target object is provably nursery-fresh (allocated in this
    /// block with no gc-point since) or provably outside the heap (a
    /// frame-slot or global address). On a non-generational heap the
    /// barrier instruction degenerates to a plain store, so barrier-
    /// compiled code runs unchanged under either collector.
    pub write_barriers: bool,
    /// Liveness-driven gc-maps: prune frame slots whose pointer contents
    /// are provably dead from each gc-point's live set, and list them in
    /// the point's *killed* table instead — the collector nulls them, so
    /// dead references retain nothing (no float). Slots with outstanding
    /// aliases (VAR arguments, WITH bindings) stay live while the alias
    /// can still be read; see `m3gc_ir::liveness::slot_liveness`. Turning
    /// this off restores the paper's every-slot-always-live maps.
    pub live_maps: bool,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            emit_tables: true,
            calls: CallPolicy::AllCalls,
            loop_gc_points: true,
            write_barriers: true,
            live_maps: true,
        }
    }
}

/// Code generation options.
#[derive(Debug, Clone, Copy)]
pub struct CodegenOptions {
    /// GC strategy.
    pub gc: GcConfig,
    /// Encoding scheme for the emitted tables.
    pub scheme: Scheme,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions { gc: GcConfig::default(), scheme: Scheme::DELTA_MAIN_PP }
    }
}

/// Compiles an IR program to a VM module.
///
/// The program is mutated: loop gc-points and path-variable assignments
/// are inserted as needed.
///
/// # Panics
///
/// Panics on malformed IR (run `m3gc_ir::verify` first).
#[must_use]
pub fn compile_program(prog: &mut Program, options: &CodegenOptions) -> VmModule {
    emit::compile(prog, options)
}
