//! Gc-point placement (§5.3).
//!
//! Calls and allocations are gc-points. To bound the time a pre-empted
//! thread needs to reach one, every natural loop that does not execute a
//! *guaranteed* gc-point on each iteration gets an explicit `GcPoint`
//! instruction at its header. A loop's gc-point is guaranteed when some
//! block that lies on every path around the loop (it dominates the latch)
//! contains a call gc-point or an allocation.

use m3gc_ir::cfg;
use m3gc_ir::{Function, Instr, Program};

use crate::{CallPolicy, GcConfig};

/// Is this instruction a gc-point under `policy`?
/// (`allocating[f]` = may procedure `f` transitively allocate.)
#[must_use]
pub fn is_gc_point_instr(ins: &Instr, policy: CallPolicy, allocating: &[bool]) -> bool {
    match ins {
        Instr::New { .. } | Instr::GcPoint => true,
        Instr::Call { func, .. } => match policy {
            CallPolicy::AllCalls => true,
            CallPolicy::AllocatingOnly => allocating[func.index()],
        },
        // Runtime services are statically known not to allocate (§5.3).
        _ => false,
    }
}

/// Inserts a `GcPoint` at the header of every loop of `f` that lacks a
/// guaranteed gc-point. Returns how many were inserted.
pub fn insert_loop_gc_points(f: &mut Function, policy: CallPolicy, allocating: &[bool]) -> usize {
    let loops = cfg::natural_loops(f);
    if loops.is_empty() {
        return 0;
    }
    let idom = cfg::dominators(f);
    let mut inserted = 0;
    // Process smaller (inner) loops first so an inserted inner gc-point can
    // satisfy an enclosing loop.
    let mut order: Vec<usize> = (0..loops.len()).collect();
    order.sort_by_key(|&i| loops[i].body.len());
    let mut headers_done: Vec<m3gc_ir::BlockId> = Vec::new();
    for i in order {
        let l = &loops[i];
        if headers_done.contains(&l.header) {
            continue;
        }
        let guaranteed = l.body.iter().any(|&b| {
            cfg::dominates(&idom, b, l.latch)
                && f.block(b).instrs.iter().any(|ins| is_gc_point_instr(ins, policy, allocating))
        });
        if !guaranteed {
            f.block_mut(l.header).instrs.insert(0, Instr::GcPoint);
            inserted += 1;
        }
        headers_done.push(l.header);
    }
    inserted
}

/// Applies the configured gc-point placement to a whole program; returns
/// the number of loop gc-points inserted.
pub fn place_gc_points(prog: &mut Program, gc: &GcConfig) -> usize {
    if !gc.loop_gc_points {
        return 0;
    }
    let allocating = prog.compute_allocating();
    let mut inserted = 0;
    for f in &mut prog.funcs {
        inserted += insert_loop_gc_points(f, gc.calls, &allocating);
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_core::heap::TypeId;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::{BinOp, FuncId, TempKind};

    /// A counting loop with no calls: needs a loop gc-point.
    #[test]
    fn bare_loop_gets_gc_point() {
        let mut b = FuncBuilder::new("f", &[TempKind::Int]);
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, b.param(0), b.param(0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        let n = insert_loop_gc_points(&mut f, CallPolicy::AllCalls, &[]);
        assert_eq!(n, 1);
        assert_eq!(f.block(header).instrs[0], Instr::GcPoint);
    }

    /// A loop that allocates every iteration is already guaranteed.
    #[test]
    fn allocating_loop_is_guaranteed() {
        let mut b = FuncBuilder::new("f", &[TempKind::Int]);
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, b.param(0), b.param(0));
        b.br(c, body, exit);
        b.switch_to(body);
        let _ = b.new_object(TypeId(0), None);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        let n = insert_loop_gc_points(&mut f, CallPolicy::AllCalls, &[]);
        assert_eq!(n, 0);
    }

    /// A loop whose only gc-point is inside a conditional is NOT
    /// guaranteed (the other path could spin forever).
    #[test]
    fn conditional_gc_point_is_not_guaranteed() {
        let mut b = FuncBuilder::new("f", &[TempKind::Int]);
        let header = b.block();
        let then_b = b.block();
        let join = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, b.param(0), b.param(0));
        b.br(c, then_b, join);
        b.switch_to(then_b);
        let _ = b.new_object(TypeId(0), None);
        b.jump(join);
        b.switch_to(join);
        let c2 = b.bin(BinOp::Lt, b.param(0), b.param(0));
        b.br(c2, header, exit);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        let n = insert_loop_gc_points(&mut f, CallPolicy::AllCalls, &[]);
        assert_eq!(n, 1);
    }

    #[test]
    fn call_policy_distinguishes_allocating() {
        let call = Instr::Call { dst: None, func: FuncId(0), args: vec![] };
        assert!(is_gc_point_instr(&call, CallPolicy::AllCalls, &[false]));
        assert!(!is_gc_point_instr(&call, CallPolicy::AllocatingOnly, &[false]));
        assert!(is_gc_point_instr(&call, CallPolicy::AllocatingOnly, &[true]));
    }
}
