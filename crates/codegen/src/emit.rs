//! Instruction emission and gc-map construction.

use m3gc_core::derive::{order_derived_before_bases, DerivationRecord, Sign};
use m3gc_core::encode::encode_module;
use m3gc_core::layout::{BaseReg, GroundEntry, Location, RegSet};
use m3gc_core::tables::{GcPointTables, ModuleTables, ProcTables};
use m3gc_ir::bitset::BitSet;
use m3gc_ir::deriv::{analyze_and_resolve, DerivAnalysis, DerivKind};
use m3gc_ir::{Function, Instr as Ir, Program, Temp, TempKind, Terminator};
use m3gc_vm::asm::Assembler;
use m3gc_vm::isa::{AluOp, Instr as Vm, UnAluOp};
use m3gc_vm::module::{ProcMeta, VmModule};

use crate::gcpoints::{self, is_gc_point_instr};
use crate::regalloc::{self, Allocation, TempLoc, SCRATCH};
use crate::CodegenOptions;

fn alu_of(op: m3gc_ir::BinOp) -> AluOp {
    use m3gc_ir::BinOp as B;
    match op {
        B::Add => AluOp::Add,
        B::Sub => AluOp::Sub,
        B::Mul => AluOp::Mul,
        B::Div => AluOp::Div,
        B::Mod => AluOp::Mod,
        B::And => AluOp::And,
        B::Or => AluOp::Or,
        B::Xor => AluOp::Xor,
        B::Eq => AluOp::Eq,
        B::Ne => AluOp::Ne,
        B::Lt => AluOp::Lt,
        B::Le => AluOp::Le,
        B::Gt => AluOp::Gt,
        B::Ge => AluOp::Ge,
    }
}

/// Frame layout of one procedure, all offsets FP-relative in words:
/// `[callee-save area][source slots][spill slots]`, with outgoing call
/// arguments pushed just past `frame_words`.
struct Frame {
    save_offsets: Vec<(u8, i32)>,
    slot_offsets: Vec<i32>,
    spill_base: i32,
    frame_words: u32,
}

impl Frame {
    fn layout(f: &Function, alloc: &Allocation) -> Frame {
        let mut off = 0i32;
        let save_offsets: Vec<(u8, i32)> = alloc
            .used_callee_saves
            .iter()
            .map(|&r| {
                let o = off;
                off += 1;
                (r, o)
            })
            .collect();
        let mut slot_offsets = Vec::with_capacity(f.slots.len());
        for s in &f.slots {
            slot_offsets.push(off);
            off += s.words as i32;
        }
        let spill_base = off;
        off += alloc.n_spills as i32;
        Frame { save_offsets, slot_offsets, spill_base, frame_words: off as u32 }
    }

    fn spill_off(&self, k: u32) -> i32 {
        self.spill_base + k as i32
    }
}

/// Everything needed while emitting one function.
struct FnEmit<'a> {
    f: &'a Function,
    deriv: Option<&'a DerivAnalysis>,
    alloc: &'a Allocation,
    frame: &'a Frame,
    /// Ground table under construction.
    ground: Vec<GroundEntry>,
    /// Ground indices of source-slot pointer words (every one, in slot
    /// order) — the live set at every gc-point when liveness pruning is
    /// off.
    always_live: Vec<u32>,
    /// Ground indices of each slot's pointer words, indexed by slot id —
    /// used to split slots into live/killed when liveness pruning is on.
    slot_ground: Vec<Vec<u32>>,
    /// Ground index of each pointer param's AP slot.
    param_ground: Vec<Option<u32>>,
    /// Ground index of each spilled tidy-pointer temp's slot.
    temp_ground: Vec<Option<u32>>,
    /// Collected gc-points (pc ascending).
    points: Vec<GcPointTables>,
}

impl<'a> FnEmit<'a> {
    fn new(
        f: &'a Function,
        deriv: Option<&'a DerivAnalysis>,
        alloc: &'a Allocation,
        frame: &'a Frame,
    ) -> FnEmit<'a> {
        let mut e = FnEmit {
            f,
            deriv,
            alloc,
            frame,
            ground: Vec::new(),
            always_live: Vec::new(),
            slot_ground: vec![Vec::new(); f.slots.len()],
            param_ground: vec![None; f.n_params],
            temp_ground: vec![None; f.temp_count()],
            points: Vec::new(),
        };
        // Source-slot pointer words: every pointer in a frame slot is a
        // separate ground entry (§5.2) and is traced at every gc-point
        // (slots are NIL-initialized at frame setup) — unless liveness
        // pruning proves the slot dead, in which case the gc-point lists
        // the words as killed instead.
        for (sid, s) in f.slots.iter().enumerate() {
            for &w in &s.ptr_words {
                let idx =
                    e.add_ground(GroundEntry::new(BaseReg::Fp, frame.slot_offsets[sid] + w as i32));
                e.always_live.push(idx);
                e.slot_ground[sid].push(idx);
            }
        }
        // Pointer parameters: their AP slots are roots while the parameter
        // is live.
        for p in 0..f.n_params {
            if f.kind(Temp(p as u32)) == TempKind::Ptr {
                let idx = e.add_ground(GroundEntry::new(BaseReg::Ap, p as i32));
                e.param_ground[p] = Some(idx);
            }
        }
        // Spilled tidy-pointer temps.
        for t in 0..f.temp_count() {
            if f.kind(Temp(t as u32)) == TempKind::Ptr {
                if let TempLoc::Spill(k) = alloc.locs[t] {
                    let idx = e.add_ground(GroundEntry::new(BaseReg::Fp, frame.spill_off(k)));
                    e.temp_ground[t] = Some(idx);
                }
            }
        }
        e
    }

    fn add_ground(&mut self, entry: GroundEntry) -> u32 {
        if let Some(i) = self.ground.iter().position(|&g| g == entry) {
            return i as u32;
        }
        self.ground.push(entry);
        (self.ground.len() - 1) as u32
    }

    fn loc(&self, t: Temp) -> TempLoc {
        self.alloc.locs[t.index()]
    }

    /// The [`Location`] of a temp, for derivation records.
    fn location_of(&self, t: Temp) -> Location {
        match self.loc(t) {
            TempLoc::Reg(r) => Location::Reg(r),
            TempLoc::Spill(k) => Location::Slot(BaseReg::Fp, self.frame.spill_off(k)),
            TempLoc::ApSlot(i) => Location::Slot(BaseReg::Ap, i as i32),
            TempLoc::Unused => panic!("location of unused temp {t} (liveness bug)"),
        }
    }

    /// The canonical location of a *base* value, applying the paper's
    /// preference order: stack locations over registers (and user
    /// variables — parameters — over compiler temporaries).
    fn base_location(&self, t: Temp) -> Location {
        if t.index() < self.f.n_params
            && (self.f.kind(t) == TempKind::Ptr || self.f.is_byref_param(t))
        {
            // The incoming AP slot is always maintained for pointer params,
            // and by-ref params are pinned to it.
            return Location::Slot(BaseReg::Ap, t.0 as i32);
        }
        self.location_of(t)
    }

    fn derivation_record(&self, t: Temp, target: Location) -> DerivationRecord {
        let kind = self
            .deriv
            .and_then(|d| d.deriv(t))
            .unwrap_or_else(|| panic!("derivation record for non-derived temp {t}"));
        let map_bases = |bases: &Vec<(Temp, Sign)>| -> Vec<(Location, Sign)> {
            bases.iter().map(|&(b, s)| (self.base_location(b), s)).collect()
        };
        match kind {
            DerivKind::Simple(bases) => {
                DerivationRecord::Simple { target, bases: map_bases(bases) }
            }
            DerivKind::Ambiguous { path_var, variants } => DerivationRecord::Ambiguous {
                target,
                path_var: self.location_of(*path_var),
                variants: variants.iter().map(map_bases).collect(),
            },
        }
    }

    /// Builds the tables for a gc-point at `pc` given the set of live
    /// temps and extra derivation targets (pushed derived arguments).
    /// `slot_live` is the set of live source slots at the point (from
    /// [`m3gc_ir::liveness::slot_liveness`]); `None` means liveness
    /// pruning is off and every slot is treated as live.
    fn record_gc_point(
        &mut self,
        pc: u32,
        live: &BitSet,
        slot_live: Option<&BitSet>,
        extra_live: &[Temp],
        extra_targets: &[(Location, Temp)],
    ) {
        self.record_gc_point_with_byref(pc, live, slot_live, extra_live, extra_targets, &[]);
    }

    /// Like [`Self::record_gc_point`], with additional records for by-ref
    /// parameters forwarded as VAR arguments: each pushed copy is derived
    /// (with `E = 0`) from the parameter's own AP slot.
    fn record_gc_point_with_byref(
        &mut self,
        pc: u32,
        live: &BitSet,
        slot_live: Option<&BitSet>,
        extra_live: &[Temp],
        extra_targets: &[(Location, Temp)],
        byref_passthrough: &[(Location, Temp)],
    ) {
        if let Some(last) = self.points.last() {
            if last.pc == pc {
                // Two gc-points at the same program point (e.g. a call
                // immediately followed by an allocation): one table
                // suffices, and the first (the call's, which includes the
                // pushed-argument derivations) is the superset.
                return;
            }
        }
        let is_live = |t: Temp| live.contains(t.index()) || extra_live.contains(&t);

        // Split the source-slot pointer words into live and killed. With
        // pruning off every slot's words go in `live_stack` (the paper's
        // behaviour); with pruning on, a slot that is dead here moves its
        // words to `killed` instead, and the collector nulls them.
        let mut killed: Vec<u32> = Vec::new();
        let mut live_stack: Vec<u32> = match slot_live {
            None => self.always_live.clone(),
            Some(set) => {
                let mut live_stack = Vec::with_capacity(self.always_live.len());
                for (sid, indices) in self.slot_ground.iter().enumerate() {
                    if set.contains(sid) {
                        live_stack.extend_from_slice(indices);
                    } else {
                        killed.extend_from_slice(indices);
                    }
                }
                live_stack
            }
        };
        let mut regs = RegSet::EMPTY;
        let mut derived_live: Vec<Temp> = Vec::new();
        for t in (0..self.f.temp_count() as u32).map(Temp) {
            if !is_live(t) || self.loc(t) == TempLoc::Unused {
                continue;
            }
            let derived = self.deriv.is_some_and(|d| d.is_derived(t));
            if derived {
                derived_live.push(t);
                continue;
            }
            if self.f.kind(t) != TempKind::Ptr {
                continue;
            }
            match self.loc(t) {
                TempLoc::Reg(r) => {
                    regs.insert(r);
                    // A register-allocated pointer parameter also keeps its
                    // AP slot as a root (both copies are updated; updating
                    // tidy pointers is idempotent).
                    if let Some(g) = self.param_ground.get(t.index()).copied().flatten() {
                        live_stack.push(g);
                    }
                }
                TempLoc::Spill(_) => {
                    live_stack
                        .push(self.temp_ground[t.index()].expect("spilled ptr has ground entry"));
                }
                TempLoc::ApSlot(_) => {
                    live_stack
                        .push(self.param_ground[t.index()].expect("ptr param has ground entry"));
                }
                TempLoc::Unused => unreachable!("filtered above"),
            }
        }
        live_stack.sort_unstable();
        live_stack.dedup();

        let mut records: Vec<DerivationRecord> = Vec::new();
        for &t in &derived_live {
            records.push(self.derivation_record(t, self.location_of(t)));
        }
        for &(target, t) in extra_targets {
            records.push(self.derivation_record(t, target));
        }
        for &(target, t) in byref_passthrough {
            records.push(DerivationRecord::Simple {
                target,
                bases: vec![(Location::Slot(BaseReg::Ap, t.0 as i32), Sign::Plus)],
            });
        }
        let derivations = order_derived_before_bases(records);

        killed.sort_unstable();
        killed.dedup();
        self.points.push(GcPointTables { pc, live_stack, regs, derivations, killed });
    }
}

/// Emits one function; returns its metadata and gc tables.
#[allow(clippy::too_many_lines)]
fn emit_function(
    asm: &mut Assembler,
    f: &Function,
    deriv: Option<&DerivAnalysis>,
    global_offsets: &[u32],
    allocating: &[bool],
    options: &CodegenOptions,
    poll_pcs: &mut Vec<u32>,
) -> (ProcMeta, ProcTables) {
    let alloc = regalloc::allocate(f, deriv);
    let frame = Frame::layout(f, &alloc);
    let mut em = FnEmit::new(f, deriv, &alloc, &frame);
    // Slot liveness for map pruning: which source slots are live at each
    // gc-point. `None` disables pruning (every slot always live).
    let slot_lv = (options.gc.emit_tables && options.gc.live_maps && !f.slots.is_empty())
        .then(|| m3gc_ir::liveness::slot_liveness(f));
    let entry_pc = asm.here();

    // Block labels.
    let labels: Vec<_> = f.block_ids().map(|_| asm.new_label()).collect();

    // Prologue: save used callee-save registers, load register params.
    for &(r, off) in &frame.save_offsets {
        asm.emit(&Vm::StF { breg: BaseReg::Fp, off, src: r });
    }
    for p in 0..f.n_params {
        if let TempLoc::Reg(r) = alloc.locs[p] {
            asm.emit(&Vm::LdF { dst: r, breg: BaseReg::Ap, off: p as i32 });
        }
    }

    let order = alloc.order.clone();
    // Write-barrier elision state, reset at every block boundary:
    // `fresh` holds temps bound to an object allocated in this block with
    // no gc-point since (still in the nursery, so stores into it can never
    // create an old→young edge); `nonheap` holds temps bound to frame-slot
    // or global addresses (never inside a heap object). Both survive only
    // through `Copy`; any other redefinition clears the temp, and every
    // potential collection point (calls, allocations, explicit gc-points)
    // clears `fresh` entirely — a collection may promote the object.
    let mut fresh = BitSet::new(f.temp_count());
    let mut nonheap = BitSet::new(f.temp_count());
    for (oi, &bid) in order.iter().enumerate() {
        asm.bind(labels[bid.index()]);
        let block = f.block(bid);
        let next_in_layout = order.get(oi + 1).copied();
        let after = alloc.liveness.live_after_each(f, bid, deriv);
        // Slot-live sets use *before* each instruction: a callee may still
        // read a caller slot through a VAR alias passed as an argument, so
        // a call's map must keep slots the call itself uses (the call's
        // use of the aliasing address temp keeps the slot in its before
        // set). Allocations and explicit gc-points touch no slots, so
        // before equals after for them.
        let slot_before = slot_lv.as_ref().map(|sl| sl.live_before_each(f, bid));
        fresh.clear();
        nonheap.clear();

        // read: materialize a temp into a register (scratch if spilled).
        macro_rules! read {
            ($t:expr, $scratch:expr) => {{
                let t: Temp = $t;
                match em.loc(t) {
                    TempLoc::Reg(r) => r,
                    TempLoc::Spill(k) => {
                        let s = SCRATCH[$scratch];
                        asm.emit(&Vm::LdF { dst: s, breg: BaseReg::Fp, off: frame.spill_off(k) });
                        s
                    }
                    TempLoc::ApSlot(i) => {
                        let s = SCRATCH[$scratch];
                        asm.emit(&Vm::LdF { dst: s, breg: BaseReg::Ap, off: i as i32 });
                        s
                    }
                    TempLoc::Unused => {
                        let s = SCRATCH[$scratch];
                        asm.emit(&Vm::MovI { dst: s, imm: 0 });
                        s
                    }
                }
            }};
        }
        // Target register for defining a temp, and the write-back.
        macro_rules! def_reg {
            ($t:expr) => {{
                match em.loc($t) {
                    TempLoc::Reg(r) => r,
                    _ => SCRATCH[0],
                }
            }};
        }
        macro_rules! finish_def {
            ($t:expr, $r:expr) => {{
                let t: Temp = $t;
                match em.loc(t) {
                    TempLoc::Reg(_) | TempLoc::Unused => {}
                    TempLoc::Spill(k) => {
                        asm.emit(&Vm::StF { breg: BaseReg::Fp, off: frame.spill_off(k), src: $r });
                    }
                    TempLoc::ApSlot(i) => {
                        asm.emit(&Vm::StF { breg: BaseReg::Ap, off: i as i32, src: $r });
                    }
                }
            }};
        }

        for (i, ins) in block.instrs.iter().enumerate() {
            let emit_tables = options.gc.emit_tables;
            match ins {
                Ir::Const { dst, value } => {
                    let r = def_reg!(*dst);
                    asm.emit(&Vm::MovI { dst: r, imm: *value });
                    finish_def!(*dst, r);
                }
                Ir::Copy { dst, src } => {
                    let rs = read!(*src, 0);
                    let rd = def_reg!(*dst);
                    if rd != rs {
                        asm.emit(&Vm::Mov { dst: rd, src: rs });
                    }
                    finish_def!(*dst, rd);
                }
                Ir::Bin { dst, op, a, b } => {
                    let ra = read!(*a, 0);
                    let rb = read!(*b, 1);
                    let rd = def_reg!(*dst);
                    asm.emit(&Vm::Alu { op: alu_of(*op), dst: rd, a: ra, b: rb });
                    finish_def!(*dst, rd);
                }
                Ir::Un { dst, op, a } => {
                    let ra = read!(*a, 0);
                    let rd = def_reg!(*dst);
                    let vop = match op {
                        m3gc_ir::UnOp::Neg => UnAluOp::Neg,
                        m3gc_ir::UnOp::Not => UnAluOp::Not,
                    };
                    asm.emit(&Vm::UnAlu { op: vop, dst: rd, a: ra });
                    finish_def!(*dst, rd);
                }
                Ir::Load { dst, addr, offset } => {
                    let ra = read!(*addr, 0);
                    let rd = def_reg!(*dst);
                    asm.emit(&Vm::Ld { dst: rd, base: ra, off: *offset });
                    finish_def!(*dst, rd);
                }
                Ir::Store { addr, offset, src } => {
                    let ra = read!(*addr, 0);
                    let rs = read!(*src, 1);
                    // Write barrier at pointer stores into heap objects,
                    // elided when the type checker proves the value is a
                    // non-pointer (`TempKind::Int` covers integers,
                    // booleans, stack addresses, path variables and
                    // derived values) or the target is nursery-fresh or
                    // outside the heap.
                    //
                    // The same `StB` serves two barrier modes, and every
                    // elision below must be sound for both. Generational
                    // mode records the *target* (old-to-young remembered
                    // set); SATB deletion mode enqueues the *old value*
                    // while concurrent marking runs. For SATB:
                    //
                    // * Non-pointer source: the overwritten slot of a
                    //   same-typed object is equally non-pointer — no
                    //   reference is deleted, nothing to preserve.
                    // * Fresh target: the object was allocated after the
                    //   snapshot with no gc-point (hence no pause, and
                    //   `marking` only toggles inside pauses) between
                    //   the allocation and this store, so its fields
                    //   are still NIL — the overwritten value is never
                    //   a snapshot-reachable pointer. If marking was on
                    //   at the allocation the object is also born black.
                    // * Frame/global targets (`StF`/`StG` sites): the
                    //   snapshot pause marks root *values* directly —
                    //   globals and every frame's tidy roots — so the
                    //   overwritten pointer was already marked at the
                    //   snapshot; only heap-to-heap edges can delete
                    //   the last unmarked path to an object.
                    let needs_barrier = options.gc.write_barriers
                        && f.kind(*src) == TempKind::Ptr
                        && !fresh.contains(addr.index())
                        && !nonheap.contains(addr.index());
                    if needs_barrier {
                        asm.emit(&Vm::StB { base: ra, off: *offset, src: rs });
                    } else {
                        asm.emit(&Vm::St { base: ra, off: *offset, src: rs });
                    }
                }
                Ir::LoadSlot { dst, slot, offset } => {
                    let rd = def_reg!(*dst);
                    let off = frame.slot_offsets[slot.index()] + *offset as i32;
                    asm.emit(&Vm::LdF { dst: rd, breg: BaseReg::Fp, off });
                    finish_def!(*dst, rd);
                }
                Ir::StoreSlot { slot, offset, src } => {
                    let rs = read!(*src, 0);
                    let off = frame.slot_offsets[slot.index()] + *offset as i32;
                    asm.emit(&Vm::StF { breg: BaseReg::Fp, off, src: rs });
                }
                Ir::SlotAddr { dst, slot } => {
                    let rd = def_reg!(*dst);
                    asm.emit(&Vm::Lea {
                        dst: rd,
                        breg: BaseReg::Fp,
                        off: frame.slot_offsets[slot.index()],
                    });
                    finish_def!(*dst, rd);
                }
                Ir::LoadGlobal { dst, global } => {
                    let rd = def_reg!(*dst);
                    asm.emit(&Vm::LdG { dst: rd, goff: global_offsets[global.index()] });
                    finish_def!(*dst, rd);
                }
                Ir::StoreGlobal { global, src } => {
                    let rs = read!(*src, 0);
                    asm.emit(&Vm::StG { goff: global_offsets[global.index()], src: rs });
                }
                Ir::GlobalAddr { dst, global } => {
                    let rd = def_reg!(*dst);
                    asm.emit(&Vm::LeaG { dst: rd, goff: global_offsets[global.index()] });
                    finish_def!(*dst, rd);
                }
                Ir::Call { dst, func, args } => {
                    for a in args {
                        let r = read!(*a, 0);
                        asm.emit(&Vm::Push { src: r });
                    }
                    asm.emit(&Vm::Call { proc: func.0 as u16, nargs: args.len() as u8 });
                    let retpc = asm.here();
                    if emit_tables && is_gc_point_instr(ins, options.gc.calls, allocating) {
                        // The live set during the callee's execution: live
                        // after the call, *minus the call's own result* —
                        // the destination is not written until the callee
                        // returns, so its location holds garbage while a
                        // collection can run.
                        let mut live = after[i].clone();
                        if let Some(d) = dst {
                            live.remove(d.index());
                        }
                        // Pushed derived arguments and their support.
                        let mut extra_live = Vec::new();
                        let mut extra_targets = Vec::new();
                        let mut byref_passthrough = Vec::new();
                        if let Some(d) = deriv {
                            for (j, &a) in args.iter().enumerate() {
                                let target = Location::Slot(
                                    BaseReg::Fp,
                                    frame.frame_words as i32 + j as i32,
                                );
                                if d.is_derived(a) {
                                    extra_targets.push((target, a));
                                    d.expand_support(a, &mut extra_live);
                                } else if d.is_byref(a) {
                                    // A VAR parameter forwarded as a VAR
                                    // argument: the pushed copy is derived
                                    // from the incoming AP slot (which the
                                    // *caller's* record updates); the
                                    // re-derive ordering (caller before
                                    // callee) fixes the whole chain.
                                    byref_passthrough.push((target, a));
                                }
                            }
                        }
                        em.record_gc_point_with_byref(
                            retpc,
                            &live,
                            slot_before.as_ref().map(|v| &v[i]),
                            &extra_live,
                            &extra_targets,
                            &byref_passthrough,
                        );
                    }
                    if let Some(dst) = dst {
                        let rd = def_reg!(*dst);
                        if rd != 0 {
                            asm.emit(&Vm::Mov { dst: rd, src: 0 });
                        }
                        finish_def!(*dst, rd);
                    }
                }
                Ir::CallRuntime { dst, func, args } => {
                    let arg_reg = if args.is_empty() { 0 } else { read!(args[0], 0) };
                    asm.emit(&Vm::Sys { code: func.code(), arg: arg_reg });
                    if let Some(dst) = dst {
                        let rd = def_reg!(*dst);
                        asm.emit(&Vm::MovI { dst: rd, imm: 0 });
                        finish_def!(*dst, rd);
                    }
                }
                Ir::New { dst, ty, len } => {
                    let len_reg = len.map(|l| read!(l, 1));
                    if emit_tables {
                        // The collection happens *before* the allocation:
                        // live values are those live just before this
                        // instruction (the result is not yet defined).
                        let mut before = after[i].clone();
                        if let Some(d) = ins.def() {
                            before.remove(d.index());
                        }
                        let mut uses = Vec::new();
                        ins.uses(&mut uses);
                        let alloc_pc = asm.here();
                        em.record_gc_point(
                            alloc_pc,
                            &before,
                            slot_before.as_ref().map(|v| &v[i]),
                            &uses,
                            &[],
                        );
                    }
                    let rd = def_reg!(*dst);
                    match len_reg {
                        Some(rl) => asm.emit(&Vm::AllocA { dst: rd, ty: ty.0 as u16, len: rl }),
                        None => asm.emit(&Vm::Alloc { dst: rd, ty: ty.0 as u16 }),
                    };
                    finish_def!(*dst, rd);
                }
                Ir::GcPoint => {
                    if emit_tables {
                        let pc = asm.here();
                        let mut before = after[i].clone();
                        if let Some(d) = ins.def() {
                            before.remove(d.index());
                        }
                        em.record_gc_point(
                            pc,
                            &before,
                            slot_before.as_ref().map(|v| &v[i]),
                            &[],
                            &[],
                        );
                        // Flag the explicit poll site: the parallel
                        // runtime's safepoint handshake relies on these
                        // (loop back-edges) to bound how far a mutator
                        // can run before noticing a collection request.
                        poll_pcs.push(pc);
                    }
                    asm.emit(&Vm::GcPoint);
                }
            }

            // Update the barrier-elision state for the instruction just
            // emitted. A redefinition always clears the temp first; `Copy`
            // propagates both properties; a collection opportunity (call,
            // allocation, explicit gc-point) drops every freshness fact
            // because the collector may promote the objects.
            match ins {
                Ir::Copy { dst, src } => {
                    let src_fresh = fresh.contains(src.index());
                    let src_nonheap = nonheap.contains(src.index());
                    fresh.remove(dst.index());
                    nonheap.remove(dst.index());
                    if src_fresh {
                        fresh.insert(dst.index());
                    }
                    if src_nonheap {
                        nonheap.insert(dst.index());
                    }
                }
                Ir::New { dst, .. } => {
                    fresh.clear();
                    nonheap.remove(dst.index());
                    fresh.insert(dst.index());
                }
                Ir::Call { .. } | Ir::GcPoint => {
                    fresh.clear();
                    if let Some(d) = ins.def() {
                        nonheap.remove(d.index());
                    }
                }
                Ir::SlotAddr { dst, .. } | Ir::GlobalAddr { dst, .. } => {
                    fresh.remove(dst.index());
                    nonheap.insert(dst.index());
                }
                _ => {
                    if let Some(d) = ins.def() {
                        fresh.remove(d.index());
                        nonheap.remove(d.index());
                    }
                }
            }
        }

        // Terminator.
        let epilogue = |asm: &mut Assembler, frame: &Frame| {
            for &(r, off) in &frame.save_offsets {
                asm.emit(&Vm::LdF { dst: r, breg: BaseReg::Fp, off });
            }
        };
        match &block.term {
            Terminator::Jump(t) => {
                if Some(*t) != next_in_layout {
                    asm.jmp(labels[t.index()]);
                }
            }
            Terminator::Br { cond, then_bb, else_bb } => {
                let rc = read!(*cond, 0);
                if Some(*else_bb) == next_in_layout {
                    asm.brt(rc, labels[then_bb.index()]);
                } else if Some(*then_bb) == next_in_layout {
                    asm.brf(rc, labels[else_bb.index()]);
                } else {
                    asm.brt(rc, labels[then_bb.index()]);
                    asm.jmp(labels[else_bb.index()]);
                }
            }
            Terminator::Ret(v) => {
                if let Some(v) = v {
                    let r = read!(*v, 0);
                    if r != 0 {
                        asm.emit(&Vm::Mov { dst: 0, src: r });
                    }
                }
                epilogue(asm, &frame);
                asm.emit(&Vm::Ret);
            }
        }
    }

    let end_pc = asm.here();
    let meta = ProcMeta {
        name: f.name.clone(),
        entry_pc,
        end_pc,
        frame_words: frame.frame_words,
        save_regs: frame.save_offsets.clone(),
        n_args: f.n_params as u32,
    };
    let tables =
        ProcTables { name: f.name.clone(), entry_pc, ground: em.ground, points: em.points };
    (meta, tables)
}

/// Compiles a program (see [`crate::compile_program`]).
pub(crate) fn compile(prog: &mut Program, options: &CodegenOptions) -> VmModule {
    if options.gc.emit_tables {
        gcpoints::place_gc_points(prog, &options.gc);
    }
    let allocating = prog.compute_allocating();
    let global_offsets: Vec<u32> =
        (0..prog.globals.len()).map(|i| prog.global_offset(m3gc_ir::GlobalId(i as u32))).collect();

    // Derivation analysis (mutates: inserts path variables).
    let derivs: Vec<Option<DerivAnalysis>> = prog
        .funcs
        .iter_mut()
        .map(|f| options.gc.emit_tables.then(|| analyze_and_resolve(f)))
        .collect();

    let mut asm = Assembler::new();
    let mut procs = Vec::new();
    let mut tables = ModuleTables::default();
    let mut poll_pcs = Vec::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        let (meta, pt) = emit_function(
            &mut asm,
            f,
            derivs[i].as_deref_ref(),
            &global_offsets,
            &allocating,
            options,
            &mut poll_pcs,
        );
        procs.push(meta);
        if options.gc.emit_tables {
            tables.procs.push(pt);
        }
    }
    debug_assert_eq!(tables.validate(), Ok(()));
    let code = asm.finish();
    let gc_maps = encode_module(&tables, options.scheme);
    VmModule {
        code,
        procs,
        types: prog.types.clone(),
        globals_words: prog.globals_words(),
        global_ptr_roots: prog.global_ptr_roots(),
        main: prog.main.0 as u16,
        poll_pcs,
        gc_maps,
        logical_maps: tables,
    }
}

/// `Option<DerivAnalysis>` → `Option<&DerivAnalysis>` helper.
trait AsDerefRef {
    fn as_deref_ref(&self) -> Option<&DerivAnalysis>;
}

impl AsDerefRef for Option<DerivAnalysis> {
    fn as_deref_ref(&self) -> Option<&DerivAnalysis> {
        self.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::{BinOp, Program, RuntimeFn, TempKind};
    use m3gc_vm::machine::{Machine, MachineLayout, RunOutcome};

    fn run_no_gc(mut prog: Program) -> String {
        let opts = CodegenOptions::default();
        let module = compile(&mut prog, &opts);
        let mut vm = Machine::new(
            module,
            MachineLayout {
                semi_words: 1 << 16,
                stack_words: 4096,
                max_threads: 2,
                ..MachineLayout::default()
            },
        );
        let main = vm.module.main;
        let tid = vm.spawn(main, &[]);
        let r = vm.run_thread(tid, 10_000_000);
        assert_eq!(r, RunOutcome::Finished, "output so far: {}", vm.output);
        vm.output.clone()
    }

    fn single(b: FuncBuilder) -> Program {
        let mut p = Program::new();
        let id = p.add_func(b.finish());
        p.main = id;
        p
    }

    #[test]
    fn arithmetic_pipeline() {
        let mut b = FuncBuilder::new("main", &[]);
        let x = b.constant(40);
        let y = b.constant(2);
        let s = b.bin(BinOp::Add, x, y);
        b.call_runtime(RuntimeFn::PrintInt, vec![s]);
        b.ret(None);
        assert_eq!(run_no_gc(single(b)), "42");
    }

    #[test]
    fn calls_with_args_and_results() {
        let mut p = Program::new();
        let mut add =
            FuncBuilder::with_ret("add", &[TempKind::Int, TempKind::Int], Some(TempKind::Int));
        let s = add.bin(BinOp::Add, add.param(0), add.param(1));
        add.ret(Some(s));
        let add_id = p.add_func(add.finish());
        let mut main = FuncBuilder::new("main", &[]);
        let a = main.constant(30);
        let bb = main.constant(12);
        let r = main.call(add_id, vec![a, bb], Some(TempKind::Int)).unwrap();
        main.call_runtime(RuntimeFn::PrintInt, vec![r]);
        main.ret(None);
        let id = p.add_func(main.finish());
        p.main = id;
        assert_eq!(run_no_gc(p), "42");
    }

    #[test]
    fn control_flow_loop() {
        // sum 1..=10
        let mut b = FuncBuilder::new("main", &[]);
        let i = b.temp(TempKind::Int);
        let s = b.temp(TempKind::Int);
        b.push(m3gc_ir::Instr::Const { dst: i, value: 1 });
        b.push(m3gc_ir::Instr::Const { dst: s, value: 0 });
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let ten = b.constant(10);
        let c = b.bin(BinOp::Le, i, ten);
        b.br(c, body, exit);
        b.switch_to(body);
        let ns = b.bin(BinOp::Add, s, i);
        b.push(m3gc_ir::Instr::Copy { dst: s, src: ns });
        let one = b.constant(1);
        let ni = b.bin(BinOp::Add, i, one);
        b.push(m3gc_ir::Instr::Copy { dst: i, src: ni });
        b.jump(header);
        b.switch_to(exit);
        b.call_runtime(RuntimeFn::PrintInt, vec![s]);
        b.ret(None);
        assert_eq!(run_no_gc(single(b)), "55");
    }

    #[test]
    fn heap_allocation_and_access() {
        let mut p = Program::new();
        let ty = p.types.add(m3gc_core::heap::HeapType::Record {
            name: "R".into(),
            words: 2,
            ptr_offsets: vec![],
        });
        let mut b = FuncBuilder::new("main", &[]);
        let o = b.new_object(ty, None);
        let v = b.constant(7);
        b.store(o, 1, v);
        let r = b.load(o, 1, TempKind::Int);
        b.call_runtime(RuntimeFn::PrintInt, vec![r]);
        b.ret(None);
        let id = p.add_func(b.finish());
        p.main = id;
        assert_eq!(run_no_gc(p), "7");
    }

    #[test]
    fn gc_tables_are_emitted_for_gc_points() {
        let mut p = Program::new();
        let ty = p.types.add(m3gc_core::heap::HeapType::Record {
            name: "R".into(),
            words: 1,
            ptr_offsets: vec![],
        });
        let mut b = FuncBuilder::new("main", &[]);
        let o = b.new_object(ty, None);
        let o2 = b.new_object(ty, None); // o live across this gc-point
        b.store(o, 0, o2);
        b.ret(None);
        let id = p.add_func(b.finish());
        p.main = id;
        let module = compile(&mut p, &CodegenOptions::default());
        let maps = &module.logical_maps;
        assert_eq!(maps.procs.len(), 1);
        let pt = &maps.procs[0];
        assert_eq!(pt.points.len(), 2, "two allocations, two gc-points");
        // At the second allocation, `o` must be recorded somewhere (a
        // register or a slot).
        let second = &pt.points[1];
        let described = !second.regs.is_empty() || !second.live_stack.is_empty();
        assert!(described, "o must be described at the second gc-point: {second:?}");
    }

    #[test]
    fn derived_value_described_at_alloc() {
        let mut p = Program::new();
        let ty = p.types.add(m3gc_core::heap::HeapType::Array {
            name: "A".into(),
            elem_words: 1,
            elem_ptr_offsets: vec![],
        });
        let mut b = FuncBuilder::new("main", &[]);
        let n = b.constant(4);
        let arr = b.new_object(ty, Some(n));
        let k = b.constant(2);
        let interior = b.bin(BinOp::Add, arr, k); // derived from arr
        let o2 = b.new_object(ty, Some(n)); // gc-point with `interior` live
        let v = b.load(interior, 0, TempKind::Int);
        b.store(o2, 2, v);
        b.ret(None);
        let id = p.add_func(b.finish());
        p.main = id;
        let module = compile(&mut p, &CodegenOptions::default());
        let pt = &module.logical_maps.procs[0];
        let second_alloc = &pt.points[1];
        assert_eq!(second_alloc.derivations.len(), 1, "{second_alloc:?}");
        let rec = &second_alloc.derivations[0];
        assert_eq!(rec.bases_for_path(0).len(), 1);
    }

    #[test]
    fn gc_disabled_emits_no_tables() {
        let mut p = Program::new();
        let ty = p.types.add(m3gc_core::heap::HeapType::Record {
            name: "R".into(),
            words: 1,
            ptr_offsets: vec![],
        });
        let mut b = FuncBuilder::new("main", &[]);
        let _ = b.new_object(ty, None);
        b.ret(None);
        let id = p.add_func(b.finish());
        p.main = id;
        let mut opts = CodegenOptions::default();
        opts.gc.emit_tables = false;
        let module = compile(&mut p, &opts);
        assert!(module.logical_maps.procs.is_empty());
    }

    #[test]
    fn loop_gc_point_reaches_machine_code() {
        let mut b = FuncBuilder::new("main", &[]);
        let i = b.temp(TempKind::Int);
        b.push(m3gc_ir::Instr::Const { dst: i, value: 0 });
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let lim = b.constant(10);
        let c = b.bin(BinOp::Lt, i, lim);
        b.br(c, body, exit);
        b.switch_to(body);
        let one = b.constant(1);
        let ni = b.bin(BinOp::Add, i, one);
        b.push(m3gc_ir::Instr::Copy { dst: i, src: ni });
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let mut p = single(b);
        let module = compile(&mut p, &CodegenOptions::default());
        // The loop had no gc-point, so one must have been inserted and
        // appear in the tables.
        assert_eq!(module.logical_maps.procs[0].points.len(), 1);
    }

    // --- Write-barrier emission and elision ---

    fn ptr_record(p: &mut Program) -> m3gc_core::heap::TypeId {
        p.types.add(m3gc_core::heap::HeapType::Record {
            name: "Node".into(),
            words: 2,
            ptr_offsets: vec![0],
        })
    }

    fn stb_count(p: &mut Program, opts: &CodegenOptions) -> usize {
        let module = compile(p, opts);
        m3gc_vm::disasm::disassemble(&module).matches("stb").count()
    }

    #[test]
    fn barrier_emitted_for_unproven_pointer_store() {
        // The second allocation is a gc-point, so `a` is no longer
        // provably in the nursery when the store happens.
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut b = FuncBuilder::new("main", &[]);
        let a = b.new_object(ty, None);
        let c = b.new_object(ty, None);
        b.store(a, 0, c);
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        assert_eq!(stb_count(&mut p, &CodegenOptions::default()), 1);
    }

    #[test]
    fn barrier_elided_for_non_pointer_store() {
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut b = FuncBuilder::new("main", &[]);
        let a = b.new_object(ty, None);
        let v = b.constant(7);
        b.store(a, 1, v); // Int-kind source: never a pointer store.
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        assert_eq!(stb_count(&mut p, &CodegenOptions::default()), 0);
    }

    #[test]
    fn barrier_elided_for_fresh_target() {
        // `c` is allocated *after* `a`, so at the store `c` is provably
        // nursery-fresh (no gc-point separates its allocation from the
        // store) — no old→young edge is possible.
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut b = FuncBuilder::new("main", &[]);
        let a = b.new_object(ty, None);
        let c = b.new_object(ty, None);
        b.store(c, 0, a);
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        assert_eq!(stb_count(&mut p, &CodegenOptions::default()), 0);
    }

    #[test]
    fn freshness_propagates_through_copy_and_dies_at_gc_points() {
        let mut p = Program::new();
        let ty = ptr_record(&mut p);

        // Copy of a fresh object is still fresh: elided.
        let mut b = FuncBuilder::new("main", &[]);
        let a = b.new_object(ty, None);
        let c = b.new_object(ty, None);
        let c2 = b.copy_of(c, TempKind::Ptr);
        b.store(c2, 0, a);
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        assert_eq!(stb_count(&mut p, &CodegenOptions::default()), 0);

        // An explicit gc-point between allocation and store kills the
        // freshness fact (a collection could promote the object).
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut b = FuncBuilder::new("main", &[]);
        let a = b.new_object(ty, None);
        let c = b.new_object(ty, None);
        b.push(m3gc_ir::Instr::GcPoint);
        b.store(c, 0, a);
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        assert_eq!(stb_count(&mut p, &CodegenOptions::default()), 1);
    }

    #[test]
    fn barrier_elided_for_slot_address_target() {
        // A store through a frame-slot address (VAR-style) targets the
        // stack, which minor collections scan as roots: elided.
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut b = FuncBuilder::new("main", &[]);
        let slot = b.slot(m3gc_ir::SlotInfo {
            name: "v".into(),
            words: 1,
            ptr_words: vec![0],
            addressable: true,
        });
        let a = b.new_object(ty, None);
        let sa = b.slot_addr(slot);
        b.store(sa, 0, a);
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        assert_eq!(stb_count(&mut p, &CodegenOptions::default()), 0);
    }

    #[test]
    fn call_invalidates_freshness() {
        // A call between the allocation and the store is a gc-point: the
        // callee may allocate and force a collection that promotes `c`,
        // so the store needs its barrier back.
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut leaf = FuncBuilder::new("leaf", &[]);
        leaf.ret(None);
        let leaf_fn = leaf.finish();
        let leaf_id = p.add_func(leaf_fn);
        let mut b = FuncBuilder::new("main", &[]);
        let a = b.new_object(ty, None);
        let c = b.new_object(ty, None);
        b.call(leaf_id, vec![], None);
        b.store(c, 0, a);
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        assert_eq!(stb_count(&mut p, &CodegenOptions::default()), 1);
    }

    #[test]
    fn barrier_elided_for_global_address_target() {
        // A store through a global's address targets the global area,
        // which every minor collection scans as roots — never an
        // old→young edge, so never a barrier (even after a gc-point).
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let g = p.add_global(m3gc_ir::GlobalInfo::scalar("gp", TempKind::Ptr));
        let mut b = FuncBuilder::new("main", &[]);
        let a = b.new_object(ty, None);
        b.push(m3gc_ir::Instr::GcPoint);
        let ga = b.temp(TempKind::Int);
        b.push(m3gc_ir::Instr::GlobalAddr { dst: ga, global: g });
        b.store(ga, 0, a);
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        assert_eq!(stb_count(&mut p, &CodegenOptions::default()), 0);
    }

    // --- Liveness-driven map pruning ---

    fn slot_program() -> Program {
        // A pointer slot written once, read once, then dead while a later
        // allocation (a gc-point) runs.
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut b = FuncBuilder::new("main", &[]);
        let slot = b.slot(m3gc_ir::SlotInfo {
            name: "v".into(),
            words: 1,
            ptr_words: vec![0],
            addressable: true,
        });
        let o = b.new_object(ty, None);
        b.store_slot(slot, 0, o);
        let v = b.load_slot(slot, 0, TempKind::Ptr);
        let x = b.load(v, 1, TempKind::Int);
        b.call_runtime(RuntimeFn::PrintInt, vec![x]);
        let _keep = b.new_object(ty, None); // gc-point with the slot dead
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        p
    }

    #[test]
    fn dead_slot_killed_at_later_gc_point() {
        // The slot's ground entry is index 0 (slot entries are added
        // before param and spill entries).
        let module = compile(&mut slot_program(), &CodegenOptions::default());
        let pt = &module.logical_maps.procs[0];
        assert_eq!(pt.points.len(), 2, "{pt:?}");
        let last = pt.points.last().unwrap();
        assert!(last.killed.contains(&0), "dead slot must be killed: {last:?}");
        assert!(!last.live_stack.contains(&0), "dead slot must not be live: {last:?}");
    }

    #[test]
    fn live_maps_off_keeps_every_slot_live() {
        let mut opts = CodegenOptions::default();
        opts.gc.live_maps = false;
        let module = compile(&mut slot_program(), &opts);
        let pt = &module.logical_maps.procs[0];
        for point in &pt.points {
            assert!(point.killed.is_empty(), "{point:?}");
            assert!(point.live_stack.contains(&0), "{point:?}");
        }
    }

    #[test]
    fn var_alias_keeps_slot_live_across_call() {
        // The slot's address is passed to a callee that reads through it:
        // the call's gc-point must keep the slot live (the callee can
        // still load it), but a gc-point after the call may kill it.
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut callee = FuncBuilder::with_ret("reads", &[TempKind::Int], Some(TempKind::Int));
        let pv = callee.load(callee.param(0), 0, TempKind::Ptr);
        let x = callee.load(pv, 1, TempKind::Int);
        callee.ret(Some(x));
        let callee_id = p.add_func(callee.finish());
        let mut b = FuncBuilder::new("main", &[]);
        let slot = b.slot(m3gc_ir::SlotInfo {
            name: "v".into(),
            words: 1,
            ptr_words: vec![0],
            addressable: true,
        });
        let o = b.new_object(ty, None);
        b.store_slot(slot, 0, o);
        let sa = b.slot_addr(slot);
        let r = b.call(callee_id, vec![sa], Some(TempKind::Int)).unwrap();
        b.call_runtime(RuntimeFn::PrintInt, vec![r]);
        let _keep = b.new_object(ty, None); // slot dead here
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        let module = compile(&mut p, &CodegenOptions::default());
        let pt = module.logical_maps.procs.iter().find(|t| t.name == "main").unwrap();
        assert_eq!(pt.points.len(), 3, "{pt:?}");
        let at_call = &pt.points[1];
        assert!(at_call.live_stack.contains(&0), "aliased slot live at call: {at_call:?}");
        assert!(!at_call.killed.contains(&0), "{at_call:?}");
        let after_call = &pt.points[2];
        assert!(after_call.killed.contains(&0), "slot dead after last use: {after_call:?}");
        assert!(!after_call.live_stack.contains(&0), "{after_call:?}");
    }

    #[test]
    fn barriers_can_be_disabled() {
        let mut p = Program::new();
        let ty = ptr_record(&mut p);
        let mut b = FuncBuilder::new("main", &[]);
        let a = b.new_object(ty, None);
        let c = b.new_object(ty, None);
        b.store(a, 0, c);
        b.ret(None);
        let id = b.finish();
        p.main = p.add_func(id);
        let mut opts = CodegenOptions::default();
        opts.gc.write_barriers = false;
        assert_eq!(stb_count(&mut p, &opts), 0);
    }
}
