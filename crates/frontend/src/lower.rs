//! Lowering from the checked AST to the three-address IR.
//!
//! Pointerness decisions are made here: every temp, slot and global gets a
//! static kind, tidy pointers flow only through declared-`Ptr` storage, and
//! interior pointers arise exactly where the paper says they do (§2):
//! dynamic indexing of heap arrays, `WITH` aliases of heap designators, and
//! `VAR` arguments denoting heap fields or elements all materialize an
//! address temp *derived* from the tidy base pointer.
//!
//! Storage policy: scalar locals and value parameters live in temps unless
//! their address is taken (they are passed as `VAR` arguments somewhere in
//! the procedure), in which case they get frame slots; local fixed arrays
//! always get frame slots. Pointer slots are NIL-initialized at entry, so
//! the collector may trace them at any gc-point.

use std::collections::HashSet;

use m3gc_core::heap::{HeapType, TypeId, ARRAY_HEADER_WORDS, RECORD_HEADER_WORDS};
use m3gc_ir::builder::FuncBuilder;
use m3gc_ir::{
    BinOp as IrBin, BlockId, FuncId, GlobalId, GlobalInfo, Instr, Program, RuntimeFn, SlotId,
    SlotInfo, Temp, TempKind, UnOp as IrUn,
};

use crate::ast::{self, BinOp, Expr, ExprKind, Module, Stmt, StmtKind, UnOp};
use crate::typecheck::{Builtin, CallRes, Checked, NameRes, VarClass, VarInfo};
use crate::types::{Type, TypeArena, TypeRef};

/// Lowering options.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Emit array subscript range checks (on by default, as in Modula-3).
    pub bounds_checks: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions { bounds_checks: true }
    }
}

/// Lowers a checked module to an IR program (see [`lower_with`]).
#[must_use]
pub fn lower(module: &Module, checked: &Checked) -> Program {
    lower_with(module, checked, LowerOptions::default())
}

/// Lowers a checked module with explicit options.
///
/// The returned program's `main` function runs the module body (after
/// global initializers); source procedure `i` becomes `FuncId(i)`.
#[must_use]
pub fn lower_with(module: &Module, checked: &Checked, options: LowerOptions) -> Program {
    let lw = Lowerer {
        module,
        checked,
        options,
        program: Program::new(),
        heap_types: Vec::new(),
        char_array_ty: None,
    };
    lw.lower_module()
}

/// A mutable location, as lowering sees it.
#[derive(Debug, Clone)]
enum LValue {
    /// A scalar variable held in a temp.
    TempVar(Temp),
    /// A word of a frame slot.
    Slot(SlotId, u32),
    /// A scalar global.
    Global(GlobalId),
    /// A memory word at `addr + offset`.
    Mem { addr: Temp, offset: i32 },
}

/// Where a source variable lives.
#[derive(Debug, Clone)]
enum Storage {
    /// Scalar in a temp.
    Temp(Temp),
    /// Addressable scalar in a frame slot.
    Slot(SlotId),
    /// Local fixed array in a frame slot.
    ArraySlot { slot: SlotId, lo: i64, len: u32 },
    /// VAR parameter: the temp holds the referent's address.
    RefParam(Temp),
    /// WITH alias of a designator.
    Alias(LValue),
    /// WITH binding of a non-designator value (read-only).
    Value(Temp),
}

/// Heap array metadata for indexing.
enum ArrLoc {
    /// Heap array behind a tidy pointer.
    Heap {
        ptr: Temp,
        /// `Some((lo, hi))` for fixed arrays, `None` for open arrays.
        bounds: Option<(i64, i64)>,
    },
    /// Local fixed array in a frame slot.
    Frame { slot: SlotId, lo: i64, len: u32 },
    /// Global fixed array.
    GlobalArr { id: GlobalId, lo: i64, len: u32 },
}

struct Lowerer<'a> {
    module: &'a Module,
    checked: &'a Checked,
    options: LowerOptions,
    program: Program,
    /// Cache mapping semantic referent types to heap type descriptors.
    heap_types: Vec<(TypeRef, TypeId)>,
    char_array_ty: Option<TypeId>,
}

struct ProcCtx<'a> {
    b: FuncBuilder,
    vars: &'a [VarInfo],
    storage: Vec<Option<Storage>>,
    /// Exit blocks of enclosing loops, innermost last.
    loop_exits: Vec<BlockId>,
    /// Cursor into `vars` for matching FOR/WITH bindings: the checker binds
    /// them in statement pre-order, and lowering walks statements in the
    /// same order, so each binding statement takes the next matching entry.
    binding_cursor: usize,
}

impl ProcCtx<'_> {
    fn take_binding(&mut self, name: &str, class: VarClass) -> u32 {
        let idx = (self.binding_cursor..self.vars.len())
            .find(|&i| self.vars[i].name == name && self.vars[i].class == class)
            .expect("checker bound the variable");
        self.binding_cursor = idx + 1;
        idx as u32
    }
}

impl<'a> Lowerer<'a> {
    fn arena(&self) -> &TypeArena {
        &self.checked.arena
    }

    fn temp_kind_of(&self, t: TypeRef) -> TempKind {
        match self.arena().get(t) {
            Type::Ref(_) | Type::NilType => TempKind::Ptr,
            _ => TempKind::Int,
        }
    }

    /// Heap type descriptor for a referent type, deduplicated structurally.
    fn heap_type_id(&mut self, referent: TypeRef) -> TypeId {
        if let Some(&(_, id)) =
            self.heap_types.iter().find(|(r, _)| self.checked.arena.equal(*r, referent))
        {
            return id;
        }
        let desc = match self.arena().get(referent).clone() {
            Type::Record { fields } => {
                let ptr_offsets = fields
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, t))| self.temp_kind_of(*t) == TempKind::Ptr)
                    .map(|(i, _)| i as u32)
                    .collect();
                HeapType::Record {
                    name: self.arena().display(referent),
                    words: fields.len() as u32,
                    ptr_offsets,
                }
            }
            Type::Array { elem, .. } | Type::OpenArray { elem } => {
                let elem_ptr_offsets =
                    if self.temp_kind_of(elem) == TempKind::Ptr { vec![0] } else { vec![] };
                HeapType::Array {
                    name: self.arena().display(referent),
                    elem_words: 1,
                    elem_ptr_offsets,
                }
            }
            // REF of a scalar: a one-word record.
            _ => {
                let ptr_offsets =
                    if self.temp_kind_of(referent) == TempKind::Ptr { vec![0] } else { vec![] };
                HeapType::Record { name: self.arena().display(referent), words: 1, ptr_offsets }
            }
        };
        let id = self.program.types.add(desc);
        self.heap_types.push((referent, id));
        id
    }

    fn lower_module(mut self) -> Program {
        // Globals, in checker order so GlobalId == checker global index.
        for (name, ty) in &self.checked.globals {
            let info = match self.arena().get(*ty).clone() {
                Type::Array { lo, hi, elem } => {
                    let len = (hi - lo + 1) as u32;
                    let ptr_words = if self.temp_kind_of(elem) == TempKind::Ptr {
                        (0..len).collect()
                    } else {
                        vec![]
                    };
                    GlobalInfo { name: name.clone(), words: len, ptr_words }
                }
                _ => GlobalInfo::scalar(name.clone(), self.temp_kind_of(*ty)),
            };
            self.program.add_global(info);
        }

        // Procedures: FuncId(i) == source procedure i.
        for (i, p) in self.module.procs.iter().enumerate() {
            let f = self.lower_proc(i, p);
            self.program.add_func(f);
        }

        // Main: global initializers then the module body.
        let main = self.lower_main();
        let main_id = self.program.add_func(main);
        self.program.main = main_id;
        self.program
    }

    fn param_kinds(&self, proc_idx: usize) -> Vec<TempKind> {
        self.checked.proc_sigs[proc_idx]
            .params
            .iter()
            .map(|(by_ref, t)| if *by_ref { TempKind::Int } else { self.temp_kind_of(*t) })
            .collect()
    }

    /// Variables that are passed as VAR arguments somewhere in `stmts`
    /// (only simple names matter: fields/elements are addressed directly).
    fn collect_addressed(&self, stmts: &[Stmt], out: &mut HashSet<u32>) {
        for s in stmts {
            self.collect_addressed_stmt(s, out);
        }
    }

    fn collect_addressed_stmt(&self, s: &Stmt, out: &mut HashSet<u32>) {
        let mut walk_expr = |e: &Expr| self.collect_addressed_expr(e, out);
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                walk_expr(lhs);
                walk_expr(rhs);
            }
            StmtKind::Call(e) => walk_expr(e),
            StmtKind::If { arms, else_body } => {
                for (c, b) in arms {
                    self.collect_addressed_expr(c, out);
                    self.collect_addressed(b, out);
                }
                self.collect_addressed(else_body, out);
            }
            StmtKind::While { cond, body } => {
                self.collect_addressed_expr(cond, out);
                self.collect_addressed(body, out);
            }
            StmtKind::Repeat { body, cond } => {
                self.collect_addressed(body, out);
                self.collect_addressed_expr(cond, out);
            }
            StmtKind::Loop { body } => self.collect_addressed(body, out),
            StmtKind::For { from, to, by, body, .. } => {
                self.collect_addressed_expr(from, out);
                self.collect_addressed_expr(to, out);
                if let Some(b) = by {
                    self.collect_addressed_expr(b, out);
                }
                self.collect_addressed(body, out);
            }
            StmtKind::Exit => {}
            StmtKind::Return(v) => {
                if let Some(v) = v {
                    self.collect_addressed_expr(v, out);
                }
            }
            StmtKind::With { bindings, body } => {
                for (_, d) in bindings {
                    self.collect_addressed_expr(d, out);
                }
                self.collect_addressed(body, out);
            }
        }
    }

    fn collect_addressed_expr(&self, e: &Expr, out: &mut HashSet<u32>) {
        match &e.kind {
            ExprKind::Call { args, .. } => {
                if let Some(CallRes::Proc(pi)) = self.checked.call_res.get(&e.id) {
                    let sig = &self.checked.proc_sigs[*pi as usize];
                    for (arg, (by_ref, _)) in args.iter().zip(&sig.params) {
                        if *by_ref {
                            if let ExprKind::Name(_) = arg.kind {
                                if let Some(NameRes::Var(id)) = self.checked.name_res.get(&arg.id) {
                                    out.insert(*id);
                                }
                            }
                        }
                        self.collect_addressed_expr(arg, out);
                    }
                    return;
                }
                for a in args {
                    self.collect_addressed_expr(a, out);
                }
            }
            ExprKind::Field(b, _) | ExprKind::Deref(b) | ExprKind::Un(_, b) => {
                self.collect_addressed_expr(b, out);
            }
            ExprKind::Index(b, i) | ExprKind::Bin(_, b, i) => {
                self.collect_addressed_expr(b, out);
                self.collect_addressed_expr(i, out);
            }
            ExprKind::New { len: Some(l), .. } => self.collect_addressed_expr(l, out),
            _ => {}
        }
    }

    fn lower_proc(&mut self, idx: usize, p: &ast::ProcDecl) -> m3gc_ir::Function {
        let params = self.param_kinds(idx);
        let ret = self.checked.proc_sigs[idx].ret.map(|t| self.temp_kind_of(t));
        let b = FuncBuilder::with_ret(&p.name, &params, ret);
        let byref: Vec<usize> = self.checked.proc_sigs[idx]
            .params
            .iter()
            .enumerate()
            .filter(|(_, (by_ref, _))| *by_ref)
            .map(|(i, _)| i)
            .collect();
        let vars = &self.checked.proc_vars[idx];
        let mut addressed = HashSet::new();
        self.collect_addressed(&p.body, &mut addressed);
        let mut ctx = ProcCtx {
            b,
            vars,
            storage: vec![None; vars.len()],
            loop_exits: Vec::new(),
            binding_cursor: 0,
        };
        // Parameters and locals.
        for (vid, v) in vars.iter().enumerate() {
            let vid = vid as u32;
            match v.class {
                VarClass::Param { index, by_ref } => {
                    let pt = Temp(index);
                    if by_ref {
                        ctx.storage[vid as usize] = Some(Storage::RefParam(pt));
                    } else if addressed.contains(&vid) {
                        // Copy the incoming value into an addressable slot.
                        let kind = self.temp_kind_of(v.ty);
                        let slot = ctx.b.slot(SlotInfo::scalar(&v.name, kind, true));
                        ctx.b.store_slot(slot, 0, pt);
                        ctx.storage[vid as usize] = Some(Storage::Slot(slot));
                    } else {
                        ctx.storage[vid as usize] = Some(Storage::Temp(pt));
                    }
                }
                VarClass::Local => {
                    let st = self.local_storage(&mut ctx, v, addressed.contains(&vid));
                    ctx.storage[vid as usize] = Some(st);
                }
                // FOR and WITH variables get storage at their statement.
                VarClass::For | VarClass::With => {}
            }
        }
        // Local initializers.
        for l in &p.locals {
            if let Some(init) = &l.init {
                for name in &l.names {
                    let vid = vars
                        .iter()
                        .position(|v| v.name == *name && v.class == VarClass::Local)
                        .expect("checker bound the local") as u32;
                    let val = self.eval_expr(&mut ctx, init);
                    let lv = self.storage_lvalue(&mut ctx, vid);
                    self.store_lvalue(&mut ctx, &lv, val);
                }
            }
        }
        self.lower_stmts(&mut ctx, &p.body);
        if !ctx.b.is_terminated() {
            // Falling off the end of a function returns 0/NIL.
            match ret {
                Some(kind) => {
                    let z = ctx.b.temp(kind);
                    ctx.b.push(Instr::Const { dst: z, value: 0 });
                    ctx.b.ret(Some(z));
                }
                None => ctx.b.ret(None),
            }
        }
        let mut func = ctx.b.finish();
        for i in byref {
            func.set_byref_param(i);
        }
        func
    }

    fn lower_main(&mut self) -> m3gc_ir::Function {
        let b = FuncBuilder::new("main", &[]);
        let vars: &[VarInfo] = &self.checked.main_vars;
        let mut addressed = HashSet::new();
        self.collect_addressed(&self.module.body, &mut addressed);
        let mut ctx = ProcCtx {
            b,
            vars,
            storage: vec![None; vars.len()],
            loop_exits: Vec::new(),
            binding_cursor: 0,
        };
        // Global initializers.
        let mut gi = 0u32;
        for v in &self.module.vars {
            for _name in &v.names {
                if let Some(init) = &v.init {
                    let val = self.eval_expr(&mut ctx, init);
                    ctx.b.store_global(GlobalId(gi), val);
                }
                gi += 1;
            }
        }
        self.lower_stmts(&mut ctx, &self.module.body);
        if !ctx.b.is_terminated() {
            ctx.b.ret(None);
        }
        ctx.b.finish()
    }

    fn local_storage(&mut self, ctx: &mut ProcCtx<'_>, v: &VarInfo, addressed: bool) -> Storage {
        match self.arena().get(v.ty).clone() {
            Type::Array { lo, hi, elem } => {
                let len = (hi - lo + 1) as u32;
                let ptr_words = if self.temp_kind_of(elem) == TempKind::Ptr {
                    (0..len).collect()
                } else {
                    vec![]
                };
                let slot = ctx.b.slot(SlotInfo {
                    name: v.name.clone(),
                    words: len,
                    ptr_words,
                    addressable: true,
                });
                Storage::ArraySlot { slot, lo, len }
            }
            _ => {
                let kind = self.temp_kind_of(v.ty);
                if addressed {
                    let slot = ctx.b.slot(SlotInfo::scalar(&v.name, kind, true));
                    Storage::Slot(slot)
                } else {
                    // NIL/zero initialize so pointer temps are always tidy.
                    let t = ctx.b.temp(kind);
                    ctx.b.push(Instr::Const { dst: t, value: 0 });
                    Storage::Temp(t)
                }
            }
        }
    }

    // ---- lvalues ----

    fn storage_lvalue(&mut self, ctx: &mut ProcCtx<'_>, vid: u32) -> LValue {
        match ctx.storage[vid as usize].clone().expect("storage assigned") {
            Storage::Temp(t) => LValue::TempVar(t),
            Storage::Slot(s) => LValue::Slot(s, 0),
            Storage::RefParam(addr) => LValue::Mem { addr, offset: 0 },
            Storage::Alias(lv) => lv,
            Storage::Value(t) => LValue::TempVar(t),
            Storage::ArraySlot { .. } => panic!("array variable used as a scalar"),
        }
    }

    fn expr_type(&self, e: &Expr) -> TypeRef {
        self.checked.expr_types[e.id as usize]
    }

    /// The lvalue a designator denotes.
    fn eval_designator(&mut self, ctx: &mut ProcCtx<'_>, e: &Expr) -> LValue {
        match &e.kind {
            ExprKind::Name(_) => match self.checked.name_res[&e.id] {
                NameRes::Var(vid) => self.storage_lvalue(ctx, vid),
                NameRes::Global(g) => LValue::Global(GlobalId(g)),
                NameRes::Const(_) => panic!("constant used as designator"),
            },
            ExprKind::Field(base, fname) => {
                let (ptr, rec_ty) = self.record_pointer(ctx, base);
                let Type::Record { fields } = self.arena().get(rec_ty).clone() else {
                    panic!("field access on non-record");
                };
                let fi = fields.iter().position(|(n, _)| n == fname).expect("checked field");
                LValue::Mem { addr: ptr, offset: (RECORD_HEADER_WORDS as usize + fi) as i32 }
            }
            ExprKind::Index(base, idx) => self.index_lvalue(ctx, base, idx),
            ExprKind::Deref(base) => {
                // Deref of a REF-to-scalar (one-word record).
                let ptr = self.eval_expr(ctx, base);
                LValue::Mem { addr: ptr, offset: RECORD_HEADER_WORDS as i32 }
            }
            _ => panic!("not a designator: {:?}", e.kind),
        }
    }

    /// Evaluates `base` to a tidy record pointer, handling the implicit and
    /// explicit dereference forms.
    fn record_pointer(&mut self, ctx: &mut ProcCtx<'_>, base: &Expr) -> (Temp, TypeRef) {
        let bt = self.expr_type(base);
        match self.arena().get(bt) {
            Type::Ref(inner) => {
                let inner = *inner;
                (self.eval_expr(ctx, base), inner)
            }
            Type::Record { .. } => match &base.kind {
                ExprKind::Deref(inner) => {
                    let ptr = self.eval_expr(ctx, inner);
                    (ptr, bt)
                }
                other => panic!("record designator {other:?} not behind a REF"),
            },
            other => panic!("field base has type {other:?}"),
        }
    }

    /// Locates the array a designator denotes.
    fn array_loc(&mut self, ctx: &mut ProcCtx<'_>, base: &Expr) -> ArrLoc {
        let bt = self.expr_type(base);
        match self.arena().get(bt).clone() {
            Type::Ref(inner) => {
                let ptr = self.eval_expr(ctx, base);
                let bounds = match self.arena().get(inner) {
                    Type::Array { lo, hi, .. } => Some((*lo, *hi)),
                    Type::OpenArray { .. } => None,
                    other => panic!("indexing REF of {other:?}"),
                };
                ArrLoc::Heap { ptr, bounds }
            }
            Type::Array { lo, hi, .. } => {
                // A direct fixed array: local slot, global, or deref.
                match &base.kind {
                    ExprKind::Name(_) => match self.checked.name_res[&base.id] {
                        NameRes::Var(vid) => {
                            match ctx.storage[vid as usize].clone().expect("storage") {
                                Storage::ArraySlot { slot, lo, len } => {
                                    ArrLoc::Frame { slot, lo, len }
                                }
                                Storage::Alias(LValue::Mem { addr, offset }) => {
                                    // WITH alias of an array designator: the
                                    // alias holds the base address.
                                    debug_assert_eq!(offset, 0);
                                    ArrLoc::Heap { ptr: addr, bounds: Some((lo, hi)) }
                                }
                                other => panic!("array variable with storage {other:?}"),
                            }
                        }
                        NameRes::Global(g) => {
                            ArrLoc::GlobalArr { id: GlobalId(g), lo, len: (hi - lo + 1) as u32 }
                        }
                        NameRes::Const(_) => panic!("constant as array"),
                    },
                    ExprKind::Deref(inner) => {
                        let ptr = self.eval_expr(ctx, inner);
                        ArrLoc::Heap { ptr, bounds: Some((lo, hi)) }
                    }
                    other => panic!("fixed-array designator {other:?}"),
                }
            }
            Type::OpenArray { .. } => match &base.kind {
                ExprKind::Deref(inner) => {
                    let ptr = self.eval_expr(ctx, inner);
                    ArrLoc::Heap { ptr, bounds: None }
                }
                other => panic!("open-array designator {other:?}"),
            },
            other => panic!("indexing a {other:?}"),
        }
    }

    /// Emits `if !ok { RangeError }`.
    fn emit_range_check(&mut self, ctx: &mut ProcCtx<'_>, ok: Temp) {
        let err = ctx.b.block();
        let cont = ctx.b.block();
        ctx.b.br(ok, cont, err);
        ctx.b.switch_to(err);
        ctx.b.call_runtime(RuntimeFn::RangeError, vec![]);
        ctx.b.jump(cont);
        ctx.b.switch_to(cont);
    }

    /// Bounds-check `idx ∈ [lo, hi]` using constants.
    fn check_const_bounds(&mut self, ctx: &mut ProcCtx<'_>, idx: Temp, lo: i64, hi: i64) {
        if !self.options.bounds_checks {
            return;
        }
        let lo_t = ctx.b.constant(lo);
        let hi_t = ctx.b.constant(hi);
        let ge = ctx.b.bin(IrBin::Ge, idx, lo_t);
        let le = ctx.b.bin(IrBin::Le, idx, hi_t);
        let ok = ctx.b.bin(IrBin::And, ge, le);
        self.emit_range_check(ctx, ok);
    }

    fn index_lvalue(&mut self, ctx: &mut ProcCtx<'_>, base: &Expr, idx: &Expr) -> LValue {
        let loc = self.array_loc(ctx, base);
        let i = self.eval_expr(ctx, idx);
        match loc {
            ArrLoc::Heap { ptr, bounds: Some((lo, hi)) } => {
                self.check_const_bounds(ctx, i, lo, hi);
                // addr := ptr + (i + (HDR - lo)); the addition creates a
                // derived value based on `ptr`.
                let adj = ctx.b.constant(ARRAY_HEADER_WORDS as i64 - lo);
                let k = ctx.b.bin(IrBin::Add, i, adj);
                let addr = ctx.b.bin(IrBin::Add, ptr, k);
                LValue::Mem { addr, offset: 0 }
            }
            ArrLoc::Heap { ptr, bounds: None } => {
                if self.options.bounds_checks {
                    let len = ctx.b.load(ptr, 1, TempKind::Int);
                    let zero = ctx.b.constant(0);
                    let ge = ctx.b.bin(IrBin::Ge, i, zero);
                    let lt = ctx.b.bin(IrBin::Lt, i, len);
                    let ok = ctx.b.bin(IrBin::And, ge, lt);
                    self.emit_range_check(ctx, ok);
                }
                let adj = ctx.b.constant(ARRAY_HEADER_WORDS as i64);
                let k = ctx.b.bin(IrBin::Add, i, adj);
                let addr = ctx.b.bin(IrBin::Add, ptr, k);
                LValue::Mem { addr, offset: 0 }
            }
            ArrLoc::Frame { slot, lo, len } => {
                self.check_const_bounds(ctx, i, lo, lo + i64::from(len) - 1);
                if let ExprKind::Int(c) = idx.kind {
                    // Constant index: address the slot word directly.
                    return LValue::Slot(slot, (c - lo) as u32);
                }
                let base_addr = ctx.b.slot_addr(slot);
                let lo_t = ctx.b.constant(lo);
                let rel = ctx.b.bin(IrBin::Sub, i, lo_t);
                let addr = ctx.b.bin(IrBin::Add, base_addr, rel);
                LValue::Mem { addr, offset: 0 }
            }
            ArrLoc::GlobalArr { id, lo, len } => {
                self.check_const_bounds(ctx, i, lo, lo + i64::from(len) - 1);
                let base_addr = ctx.b.temp(TempKind::Int);
                ctx.b.push(Instr::GlobalAddr { dst: base_addr, global: id });
                let lo_t = ctx.b.constant(lo);
                let rel = ctx.b.bin(IrBin::Sub, i, lo_t);
                let addr = ctx.b.bin(IrBin::Add, base_addr, rel);
                LValue::Mem { addr, offset: 0 }
            }
        }
    }

    fn load_lvalue(&mut self, ctx: &mut ProcCtx<'_>, lv: &LValue, kind: TempKind) -> Temp {
        match lv {
            LValue::TempVar(t) => *t,
            LValue::Slot(s, off) => ctx.b.load_slot(*s, *off, kind),
            LValue::Global(g) => ctx.b.load_global(*g, kind),
            LValue::Mem { addr, offset } => ctx.b.load(*addr, *offset, kind),
        }
    }

    fn store_lvalue(&mut self, ctx: &mut ProcCtx<'_>, lv: &LValue, src: Temp) {
        match lv {
            LValue::TempVar(t) => ctx.b.push(Instr::Copy { dst: *t, src }),
            LValue::Slot(s, off) => ctx.b.store_slot(*s, *off, src),
            LValue::Global(g) => ctx.b.store_global(*g, src),
            LValue::Mem { addr, offset } => ctx.b.store(*addr, *offset, src),
        }
    }

    /// The address of a designator, for VAR argument passing. Returns a
    /// temp holding the address (derived when it points into the heap).
    fn designator_address(&mut self, ctx: &mut ProcCtx<'_>, e: &Expr) -> Temp {
        let lv = self.eval_designator(ctx, e);
        match lv {
            LValue::TempVar(_) => {
                panic!("VAR argument of a non-addressable variable (lowering bug)")
            }
            LValue::Slot(s, off) => {
                let base = ctx.b.slot_addr(s);
                if off == 0 {
                    base
                } else {
                    let o = ctx.b.constant(i64::from(off));
                    ctx.b.bin(IrBin::Add, base, o)
                }
            }
            LValue::Global(g) => {
                let t = ctx.b.temp(TempKind::Int);
                ctx.b.push(Instr::GlobalAddr { dst: t, global: g });
                t
            }
            LValue::Mem { addr, offset } => {
                if offset == 0 {
                    addr
                } else {
                    let o = ctx.b.constant(i64::from(offset));
                    ctx.b.bin(IrBin::Add, addr, o)
                }
            }
        }
    }

    // ---- expressions ----

    fn eval_expr(&mut self, ctx: &mut ProcCtx<'_>, e: &Expr) -> Temp {
        let ty = self.expr_type(e);
        let kind = self.temp_kind_of(ty);
        match &e.kind {
            ExprKind::Int(v) => {
                let t = ctx.b.temp(TempKind::Int);
                ctx.b.push(Instr::Const { dst: t, value: *v });
                t
            }
            ExprKind::CharLit(v) => {
                let t = ctx.b.temp(TempKind::Int);
                ctx.b.push(Instr::Const { dst: t, value: *v });
                t
            }
            ExprKind::Bool(v) => {
                let t = ctx.b.temp(TempKind::Int);
                ctx.b.push(Instr::Const { dst: t, value: i64::from(*v) });
                t
            }
            ExprKind::Nil => ctx.b.nil(),
            ExprKind::Text(s) => self.lower_text(ctx, s),
            ExprKind::Name(_) => match self.checked.name_res[&e.id] {
                NameRes::Const(v) => {
                    let t = ctx.b.temp(TempKind::Int);
                    ctx.b.push(Instr::Const { dst: t, value: v });
                    t
                }
                NameRes::Var(vid) => {
                    let lv = self.storage_lvalue(ctx, vid);
                    self.load_lvalue(ctx, &lv, kind)
                }
                NameRes::Global(g) => ctx.b.load_global(GlobalId(g), kind),
            },
            ExprKind::Field(..) | ExprKind::Index(..) | ExprKind::Deref(..) => {
                let lv = self.eval_designator(ctx, e);
                self.load_lvalue(ctx, &lv, kind)
            }
            ExprKind::Un(UnOp::Neg, x) => {
                let t = self.eval_expr(ctx, x);
                ctx.b.un(IrUn::Neg, t)
            }
            ExprKind::Un(UnOp::Not, x) => {
                let t = self.eval_expr(ctx, x);
                ctx.b.un(IrUn::Not, t)
            }
            ExprKind::Bin(BinOp::And, a, bx) => self.lower_short_circuit(ctx, a, bx, true),
            ExprKind::Bin(BinOp::Or, a, bx) => self.lower_short_circuit(ctx, a, bx, false),
            ExprKind::Bin(op, a, bx) => {
                let ta = self.eval_expr(ctx, a);
                let tb = self.eval_expr(ctx, bx);
                let ir_op = match op {
                    BinOp::Add => IrBin::Add,
                    BinOp::Sub => IrBin::Sub,
                    BinOp::Mul => IrBin::Mul,
                    BinOp::Div => IrBin::Div,
                    BinOp::Mod => IrBin::Mod,
                    BinOp::Eq => IrBin::Eq,
                    BinOp::Ne => IrBin::Ne,
                    BinOp::Lt => IrBin::Lt,
                    BinOp::Le => IrBin::Le,
                    BinOp::Gt => IrBin::Gt,
                    BinOp::Ge => IrBin::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                ctx.b.bin(ir_op, ta, tb)
            }
            ExprKind::New { len, .. } => {
                let referent = self.checked.new_types[&e.id];
                let ty_id = self.heap_type_id(referent);
                match self.arena().get(referent).clone() {
                    Type::Array { lo, hi, .. } => {
                        let l = ctx.b.constant(hi - lo + 1);
                        ctx.b.new_object(ty_id, Some(l))
                    }
                    Type::OpenArray { .. } => {
                        let l = self.eval_expr(ctx, len.as_ref().expect("checked"));
                        ctx.b.new_object(ty_id, Some(l))
                    }
                    _ => ctx.b.new_object(ty_id, None),
                }
            }
            ExprKind::Call { name, args } => self
                .lower_call(ctx, e, name, args)
                .expect("checker rejects value-less calls in expressions"),
        }
    }

    fn lower_short_circuit(
        &mut self,
        ctx: &mut ProcCtx<'_>,
        a: &Expr,
        b: &Expr,
        is_and: bool,
    ) -> Temp {
        let result = ctx.b.temp(TempKind::Int);
        let ta = self.eval_expr(ctx, a);
        ctx.b.push(Instr::Copy { dst: result, src: ta });
        let eval_b = ctx.b.block();
        let done = ctx.b.block();
        if is_and {
            ctx.b.br(ta, eval_b, done);
        } else {
            ctx.b.br(ta, done, eval_b);
        }
        ctx.b.switch_to(eval_b);
        let tb = self.eval_expr(ctx, b);
        ctx.b.push(Instr::Copy { dst: result, src: tb });
        ctx.b.jump(done);
        ctx.b.switch_to(done);
        result
    }

    fn lower_text(&mut self, ctx: &mut ProcCtx<'_>, s: &str) -> Temp {
        let ty_id = match self.char_array_ty {
            Some(t) => t,
            None => {
                let t = self.program.types.add(HeapType::Array {
                    name: "ARRAY OF CHAR".into(),
                    elem_words: 1,
                    elem_ptr_offsets: vec![],
                });
                self.char_array_ty = Some(t);
                t
            }
        };
        let chars: Vec<i64> = s.chars().map(|c| c as i64).collect();
        let len = ctx.b.constant(chars.len() as i64);
        let arr = ctx.b.new_object(ty_id, Some(len));
        for (i, c) in chars.iter().enumerate() {
            let cv = ctx.b.constant(*c);
            ctx.b.store(arr, (ARRAY_HEADER_WORDS as usize + i) as i32, cv);
        }
        arr
    }

    /// Lowers a call; returns the result temp for value-returning calls.
    fn lower_call(
        &mut self,
        ctx: &mut ProcCtx<'_>,
        e: &Expr,
        _name: &str,
        args: &[Expr],
    ) -> Option<Temp> {
        match self.checked.call_res[&e.id] {
            CallRes::Proc(pi) => {
                let sig = self.checked.proc_sigs[pi as usize].clone();
                let mut arg_temps = Vec::with_capacity(args.len());
                for (arg, (by_ref, _)) in args.iter().zip(&sig.params) {
                    if *by_ref {
                        arg_temps.push(self.designator_address(ctx, arg));
                    } else {
                        arg_temps.push(self.eval_expr(ctx, arg));
                    }
                }
                let ret_kind = sig.ret.map(|t| self.temp_kind_of(t));
                ctx.b.call(FuncId(pi), arg_temps, ret_kind)
            }
            CallRes::Builtin(b) => self.lower_builtin(ctx, b, args),
        }
    }

    fn lower_builtin(&mut self, ctx: &mut ProcCtx<'_>, b: Builtin, args: &[Expr]) -> Option<Temp> {
        match b {
            Builtin::PutInt | Builtin::PutChar => {
                let t = self.eval_expr(ctx, &args[0]);
                let f =
                    if b == Builtin::PutInt { RuntimeFn::PrintInt } else { RuntimeFn::PrintChar };
                ctx.b.call_runtime(f, vec![t]);
                None
            }
            Builtin::PutLn => {
                ctx.b.call_runtime(RuntimeFn::PrintLn, vec![]);
                None
            }
            Builtin::Ord | Builtin::Val => {
                // CHAR and BOOLEAN share the integer representation.
                Some(self.eval_expr(ctx, &args[0]))
            }
            Builtin::Abs => {
                let t = self.eval_expr(ctx, &args[0]);
                let result = ctx.b.temp(TempKind::Int);
                ctx.b.push(Instr::Copy { dst: result, src: t });
                let zero = ctx.b.constant(0);
                let neg = ctx.b.bin(IrBin::Lt, t, zero);
                let flip = ctx.b.block();
                let done = ctx.b.block();
                ctx.b.br(neg, flip, done);
                ctx.b.switch_to(flip);
                let n = ctx.b.un(IrUn::Neg, t);
                ctx.b.push(Instr::Copy { dst: result, src: n });
                ctx.b.jump(done);
                ctx.b.switch_to(done);
                Some(result)
            }
            Builtin::Min | Builtin::Max => {
                let x = self.eval_expr(ctx, &args[0]);
                let y = self.eval_expr(ctx, &args[1]);
                let result = ctx.b.temp(TempKind::Int);
                ctx.b.push(Instr::Copy { dst: result, src: x });
                let cmp = if b == Builtin::Min {
                    ctx.b.bin(IrBin::Lt, y, x)
                } else {
                    ctx.b.bin(IrBin::Gt, y, x)
                };
                let take_y = ctx.b.block();
                let done = ctx.b.block();
                ctx.b.br(cmp, take_y, done);
                ctx.b.switch_to(take_y);
                ctx.b.push(Instr::Copy { dst: result, src: y });
                ctx.b.jump(done);
                ctx.b.switch_to(done);
                Some(result)
            }
            Builtin::First | Builtin::Last | Builtin::Number => {
                let arg = &args[0];
                let t = self.expr_type(arg);
                let arr_ty = match self.arena().get(t) {
                    Type::Ref(inner) => *inner,
                    _ => t,
                };
                match self.arena().get(arr_ty).clone() {
                    Type::Array { lo, hi, .. } => {
                        let v = match b {
                            Builtin::First => lo,
                            Builtin::Last => hi,
                            _ => hi - lo + 1,
                        };
                        Some(ctx.b.constant(v))
                    }
                    Type::OpenArray { .. } => {
                        let ptr = self.eval_expr(ctx, arg);
                        let len = ctx.b.load(ptr, 1, TempKind::Int);
                        match b {
                            Builtin::First => Some(ctx.b.constant(0)),
                            Builtin::Number => Some(len),
                            _ => {
                                let one = ctx.b.constant(1);
                                Some(ctx.b.bin(IrBin::Sub, len, one))
                            }
                        }
                    }
                    other => panic!("FIRST/LAST/NUMBER of {other:?}"),
                }
            }
            Builtin::Inc | Builtin::Dec => {
                let lv = self.eval_designator(ctx, &args[0]);
                let cur = self.load_lvalue(ctx, &lv, TempKind::Int);
                let step =
                    if args.len() == 2 { self.eval_expr(ctx, &args[1]) } else { ctx.b.constant(1) };
                let next = if b == Builtin::Inc {
                    ctx.b.bin(IrBin::Add, cur, step)
                } else {
                    ctx.b.bin(IrBin::Sub, cur, step)
                };
                self.store_lvalue(ctx, &lv, next);
                None
            }
            Builtin::Assert => {
                let c = self.eval_expr(ctx, &args[0]);
                let fail = ctx.b.block();
                let cont = ctx.b.block();
                ctx.b.br(c, cont, fail);
                ctx.b.switch_to(fail);
                ctx.b.call_runtime(RuntimeFn::AssertError, vec![]);
                ctx.b.jump(cont);
                ctx.b.switch_to(cont);
                None
            }
        }
    }

    // ---- statements ----

    fn lower_stmts(&mut self, ctx: &mut ProcCtx<'_>, stmts: &[Stmt]) {
        for s in stmts {
            if ctx.b.is_terminated() {
                // Unreachable code after RETURN/EXIT: lower it into a dead
                // block anyway so FOR/WITH binding order stays in sync with
                // the checker; it is removed as unreachable later.
                let dead = ctx.b.block();
                ctx.b.switch_to(dead);
            }
            self.lower_stmt(ctx, s);
        }
    }

    fn lower_stmt(&mut self, ctx: &mut ProcCtx<'_>, s: &Stmt) {
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                let lv = self.eval_designator(ctx, lhs);
                let v = self.eval_expr(ctx, rhs);
                self.store_lvalue(ctx, &lv, v);
            }
            StmtKind::Call(e) => {
                let ExprKind::Call { name, args } = &e.kind else { unreachable!("parser") };
                let _ = self.lower_call(ctx, e, name, args);
            }
            StmtKind::If { arms, else_body } => {
                let done = ctx.b.block();
                for (cond, body) in arms {
                    let c = self.eval_expr(ctx, cond);
                    let then_b = ctx.b.block();
                    let next = ctx.b.block();
                    ctx.b.br(c, then_b, next);
                    ctx.b.switch_to(then_b);
                    self.lower_stmts(ctx, body);
                    if !ctx.b.is_terminated() {
                        ctx.b.jump(done);
                    }
                    ctx.b.switch_to(next);
                }
                self.lower_stmts(ctx, else_body);
                if !ctx.b.is_terminated() {
                    ctx.b.jump(done);
                }
                ctx.b.switch_to(done);
            }
            StmtKind::While { cond, body } => {
                let header = ctx.b.block();
                let body_b = ctx.b.block();
                let exit = ctx.b.block();
                ctx.b.jump(header);
                ctx.b.switch_to(header);
                let c = self.eval_expr(ctx, cond);
                ctx.b.br(c, body_b, exit);
                ctx.b.switch_to(body_b);
                ctx.loop_exits.push(exit);
                self.lower_stmts(ctx, body);
                ctx.loop_exits.pop();
                if !ctx.b.is_terminated() {
                    ctx.b.jump(header);
                }
                ctx.b.switch_to(exit);
            }
            StmtKind::Repeat { body, cond } => {
                let body_b = ctx.b.block();
                let exit = ctx.b.block();
                ctx.b.jump(body_b);
                ctx.b.switch_to(body_b);
                ctx.loop_exits.push(exit);
                self.lower_stmts(ctx, body);
                ctx.loop_exits.pop();
                if !ctx.b.is_terminated() {
                    let c = self.eval_expr(ctx, cond);
                    ctx.b.br(c, exit, body_b);
                }
                ctx.b.switch_to(exit);
            }
            StmtKind::Loop { body } => {
                let body_b = ctx.b.block();
                let exit = ctx.b.block();
                ctx.b.jump(body_b);
                ctx.b.switch_to(body_b);
                ctx.loop_exits.push(exit);
                self.lower_stmts(ctx, body);
                ctx.loop_exits.pop();
                if !ctx.b.is_terminated() {
                    ctx.b.jump(body_b);
                }
                ctx.b.switch_to(exit);
            }
            StmtKind::For { var, from, to, by, body } => {
                // Find the FOR variable's id: the checker bound it for this
                // statement; match by name and class among unassigned vars.
                let vid = ctx.take_binding(var, VarClass::For);
                let step = by.as_ref().map_or(1, const_step);
                let iv = ctx.b.temp(TempKind::Int);
                ctx.storage[vid as usize] = Some(Storage::Temp(iv));
                let f = self.eval_expr(ctx, from);
                ctx.b.push(Instr::Copy { dst: iv, src: f });
                let limit = self.eval_expr(ctx, to);
                let header = ctx.b.block();
                let body_b = ctx.b.block();
                let exit = ctx.b.block();
                ctx.b.jump(header);
                ctx.b.switch_to(header);
                let c = if step > 0 {
                    ctx.b.bin(IrBin::Le, iv, limit)
                } else {
                    ctx.b.bin(IrBin::Ge, iv, limit)
                };
                ctx.b.br(c, body_b, exit);
                ctx.b.switch_to(body_b);
                ctx.loop_exits.push(exit);
                self.lower_stmts(ctx, body);
                ctx.loop_exits.pop();
                if !ctx.b.is_terminated() {
                    let st = ctx.b.constant(step);
                    let next = ctx.b.bin(IrBin::Add, iv, st);
                    ctx.b.push(Instr::Copy { dst: iv, src: next });
                    ctx.b.jump(header);
                }
                ctx.b.switch_to(exit);
            }
            StmtKind::Exit => {
                let exit = *ctx.loop_exits.last().expect("checker verified EXIT inside a loop");
                ctx.b.jump(exit);
            }
            StmtKind::Return(v) => {
                let t = v.as_ref().map(|e| self.eval_expr(ctx, e));
                ctx.b.ret(t);
            }
            StmtKind::With { bindings, body } => {
                for (name, d) in bindings {
                    let vid = ctx.take_binding(name, VarClass::With);
                    let storage = if is_designator(d) {
                        Storage::Alias(self.eval_designator(ctx, d))
                    } else {
                        Storage::Value(self.eval_expr(ctx, d))
                    };
                    ctx.storage[vid as usize] = Some(storage);
                }
                self.lower_stmts(ctx, body);
            }
        }
    }
}

fn is_designator(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Name(_) | ExprKind::Field(..) | ExprKind::Index(..) | ExprKind::Deref(..)
    )
}

fn const_step(e: &Expr) -> i64 {
    match &e.kind {
        ExprKind::Int(v) => *v,
        ExprKind::Un(UnOp::Neg, inner) => match &inner.kind {
            ExprKind::Int(v) => -v,
            _ => 1,
        },
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        crate::compile_to_ir(src).unwrap_or_else(|e| panic!("{e}"))
    }

    fn run(src: &str) -> String {
        let p = compile(src);
        m3gc_ir::verify::verify_program(&p).unwrap_or_else(|e| panic!("{e}"));
        m3gc_ir::interp::run_program(&p).unwrap_or_else(|e| panic!("{e}")).output
    }

    #[test]
    fn hello_sum() {
        assert_eq!(run("MODULE M; VAR x: INTEGER; BEGIN x := 40 + 2; PutInt(x); END M."), "42");
    }

    #[test]
    fn for_loop_sums() {
        let out = run("MODULE M; VAR s, i: INTEGER;
             BEGIN s := 0; FOR i := 1 TO 10 DO s := s + i; END; PutInt(s); END M.");
        assert_eq!(out, "55");
    }

    #[test]
    fn for_downto() {
        let out = run("MODULE M; VAR i: INTEGER;
             BEGIN FOR i := 3 TO 1 BY -1 DO PutInt(i); END; END M.");
        assert_eq!(out, "321");
    }

    #[test]
    fn heap_records_and_lists() {
        let out = run("MODULE M;
             TYPE List = REF RECORD head: INTEGER; tail: List END;
             VAR l, p: List; s: INTEGER;
             BEGIN
               l := NIL;
               FOR s := 1 TO 3 DO
                 p := NEW(List); p.head := s; p.tail := l; l := p;
               END;
               s := 0;
               WHILE l # NIL DO s := s * 10 + l.head; l := l.tail; END;
               PutInt(s);
             END M.");
        assert_eq!(out, "321");
    }

    #[test]
    fn heap_fixed_arrays_with_lower_bound() {
        let out = run("MODULE M;
             TYPE A = REF ARRAY [7..13] OF INTEGER;
             VAR a: A; i, s: INTEGER;
             BEGIN
               a := NEW(A);
               FOR i := 7 TO 13 DO a[i] := i; END;
               s := 0;
               FOR i := FIRST(a) TO LAST(a) DO s := s + a[i]; END;
               PutInt(s);
             END M.");
        assert_eq!(out, "70");
    }

    #[test]
    fn open_arrays() {
        let out = run("MODULE M;
             TYPE V = REF ARRAY OF INTEGER;
             VAR v: V; i, s: INTEGER;
             BEGIN
               v := NEW(V, 5);
               FOR i := 0 TO NUMBER(v) - 1 DO v[i] := i * i; END;
               s := 0;
               FOR i := 0 TO LAST(v) DO s := s + v[i]; END;
               PutInt(s);
             END M.");
        assert_eq!(out, "30");
    }

    #[test]
    fn local_arrays_in_frame() {
        let out = run("MODULE M;
             PROCEDURE F(): INTEGER =
             VAR a: ARRAY [1..4] OF INTEGER; i, s: INTEGER;
             BEGIN
               FOR i := 1 TO 4 DO a[i] := 10 * i; END;
               s := 0;
               FOR i := 1 TO 4 DO s := s + a[i]; END;
               RETURN s;
             END F;
             BEGIN PutInt(F()); END M.");
        assert_eq!(out, "100");
    }

    #[test]
    fn var_params_on_locals_and_heap() {
        let out = run("MODULE M;
             TYPE R = REF RECORD x: INTEGER END;
             PROCEDURE Bump(VAR v: INTEGER) = BEGIN v := v + 1; END Bump;
             VAR r: R; n: INTEGER;
             BEGIN
               n := 5; Bump(n); PutInt(n);
               r := NEW(R); r.x := 10; Bump(r.x); PutInt(r.x);
             END M.");
        assert_eq!(out, "611");
    }

    #[test]
    fn with_aliases() {
        let out = run("MODULE M;
             TYPE A = REF ARRAY [1..3] OF INTEGER;
             VAR a: A; i: INTEGER;
             BEGIN
               a := NEW(A);
               FOR i := 1 TO 3 DO
                 WITH h = a[i] DO h := i * 7; END;
               END;
               PutInt(a[1] + a[2] + a[3]);
             END M.");
        assert_eq!(out, "42");
    }

    #[test]
    fn short_circuit_evaluation() {
        // The second conjunct would trap on NIL if evaluated.
        let out = run("MODULE M;
             TYPE R = REF RECORD x: INTEGER END;
             VAR r: R;
             BEGIN
               r := NIL;
               IF (r # NIL) AND (r.x > 0) THEN PutInt(1); ELSE PutInt(0); END;
             END M.");
        assert_eq!(out, "0");
    }

    #[test]
    fn range_error_on_bad_subscript() {
        let p = compile(
            "MODULE M;
             TYPE A = REF ARRAY [1..3] OF INTEGER;
             VAR a: A; i: INTEGER;
             BEGIN a := NEW(A); i := 9; a[i] := 1; END M.",
        );
        let r = m3gc_ir::interp::run_program(&p);
        assert_eq!(r, Err(m3gc_ir::interp::Trap::RangeError));
    }

    #[test]
    fn assertion_failure_traps() {
        let p = compile("MODULE M; BEGIN ASSERT(FALSE); END M.");
        assert_eq!(m3gc_ir::interp::run_program(&p), Err(m3gc_ir::interp::Trap::AssertError));
    }

    #[test]
    fn text_literals_allocate_char_arrays() {
        let out = run("MODULE M;
             TYPE S = REF ARRAY OF CHAR;
             VAR s: S; i: INTEGER;
             BEGIN
               s := \"hi!\";
               FOR i := 0 TO LAST(s) DO PutChar(ORD(s[i])); END;
             END M.");
        assert_eq!(out, "hi!");
    }

    #[test]
    fn exit_leaves_loop() {
        let out = run("MODULE M; VAR i: INTEGER;
             BEGIN
               i := 0;
               LOOP
                 i := i + 1;
                 IF i = 4 THEN EXIT; END;
               END;
               PutInt(i);
             END M.");
        assert_eq!(out, "4");
    }

    #[test]
    fn repeat_until() {
        let out = run("MODULE M; VAR i: INTEGER;
             BEGIN i := 0; REPEAT i := i + 2; UNTIL i >= 5; PutInt(i); END M.");
        assert_eq!(out, "6");
    }

    #[test]
    fn global_initializers_run_first() {
        let out = run("MODULE M; VAR x: INTEGER := 9; BEGIN PutInt(x); END M.");
        assert_eq!(out, "9");
    }

    #[test]
    fn global_arrays() {
        let out = run("MODULE M;
             VAR g: ARRAY [2..4] OF INTEGER; i, s: INTEGER;
             BEGIN
               FOR i := 2 TO 4 DO g[i] := i; END;
               s := 0;
               FOR i := 2 TO 4 DO s := s + g[i]; END;
               PutInt(s);
             END M.");
        assert_eq!(out, "9");
    }

    #[test]
    fn recursion_fib() {
        let out = run("MODULE M;
             PROCEDURE Fib(n: INTEGER): INTEGER =
             BEGIN
               IF n < 2 THEN RETURN n; END;
               RETURN Fib(n - 1) + Fib(n - 2);
             END Fib;
             BEGIN PutInt(Fib(12)); END M.");
        assert_eq!(out, "144");
    }

    #[test]
    fn min_max_abs() {
        let out = run("MODULE M;
             BEGIN PutInt(MIN(3, 5)); PutInt(MAX(3, 5)); PutInt(ABS(-7)); END M.");
        assert_eq!(out, "357");
    }

    #[test]
    fn value_param_passed_by_var_elsewhere() {
        // A value parameter whose address is taken must be slot-allocated.
        let out = run("MODULE M;
             PROCEDURE Bump(VAR v: INTEGER) = BEGIN v := v + 1; END Bump;
             PROCEDURE F(x: INTEGER): INTEGER =
             BEGIN Bump(x); RETURN x; END F;
             BEGIN PutInt(F(41)); END M.");
        assert_eq!(out, "42");
    }

    #[test]
    fn every_function_verifies_with_derivations() {
        let mut p = compile(
            "MODULE M;
             TYPE A = REF ARRAY [1..8] OF INTEGER;
             VAR a: A; i: INTEGER;
             BEGIN
               a := NEW(A);
               FOR i := 1 TO 8 DO a[i] := i; END;
               PutInt(a[3]);
             END M.",
        );
        for f in &mut p.funcs {
            let deriv = m3gc_ir::deriv::analyze_and_resolve(f);
            m3gc_ir::verify::verify_function(f, None, Some(&deriv))
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
