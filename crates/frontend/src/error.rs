//! Source-located diagnostics.

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    #[must_use]
    pub fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Which phase reported the diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking.
    Type,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Lex => write!(f, "lexical"),
            Phase::Parse => write!(f, "syntax"),
            Phase::Type => write!(f, "type"),
        }
    }
}

/// A compile-time error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Reporting phase.
    pub phase: Phase,
    /// Source position.
    pub pos: Pos,
    /// Message.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    #[must_use]
    pub fn new(phase: Phase, pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic { phase, pos, message: message.into() }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.pos, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let d = Diagnostic::new(Phase::Type, Pos::new(3, 7), "mismatched types");
        assert_eq!(d.to_string(), "type error at 3:7: mismatched types");
    }
}
