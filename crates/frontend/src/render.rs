//! AST → Mini-M3 source renderer.
//!
//! The inverse of the parser, used by the fuzzing subsystem: generated
//! and shrunk ASTs are rendered back to concrete syntax so every fuzz
//! case exercises the whole pipeline (lexer onward) and every failure
//! reproduces from a plain source file. Expressions are fully
//! parenthesized, so rendering is precedence-safe by construction and
//! `render → parse → render` is a fixpoint after one round.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a module as parseable Mini-M3 source.
#[must_use]
pub fn render_module(m: &Module) -> String {
    let mut r = Renderer { out: String::new(), indent: 0 };
    r.module(m);
    r.out
}

struct Renderer {
    out: String,
    indent: usize,
}

impl Renderer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn module(&mut self, m: &Module) {
        self.line(&format!("MODULE {};", m.name));
        if !m.types.is_empty() {
            self.line("TYPE");
            for t in &m.types {
                self.line(&format!("  {} = {};", t.name, type_expr(&t.ty)));
            }
        }
        if !m.consts.is_empty() {
            self.line("CONST");
            for c in &m.consts {
                self.line(&format!("  {} = {};", c.name, expr(&c.value)));
            }
        }
        if !m.vars.is_empty() {
            self.line("VAR");
            for v in &m.vars {
                self.line(&format!("  {}", var_decl(v)));
            }
        }
        for p in &m.procs {
            self.proc(p);
        }
        self.line("BEGIN");
        self.indent += 1;
        for s in &m.body {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line(&format!("END {}.", m.name));
    }

    fn proc(&mut self, p: &ProcDecl) {
        let formals = p
            .formals
            .iter()
            .map(|f| {
                let prefix = if f.var { "VAR " } else { "" };
                format!("{prefix}{}: {}", f.names.join(", "), type_expr(&f.ty))
            })
            .collect::<Vec<_>>()
            .join("; ");
        let ret = match &p.ret {
            Some(t) => format!(": {}", type_expr(t)),
            None => String::new(),
        };
        self.line(&format!("PROCEDURE {}({formals}){ret} =", p.name));
        if !p.locals.is_empty() {
            self.line("VAR");
            for v in &p.locals {
                self.line(&format!("  {}", var_decl(v)));
            }
        }
        self.line("BEGIN");
        self.indent += 1;
        for s in &p.body {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line(&format!("END {};", p.name));
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                self.line(&format!("{} := {};", expr(lhs), expr(rhs)));
            }
            StmtKind::Call(e) => self.line(&format!("{};", expr(e))),
            StmtKind::If { arms, else_body } => {
                for (i, (cond, body)) in arms.iter().enumerate() {
                    let kw = if i == 0 { "IF" } else { "ELSIF" };
                    self.line(&format!("{kw} {} THEN", expr(cond)));
                    self.block(body);
                }
                if !else_body.is_empty() {
                    self.line("ELSE");
                    self.block(else_body);
                }
                self.line("END;");
            }
            StmtKind::While { cond, body } => {
                self.line(&format!("WHILE {} DO", expr(cond)));
                self.block(body);
                self.line("END;");
            }
            StmtKind::Repeat { body, cond } => {
                self.line("REPEAT");
                self.block(body);
                self.line(&format!("UNTIL {};", expr(cond)));
            }
            StmtKind::Loop { body } => {
                self.line("LOOP");
                self.block(body);
                self.line("END;");
            }
            StmtKind::For { var, from, to, by, body } => {
                let by = match by {
                    Some(b) => format!(" BY {}", expr(b)),
                    None => String::new(),
                };
                self.line(&format!("FOR {var} := {} TO {}{by} DO", expr(from), expr(to)));
                self.block(body);
                self.line("END;");
            }
            StmtKind::Exit => self.line("EXIT;"),
            StmtKind::Return(None) => self.line("RETURN;"),
            StmtKind::Return(Some(e)) => self.line(&format!("RETURN {};", expr(e))),
            StmtKind::With { bindings, body } => {
                let binds = bindings
                    .iter()
                    .map(|(n, e)| format!("{n} = {}", expr(e)))
                    .collect::<Vec<_>>()
                    .join(", ");
                self.line(&format!("WITH {binds} DO"));
                self.block(body);
                self.line("END;");
            }
        }
    }

    fn block(&mut self, body: &[Stmt]) {
        self.indent += 1;
        for s in body {
            self.stmt(s);
        }
        self.indent -= 1;
    }
}

fn var_decl(v: &VarDecl) -> String {
    let init = match &v.init {
        Some(e) => format!(" := {}", expr(e)),
        None => String::new(),
    };
    format!("{}: {}{init};", v.names.join(", "), type_expr(&v.ty))
}

/// Renders a type expression.
#[must_use]
pub fn type_expr(t: &TypeExpr) -> String {
    match &t.kind {
        TypeExprKind::Int => "INTEGER".into(),
        TypeExprKind::Bool => "BOOLEAN".into(),
        TypeExprKind::Char => "CHAR".into(),
        TypeExprKind::Named(n) => n.clone(),
        TypeExprKind::Ref(inner) => format!("REF {}", type_expr(inner)),
        TypeExprKind::Array { lo, hi, elem } => {
            format!("ARRAY [{}..{}] OF {}", expr(lo), expr(hi), type_expr(elem))
        }
        TypeExprKind::OpenArray(elem) => format!("ARRAY OF {}", type_expr(elem)),
        TypeExprKind::Record(fields) => {
            let mut s = String::from("RECORD ");
            for (name, ty) in fields {
                let _ = write!(s, "{name}: {}; ", type_expr(ty));
            }
            s.push_str("END");
            s
        }
    }
}

/// Renders an expression, fully parenthesizing every operator.
#[must_use]
pub fn expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Bool(true) => "TRUE".into(),
        ExprKind::Bool(false) => "FALSE".into(),
        ExprKind::CharLit(c) => match u32::try_from(*c).ok().and_then(char::from_u32) {
            Some('\n') => "'\\n'".into(),
            Some('\t') => "'\\t'".into(),
            Some('\\') => "'\\\\'".into(),
            Some('\'') => "'\\''".into(),
            Some('\0') | None => "'\\0'".into(),
            Some(ch) => format!("'{ch}'"),
        },
        ExprKind::Nil => "NIL".into(),
        ExprKind::Text(s) => format!("{s:?}"),
        ExprKind::Name(n) => n.clone(),
        ExprKind::Field(base, f) => format!("{}.{f}", expr(base)),
        ExprKind::Index(base, idx) => format!("{}[{}]", expr(base), expr(idx)),
        ExprKind::Deref(base) => format!("{}^", expr(base)),
        ExprKind::Bin(op, l, r) => format!("({} {} {})", expr(l), bin_op(*op), expr(r)),
        ExprKind::Un(UnOp::Neg, inner) => format!("(-{})", expr(inner)),
        ExprKind::Un(UnOp::Not, inner) => format!("(NOT {})", expr(inner)),
        ExprKind::Call { name, args } => {
            let args = args.iter().map(expr).collect::<Vec<_>>().join(", ");
            format!("{name}({args})")
        }
        ExprKind::New { ty, len } => match len {
            Some(l) => format!("NEW({}, {})", type_expr(ty), expr(l)),
            None => format!("NEW({})", type_expr(ty)),
        },
    }
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "DIV",
        BinOp::Mod => "MOD",
        BinOp::Eq => "=",
        BinOp::Ne => "#",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn reparse(src: &str) -> Module {
        parse(lex(src).expect("lex")).expect("parse")
    }

    #[test]
    fn render_is_stable_under_reparse() {
        let src = "MODULE M;
             TYPE List = REF RECORD head: INTEGER; tail: List END;
                  A = REF ARRAY OF INTEGER;
                  B = ARRAY [1..4] OF BOOLEAN;
             CONST N = 10;
             VAR a, b: INTEGER := 3; p: List; q: A;
             PROCEDURE F(x: INTEGER; VAR y: INTEGER): INTEGER =
             VAR t: INTEGER;
             BEGIN
               t := x + y * 2;
               IF t > 0 THEN y := t; ELSIF t = 0 THEN y := 1; ELSE y := -t; END;
               WHILE t > 0 DO t := t - 1; END;
               REPEAT t := t + 1; UNTIL t >= 3;
               LOOP EXIT; END;
               FOR i := 1 TO 5 BY 2 DO t := t + i; END;
               WITH h = q^[1], g = t DO h := g; END;
               RETURN t;
             END F;
             BEGIN
               p := NEW(List);
               q := NEW(A, N);
               p.head := F(a, b);
               IF (p # NIL) AND (p.head >= 0) THEN PutInt(p.head); END;
               PutLn();
             END M.";
        let once = render_module(&reparse(src));
        let twice = render_module(&reparse(&once));
        assert_eq!(once, twice, "rendering must be a reparse fixpoint");
    }

    #[test]
    fn renders_full_parentheses() {
        let m = reparse("MODULE M; VAR x: INTEGER; BEGIN x := 1 + 2 * 3; END M.");
        let out = render_module(&m);
        assert!(out.contains("x := (1 + (2 * 3));"), "got: {out}");
    }
}
