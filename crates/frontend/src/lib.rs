//! Front end for **Mini-M3**, a Modula-3 subset.
//!
//! The paper's techniques apply to any statically typed language; we
//! reproduce them over a subset of Modula-3 that keeps every feature the
//! paper leans on:
//!
//! * `REF` types with structural equivalence, records, fixed arrays with
//!   arbitrary lower bounds (the *virtual array origin* optimization needs
//!   non-zero lower bounds), open arrays (`REF ARRAY OF T`),
//! * `VAR` parameters and the `WITH` statement — the two language features
//!   that create pointers into the interior of objects (§2),
//! * `FOR`/`WHILE`/`REPEAT` loops (strength reduction, loop gc-points),
//!   short-circuit `AND`/`OR`, and the usual statements.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`typecheck`] → [`lower`] (to
//! `m3gc_ir`). Errors carry source positions ([`error::Diagnostic`]).
//!
//! # Example
//!
//! ```
//! let src = r#"
//! MODULE Tiny;
//! VAR x: INTEGER;
//! BEGIN
//!   x := 40 + 2;
//!   PutInt(x);
//! END Tiny.
//! "#;
//! let program = m3gc_frontend::compile_to_ir(src).expect("compiles");
//! let outcome = m3gc_ir::interp::run_program(&program).expect("runs");
//! assert_eq!(outcome.output, "42");
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod render;
pub mod typecheck;
pub mod types;

pub use error::Diagnostic;

/// Compiles Mini-M3 source text to an (unoptimized) IR program.
///
/// # Errors
///
/// Returns the first lexical, syntactic or type [`Diagnostic`].
pub fn compile_to_ir(source: &str) -> Result<m3gc_ir::Program, Diagnostic> {
    let tokens = lexer::lex(source)?;
    let module = parser::parse(tokens)?;
    let checked = typecheck::check(&module)?;
    Ok(lower::lower(&module, &checked))
}
