//! Semantic types and structural equivalence.
//!
//! Mini-M3, like Modula-3, uses **structural** type equivalence: two types
//! are the same if they have the same shape, even when declared under
//! different names. Recursive types (`List = REF RECORD ... tail: List
//! END`) make the comparison coinductive: we compare with an assumption set
//! of pairs already assumed equal.

/// Index of a type in the [`TypeArena`].
pub type TypeRef = u32;

/// A semantic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `INTEGER`.
    Int,
    /// `BOOLEAN`.
    Bool,
    /// `CHAR`.
    Char,
    /// The type of `NIL`, assignable to any REF.
    NilType,
    /// The "no value" type of call statements.
    Void,
    /// `REF T`.
    Ref(TypeRef),
    /// `ARRAY [lo..hi] OF elem`.
    Array {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Element type.
        elem: TypeRef,
    },
    /// `ARRAY OF elem` (open; length known at run time).
    OpenArray {
        /// Element type.
        elem: TypeRef,
    },
    /// `RECORD fields END`.
    Record {
        /// Field names and types, in declaration order.
        fields: Vec<(String, TypeRef)>,
    },
    /// Placeholder for a named type not yet resolved (checker internal).
    Unresolved,
}

/// Arena of semantic types.
#[derive(Debug, Clone, Default)]
pub struct TypeArena {
    types: Vec<Type>,
}

impl TypeArena {
    /// Creates an arena pre-seeded with the primitive types.
    #[must_use]
    pub fn new() -> TypeArena {
        let mut a = TypeArena { types: Vec::new() };
        // Fixed order so the constants below hold.
        a.add(Type::Int);
        a.add(Type::Bool);
        a.add(Type::Char);
        a.add(Type::NilType);
        a.add(Type::Void);
        a
    }

    /// `INTEGER`.
    pub const INT: TypeRef = 0;
    /// `BOOLEAN`.
    pub const BOOL: TypeRef = 1;
    /// `CHAR`.
    pub const CHAR: TypeRef = 2;
    /// Type of `NIL`.
    pub const NIL: TypeRef = 3;
    /// No value.
    pub const VOID: TypeRef = 4;

    /// Adds a type, returning its reference.
    pub fn add(&mut self, t: Type) -> TypeRef {
        let r = self.types.len() as TypeRef;
        self.types.push(t);
        r
    }

    /// Looks up a type.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn get(&self, r: TypeRef) -> &Type {
        &self.types[r as usize]
    }

    /// Replaces a placeholder created for a recursive named type.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn resolve(&mut self, r: TypeRef, t: Type) {
        self.types[r as usize] = t;
    }

    /// Number of types.
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if the arena holds no types (never, once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Structural equivalence, coinductive over REF cycles.
    #[must_use]
    pub fn equal(&self, a: TypeRef, b: TypeRef) -> bool {
        self.equal_inner(a, b, &mut Vec::new())
    }

    fn equal_inner(&self, a: TypeRef, b: TypeRef, assumed: &mut Vec<(TypeRef, TypeRef)>) -> bool {
        if a == b || assumed.contains(&(a, b)) {
            return true;
        }
        match (self.get(a), self.get(b)) {
            (Type::Int, Type::Int)
            | (Type::Bool, Type::Bool)
            | (Type::Char, Type::Char)
            | (Type::NilType, Type::NilType)
            | (Type::Void, Type::Void) => true,
            (Type::Ref(x), Type::Ref(y)) => {
                assumed.push((a, b));
                let r = self.equal_inner(*x, *y, assumed);
                assumed.pop();
                r
            }
            (
                Type::Array { lo: l1, hi: h1, elem: e1 },
                Type::Array { lo: l2, hi: h2, elem: e2 },
            ) => l1 == l2 && h1 == h2 && self.equal_inner(*e1, *e2, assumed),
            (Type::OpenArray { elem: e1 }, Type::OpenArray { elem: e2 }) => {
                self.equal_inner(*e1, *e2, assumed)
            }
            (Type::Record { fields: f1 }, Type::Record { fields: f2 }) => {
                f1.len() == f2.len()
                    && f1
                        .iter()
                        .zip(f2)
                        .all(|((n1, t1), (n2, t2))| n1 == n2 && self.equal_inner(*t1, *t2, assumed))
            }
            _ => false,
        }
    }

    /// Assignability: structural equality, or NIL into any REF, or (for
    /// open-array formals) a fixed array into an open array of the same
    /// element type.
    #[must_use]
    pub fn assignable(&self, dst: TypeRef, src: TypeRef) -> bool {
        if self.equal(dst, src) {
            return true;
        }
        match (self.get(dst), self.get(src)) {
            (Type::Ref(_), Type::NilType) => true,
            (Type::Ref(d), Type::Ref(s)) => match (self.get(*d), self.get(*s)) {
                // REF ARRAY [l..h] OF T is usable where REF ARRAY OF T is
                // expected (subtype-like, as in Modula-3's allocation of
                // fixed arrays for open-array refs).
                (Type::OpenArray { elem: de }, Type::Array { elem: se, .. }) => {
                    self.equal(*de, *se)
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Human-readable type name for diagnostics.
    #[must_use]
    pub fn display(&self, r: TypeRef) -> String {
        self.display_depth(r, 0)
    }

    fn display_depth(&self, r: TypeRef, depth: usize) -> String {
        if depth > 4 {
            return "...".into();
        }
        match self.get(r) {
            Type::Int => "INTEGER".into(),
            Type::Bool => "BOOLEAN".into(),
            Type::Char => "CHAR".into(),
            Type::NilType => "NIL".into(),
            Type::Void => "(no value)".into(),
            Type::Unresolved => "(unresolved)".into(),
            Type::Ref(t) => format!("REF {}", self.display_depth(*t, depth + 1)),
            Type::Array { lo, hi, elem } => {
                format!("ARRAY [{lo}..{hi}] OF {}", self.display_depth(*elem, depth + 1))
            }
            Type::OpenArray { elem } => {
                format!("ARRAY OF {}", self.display_depth(*elem, depth + 1))
            }
            Type::Record { fields } => format!("RECORD ({} fields)", fields.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_distinct() {
        let a = TypeArena::new();
        assert!(a.equal(TypeArena::INT, TypeArena::INT));
        assert!(!a.equal(TypeArena::INT, TypeArena::CHAR));
        assert!(!a.equal(TypeArena::BOOL, TypeArena::INT));
    }

    #[test]
    fn structural_equivalence_of_separate_declarations() {
        let mut a = TypeArena::new();
        let r1 = a.add(Type::Record { fields: vec![("x".into(), TypeArena::INT)] });
        let r2 = a.add(Type::Record { fields: vec![("x".into(), TypeArena::INT)] });
        let p1 = a.add(Type::Ref(r1));
        let p2 = a.add(Type::Ref(r2));
        assert!(a.equal(p1, p2), "same shape, different declarations");
    }

    #[test]
    fn field_names_matter() {
        let mut a = TypeArena::new();
        let r1 = a.add(Type::Record { fields: vec![("x".into(), TypeArena::INT)] });
        let r2 = a.add(Type::Record { fields: vec![("y".into(), TypeArena::INT)] });
        assert!(!a.equal(r1, r2));
    }

    #[test]
    fn recursive_types_compare_coinductively() {
        // Two separately declared list types must be equal.
        let mut a = TypeArena::new();
        let l1 = a.add(Type::Unresolved);
        let rec1 = a.add(Type::Record {
            fields: vec![("head".into(), TypeArena::INT), ("tail".into(), l1)],
        });
        a.resolve(l1, Type::Ref(rec1));
        let l2 = a.add(Type::Unresolved);
        let rec2 = a.add(Type::Record {
            fields: vec![("head".into(), TypeArena::INT), ("tail".into(), l2)],
        });
        a.resolve(l2, Type::Ref(rec2));
        assert!(a.equal(l1, l2));
        assert!(a.equal(rec1, rec2));
    }

    #[test]
    fn array_bounds_matter() {
        let mut a = TypeArena::new();
        let x = a.add(Type::Array { lo: 1, hi: 10, elem: TypeArena::INT });
        let y = a.add(Type::Array { lo: 0, hi: 9, elem: TypeArena::INT });
        let z = a.add(Type::Array { lo: 1, hi: 10, elem: TypeArena::INT });
        assert!(!a.equal(x, y));
        assert!(a.equal(x, z));
    }

    #[test]
    fn nil_assignable_to_refs_only() {
        let mut a = TypeArena::new();
        let r = a.add(Type::Record { fields: vec![] });
        let p = a.add(Type::Ref(r));
        assert!(a.assignable(p, TypeArena::NIL));
        assert!(!a.assignable(TypeArena::INT, TypeArena::NIL));
    }

    #[test]
    fn fixed_array_ref_into_open_array_ref() {
        let mut a = TypeArena::new();
        let fixed = a.add(Type::Array { lo: 1, hi: 3, elem: TypeArena::INT });
        let open = a.add(Type::OpenArray { elem: TypeArena::INT });
        let pf = a.add(Type::Ref(fixed));
        let po = a.add(Type::Ref(open));
        assert!(a.assignable(po, pf));
        assert!(!a.assignable(pf, po));
    }

    #[test]
    fn display_is_readable() {
        let mut a = TypeArena::new();
        let arr = a.add(Type::Array { lo: 1, hi: 5, elem: TypeArena::INT });
        let r = a.add(Type::Ref(arr));
        assert_eq!(a.display(r), "REF ARRAY [1..5] OF INTEGER");
    }
}
