//! Recursive-descent parser for Mini-M3.

use crate::ast::*;
use crate::error::{Diagnostic, Phase, Pos};
use crate::lexer::{Spanned, Tok};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    next_expr_id: ExprId,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.toks[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(Diagnostic::new(Phase::Parse, self.here(), msg))
    }

    fn expect(&mut self, t: &Tok) -> PResult<()> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn mk(&mut self, pos: Pos, kind: ExprKind) -> Expr {
        let id = self.next_expr_id;
        self.next_expr_id += 1;
        Expr { id, pos, kind }
    }

    // ---- types ----

    fn type_expr(&mut self) -> PResult<TypeExpr> {
        let pos = self.here();
        let kind = match self.peek().clone() {
            Tok::Integer => {
                self.bump();
                TypeExprKind::Int
            }
            Tok::Boolean => {
                self.bump();
                TypeExprKind::Bool
            }
            Tok::CharKw => {
                self.bump();
                TypeExprKind::Char
            }
            Tok::Ident(name) => {
                self.bump();
                TypeExprKind::Named(name)
            }
            Tok::Ref => {
                self.bump();
                TypeExprKind::Ref(Box::new(self.type_expr()?))
            }
            Tok::Array => {
                self.bump();
                if self.eat(&Tok::LBracket) {
                    let lo = self.expr()?;
                    self.expect(&Tok::DotDot)?;
                    let hi = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    self.expect(&Tok::Of)?;
                    let elem = self.type_expr()?;
                    TypeExprKind::Array { lo: Box::new(lo), hi: Box::new(hi), elem: Box::new(elem) }
                } else {
                    self.expect(&Tok::Of)?;
                    TypeExprKind::OpenArray(Box::new(self.type_expr()?))
                }
            }
            Tok::Record => {
                self.bump();
                let mut fields = Vec::new();
                while !self.eat(&Tok::End) {
                    let mut names = vec![self.ident()?];
                    while self.eat(&Tok::Comma) {
                        names.push(self.ident()?);
                    }
                    self.expect(&Tok::Colon)?;
                    let fty = self.type_expr()?;
                    // The semicolon after the last field is optional.
                    if !self.eat(&Tok::Semi) && self.peek() != &Tok::End {
                        return self.err(format!("expected `;` or END, found {}", self.peek()));
                    }
                    for n in names {
                        fields.push((n, fty.clone()));
                    }
                }
                TypeExprKind::Record(fields)
            }
            other => return self.err(format!("expected a type, found {other}")),
        };
        Ok(TypeExpr { pos, kind })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::Or {
            let pos = self.here();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = self.mk(pos, ExprKind::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.peek() == &Tok::And {
            let pos = self.here();
            self.bump();
            let rhs = self.not_expr()?;
            lhs = self.mk(pos, ExprKind::Bin(BinOp::And, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> PResult<Expr> {
        if self.peek() == &Tok::Not {
            let pos = self.here();
            self.bump();
            let e = self.not_expr()?;
            Ok(self.mk(pos, ExprKind::Un(UnOp::Not, Box::new(e))))
        } else {
            self.rel_expr()
        }
    }

    fn rel_expr(&mut self) -> PResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Hash => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.here();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(self.mk(pos, ExprKind::Bin(op, Box::new(lhs), Box::new(rhs))))
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let pos = self.here();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = self.mk(pos, ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Div => BinOp::Div,
                Tok::Mod => BinOp::Mod,
                _ => break,
            };
            let pos = self.here();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = self.mk(pos, ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.peek() == &Tok::Minus {
            let pos = self.here();
            self.bump();
            let e = self.unary_expr()?;
            Ok(self.mk(pos, ExprKind::Un(UnOp::Neg, Box::new(e))))
        } else {
            self.postfix_expr()
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            let pos = self.here();
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    e = self.mk(pos, ExprKind::Field(Box::new(e), field));
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = self.mk(pos, ExprKind::Index(Box::new(e), Box::new(idx)));
                }
                Tok::Caret => {
                    self.bump();
                    e = self.mk(pos, ExprKind::Deref(Box::new(e)));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let pos = self.here();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(self.mk(pos, ExprKind::Int(v)))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(self.mk(pos, ExprKind::CharLit(c)))
            }
            Tok::Text(s) => {
                self.bump();
                Ok(self.mk(pos, ExprKind::Text(s)))
            }
            Tok::True => {
                self.bump();
                Ok(self.mk(pos, ExprKind::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(self.mk(pos, ExprKind::Bool(false)))
            }
            Tok::Nil => {
                self.bump();
                Ok(self.mk(pos, ExprKind::Nil))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) if name == "NEW" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let ty = self.type_expr()?;
                let len = if self.eat(&Tok::Comma) { Some(Box::new(self.expr()?)) } else { None };
                self.expect(&Tok::RParen)?;
                Ok(self.mk(pos, ExprKind::New { ty, len }))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        args.push(self.expr()?);
                        while self.eat(&Tok::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(self.mk(pos, ExprKind::Call { name, args }))
                } else {
                    Ok(self.mk(pos, ExprKind::Name(name)))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    // ---- statements ----

    fn stmt_list(&mut self, enders: &[Tok]) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        while !enders.contains(self.peek()) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let pos = self.here();
        let kind = match self.peek().clone() {
            Tok::If => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.expr()?;
                self.expect(&Tok::Then)?;
                let body = self.stmt_list(&[Tok::Elsif, Tok::Else, Tok::End])?;
                arms.push((cond, body));
                while self.eat(&Tok::Elsif) {
                    let c = self.expr()?;
                    self.expect(&Tok::Then)?;
                    let b = self.stmt_list(&[Tok::Elsif, Tok::Else, Tok::End])?;
                    arms.push((c, b));
                }
                let else_body =
                    if self.eat(&Tok::Else) { self.stmt_list(&[Tok::End])? } else { Vec::new() };
                self.expect(&Tok::End)?;
                self.expect(&Tok::Semi)?;
                StmtKind::If { arms, else_body }
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&Tok::Do)?;
                let body = self.stmt_list(&[Tok::End])?;
                self.expect(&Tok::End)?;
                self.expect(&Tok::Semi)?;
                StmtKind::While { cond, body }
            }
            Tok::Repeat => {
                self.bump();
                let body = self.stmt_list(&[Tok::Until])?;
                self.expect(&Tok::Until)?;
                let cond = self.expr()?;
                self.expect(&Tok::Semi)?;
                StmtKind::Repeat { body, cond }
            }
            Tok::Loop => {
                self.bump();
                let body = self.stmt_list(&[Tok::End])?;
                self.expect(&Tok::End)?;
                self.expect(&Tok::Semi)?;
                StmtKind::Loop { body }
            }
            Tok::For => {
                self.bump();
                let var = self.ident()?;
                self.expect(&Tok::Assign)?;
                let from = self.expr()?;
                self.expect(&Tok::To)?;
                let to = self.expr()?;
                let by = if self.eat(&Tok::By) { Some(self.expr()?) } else { None };
                self.expect(&Tok::Do)?;
                let body = self.stmt_list(&[Tok::End])?;
                self.expect(&Tok::End)?;
                self.expect(&Tok::Semi)?;
                StmtKind::For { var, from, to, by, body }
            }
            Tok::Exit => {
                self.bump();
                self.expect(&Tok::Semi)?;
                StmtKind::Exit
            }
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(&Tok::Semi)?;
                StmtKind::Return(value)
            }
            Tok::With => {
                self.bump();
                let mut bindings = Vec::new();
                loop {
                    let name = self.ident()?;
                    self.expect(&Tok::Eq)?;
                    let e = self.expr()?;
                    bindings.push((name, e));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Do)?;
                let body = self.stmt_list(&[Tok::End])?;
                self.expect(&Tok::End)?;
                self.expect(&Tok::Semi)?;
                StmtKind::With { bindings, body }
            }
            Tok::Ident(_) => {
                // Either an assignment to a designator or a call statement.
                let e = self.postfix_expr()?;
                if self.eat(&Tok::Assign) {
                    let rhs = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    StmtKind::Assign { lhs: e, rhs }
                } else {
                    if !matches!(e.kind, ExprKind::Call { .. }) {
                        return Err(Diagnostic::new(
                            Phase::Parse,
                            pos,
                            "expected `:=` or a call statement",
                        ));
                    }
                    self.expect(&Tok::Semi)?;
                    StmtKind::Call(e)
                }
            }
            other => return self.err(format!("expected a statement, found {other}")),
        };
        Ok(Stmt { pos, kind })
    }

    // ---- declarations ----

    fn var_decl(&mut self) -> PResult<VarDecl> {
        let pos = self.here();
        let mut names = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            names.push(self.ident()?);
        }
        self.expect(&Tok::Colon)?;
        let ty = self.type_expr()?;
        let init = if self.eat(&Tok::Assign) { Some(self.expr()?) } else { None };
        self.expect(&Tok::Semi)?;
        Ok(VarDecl { names, ty, init, pos })
    }

    fn proc_decl(&mut self) -> PResult<ProcDecl> {
        let pos = self.here();
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut formals = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let var = self.eat(&Tok::Var);
                let mut names = vec![self.ident()?];
                while self.eat(&Tok::Comma) {
                    names.push(self.ident()?);
                }
                self.expect(&Tok::Colon)?;
                let ty = self.type_expr()?;
                formals.push(Formal { var, names, ty });
                if !self.eat(&Tok::Semi) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let ret = if self.eat(&Tok::Colon) { Some(self.type_expr()?) } else { None };
        self.expect(&Tok::Eq)?;
        let mut locals = Vec::new();
        while self.eat(&Tok::Var) {
            while matches!(self.peek(), Tok::Ident(_)) {
                locals.push(self.var_decl()?);
            }
        }
        self.expect(&Tok::Begin)?;
        let body = self.stmt_list(&[Tok::End])?;
        self.expect(&Tok::End)?;
        let end_name = self.ident()?;
        if end_name != name {
            return Err(Diagnostic::new(
                Phase::Parse,
                pos,
                format!("procedure `{name}` ends with mismatched name `{end_name}`"),
            ));
        }
        self.expect(&Tok::Semi)?;
        Ok(ProcDecl { name, formals, ret, locals, body, pos })
    }

    fn module(&mut self) -> PResult<Module> {
        self.expect(&Tok::Module)?;
        let name = self.ident()?;
        self.expect(&Tok::Semi)?;
        let mut module = Module {
            name: name.clone(),
            types: Vec::new(),
            consts: Vec::new(),
            vars: Vec::new(),
            procs: Vec::new(),
            body: Vec::new(),
            n_exprs: 0,
        };
        loop {
            match self.peek().clone() {
                Tok::Type => {
                    self.bump();
                    while matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::Eq {
                        let pos = self.here();
                        let tname = self.ident()?;
                        self.expect(&Tok::Eq)?;
                        let ty = self.type_expr()?;
                        self.expect(&Tok::Semi)?;
                        module.types.push(TypeDecl { name: tname, ty, pos });
                    }
                }
                Tok::Const => {
                    self.bump();
                    while matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::Eq {
                        let pos = self.here();
                        let cname = self.ident()?;
                        self.expect(&Tok::Eq)?;
                        let value = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        module.consts.push(ConstDecl { name: cname, value, pos });
                    }
                }
                Tok::Var => {
                    self.bump();
                    while matches!(self.peek(), Tok::Ident(_)) {
                        module.vars.push(self.var_decl()?);
                    }
                }
                Tok::Procedure => {
                    self.bump();
                    module.procs.push(self.proc_decl()?);
                }
                Tok::Begin => break,
                other => {
                    return self.err(format!("expected a declaration or BEGIN, found {other}"))
                }
            }
        }
        self.expect(&Tok::Begin)?;
        module.body = self.stmt_list(&[Tok::End])?;
        self.expect(&Tok::End)?;
        let end_name = self.ident()?;
        if end_name != name {
            return self.err(format!("module `{name}` ends with mismatched name `{end_name}`"));
        }
        self.expect(&Tok::Dot)?;
        module.n_exprs = self.next_expr_id;
        Ok(module)
    }
}

/// Parses a token stream into a module.
///
/// # Errors
///
/// Returns the first syntax [`Diagnostic`].
pub fn parse(tokens: Vec<Spanned>) -> Result<Module, Diagnostic> {
    let mut p = Parser { toks: tokens, pos: 0, next_expr_id: 0 };
    p.module()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Module {
        parse(lex(src).unwrap()).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn minimal_module() {
        let m = parse_src("MODULE M; BEGIN END M.");
        assert_eq!(m.name, "M");
        assert!(m.body.is_empty());
    }

    #[test]
    fn declarations() {
        let m = parse_src(
            "MODULE M;
             TYPE List = REF RECORD head: INTEGER; tail: List END;
             CONST N = 10;
             VAR a, b: INTEGER; p: List;
             BEGIN END M.",
        );
        assert_eq!(m.types.len(), 1);
        assert_eq!(m.consts.len(), 1);
        assert_eq!(m.vars.len(), 2);
        assert_eq!(m.vars[0].names, vec!["a", "b"]);
    }

    #[test]
    fn procedure_with_var_params() {
        let m = parse_src(
            "MODULE M;
             PROCEDURE Swap(VAR x, y: INTEGER) =
             VAR t: INTEGER;
             BEGIN
               t := x; x := y; y := t;
             END Swap;
             BEGIN END M.",
        );
        assert_eq!(m.procs.len(), 1);
        let p = &m.procs[0];
        assert!(p.formals[0].var);
        assert_eq!(p.formals[0].names, vec!["x", "y"]);
        assert_eq!(p.locals.len(), 1);
        assert_eq!(p.body.len(), 3);
    }

    #[test]
    fn control_flow_statements() {
        let m = parse_src(
            "MODULE M;
             VAR i, s: INTEGER; done: BOOLEAN;
             BEGIN
               FOR i := 1 TO 10 DO s := s + i; END;
               WHILE s > 0 DO s := s - 1; END;
               REPEAT s := s + 1; UNTIL s = 5;
               LOOP EXIT; END;
               IF s = 5 THEN s := 0; ELSIF s > 5 THEN s := 1; ELSE s := 2; END;
             END M.",
        );
        assert_eq!(m.body.len(), 5);
    }

    #[test]
    fn designators_and_calls() {
        let m = parse_src(
            "MODULE M;
             TYPE T = REF ARRAY [1..5] OF INTEGER;
             VAR a: T; x: INTEGER;
             BEGIN
               x := a[2] + a^[3];
               PutInt(x);
             END M.",
        );
        assert_eq!(m.body.len(), 2);
        match &m.body[1].kind {
            StmtKind::Call(e) => {
                assert!(matches!(&e.kind, ExprKind::Call { name, .. } if name == "PutInt"))
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn new_with_length() {
        let m = parse_src(
            "MODULE M;
             TYPE A = REF ARRAY OF INTEGER;
             VAR a: A;
             BEGIN a := NEW(A, 10); END M.",
        );
        match &m.body[0].kind {
            StmtKind::Assign { rhs, .. } => assert!(matches!(rhs.kind, ExprKind::New { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn with_statement() {
        let m = parse_src(
            "MODULE M;
             TYPE R = REF RECORD f: INTEGER END;
             VAR r: R;
             BEGIN WITH h = r.f DO h := 3; END; END M.",
        );
        assert!(matches!(m.body[0].kind, StmtKind::With { .. }));
    }

    #[test]
    fn operator_precedence() {
        let m = parse_src(
            "MODULE M; VAR x: BOOLEAN; a: INTEGER; BEGIN x := a + 1 * 2 < 3 AND NOT x; END M.",
        );
        // Shape: (a + (1*2)) < 3 AND (NOT x) → And(Lt(...), Not(x))
        let StmtKind::Assign { rhs, .. } = &m.body[0].kind else { panic!() };
        let ExprKind::Bin(BinOp::And, l, r) = &rhs.kind else { panic!("{rhs:?}") };
        assert!(matches!(l.kind, ExprKind::Bin(BinOp::Lt, _, _)));
        assert!(matches!(r.kind, ExprKind::Un(UnOp::Not, _)));
    }

    #[test]
    fn mismatched_end_name_is_error() {
        let r = parse(lex("MODULE M; BEGIN END N.").unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn expr_ids_are_unique_and_dense() {
        let m = parse_src("MODULE M; VAR x: INTEGER; BEGIN x := 1 + 2; END M.");
        assert!(m.n_exprs >= 3);
    }
}
