//! Lexer for Mini-M3.
//!
//! Keywords are upper-case as in Modula-3; identifiers are case-sensitive.
//! Comments are `(* ... *)` and nest.

use crate::error::{Diagnostic, Phase, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals and identifiers.
    /// Integer literal.
    Int(i64),
    /// Character literal (code point).
    Char(i64),
    /// Identifier.
    Ident(String),
    /// Text (string) literal.
    Text(String),

    // Keywords.
    Module,
    Type,
    Const,
    Var,
    Procedure,
    Begin,
    End,
    If,
    Then,
    Elsif,
    Else,
    While,
    Do,
    Repeat,
    Until,
    For,
    To,
    By,
    Loop,
    Exit,
    Return,
    With,
    Record,
    Array,
    Of,
    Ref,
    Div,
    Mod,
    And,
    Or,
    Not,
    Nil,
    True,
    False,
    Integer,
    Boolean,
    CharKw,

    // Punctuation and operators.
    Semi,
    Colon,
    Comma,
    Dot,
    DotDot,
    Assign,
    Eq,
    Hash,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Caret,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Char(c) => write!(f, "character literal {c}"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Text(_) => write!(f, "text literal"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", keyword_or_symbol(other)),
        }
    }
}

fn keyword_or_symbol(t: &Tok) -> &'static str {
    match t {
        Tok::Module => "MODULE",
        Tok::Type => "TYPE",
        Tok::Const => "CONST",
        Tok::Var => "VAR",
        Tok::Procedure => "PROCEDURE",
        Tok::Begin => "BEGIN",
        Tok::End => "END",
        Tok::If => "IF",
        Tok::Then => "THEN",
        Tok::Elsif => "ELSIF",
        Tok::Else => "ELSE",
        Tok::While => "WHILE",
        Tok::Do => "DO",
        Tok::Repeat => "REPEAT",
        Tok::Until => "UNTIL",
        Tok::For => "FOR",
        Tok::To => "TO",
        Tok::By => "BY",
        Tok::Loop => "LOOP",
        Tok::Exit => "EXIT",
        Tok::Return => "RETURN",
        Tok::With => "WITH",
        Tok::Record => "RECORD",
        Tok::Array => "ARRAY",
        Tok::Of => "OF",
        Tok::Ref => "REF",
        Tok::Div => "DIV",
        Tok::Mod => "MOD",
        Tok::And => "AND",
        Tok::Or => "OR",
        Tok::Not => "NOT",
        Tok::Nil => "NIL",
        Tok::True => "TRUE",
        Tok::False => "FALSE",
        Tok::Integer => "INTEGER",
        Tok::Boolean => "BOOLEAN",
        Tok::CharKw => "CHAR",
        Tok::Semi => ";",
        Tok::Colon => ":",
        Tok::Comma => ",",
        Tok::Dot => ".",
        Tok::DotDot => "..",
        Tok::Assign => ":=",
        Tok::Eq => "=",
        Tok::Hash => "#",
        Tok::Lt => "<",
        Tok::Le => "<=",
        Tok::Gt => ">",
        Tok::Ge => ">=",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::LBracket => "[",
        Tok::RBracket => "]",
        Tok::Caret => "^",
        _ => "?",
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "MODULE" => Tok::Module,
        "TYPE" => Tok::Type,
        "CONST" => Tok::Const,
        "VAR" => Tok::Var,
        "PROCEDURE" => Tok::Procedure,
        "BEGIN" => Tok::Begin,
        "END" => Tok::End,
        "IF" => Tok::If,
        "THEN" => Tok::Then,
        "ELSIF" => Tok::Elsif,
        "ELSE" => Tok::Else,
        "WHILE" => Tok::While,
        "DO" => Tok::Do,
        "REPEAT" => Tok::Repeat,
        "UNTIL" => Tok::Until,
        "FOR" => Tok::For,
        "TO" => Tok::To,
        "BY" => Tok::By,
        "LOOP" => Tok::Loop,
        "EXIT" => Tok::Exit,
        "RETURN" => Tok::Return,
        "WITH" => Tok::With,
        "RECORD" => Tok::Record,
        "ARRAY" => Tok::Array,
        "OF" => Tok::Of,
        "REF" => Tok::Ref,
        "DIV" => Tok::Div,
        "MOD" => Tok::Mod,
        "AND" => Tok::And,
        "OR" => Tok::Or,
        "NOT" => Tok::Not,
        "NIL" => Tok::Nil,
        "TRUE" => Tok::True,
        "FALSE" => Tok::False,
        "INTEGER" => Tok::Integer,
        "BOOLEAN" => Tok::Boolean,
        "CHAR" => Tok::CharKw,
        _ => return None,
    })
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Phase::Lex, self.pos(), msg)
    }
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on malformed input (bad character, unterminated
/// comment or literal, overflowing number).
pub fn lex(source: &str) -> Result<Vec<Spanned>, Diagnostic> {
    let mut lx = Lexer { chars: source.chars().peekable(), line: 1, col: 1 };
    let mut out = Vec::new();
    loop {
        // Skip whitespace.
        while matches!(lx.peek(), Some(c) if c.is_whitespace()) {
            lx.bump();
        }
        let pos = lx.pos();
        let Some(c) = lx.peek() else {
            out.push(Spanned { tok: Tok::Eof, pos });
            return Ok(out);
        };
        // Comments: (* ... *) nesting.
        if c == '(' {
            lx.bump();
            if lx.peek() == Some('*') {
                lx.bump();
                let mut depth = 1;
                loop {
                    match lx.bump() {
                        None => return Err(lx.err("unterminated comment")),
                        Some('*') if lx.peek() == Some(')') => {
                            lx.bump();
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some('(') if lx.peek() == Some('*') => {
                            lx.bump();
                            depth += 1;
                        }
                        Some(_) => {}
                    }
                }
                continue;
            }
            out.push(Spanned { tok: Tok::LParen, pos });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while matches!(lx.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                s.push(lx.bump().expect("peeked"));
            }
            let tok = keyword(&s).unwrap_or(Tok::Ident(s));
            out.push(Spanned { tok, pos });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut v: i64 = 0;
            while matches!(lx.peek(), Some(c) if c.is_ascii_digit()) {
                let d = lx.bump().expect("peeked") as i64 - '0' as i64;
                v = v
                    .checked_mul(10)
                    .and_then(|x| x.checked_add(d))
                    .ok_or_else(|| Diagnostic::new(Phase::Lex, pos, "integer literal overflows"))?;
            }
            out.push(Spanned { tok: Tok::Int(v), pos });
            continue;
        }
        // Character literals.
        if c == '\'' {
            lx.bump();
            let ch = match lx.bump() {
                Some('\\') => match lx.bump() {
                    Some('n') => '\n' as i64,
                    Some('t') => '\t' as i64,
                    Some('\\') => '\\' as i64,
                    Some('\'') => '\'' as i64,
                    Some('0') => 0,
                    _ => return Err(lx.err("bad escape in character literal")),
                },
                Some(c) => c as i64,
                None => return Err(lx.err("unterminated character literal")),
            };
            if lx.bump() != Some('\'') {
                return Err(lx.err("unterminated character literal"));
            }
            out.push(Spanned { tok: Tok::Char(ch), pos });
            continue;
        }
        // Text literals.
        if c == '"' {
            lx.bump();
            let mut s = String::new();
            loop {
                match lx.bump() {
                    None => return Err(lx.err("unterminated text literal")),
                    Some('"') => break,
                    Some('\\') => match lx.bump() {
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('\\') => s.push('\\'),
                        Some('"') => s.push('"'),
                        _ => return Err(lx.err("bad escape in text literal")),
                    },
                    Some(c) => s.push(c),
                }
            }
            out.push(Spanned { tok: Tok::Text(s), pos });
            continue;
        }
        // Operators and punctuation.
        lx.bump();
        let tok = match c {
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            ')' => Tok::RParen,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            '^' => Tok::Caret,
            '+' => Tok::Plus,
            '-' => Tok::Minus,
            '*' => Tok::Star,
            '=' => Tok::Eq,
            '#' => Tok::Hash,
            '.' => {
                if lx.peek() == Some('.') {
                    lx.bump();
                    Tok::DotDot
                } else {
                    Tok::Dot
                }
            }
            ':' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::Assign
                } else {
                    Tok::Colon
                }
            }
            '<' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '>' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            other => {
                return Err(Diagnostic::new(
                    Phase::Lex,
                    pos,
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        out.push(Spanned { tok, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("MODULE Foo;"),
            vec![Tok::Module, Tok::Ident("Foo".into()), Tok::Semi, Tok::Eof]
        );
    }

    #[test]
    fn numbers_and_operators() {
        assert_eq!(
            toks("x := 1 + 23 * 4"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(23),
                Tok::Star,
                Tok::Int(4),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn ranges_vs_dots() {
        assert_eq!(
            toks("[1..10]"),
            vec![Tok::LBracket, Tok::Int(1), Tok::DotDot, Tok::Int(10), Tok::RBracket, Tok::Eof]
        );
        assert_eq!(
            toks("a.b"),
            vec![Tok::Ident("a".into()), Tok::Dot, Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_nest() {
        assert_eq!(
            toks("a (* x (* y *) z *) b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn char_and_text_literals() {
        assert_eq!(toks("'a'"), vec![Tok::Char('a' as i64), Tok::Eof]);
        assert_eq!(toks("'\\n'"), vec![Tok::Char('\n' as i64), Tok::Eof]);
        assert_eq!(toks("\"hi\\n\""), vec![Tok::Text("hi\n".into()), Tok::Eof]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = #"),
            vec![Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Eq, Tok::Hash, Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos::new(1, 1));
        assert_eq!(ts[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn overflowing_literal_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn bad_character_is_error() {
        let e = lex("a ? b").unwrap_err();
        assert!(e.message.contains("unexpected character"));
    }
}
