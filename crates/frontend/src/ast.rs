//! Abstract syntax for Mini-M3.
//!
//! Every expression node carries a unique [`ExprId`] assigned by the
//! parser; the type checker records each expression's type in a side table
//! indexed by id, which the lowering phase consumes.

use crate::error::Pos;

/// Unique id of an expression node within a module.
pub type ExprId = u32;

/// Source-level binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit conjunction.
    And,
    /// Short-circuit disjunction.
    Or,
}

/// Source-level unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Unique id (index into the checker's type side table).
    pub id: ExprId,
    /// Source position.
    pub pos: Pos,
    /// Node kind.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Character literal (code point).
    CharLit(i64),
    /// `NIL`.
    Nil,
    /// Text literal (lowered to a fresh `REF ARRAY OF CHAR`).
    Text(String),
    /// Variable / constant / parameter reference.
    Name(String),
    /// `e.f` (with implicit dereference through REF).
    Field(Box<Expr>, String),
    /// `e[i]` (with implicit dereference through REF).
    Index(Box<Expr>, Box<Expr>),
    /// `e^`.
    Deref(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Procedure or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `NEW(T)` or `NEW(T, n)` for open arrays.
    New {
        /// The referent type being allocated (as written).
        ty: TypeExpr,
        /// Length for open arrays.
        len: Option<Box<Expr>>,
    },
}

/// A type as written in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeExpr {
    /// Source position.
    pub pos: Pos,
    /// Node kind.
    pub kind: TypeExprKind,
}

/// Type expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExprKind {
    /// `INTEGER`.
    Int,
    /// `BOOLEAN`.
    Bool,
    /// `CHAR`.
    Char,
    /// A named type.
    Named(String),
    /// `REF T`.
    Ref(Box<TypeExpr>),
    /// `ARRAY [lo..hi] OF T` — bounds are compile-time constants.
    Array {
        /// Lower bound expression.
        lo: Box<Expr>,
        /// Upper bound expression.
        hi: Box<Expr>,
        /// Element type.
        elem: Box<TypeExpr>,
    },
    /// `ARRAY OF T` (open; only under REF).
    OpenArray(Box<TypeExpr>),
    /// `RECORD f: T; ... END`.
    Record(Vec<(String, TypeExpr)>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Source position.
    pub pos: Pos,
    /// Node kind.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `lhs := rhs`.
    Assign {
        /// Target designator.
        lhs: Expr,
        /// Source expression.
        rhs: Expr,
    },
    /// Call statement (procedure or builtin like `INC`, `ASSERT`).
    Call(Expr),
    /// `IF ... THEN ... ELSIF ... ELSE ... END`.
    If {
        /// `(condition, body)` arms in order.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// `ELSE` body (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `WHILE cond DO body END`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `REPEAT body UNTIL cond`.
    Repeat {
        /// Loop body.
        body: Vec<Stmt>,
        /// Exit condition.
        cond: Expr,
    },
    /// `LOOP body END` (exited by EXIT/RETURN).
    Loop {
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `FOR var := from TO to [BY by] DO body END`.
    For {
        /// Control variable (implicitly declared).
        var: String,
        /// Initial value.
        from: Expr,
        /// Final value.
        to: Expr,
        /// Step (constant; defaults to 1).
        by: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `EXIT` — leave the innermost loop.
    Exit,
    /// `RETURN [e]`.
    Return(Option<Expr>),
    /// `WITH id = designator, ... DO body END`.
    With {
        /// Bindings in order.
        bindings: Vec<(String, Expr)>,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// A variable declaration (module- or procedure-level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Declared names.
    pub names: Vec<String>,
    /// Their type.
    pub ty: TypeExpr,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// A named type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDecl {
    /// The name.
    pub name: String,
    /// The definition.
    pub ty: TypeExpr,
    /// Source position.
    pub pos: Pos,
}

/// A constant declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDecl {
    /// The name.
    pub name: String,
    /// The (constant) value expression.
    pub value: Expr,
    /// Source position.
    pub pos: Pos,
}

/// A formal parameter group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formal {
    /// True for `VAR` (by-reference) parameters.
    pub var: bool,
    /// Names sharing this type.
    pub names: Vec<String>,
    /// Parameter type.
    pub ty: TypeExpr,
}

/// A procedure declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDecl {
    /// The name.
    pub name: String,
    /// Formal parameters.
    pub formals: Vec<Formal>,
    /// Return type, if any.
    pub ret: Option<TypeExpr>,
    /// Local variables.
    pub locals: Vec<VarDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// A whole module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Named types.
    pub types: Vec<TypeDecl>,
    /// Constants.
    pub consts: Vec<ConstDecl>,
    /// Module-level variables.
    pub vars: Vec<VarDecl>,
    /// Procedures.
    pub procs: Vec<ProcDecl>,
    /// Module body (the program entry).
    pub body: Vec<Stmt>,
    /// Number of expression ids handed out by the parser.
    pub n_exprs: u32,
}
