//! Type checker for Mini-M3.
//!
//! Produces a [`Checked`] side structure: the semantic type of every
//! expression, the resolution of every name and call, and per-procedure
//! variable tables — everything the lowering phase needs without re-doing
//! scope analysis.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::{Diagnostic, Phase, Pos};
use crate::types::{Type, TypeArena, TypeRef};

/// Builtin procedures and functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `PutInt(i)` — print an integer.
    PutInt,
    /// `PutChar(c)` — print a character.
    PutChar,
    /// `PutLn()` — print a newline.
    PutLn,
    /// `ORD(c)` — character/boolean code.
    Ord,
    /// `VAL(i)` — integer to character.
    Val,
    /// `ABS(i)`.
    Abs,
    /// `MIN(a, b)`.
    Min,
    /// `MAX(a, b)`.
    Max,
    /// `FIRST(a)` — lower bound of an array.
    First,
    /// `LAST(a)` — upper bound of an array.
    Last,
    /// `NUMBER(a)` — element count of an array.
    Number,
    /// `INC(v[, n])` — statement.
    Inc,
    /// `DEC(v[, n])` — statement.
    Dec,
    /// `ASSERT(b)` — statement.
    Assert,
}

fn builtin_by_name(name: &str) -> Option<Builtin> {
    Some(match name {
        "PutInt" => Builtin::PutInt,
        "PutChar" => Builtin::PutChar,
        "PutLn" => Builtin::PutLn,
        "ORD" => Builtin::Ord,
        "VAL" => Builtin::Val,
        "ABS" => Builtin::Abs,
        "MIN" => Builtin::Min,
        "MAX" => Builtin::Max,
        "FIRST" => Builtin::First,
        "LAST" => Builtin::Last,
        "NUMBER" => Builtin::Number,
        "INC" => Builtin::Inc,
        "DEC" => Builtin::Dec,
        "ASSERT" => Builtin::Assert,
        _ => return None,
    })
}

/// What a name expression resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameRes {
    /// A variable in the enclosing procedure's [`VarInfo`] table.
    Var(u32),
    /// A module-level variable (index into [`Checked::globals`]).
    Global(u32),
    /// A compile-time constant.
    Const(i64),
}

/// What a call expression resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallRes {
    /// User procedure (index into the module's procedure list).
    Proc(u32),
    /// Builtin.
    Builtin(Builtin),
}

/// Classification of a procedure-scope variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// A parameter (`index` is its position; `by_ref` for VAR parameters).
    Param {
        /// Zero-based parameter position.
        index: u32,
        /// True for VAR parameters.
        by_ref: bool,
    },
    /// An ordinary local.
    Local,
    /// A FOR-loop control variable.
    For,
    /// A WITH-bound alias.
    With,
}

/// One procedure-scope variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Semantic type (for VAR params, the referent type).
    pub ty: TypeRef,
    /// Classification.
    pub class: VarClass,
}

/// A procedure signature.
#[derive(Debug, Clone)]
pub struct ProcSig {
    /// Parameter passing modes and types.
    pub params: Vec<(bool, TypeRef)>,
    /// Return type.
    pub ret: Option<TypeRef>,
}

/// The checker's output.
#[derive(Debug, Clone)]
pub struct Checked {
    /// The type arena.
    pub arena: TypeArena,
    /// Type of every expression, indexed by [`ExprId`].
    pub expr_types: Vec<TypeRef>,
    /// Resolution of every `Name` expression.
    pub name_res: HashMap<ExprId, NameRes>,
    /// Resolution of every `Call` expression.
    pub call_res: HashMap<ExprId, CallRes>,
    /// Referent type allocated by each `New` expression.
    pub new_types: HashMap<ExprId, TypeRef>,
    /// Flattened module-level variables (one entry per declared name).
    pub globals: Vec<(String, TypeRef)>,
    /// Signatures, indexed like `module.procs`.
    pub proc_sigs: Vec<ProcSig>,
    /// Variable tables, indexed like `module.procs`.
    pub proc_vars: Vec<Vec<VarInfo>>,
    /// Variable table for the module body (FOR/WITH variables).
    pub main_vars: Vec<VarInfo>,
}

type CResult<T> = Result<T, Diagnostic>;

fn terr<T>(pos: Pos, msg: impl Into<String>) -> CResult<T> {
    Err(Diagnostic::new(Phase::Type, pos, msg))
}

struct Checker {
    arena: TypeArena,
    named_types: HashMap<String, TypeRef>,
    consts: HashMap<String, i64>,
    globals: Vec<(String, TypeRef)>,
    global_index: HashMap<String, u32>,
    proc_index: HashMap<String, u32>,
    proc_sigs: Vec<ProcSig>,

    expr_types: Vec<TypeRef>,
    name_res: HashMap<ExprId, NameRes>,
    call_res: HashMap<ExprId, CallRes>,
    new_types: HashMap<ExprId, TypeRef>,

    // Per-procedure state.
    vars: Vec<VarInfo>,
    /// Stack of (name, var id) visible bindings, innermost last.
    scope: Vec<(String, u32)>,
    loop_depth: u32,
    ret: Option<TypeRef>,
}

impl Checker {
    // ---- type expressions ----

    fn const_eval(&self, e: &Expr) -> CResult<i64> {
        match &e.kind {
            ExprKind::Int(v) => Ok(*v),
            ExprKind::CharLit(c) => Ok(*c),
            ExprKind::Bool(b) => Ok(i64::from(*b)),
            ExprKind::Name(n) => self.consts.get(n).copied().ok_or_else(|| {
                Diagnostic::new(Phase::Type, e.pos, format!("`{n}` is not a constant"))
            }),
            ExprKind::Un(UnOp::Neg, x) => Ok(self.const_eval(x)?.wrapping_neg()),
            ExprKind::Bin(op, a, b) => {
                let (x, y) = (self.const_eval(a)?, self.const_eval(b)?);
                Ok(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div if y != 0 => x.wrapping_div(y),
                    BinOp::Mod if y != 0 => x.wrapping_rem(y),
                    _ => return terr(e.pos, "unsupported constant expression"),
                })
            }
            _ => terr(e.pos, "expected a compile-time constant"),
        }
    }

    fn word_type(&self, r: TypeRef) -> bool {
        // `Unresolved` is a forward reference to a named type; it is
        // accepted here and validated once every name is resolved.
        matches!(
            self.arena.get(r),
            Type::Int | Type::Bool | Type::Char | Type::Ref(_) | Type::NilType | Type::Unresolved
        )
    }

    fn convert_type(&mut self, te: &TypeExpr) -> CResult<TypeRef> {
        match &te.kind {
            TypeExprKind::Int => Ok(TypeArena::INT),
            TypeExprKind::Bool => Ok(TypeArena::BOOL),
            TypeExprKind::Char => Ok(TypeArena::CHAR),
            TypeExprKind::Named(n) => {
                self.named_types.get(n).copied().ok_or_else(|| {
                    Diagnostic::new(Phase::Type, te.pos, format!("unknown type `{n}`"))
                })
            }
            TypeExprKind::Ref(inner) => {
                let t = self.convert_type(inner)?;
                Ok(self.arena.add(Type::Ref(t)))
            }
            TypeExprKind::Array { lo, hi, elem } => {
                let l = self.const_eval(lo)?;
                let h = self.const_eval(hi)?;
                if l > h {
                    return terr(te.pos, format!("empty array range [{l}..{h}]"));
                }
                let e = self.convert_type(elem)?;
                if !self.word_type(e) {
                    return terr(te.pos, "array elements must be scalars or REF types");
                }
                Ok(self.arena.add(Type::Array { lo: l, hi: h, elem: e }))
            }
            TypeExprKind::OpenArray(elem) => {
                let e = self.convert_type(elem)?;
                if !self.word_type(e) {
                    return terr(te.pos, "array elements must be scalars or REF types");
                }
                Ok(self.arena.add(Type::OpenArray { elem: e }))
            }
            TypeExprKind::Record(fields) => {
                let mut fs = Vec::with_capacity(fields.len());
                for (name, fty) in fields {
                    let t = self.convert_type(fty)?;
                    if !self.word_type(t) {
                        return terr(
                            te.pos,
                            format!("record field `{name}` must be a scalar or REF type"),
                        );
                    }
                    if fs.iter().any(|(n, _)| n == name) {
                        return terr(te.pos, format!("duplicate field `{name}`"));
                    }
                    fs.push((name.clone(), t));
                }
                Ok(self.arena.add(Type::Record { fields: fs }))
            }
        }
    }

    // ---- scopes ----

    fn bind(&mut self, name: &str, ty: TypeRef, class: VarClass) -> u32 {
        let id = self.vars.len() as u32;
        self.vars.push(VarInfo { name: name.to_string(), ty, class });
        self.scope.push((name.to_string(), id));
        id
    }

    fn lookup(&self, name: &str) -> Option<NameRes> {
        for (n, id) in self.scope.iter().rev() {
            if n == name {
                return Some(NameRes::Var(*id));
            }
        }
        if let Some(&i) = self.global_index.get(name) {
            return Some(NameRes::Global(i));
        }
        if let Some(&v) = self.consts.get(name) {
            return Some(NameRes::Const(v));
        }
        None
    }

    fn set_type(&mut self, e: &Expr, t: TypeRef) -> TypeRef {
        self.expr_types[e.id as usize] = t;
        t
    }

    // ---- designators ----

    /// True if `e` denotes a mutable location.
    fn is_lvalue(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Name(_) => match self.name_res.get(&e.id) {
                Some(NameRes::Var(id)) => {
                    let v = &self.vars[*id as usize];
                    !matches!(v.class, VarClass::For)
                }
                Some(NameRes::Global(_)) => true,
                _ => false,
            },
            ExprKind::Field(..) | ExprKind::Index(..) | ExprKind::Deref(..) => true,
            _ => false,
        }
    }

    // ---- expressions ----

    fn check_expr(&mut self, e: &Expr) -> CResult<TypeRef> {
        let t = match &e.kind {
            ExprKind::Int(_) => TypeArena::INT,
            ExprKind::Bool(_) => TypeArena::BOOL,
            ExprKind::CharLit(_) => TypeArena::CHAR,
            ExprKind::Nil => TypeArena::NIL,
            ExprKind::Text(_) => {
                // REF ARRAY OF CHAR.
                let oa = self.arena.add(Type::OpenArray { elem: TypeArena::CHAR });
                self.arena.add(Type::Ref(oa))
            }
            ExprKind::Name(n) => {
                let res = self.lookup(n).ok_or_else(|| {
                    Diagnostic::new(Phase::Type, e.pos, format!("unknown name `{n}`"))
                })?;
                self.name_res.insert(e.id, res);
                match res {
                    NameRes::Var(id) => self.vars[id as usize].ty,
                    NameRes::Global(i) => self.globals[i as usize].1,
                    NameRes::Const(_) => TypeArena::INT,
                }
            }
            ExprKind::Field(base, fname) => {
                let bt = self.check_expr(base)?;
                // Implicit dereference through REF.
                let rec_t = match self.arena.get(bt) {
                    Type::Ref(inner) => *inner,
                    _ => bt,
                };
                match self.arena.get(rec_t).clone() {
                    Type::Record { fields } => {
                        fields.iter().find(|(n, _)| n == fname).map(|(_, t)| *t).ok_or_else(
                            || Diagnostic::new(Phase::Type, e.pos, format!("no field `{fname}`")),
                        )?
                    }
                    other => {
                        return terr(
                            e.pos,
                            format!("`.{fname}` applied to non-record {}", type_name(&other)),
                        )
                    }
                }
            }
            ExprKind::Index(base, idx) => {
                let bt = self.check_expr(base)?;
                let it = self.check_expr(idx)?;
                if !self.arena.equal(it, TypeArena::INT) {
                    return terr(idx.pos, "array index must be an INTEGER");
                }
                let arr_t = match self.arena.get(bt) {
                    Type::Ref(inner) => *inner,
                    _ => bt,
                };
                match self.arena.get(arr_t) {
                    Type::Array { elem, .. } | Type::OpenArray { elem } => *elem,
                    other => {
                        return terr(e.pos, format!("indexing non-array {}", type_name(other)))
                    }
                }
            }
            ExprKind::Deref(base) => {
                let bt = self.check_expr(base)?;
                match self.arena.get(bt) {
                    Type::Ref(inner) => *inner,
                    other => {
                        return terr(e.pos, format!("`^` applied to non-REF {}", type_name(other)))
                    }
                }
            }
            ExprKind::Un(UnOp::Neg, x) => {
                let t = self.check_expr(x)?;
                if !self.arena.equal(t, TypeArena::INT) {
                    return terr(e.pos, "unary `-` needs an INTEGER");
                }
                TypeArena::INT
            }
            ExprKind::Un(UnOp::Not, x) => {
                let t = self.check_expr(x)?;
                if !self.arena.equal(t, TypeArena::BOOL) {
                    return terr(e.pos, "NOT needs a BOOLEAN");
                }
                TypeArena::BOOL
            }
            ExprKind::Bin(op, a, b) => {
                let ta = self.check_expr(a)?;
                let tb = self.check_expr(b)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        if !self.arena.equal(ta, TypeArena::INT)
                            || !self.arena.equal(tb, TypeArena::INT)
                        {
                            return terr(e.pos, "arithmetic needs INTEGER operands");
                        }
                        TypeArena::INT
                    }
                    BinOp::And | BinOp::Or => {
                        if !self.arena.equal(ta, TypeArena::BOOL)
                            || !self.arena.equal(tb, TypeArena::BOOL)
                        {
                            return terr(e.pos, "AND/OR need BOOLEAN operands");
                        }
                        TypeArena::BOOL
                    }
                    BinOp::Eq | BinOp::Ne => {
                        let ok = self.arena.assignable(ta, tb) || self.arena.assignable(tb, ta);
                        if !ok {
                            return terr(
                                e.pos,
                                format!(
                                    "cannot compare {} with {}",
                                    self.arena.display(ta),
                                    self.arena.display(tb)
                                ),
                            );
                        }
                        TypeArena::BOOL
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let both_int = self.arena.equal(ta, TypeArena::INT)
                            && self.arena.equal(tb, TypeArena::INT);
                        let both_char = self.arena.equal(ta, TypeArena::CHAR)
                            && self.arena.equal(tb, TypeArena::CHAR);
                        if !(both_int || both_char) {
                            return terr(
                                e.pos,
                                "ordering comparisons need INTEGER or CHAR operands",
                            );
                        }
                        TypeArena::BOOL
                    }
                }
            }
            ExprKind::New { ty, len } => {
                let referent = {
                    let t = self.convert_type(ty)?;
                    match self.arena.get(t) {
                        Type::Ref(inner) => *inner,
                        _ => return terr(e.pos, "NEW needs a REF type"),
                    }
                };
                match (self.arena.get(referent), len) {
                    (Type::OpenArray { .. }, Some(l)) => {
                        let lt = self.check_expr(l)?;
                        if !self.arena.equal(lt, TypeArena::INT) {
                            return terr(l.pos, "array length must be an INTEGER");
                        }
                    }
                    (Type::OpenArray { .. }, None) => {
                        return terr(e.pos, "NEW of an open array needs a length")
                    }
                    (_, Some(l)) => {
                        return terr(l.pos, "length argument only allowed for open arrays")
                    }
                    (_, None) => {}
                }
                self.new_types.insert(e.id, referent);
                self.arena.add(Type::Ref(referent))
            }
            ExprKind::Call { name, args } => self.check_call(e, name, args, false)?,
        };
        Ok(self.set_type(e, t))
    }

    /// Checks a call in expression (`stmt = false`) or statement position.
    fn check_call(&mut self, e: &Expr, name: &str, args: &[Expr], stmt: bool) -> CResult<TypeRef> {
        // A local variable may not shadow a call target.
        if self.lookup(name).is_some_and(|r| matches!(r, NameRes::Var(_) | NameRes::Global(_))) {
            return terr(e.pos, format!("`{name}` is a variable, not a procedure"));
        }
        if let Some(&pi) = self.proc_index.get(name) {
            self.call_res.insert(e.id, CallRes::Proc(pi));
            let sig = self.proc_sigs[pi as usize].clone();
            if sig.params.len() != args.len() {
                return terr(
                    e.pos,
                    format!(
                        "`{name}` expects {} argument(s), got {}",
                        sig.params.len(),
                        args.len()
                    ),
                );
            }
            for (arg, (by_ref, pt)) in args.iter().zip(&sig.params) {
                let at = self.check_expr(arg)?;
                if *by_ref {
                    if !self.is_lvalue(arg) {
                        return terr(arg.pos, "VAR argument must be a designator");
                    }
                    if !self.arena.equal(at, *pt) {
                        return terr(
                            arg.pos,
                            format!(
                                "VAR argument type {} does not match formal {}",
                                self.arena.display(at),
                                self.arena.display(*pt)
                            ),
                        );
                    }
                } else if !self.arena.assignable(*pt, at) {
                    return terr(
                        arg.pos,
                        format!(
                            "argument type {} not assignable to formal {}",
                            self.arena.display(at),
                            self.arena.display(*pt)
                        ),
                    );
                }
            }
            return Ok(sig.ret.unwrap_or(TypeArena::VOID));
        }
        let Some(b) = builtin_by_name(name) else {
            return terr(e.pos, format!("unknown procedure `{name}`"));
        };
        self.call_res.insert(e.id, CallRes::Builtin(b));
        let arg_types: Vec<TypeRef> =
            args.iter().map(|a| self.check_expr(a)).collect::<CResult<_>>()?;
        let arity_err = |n: usize| -> CResult<TypeRef> {
            terr(e.pos, format!("`{name}` expects {n} argument(s), got {}", args.len()))
        };
        match b {
            Builtin::PutInt => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                if !self.arena.equal(arg_types[0], TypeArena::INT) {
                    return terr(args[0].pos, "PutInt needs an INTEGER");
                }
                Ok(TypeArena::VOID)
            }
            Builtin::PutChar => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                let t = arg_types[0];
                if !self.arena.equal(t, TypeArena::CHAR) && !self.arena.equal(t, TypeArena::INT) {
                    return terr(args[0].pos, "PutChar needs a CHAR or INTEGER");
                }
                Ok(TypeArena::VOID)
            }
            Builtin::PutLn => {
                if !args.is_empty() {
                    return arity_err(0);
                }
                Ok(TypeArena::VOID)
            }
            Builtin::Ord => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                let t = arg_types[0];
                if !self.arena.equal(t, TypeArena::CHAR) && !self.arena.equal(t, TypeArena::BOOL) {
                    return terr(args[0].pos, "ORD needs a CHAR or BOOLEAN");
                }
                Ok(TypeArena::INT)
            }
            Builtin::Val => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                if !self.arena.equal(arg_types[0], TypeArena::INT) {
                    return terr(args[0].pos, "VAL needs an INTEGER");
                }
                Ok(TypeArena::CHAR)
            }
            Builtin::Abs => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                if !self.arena.equal(arg_types[0], TypeArena::INT) {
                    return terr(args[0].pos, "ABS needs an INTEGER");
                }
                Ok(TypeArena::INT)
            }
            Builtin::Min | Builtin::Max => {
                if args.len() != 2 {
                    return arity_err(2);
                }
                for (a, t) in args.iter().zip(&arg_types) {
                    if !self.arena.equal(*t, TypeArena::INT) {
                        return terr(a.pos, "MIN/MAX need INTEGER operands");
                    }
                }
                Ok(TypeArena::INT)
            }
            Builtin::First | Builtin::Last | Builtin::Number => {
                if args.len() != 1 {
                    return arity_err(1);
                }
                let t = arg_types[0];
                let arr = match self.arena.get(t) {
                    Type::Ref(inner) => *inner,
                    _ => t,
                };
                if !matches!(self.arena.get(arr), Type::Array { .. } | Type::OpenArray { .. }) {
                    return terr(args[0].pos, format!("`{name}` needs an array"));
                }
                Ok(TypeArena::INT)
            }
            Builtin::Inc | Builtin::Dec => {
                if !stmt {
                    return terr(e.pos, format!("`{name}` is a statement, not an expression"));
                }
                if args.is_empty() || args.len() > 2 {
                    return arity_err(1);
                }
                if !self.is_lvalue(&args[0]) {
                    return terr(args[0].pos, "INC/DEC need a designator");
                }
                if !self.arena.equal(arg_types[0], TypeArena::INT) {
                    return terr(args[0].pos, "INC/DEC need an INTEGER designator");
                }
                if args.len() == 2 && !self.arena.equal(arg_types[1], TypeArena::INT) {
                    return terr(args[1].pos, "INC/DEC step must be an INTEGER");
                }
                Ok(TypeArena::VOID)
            }
            Builtin::Assert => {
                if !stmt {
                    return terr(e.pos, "`ASSERT` is a statement, not an expression");
                }
                if args.len() != 1 {
                    return arity_err(1);
                }
                if !self.arena.equal(arg_types[0], TypeArena::BOOL) {
                    return terr(args[0].pos, "ASSERT needs a BOOLEAN");
                }
                Ok(TypeArena::VOID)
            }
        }
    }

    // ---- statements ----

    fn check_stmts(&mut self, stmts: &[Stmt]) -> CResult<()> {
        for s in stmts {
            self.check_stmt(s)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> CResult<()> {
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                if !self.is_lvalue(lhs) {
                    return terr(lhs.pos, "left side of `:=` is not a designator");
                }
                let rt = self.check_expr(rhs)?;
                if !self.arena.assignable(lt, rt) {
                    return terr(
                        s.pos,
                        format!(
                            "cannot assign {} to {}",
                            self.arena.display(rt),
                            self.arena.display(lt)
                        ),
                    );
                }
                Ok(())
            }
            StmtKind::Call(e) => {
                let ExprKind::Call { name, args } = &e.kind else {
                    return terr(e.pos, "expected a call");
                };
                let t = self.check_call(e, name, args, true)?;
                self.set_type(e, t);
                Ok(())
            }
            StmtKind::If { arms, else_body } => {
                for (cond, body) in arms {
                    let t = self.check_expr(cond)?;
                    if !self.arena.equal(t, TypeArena::BOOL) {
                        return terr(cond.pos, "IF condition must be BOOLEAN");
                    }
                    self.check_stmts(body)?;
                }
                self.check_stmts(else_body)
            }
            StmtKind::While { cond, body } => {
                let t = self.check_expr(cond)?;
                if !self.arena.equal(t, TypeArena::BOOL) {
                    return terr(cond.pos, "WHILE condition must be BOOLEAN");
                }
                self.loop_depth += 1;
                self.check_stmts(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            StmtKind::Repeat { body, cond } => {
                self.loop_depth += 1;
                self.check_stmts(body)?;
                self.loop_depth -= 1;
                let t = self.check_expr(cond)?;
                if !self.arena.equal(t, TypeArena::BOOL) {
                    return terr(cond.pos, "UNTIL condition must be BOOLEAN");
                }
                Ok(())
            }
            StmtKind::Loop { body } => {
                self.loop_depth += 1;
                self.check_stmts(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            StmtKind::For { var, from, to, by, body } => {
                let ft = self.check_expr(from)?;
                let tt = self.check_expr(to)?;
                if !self.arena.equal(ft, TypeArena::INT) || !self.arena.equal(tt, TypeArena::INT) {
                    return terr(s.pos, "FOR bounds must be INTEGER");
                }
                if let Some(b) = by {
                    let step = self.const_eval(b)?;
                    if step == 0 {
                        return terr(b.pos, "FOR step must be non-zero");
                    }
                    // Also type it for the lowering's convenience.
                    self.check_expr(b)?;
                }
                let scope_mark = self.scope.len();
                self.bind(var, TypeArena::INT, VarClass::For);
                self.loop_depth += 1;
                self.check_stmts(body)?;
                self.loop_depth -= 1;
                self.scope.truncate(scope_mark);
                Ok(())
            }
            StmtKind::Exit => {
                if self.loop_depth == 0 {
                    return terr(s.pos, "EXIT outside a loop");
                }
                Ok(())
            }
            StmtKind::Return(value) => match (&self.ret, value) {
                (None, None) => Ok(()),
                (None, Some(v)) => terr(v.pos, "RETURN with a value in a proper procedure"),
                (Some(_), None) => terr(s.pos, "RETURN needs a value here"),
                (Some(rt), Some(v)) => {
                    let rt = *rt;
                    let vt = self.check_expr(v)?;
                    if !self.arena.assignable(rt, vt) {
                        return terr(
                            v.pos,
                            format!(
                                "cannot return {} as {}",
                                self.arena.display(vt),
                                self.arena.display(rt)
                            ),
                        );
                    }
                    Ok(())
                }
            },
            StmtKind::With { bindings, body } => {
                let scope_mark = self.scope.len();
                for (name, d) in bindings {
                    let t = self.check_expr(d)?;
                    self.bind(name, t, VarClass::With);
                }
                self.check_stmts(body)?;
                self.scope.truncate(scope_mark);
                Ok(())
            }
        }
    }
}

fn type_name(t: &Type) -> String {
    match t {
        Type::Int => "INTEGER".into(),
        Type::Bool => "BOOLEAN".into(),
        Type::Char => "CHAR".into(),
        Type::NilType => "NIL".into(),
        Type::Void => "(no value)".into(),
        Type::Unresolved => "(unresolved)".into(),
        Type::Ref(_) => "REF type".into(),
        Type::Array { .. } => "fixed array".into(),
        Type::OpenArray { .. } => "open array".into(),
        Type::Record { .. } => "record".into(),
    }
}

/// Type-checks a module.
///
/// # Errors
///
/// Returns the first type [`Diagnostic`].
pub fn check(module: &Module) -> Result<Checked, Diagnostic> {
    let mut ck = Checker {
        arena: TypeArena::new(),
        named_types: HashMap::new(),
        consts: HashMap::new(),
        globals: Vec::new(),
        global_index: HashMap::new(),
        proc_index: HashMap::new(),
        proc_sigs: Vec::new(),
        expr_types: vec![TypeArena::VOID; module.n_exprs as usize],
        name_res: HashMap::new(),
        call_res: HashMap::new(),
        new_types: HashMap::new(),
        vars: Vec::new(),
        scope: Vec::new(),
        loop_depth: 0,
        ret: None,
    };

    // Constants first (array bounds may use them).
    for c in &module.consts {
        let v = ck.const_eval(&c.value)?;
        if ck.consts.insert(c.name.clone(), v).is_some() {
            return terr(c.pos, format!("duplicate constant `{}`", c.name));
        }
    }

    // Named types: pre-declare placeholders to permit recursion, then
    // resolve each definition.
    for td in &module.types {
        if ck.named_types.contains_key(&td.name) {
            return terr(td.pos, format!("duplicate type `{}`", td.name));
        }
        let slot = ck.arena.add(Type::Unresolved);
        ck.named_types.insert(td.name.clone(), slot);
    }
    for td in &module.types {
        let slot = ck.named_types[&td.name];
        let t = ck.convert_type(&td.ty)?;
        let resolved = ck.arena.get(t).clone();
        if matches!(resolved, Type::Unresolved) {
            return terr(td.pos, format!("type `{}` is directly circular", td.name));
        }
        ck.arena.resolve(slot, resolved);
    }
    // Forward references are resolved now; re-validate that record fields
    // and array elements are single words, everywhere in the arena.
    let module_pos = module.types.first().map_or(Pos::default(), |t| t.pos);
    for i in 0..ck.arena.len() as TypeRef {
        match ck.arena.get(i).clone() {
            Type::Record { fields } => {
                for (fname, ft) in fields {
                    if !ck.word_type(ft) || matches!(ck.arena.get(ft), Type::Unresolved) {
                        return terr(
                            module_pos,
                            format!("record field `{fname}` must be a scalar or REF type"),
                        );
                    }
                }
            }
            Type::Array { elem, .. } | Type::OpenArray { elem }
                if (!ck.word_type(elem) || matches!(ck.arena.get(elem), Type::Unresolved)) =>
            {
                return terr(module_pos, "array elements must be scalars or REF types");
            }
            _ => {}
        }
    }

    // Globals.
    for v in &module.vars {
        let t = ck.convert_type(&v.ty)?;
        match ck.arena.get(t) {
            Type::OpenArray { .. } => {
                return terr(v.pos, "open arrays may only appear under REF");
            }
            Type::Record { .. } => {
                return terr(
                    v.pos,
                    "record variables must be allocated with NEW (heap-only records)",
                );
            }
            _ => {}
        }
        for name in &v.names {
            if ck.global_index.contains_key(name) {
                return terr(v.pos, format!("duplicate variable `{name}`"));
            }
            ck.global_index.insert(name.clone(), ck.globals.len() as u32);
            ck.globals.push((name.clone(), t));
        }
    }

    // Procedure signatures (two-pass for forward references).
    for (i, p) in module.procs.iter().enumerate() {
        if ck.proc_index.contains_key(&p.name) {
            return terr(p.pos, format!("duplicate procedure `{}`", p.name));
        }
        let mut params = Vec::new();
        for formal in &p.formals {
            let t = ck.convert_type(&formal.ty)?;
            if matches!(
                ck.arena.get(t),
                Type::OpenArray { .. } | Type::Record { .. } | Type::Array { .. }
            ) {
                return terr(p.pos, "parameters must be scalars or REF types");
            }
            for _ in &formal.names {
                params.push((formal.var, t));
            }
        }
        let ret = match &p.ret {
            Some(te) => {
                let t = ck.convert_type(te)?;
                if !ck.word_type(t) {
                    return terr(p.pos, "return type must be a scalar or REF type");
                }
                Some(t)
            }
            None => None,
        };
        ck.proc_index.insert(p.name.clone(), i as u32);
        ck.proc_sigs.push(ProcSig { params, ret });
    }

    // Procedure bodies.
    let mut proc_vars = Vec::with_capacity(module.procs.len());
    for (i, p) in module.procs.iter().enumerate() {
        ck.vars.clear();
        ck.scope.clear();
        ck.loop_depth = 0;
        ck.ret = ck.proc_sigs[i].ret;
        let mut pi = 0u32;
        for formal in &p.formals {
            let t = ck.convert_type(&formal.ty)?;
            for name in &formal.names {
                ck.bind(name, t, VarClass::Param { index: pi, by_ref: formal.var });
                pi += 1;
            }
        }
        for l in &p.locals {
            let t = ck.convert_type(&l.ty)?;
            match ck.arena.get(t) {
                Type::OpenArray { .. } => {
                    return terr(l.pos, "open arrays may only appear under REF")
                }
                Type::Record { .. } => {
                    return terr(
                        l.pos,
                        "record variables must be allocated with NEW (heap-only records)",
                    )
                }
                Type::Array { lo, hi, .. } if hi - lo + 1 > 4096 => {
                    return terr(l.pos, "local array too large (limit 4096 elements)");
                }
                _ => {}
            }
            for name in &l.names {
                let id = ck.bind(name, t, VarClass::Local);
                let _ = id;
            }
            if let Some(init) = &l.init {
                let it = ck.check_expr(init)?;
                if !ck.arena.assignable(t, it) {
                    return terr(l.pos, "initializer type mismatch");
                }
            }
        }
        ck.check_stmts(&p.body)?;
        proc_vars.push(std::mem::take(&mut ck.vars));
    }

    // Module body (globals' initializers then statements).
    ck.vars.clear();
    ck.scope.clear();
    ck.loop_depth = 0;
    ck.ret = None;
    for v in &module.vars {
        if let Some(init) = &v.init {
            let t = ck.global_index[&v.names[0]];
            let gt = ck.globals[t as usize].1;
            let it = ck.check_expr(init)?;
            if !ck.arena.assignable(gt, it) {
                return terr(v.pos, "initializer type mismatch");
            }
        }
    }
    ck.check_stmts(&module.body)?;
    let main_vars = std::mem::take(&mut ck.vars);

    Ok(Checked {
        arena: ck.arena,
        expr_types: ck.expr_types,
        name_res: ck.name_res,
        call_res: ck.call_res,
        new_types: ck.new_types,
        globals: ck.globals,
        proc_sigs: ck.proc_sigs,
        proc_vars,
        main_vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Checked, Diagnostic> {
        check(&parse(lex(src).unwrap()).unwrap())
    }

    fn ok(src: &str) -> Checked {
        check_src(src).unwrap_or_else(|e| panic!("{e}"))
    }

    fn fails(src: &str) -> Diagnostic {
        check_src(src).expect_err("expected a type error")
    }

    #[test]
    fn simple_module_checks() {
        ok("MODULE M; VAR x: INTEGER; BEGIN x := 1 + 2; PutInt(x); END M.");
    }

    #[test]
    fn type_mismatch_detected() {
        let e = fails("MODULE M; VAR x: INTEGER; b: BOOLEAN; BEGIN x := b; END M.");
        assert!(e.message.contains("cannot assign"), "{e}");
    }

    #[test]
    fn structural_equivalence_across_names() {
        ok("MODULE M;
            TYPE A = REF RECORD x: INTEGER END;
                 B = REF RECORD x: INTEGER END;
            VAR a: A; b: B;
            BEGIN a := b; END M.");
    }

    #[test]
    fn recursive_list_type() {
        ok("MODULE M;
            TYPE List = REF RECORD head: INTEGER; tail: List END;
            VAR l: List;
            BEGIN
              l := NEW(List);
              l.head := 1;
              l.tail := NIL;
            END M.");
    }

    #[test]
    fn var_params_need_designators() {
        let e = fails(
            "MODULE M;
             PROCEDURE P(VAR x: INTEGER) = BEGIN x := 1; END P;
             BEGIN P(3); END M.",
        );
        assert!(e.message.contains("designator"), "{e}");
    }

    #[test]
    fn var_param_type_must_match_exactly() {
        let e = fails(
            "MODULE M;
             TYPE R = REF RECORD x: INTEGER END;
             PROCEDURE P(VAR x: R) = BEGIN END P;
             VAR i: INTEGER;
             BEGIN P(i); END M.",
        );
        assert!(e.message.contains("does not match"), "{e}");
    }

    #[test]
    fn for_variable_not_assignable() {
        let e = fails("MODULE M; BEGIN FOR i := 1 TO 3 DO i := 5; END; END M.");
        assert!(e.message.contains("not a designator"), "{e}");
    }

    #[test]
    fn exit_outside_loop_rejected() {
        let e = fails("MODULE M; BEGIN EXIT; END M.");
        assert!(e.message.contains("EXIT"), "{e}");
    }

    #[test]
    fn nil_into_ref_ok_into_int_not() {
        ok("MODULE M; TYPE R = REF RECORD x: INTEGER END; VAR r: R; BEGIN r := NIL; END M.");
        fails("MODULE M; VAR x: INTEGER; BEGIN x := NIL; END M.");
    }

    #[test]
    fn new_open_array_needs_length() {
        let e =
            fails("MODULE M; TYPE A = REF ARRAY OF INTEGER; VAR a: A; BEGIN a := NEW(A); END M.");
        assert!(e.message.contains("length"), "{e}");
    }

    #[test]
    fn with_binds_field_alias() {
        ok("MODULE M;
            TYPE R = REF RECORD f: INTEGER END;
            VAR r: R;
            BEGIN
              r := NEW(R);
              WITH h = r.f DO h := 3; PutInt(h); END;
            END M.");
    }

    #[test]
    fn char_and_int_are_distinct() {
        fails("MODULE M; VAR x: INTEGER; c: CHAR; BEGIN x := c; END M.");
        ok("MODULE M; VAR x: INTEGER; c: CHAR; BEGIN c := 'a'; x := ORD(c); c := VAL(x); END M.");
    }

    #[test]
    fn array_bounds_are_constant() {
        ok("MODULE M; CONST N = 5; VAR a: ARRAY [1..N] OF INTEGER; BEGIN a[3] := 1; END M.");
        let e = fails("MODULE M; VAR n: INTEGER; a: ARRAY [1..n] OF INTEGER; BEGIN END M.");
        assert!(e.message.contains("constant"), "{e}");
    }

    #[test]
    fn first_last_number_on_arrays() {
        ok("MODULE M;
            TYPE A = REF ARRAY [3..7] OF INTEGER;
            VAR a: A; x: INTEGER;
            BEGIN a := NEW(A); x := FIRST(a) + LAST(a) + NUMBER(a); END M.");
    }

    #[test]
    fn call_arity_checked() {
        let e = fails(
            "MODULE M;
             PROCEDURE P(x: INTEGER) = BEGIN END P;
             BEGIN P(); END M.",
        );
        assert!(e.message.contains("expects 1"), "{e}");
    }

    #[test]
    fn return_type_checked() {
        let e = fails(
            "MODULE M;
             PROCEDURE F(): INTEGER = BEGIN RETURN TRUE; END F;
             BEGIN END M.",
        );
        assert!(e.message.contains("cannot return"), "{e}");
    }

    #[test]
    fn assert_is_statement_only() {
        let e = fails("MODULE M; VAR b: BOOLEAN; BEGIN b := ASSERT(b); END M.");
        assert!(e.message.contains("statement"), "{e}");
    }

    #[test]
    fn text_literal_is_ref_array_of_char() {
        let c = ok("MODULE M;
            TYPE S = REF ARRAY OF CHAR;
            VAR s: S;
            BEGIN s := \"hi\"; END M.");
        assert!(!c.globals.is_empty());
    }

    #[test]
    fn records_are_heap_only() {
        let e = fails("MODULE M; VAR r: RECORD x: INTEGER END; BEGIN END M.");
        assert!(e.message.contains("heap-only"), "{e}");
    }
}
