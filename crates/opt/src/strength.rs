//! Strength reduction of induction-variable addressing (§2's first
//! example).
//!
//! For a loop with a basic induction variable `i` (updated once per
//! iteration by a constant) and an address `addr := base + i` with `base`
//! invariant, the pass introduces an accumulator `sr` initialized to
//! `base + i` in the preheader and bumped by the step alongside `i`; the
//! address computation becomes a copy of `sr`. `sr` is a *loop-carried
//! derived value* — exactly the `*p++` pointer whose base the dead-base
//! rule (§4) must keep alive for the collector.

use m3gc_ir::cfg::{self, NaturalLoop};
use m3gc_ir::{BinOp, BlockId, Function, Instr, Temp, TempKind};

/// A detected basic induction variable.
struct BasicIv {
    /// The variable.
    iv: Temp,
    /// Constant step per iteration.
    step: i64,
    /// Location of the `iv := copy ni` update.
    update: (BlockId, usize),
}

fn def_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.temp_count()];
    for block in &f.blocks {
        for ins in &block.instrs {
            if let Some(d) = ins.def() {
                counts[d.index()] += 1;
            }
        }
    }
    counts
}

/// Finds basic IVs of loop `l`: temps whose only in-loop def is
/// `iv := copy(ni)` where `ni := iv + c` (single-def, `c` a constant).
fn find_basic_ivs(f: &Function, l: &NaturalLoop) -> Vec<BasicIv> {
    let counts = def_counts(f);
    // Constants known in the function (single-def Const temps).
    let mut const_of: Vec<Option<i64>> = vec![None; f.temp_count()];
    for block in &f.blocks {
        for ins in &block.instrs {
            if let Instr::Const { dst, value } = ins {
                if counts[dst.index()] == 1 {
                    const_of[dst.index()] = Some(*value);
                }
            }
        }
    }
    // In-loop defs per temp.
    let mut in_loop_defs: Vec<Vec<(BlockId, usize)>> = vec![Vec::new(); f.temp_count()];
    for &b in &l.body {
        for (i, ins) in f.block(b).instrs.iter().enumerate() {
            if let Some(d) = ins.def() {
                in_loop_defs[d.index()].push((b, i));
            }
        }
    }
    let mut ivs = Vec::new();
    for t in (0..f.temp_count() as u32).map(Temp) {
        let defs = &in_loop_defs[t.index()];
        if defs.len() != 1 {
            continue;
        }
        let (bid, idx) = defs[0];
        let Instr::Copy { src: ni, .. } = &f.block(bid).instrs[idx] else { continue };
        if counts[ni.index()] != 1 || in_loop_defs[ni.index()].len() != 1 {
            continue;
        }
        let (nb, nidx) = in_loop_defs[ni.index()][0];
        let Instr::Bin { op: BinOp::Add, a, b, .. } = &f.block(nb).instrs[nidx] else { continue };
        let step = if *a == t {
            const_of[b.index()]
        } else if *b == t {
            const_of[a.index()]
        } else {
            None
        };
        if let Some(step) = step {
            ivs.push(BasicIv { iv: t, step, update: (bid, idx) });
        }
    }
    ivs
}

/// Applies strength reduction to one loop; returns rewrites performed.
fn reduce_loop(f: &mut Function, l: &NaturalLoop) -> usize {
    let ivs = find_basic_ivs(f, l);
    if ivs.is_empty() {
        return 0;
    }
    let counts = def_counts(f);
    let in_loop_def: Vec<bool> = {
        let mut v = vec![false; f.temp_count()];
        for &b in &l.body {
            for ins in &f.block(b).instrs {
                if let Some(d) = ins.def() {
                    v[d.index()] = true;
                }
            }
        }
        v
    };
    // Candidates: single-def `addr := base + iv` in the loop with
    // invariant base.
    struct Candidate {
        at: (BlockId, usize),
        dst: Temp,
        base: Temp,
        iv_index: usize,
    }
    let mut candidates = Vec::new();
    for &bid in &l.body {
        for (i, ins) in f.block(bid).instrs.iter().enumerate() {
            let Instr::Bin { dst, op: BinOp::Add, a, b } = ins else { continue };
            if counts[dst.index()] != 1 {
                continue;
            }
            for (base, ivt) in [(*a, *b), (*b, *a)] {
                if in_loop_def[base.index()] {
                    continue;
                }
                if let Some(ix) = ivs.iter().position(|c| c.iv == ivt) {
                    candidates.push(Candidate { at: (bid, i), dst: *dst, base, iv_index: ix });
                    break;
                }
            }
        }
    }
    if candidates.is_empty() {
        return 0;
    }
    // Apply, one at a time; indices shift, so re-locate by dst each round.
    let n = candidates.len();
    for c in candidates {
        let iv = &ivs[c.iv_index];
        let sr = f.new_temp(TempKind::Int);
        // Preheader: sr := base + iv (uses iv's entry value).
        let loops_now = cfg::natural_loops(f);
        let Some(l_now) = loops_now.iter().find(|x| x.header == l.header) else { continue };
        let pre = super::licm::ensure_preheader(f, l_now);
        f.block_mut(pre).instrs.push(Instr::Bin { dst: sr, op: BinOp::Add, a: c.base, b: iv.iv });
        // Replace the address computation with a copy of sr. Re-locate the
        // defining instruction by its dst (positions may have shifted).
        let (bid, _) = c.at;
        let block = f.block_mut(bid);
        let pos = block
            .instrs
            .iter()
            .position(|ins| ins.def() == Some(c.dst) && matches!(ins, Instr::Bin { .. }))
            .expect("candidate def still present");
        block.instrs[pos] = Instr::Copy { dst: c.dst, src: sr };
        // Bump sr next to the IV update: sr := sr + step.
        let step_t = f.new_temp(TempKind::Int);
        let (ub, _) = iv.update;
        let ublock = f.block_mut(ub);
        let upos = ublock
            .instrs
            .iter()
            .position(|ins| ins.def() == Some(iv.iv) && matches!(ins, Instr::Copy { .. }))
            .expect("iv update still present");
        ublock.instrs.insert(upos + 1, Instr::Bin { dst: sr, op: BinOp::Add, a: sr, b: step_t });
        ublock.instrs.insert(upos + 1, Instr::Const { dst: step_t, value: iv.step });
    }
    n
}

/// Runs strength reduction over every loop; returns total rewrites.
pub fn strength_reduce(f: &mut Function) -> usize {
    let mut loops = cfg::natural_loops(f);
    loops.sort_by_key(|l| l.body.len());
    let mut seen = Vec::new();
    let mut total = 0;
    for l in loops {
        if seen.contains(&l.header) {
            continue;
        }
        seen.push(l.header);
        total += reduce_loop(f, &l);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::interp;
    use m3gc_ir::Program;

    /// s := Σ mem[p + i] for i in 0..4, with an explicit IV.
    fn indexed_sum() -> Function {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Ptr], Some(TempKind::Int));
        let i = b.temp(TempKind::Int);
        let s = b.temp(TempKind::Int);
        b.push(Instr::Const { dst: i, value: 1 }); // skip header word
        b.push(Instr::Const { dst: s, value: 0 });
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let lim = b.constant(5);
        let c = b.bin(BinOp::Lt, i, lim);
        b.br(c, body, exit);
        b.switch_to(body);
        let addr = b.bin(BinOp::Add, b.param(0), i);
        let v = b.load(addr, 0, TempKind::Int);
        let ns = b.bin(BinOp::Add, s, v);
        b.push(Instr::Copy { dst: s, src: ns });
        let one = b.constant(1);
        let ni = b.bin(BinOp::Add, i, one);
        b.push(Instr::Copy { dst: i, src: ni });
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(s));
        b.finish()
    }

    fn run_with_array(f: Function) -> Option<i64> {
        // main: allocate a 4-element array [10,20,30,40], call f.
        let mut p = Program::new();
        let ty = p.types.add(m3gc_core::heap::HeapType::Record {
            name: "A".into(),
            words: 4,
            ptr_offsets: vec![],
        });
        let fid = p.add_func(f);
        let mut mb = FuncBuilder::with_ret("main", &[], Some(TempKind::Int));
        let obj = mb.new_object(ty, None);
        for (k, v) in [10i64, 20, 30, 40].iter().enumerate() {
            let c = mb.constant(*v);
            mb.store(obj, k as i32 + 1, c);
        }
        let r = mb.call(fid, vec![obj], Some(TempKind::Int)).unwrap();
        mb.ret(Some(r));
        let mid = p.add_func(mb.finish());
        p.main = mid;
        interp::run_program(&p).unwrap().result
    }

    #[test]
    fn detects_basic_iv() {
        let f = indexed_sum();
        let loops = cfg::natural_loops(&f);
        let ivs = find_basic_ivs(&f, &loops[0]);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, 1);
    }

    #[test]
    fn reduces_and_preserves_semantics() {
        let mut f = indexed_sum();
        let before = run_with_array(f.clone());
        let n = strength_reduce(&mut f);
        assert_eq!(n, 1, "{}", m3gc_ir::pretty::function_to_string(&f));
        m3gc_ir::verify::verify_function(&f, None, None).unwrap();
        let after = run_with_array(f.clone());
        assert_eq!(before, after);
        assert_eq!(before, Some(100));
        // The loop body's address computation became a copy.
        let loops = cfg::natural_loops(&f);
        let copies_in_loop = loops[0]
            .body
            .iter()
            .flat_map(|&b| &f.block(b).instrs)
            .filter(|i| matches!(i, Instr::Copy { .. }))
            .count();
        assert!(copies_in_loop >= 3, "{}", m3gc_ir::pretty::function_to_string(&f));
    }

    #[test]
    fn accumulator_is_derived_and_loop_carried() {
        let mut f = indexed_sum();
        strength_reduce(&mut f);
        let deriv = m3gc_ir::deriv::analyze_and_resolve(&mut f);
        // Some new temp must be derived from the pointer param.
        let derived_from_param = (0..f.temp_count() as u32)
            .map(Temp)
            .any(|t| deriv.deriv(t).is_some_and(|k| k.base_temps().any(|b| b == Temp(0))));
        assert!(derived_from_param, "strength-reduced pointer not derived from base");
    }

    #[test]
    fn negative_steps_work() {
        // i counts down; addr = p + i.
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Ptr], Some(TempKind::Int));
        let i = b.temp(TempKind::Int);
        let s = b.temp(TempKind::Int);
        b.push(Instr::Const { dst: i, value: 4 });
        b.push(Instr::Const { dst: s, value: 0 });
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let zero = b.constant(0);
        let c = b.bin(BinOp::Gt, i, zero);
        b.br(c, body, exit);
        b.switch_to(body);
        let addr = b.bin(BinOp::Add, b.param(0), i);
        let v = b.load(addr, 0, TempKind::Int);
        let ns = b.bin(BinOp::Add, s, v);
        b.push(Instr::Copy { dst: s, src: ns });
        let m1 = b.constant(-1);
        let ni = b.bin(BinOp::Add, i, m1);
        b.push(Instr::Copy { dst: i, src: ni });
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(s));
        let mut f = b.finish();
        let before = run_with_array(f.clone());
        let n = strength_reduce(&mut f);
        assert_eq!(n, 1);
        assert_eq!(run_with_array(f), before);
    }
}
