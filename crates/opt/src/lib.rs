//! Optimization passes over the m3gc IR.
//!
//! The paper's point is that gc support must coexist with a *highly
//! optimizing* compiler, because optimization is what manufactures untidy
//! pointers (§2). This crate implements the optimizations named there —
//! each one maintains (or rather, is made transparent to) the derivation
//! model, because derived values are re-inferred syntactically from the
//! optimized code:
//!
//! * [`local`] — per-block value numbering: constant folding, copy
//!   propagation and common subexpression elimination (CSE is §2's third
//!   example: `&A[i]` computed once and indexed twice);
//! * [`dce`] — dead code elimination;
//! * [`simplify`] — CFG cleanup (jump threading, block merging,
//!   unreachable-code removal);
//! * [`licm`] — loop-invariant code motion with reassociation, which
//!   hoists `&A[0]`-style *virtual array origins* out of loops (§2's
//!   second example: an untidy pointer that may point outside its
//!   object);
//! * [`strength`] — strength reduction of induction-variable addressing
//!   (§2's first example: `A[i]; INC(i)` becomes `*p++`), creating
//!   loop-carried derived values whose base the *dead base* rule must
//!   keep alive;
//! * [`split`] — *path splitting* (Figure 2), the code-duplication
//!   alternative to path variables for ambiguous derivations.

pub mod dce;
pub mod licm;
pub mod local;
pub mod simplify;
pub mod split;
pub mod strength;

use m3gc_ir::{Function, Program};

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimization (straight lowering output).
    O0,
    /// Local optimizations: value numbering, DCE, CFG cleanup.
    O1,
    /// Plus loop optimizations: LICM/reassociation, strength reduction.
    O2,
}

/// How ambiguous derivations are resolved (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathStrategy {
    /// Introduce path variables (the paper's choice).
    #[default]
    Variables,
    /// Duplicate code so each copy has a unique derivation (Figure 2).
    /// Falls back to path variables where the pattern is too complex.
    Splitting,
}

/// Optimizer options.
#[derive(Debug, Clone, Copy)]
pub struct OptOptions {
    /// Level.
    pub level: OptLevel,
    /// Ambiguity resolution strategy.
    pub path_strategy: PathStrategy,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions { level: OptLevel::O2, path_strategy: PathStrategy::Variables }
    }
}

/// Optimizes one function in place.
pub fn optimize_function(f: &mut Function, options: &OptOptions) {
    if options.level == OptLevel::O0 {
        return;
    }
    // A few rounds to let the passes feed each other; each is idempotent
    // so over-iterating is merely wasted work.
    for round in 0..3 {
        let mut changed = false;
        changed |= local::local_value_numbering(f) > 0;
        if options.level >= OptLevel::O2 && round == 0 {
            changed |= licm::loop_invariant_code_motion(f) > 0;
            changed |= strength::strength_reduce(f) > 0;
        }
        changed |= dce::eliminate_dead_code(f) > 0;
        changed |= simplify::simplify_cfg(f) > 0;
        if !changed {
            break;
        }
    }
    if options.path_strategy == PathStrategy::Splitting {
        split::split_paths(f);
    }
}

/// Optimizes every function of a program.
pub fn optimize_program(prog: &mut Program, options: &OptOptions) {
    for f in &mut prog.funcs {
        optimize_function(f, options);
    }
}
