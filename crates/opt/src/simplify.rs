//! CFG simplification: constant-branch folding, jump threading, block
//! merging and unreachable-block removal.

use std::collections::HashMap;

use m3gc_ir::cfg;
use m3gc_ir::{BlockId, Function, Instr, Terminator};

/// Folds branches whose condition is a block-local constant.
fn fold_constant_branches(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let block = f.block(b);
        let Terminator::Br { cond, then_bb, else_bb } = block.term else { continue };
        // Find the last def of `cond` in this block; if it is a constant,
        // the branch is decided.
        let mut value: Option<i64> = None;
        for ins in &block.instrs {
            if ins.def() == Some(cond) {
                value = match ins {
                    Instr::Const { value, .. } => Some(*value),
                    _ => None,
                };
            }
        }
        if let Some(v) = value {
            let target = if v != 0 { then_bb } else { else_bb };
            f.block_mut(b).term = Terminator::Jump(target);
            changed += 1;
        }
    }
    changed
}

/// Redirects edges through empty forwarding blocks (`instrs` empty,
/// terminator `Jump`).
fn thread_jumps(f: &mut Function) -> usize {
    let mut forward: HashMap<BlockId, BlockId> = HashMap::new();
    for b in f.block_ids() {
        let block = f.block(b);
        if block.instrs.is_empty() {
            if let Terminator::Jump(t) = block.term {
                if t != b {
                    forward.insert(b, t);
                }
            }
        }
    }
    if forward.is_empty() {
        return 0;
    }
    // Resolve chains (with a cycle guard).
    let resolve = |mut b: BlockId| -> BlockId {
        let mut hops = 0;
        while let Some(&t) = forward.get(&b) {
            b = t;
            hops += 1;
            if hops > forward.len() {
                break; // cycle of empty blocks: leave as-is
            }
        }
        b
    };
    let mut changed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let term = f.block(b).term.clone();
        let new_term = match term {
            Terminator::Jump(t) => Terminator::Jump(resolve(t)),
            Terminator::Br { cond, then_bb, else_bb } => {
                Terminator::Br { cond, then_bb: resolve(then_bb), else_bb: resolve(else_bb) }
            }
            r @ Terminator::Ret(_) => r,
        };
        if new_term != f.block(b).term {
            f.block_mut(b).term = new_term;
            changed += 1;
        }
    }
    changed
}

/// Merges `b -> c` when `b` ends in `Jump(c)` and `c` has exactly one
/// predecessor (and is not the entry).
fn merge_blocks(f: &mut Function) -> usize {
    let mut changed = 0;
    loop {
        let preds = cfg::predecessors(f);
        let mut merged = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            let Terminator::Jump(c) = f.block(b).term else { continue };
            if c == b || c == f.entry || preds[c.index()].len() != 1 {
                continue;
            }
            let mut tail = std::mem::take(&mut f.block_mut(c).instrs);
            let tail_term = f.block(c).term.clone();
            f.block_mut(c).term = Terminator::Jump(c); // orphaned self-loop
            let head = f.block_mut(b);
            head.instrs.append(&mut tail);
            head.term = tail_term;
            changed += 1;
            merged = true;
            break; // predecessor info is stale; recompute
        }
        if !merged {
            return changed;
        }
    }
}

/// Removes unreachable blocks, compacting block ids.
fn remove_unreachable(f: &mut Function) -> usize {
    let reachable = cfg::reverse_postorder(f);
    if reachable.len() == f.blocks.len() {
        return 0;
    }
    let mut remap: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    for (new_idx, &b) in reachable.iter().enumerate() {
        remap[b.index()] = Some(BlockId(new_idx as u32));
    }
    let removed = f.blocks.len() - reachable.len();
    let mut new_blocks = Vec::with_capacity(reachable.len());
    for &b in &reachable {
        let mut block =
            std::mem::replace(f.block_mut(b), m3gc_ir::Block::new(Terminator::Ret(None)));
        match &mut block.term {
            Terminator::Jump(t) => *t = remap[t.index()].expect("reachable successor"),
            Terminator::Br { then_bb, else_bb, .. } => {
                *then_bb = remap[then_bb.index()].expect("reachable successor");
                *else_bb = remap[else_bb.index()].expect("reachable successor");
            }
            Terminator::Ret(_) => {}
        }
        new_blocks.push(block);
    }
    f.blocks = new_blocks;
    f.entry = remap[f.entry.index()].expect("entry reachable");
    removed
}

/// Runs all CFG simplifications to a fixpoint; returns total changes.
pub fn simplify_cfg(f: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut round = 0;
        round += fold_constant_branches(f);
        round += thread_jumps(f);
        round += merge_blocks(f);
        round += remove_unreachable(f);
        total += round;
        if round == 0 {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::{BinOp, TempKind};

    #[test]
    fn threads_empty_blocks_and_merges() {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Int], Some(TempKind::Int));
        let hop = b.block();
        let dest = b.block();
        b.jump(hop);
        b.switch_to(hop);
        b.jump(dest);
        b.switch_to(dest);
        let t = b.bin(BinOp::Add, b.param(0), b.param(0));
        b.ret(Some(t));
        let mut f = b.finish();
        simplify_cfg(&mut f);
        assert_eq!(f.blocks.len(), 1, "everything merges into the entry");
        assert!(matches!(f.block(f.entry).term, Terminator::Ret(_)));
    }

    #[test]
    fn folds_constant_branches_and_prunes() {
        let mut b = FuncBuilder::with_ret("f", &[], Some(TempKind::Int));
        let c = b.constant(1);
        let t_blk = b.block();
        let e_blk = b.block();
        b.br(c, t_blk, e_blk);
        b.switch_to(t_blk);
        let one = b.constant(1);
        b.ret(Some(one));
        b.switch_to(e_blk);
        let two = b.constant(2);
        b.ret(Some(two));
        let mut f = b.finish();
        simplify_cfg(&mut f);
        let out = {
            let mut p = m3gc_ir::Program::new();
            let id = p.add_func(f.clone());
            p.main = id;
            m3gc_ir::interp::run_program(&p).unwrap()
        };
        assert_eq!(out.result, Some(1));
        assert_eq!(f.blocks.len(), 1, "dead arm removed: {f:?}");
    }

    #[test]
    fn loops_are_preserved() {
        let mut b = FuncBuilder::new("f", &[TempKind::Int]);
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, b.param(0), b.param(0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        simplify_cfg(&mut f);
        assert!(!cfg::natural_loops(&f).is_empty(), "loop must survive");
    }
}
