//! Dead code elimination.
//!
//! Removes pure instructions whose results are not live. Note this uses
//! *plain* liveness — the dead-base rule (§4) is a property of gc-point
//! emission, not of program semantics: a base's defining instruction is
//! never "dead" while a derived value computed from it is used, because
//! the derivation itself consumes the base.

use m3gc_ir::liveness::liveness;
use m3gc_ir::Function;

/// Removes dead pure instructions; returns how many were removed.
pub fn eliminate_dead_code(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let lv = liveness(f, None);
        let mut round = 0;
        for b in f.block_ids().collect::<Vec<_>>() {
            let live_after = lv.live_after_each(f, b, None);
            let block = f.block_mut(b);
            let mut keep = Vec::with_capacity(block.instrs.len());
            for (i, ins) in block.instrs.drain(..).enumerate() {
                let dead = match ins.def() {
                    Some(d) => !live_after[i].contains(d.index()),
                    None => false,
                };
                if dead && !ins.has_side_effects() {
                    round += 1;
                } else {
                    keep.push(ins);
                }
            }
            block.instrs = keep;
        }
        removed += round;
        if round == 0 {
            return removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::{BinOp, RuntimeFn, TempKind};

    #[test]
    fn removes_unused_arithmetic() {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Int], Some(TempKind::Int));
        let dead1 = b.constant(1);
        let _dead2 = b.bin(BinOp::Add, dead1, dead1);
        let live = b.bin(BinOp::Add, b.param(0), b.param(0));
        b.ret(Some(live));
        let mut f = b.finish();
        let n = eliminate_dead_code(&mut f);
        // dead2 removal makes dead1 dead too (cascade).
        assert_eq!(n, 2);
        assert_eq!(f.instr_count(), 1);
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = FuncBuilder::new("f", &[]);
        let x = b.constant(3);
        b.call_runtime(RuntimeFn::PrintInt, vec![x]);
        let p = b.new_object(m3gc_core::heap::TypeId(0), None); // result unused, but allocation observable
        let _ = p;
        b.ret(None);
        let mut f = b.finish();
        eliminate_dead_code(&mut f);
        assert_eq!(f.instr_count(), 3);
    }

    #[test]
    fn keeps_values_live_across_blocks() {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Int], Some(TempKind::Int));
        let x = b.constant(9);
        let next = b.block();
        b.jump(next);
        b.switch_to(next);
        let y = b.bin(BinOp::Add, x, b.param(0));
        b.ret(Some(y));
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 0);
    }

    #[test]
    fn dead_store_targets_are_not_removed() {
        // Stores are side effects even if the stored temp has other uses.
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr]);
        let v = b.constant(1);
        b.store(b.param(0), 1, v);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 0);
    }
}
