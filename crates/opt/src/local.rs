//! Per-block value numbering: constant folding, copy propagation and
//! common subexpression elimination in one sweep.
//!
//! CSE over address arithmetic is §2's third untidy-pointer source: once
//! `t = &A[i]` is shared by two element accesses, `t` is a derived value
//! that must be described at any intervening gc-point. Loads are numbered
//! too, and invalidated by stores, calls and allocations.

use std::collections::HashMap;

use m3gc_ir::{Function, Instr, Temp};

/// Abstract value of a temp within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Val {
    /// Known constant.
    Const(i64),
    /// Value class id (from the numbering table).
    Num(u32),
}

/// Expression key for the numbering table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(m3gc_ir::BinOp, Val, Val),
    Un(m3gc_ir::UnOp, Val),
    Load(Val, i32),
    LoadSlot(u32, u32),
    SlotAddr(u32),
    LoadGlobal(u32),
    GlobalAddr(u32),
    Const(i64),
}

struct BlockState {
    /// Current abstract value of each temp.
    vals: HashMap<Temp, Val>,
    /// Expression → (value, representative temp holding it).
    table: HashMap<Key, (Val, Temp)>,
    next_num: u32,
}

impl BlockState {
    fn fresh(&mut self) -> Val {
        let v = Val::Num(self.next_num);
        self.next_num += 1;
        v
    }

    fn val_of(&mut self, t: Temp) -> Val {
        if let Some(v) = self.vals.get(&t) {
            return *v;
        }
        let v = self.fresh();
        self.vals.insert(t, v);
        v
    }

    /// Invalidate all memory-derived facts (on stores, calls, allocations).
    fn kill_memory(&mut self) {
        self.table
            .retain(|k, _| !matches!(k, Key::Load(..) | Key::LoadSlot(..) | Key::LoadGlobal(..)));
    }

    /// A temp was (re)defined: any table entry whose representative is the
    /// temp is stale.
    fn kill_temp(&mut self, t: Temp) {
        self.table.retain(|_, (_, rep)| *rep != t);
        self.vals.remove(&t);
    }
}

fn f_kind_matches(kinds: &[m3gc_ir::TempKind], a: Temp, b: Temp) -> bool {
    kinds[a.index()] == kinds[b.index()]
}

/// Runs local value numbering over every block; returns the number of
/// instructions simplified.
pub fn local_value_numbering(f: &mut Function) -> usize {
    let mut simplified = 0;
    let fkinds: Vec<m3gc_ir::TempKind> = f.temp_kinds.clone();
    for bi in 0..f.blocks.len() {
        let mut st = BlockState { vals: HashMap::new(), table: HashMap::new(), next_num: 0 };
        let block = &mut f.blocks[bi];
        for ins in &mut block.instrs {
            // First rewrite uses: copy-propagate through representatives.
            // (A use of t whose value class has a still-valid representative
            // can read the representative instead; we only rewrite when the
            // representative differs and is not the same temp.)
            // Constant operands stay as-is (the IR has no immediates).
            let key: Option<Key> = match ins {
                Instr::Const { value, .. } => Some(Key::Const(*value)),
                Instr::Copy { src, .. } => {
                    let v = st.val_of(*src);
                    // Copies don't get table entries; the dst just aliases.
                    let dst = ins.def().expect("copy defines");
                    st.kill_temp(dst);
                    st.vals.insert(dst, v);
                    continue;
                }
                Instr::Bin { op, a, b, dst } => {
                    let (op, dst) = (*op, *dst);
                    let va = st.val_of(*a);
                    let vb = st.val_of(*b);
                    // Constant folding.
                    if let (Val::Const(x), Val::Const(y)) = (va, vb) {
                        let folded = op.eval(x, y);
                        *ins = Instr::Const { dst, value: folded };
                        st.kill_temp(dst);
                        st.vals.insert(dst, Val::Const(folded));
                        st.table.insert(Key::Const(folded), (Val::Const(folded), dst));
                        simplified += 1;
                        continue;
                    }
                    // Canonicalize commutative operand order.
                    let (va, vb) = if op.commutative() && va > vb { (vb, va) } else { (va, vb) };
                    Some(Key::Bin(op, va, vb))
                }
                Instr::Un { op, a, dst } => {
                    let (op, dst) = (*op, *dst);
                    let va = st.val_of(*a);
                    if let Val::Const(x) = va {
                        let folded = op.eval(x);
                        *ins = Instr::Const { dst, value: folded };
                        st.kill_temp(dst);
                        st.vals.insert(dst, Val::Const(folded));
                        simplified += 1;
                        continue;
                    }
                    Some(Key::Un(op, va))
                }
                Instr::Load { addr, offset, .. } => {
                    let va = st.val_of(*addr);
                    Some(Key::Load(va, *offset))
                }
                Instr::LoadSlot { slot, offset, .. } => Some(Key::LoadSlot(slot.0, *offset)),
                Instr::SlotAddr { slot, .. } => Some(Key::SlotAddr(slot.0)),
                Instr::LoadGlobal { global, .. } => Some(Key::LoadGlobal(global.0)),
                Instr::GlobalAddr { global, .. } => Some(Key::GlobalAddr(global.0)),
                Instr::Store { .. } | Instr::StoreSlot { .. } | Instr::StoreGlobal { .. } => {
                    st.kill_memory();
                    None
                }
                Instr::Call { .. } | Instr::CallRuntime { .. } | Instr::New { .. } => {
                    st.kill_memory();
                    if let Some(dst) = ins.def() {
                        st.kill_temp(dst);
                        let v = st.fresh();
                        st.vals.insert(dst, v);
                    }
                    continue;
                }
                Instr::GcPoint => None,
            };
            let Some(key) = key else { continue };
            let dst = match ins.def() {
                Some(d) => d,
                None => continue,
            };
            st.kill_temp(dst);
            if let Some((v, rep)) = st.table.get(&key).copied() {
                if rep != dst && f_kind_matches(&fkinds, rep, dst) {
                    // Same kind of value already available: reuse it.
                    // Replacing a load/arith with a copy of the
                    // representative is the CSE step.
                    *ins = Instr::Copy { dst, src: rep };
                    st.vals.insert(dst, v);
                    simplified += 1;
                    continue;
                }
            }
            let v = if let Key::Const(c) = key { Val::Const(c) } else { st.fresh() };
            st.vals.insert(dst, v);
            st.table.insert(key, (v, dst));
        }
    }
    simplified
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::{BinOp, TempKind};

    #[test]
    fn folds_constants() {
        let mut b = FuncBuilder::with_ret("f", &[], Some(TempKind::Int));
        let x = b.constant(6);
        let y = b.constant(7);
        let z = b.bin(BinOp::Mul, x, y);
        b.ret(Some(z));
        let mut f = b.finish();
        let n = local_value_numbering(&mut f);
        assert!(n >= 1);
        assert!(matches!(f.blocks[0].instrs[2], Instr::Const { value: 42, .. }));
        let out = m3gc_ir::interp::run_program(&wrap(f)).unwrap();
        assert_eq!(out.result, Some(42));
    }

    fn wrap(func: m3gc_ir::Function) -> m3gc_ir::Program {
        let mut p = m3gc_ir::Program::new();
        let id = p.add_func(func);
        p.main = id;
        p
    }

    #[test]
    fn cse_shares_address_arithmetic() {
        // t1 = p + i; t2 = p + i  → t2 = copy t1
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr, TempKind::Int]);
        let t1 = b.bin(BinOp::Add, b.param(0), b.param(1));
        let t2 = b.bin(BinOp::Add, b.param(0), b.param(1));
        let s = b.bin(BinOp::Sub, t1, t2);
        b.ret(Some(s));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Int);
        let n = local_value_numbering(&mut f);
        assert!(n >= 1);
        assert!(matches!(f.blocks[0].instrs[1], Instr::Copy { .. }), "{:?}", f.blocks[0].instrs);
    }

    #[test]
    fn loads_are_killed_by_stores() {
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr]);
        let v1 = b.load(b.param(0), 1, TempKind::Int);
        b.store(b.param(0), 1, v1);
        let v2 = b.load(b.param(0), 1, TempKind::Int); // must NOT be CSE'd...
        let s = b.bin(BinOp::Add, v1, v2);
        b.ret(Some(s));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Int);
        local_value_numbering(&mut f);
        assert!(
            matches!(f.blocks[0].instrs[2], Instr::Load { .. }),
            "load after store must survive: {:?}",
            f.blocks[0].instrs
        );
    }

    #[test]
    fn redundant_loads_merge_without_stores() {
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr]);
        let v1 = b.load(b.param(0), 1, TempKind::Int);
        let v2 = b.load(b.param(0), 1, TempKind::Int);
        let s = b.bin(BinOp::Add, v1, v2);
        b.ret(Some(s));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Int);
        let n = local_value_numbering(&mut f);
        assert!(n >= 1);
        assert!(matches!(f.blocks[0].instrs[1], Instr::Copy { .. }));
    }

    #[test]
    fn copies_propagate_through_value_classes() {
        let mut b = FuncBuilder::new("f", &[TempKind::Int]);
        let c = b.copy_of(b.param(0), TempKind::Int);
        let d = b.bin(BinOp::Add, c, b.param(0));
        let e = b.bin(BinOp::Add, b.param(0), c); // commutative duplicate
        let s = b.bin(BinOp::Sub, d, e);
        b.ret(Some(s));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Int);
        let n = local_value_numbering(&mut f);
        assert!(n >= 1, "commutative CSE should fire");
    }

    #[test]
    fn semantics_preserved_on_reference_run() {
        let mut b = FuncBuilder::with_ret("f", &[], Some(TempKind::Int));
        let a = b.constant(10);
        let bb = b.constant(4);
        let s = b.bin(BinOp::Sub, a, bb);
        let t = b.bin(BinOp::Mul, s, s);
        b.ret(Some(t));
        let mut f = b.finish();
        let before = m3gc_ir::interp::run_program(&wrap(f.clone())).unwrap();
        local_value_numbering(&mut f);
        let after = m3gc_ir::interp::run_program(&wrap(f)).unwrap();
        assert_eq!(before.result, after.result);
        assert_eq!(before.result, Some(36));
    }
}
