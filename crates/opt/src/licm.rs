//! Loop-invariant code motion, with the reassociation that creates
//! *virtual array origins* (§2).
//!
//! Lowering computes a heap element address as `addr := ptr + k` with
//! `k := i + adj` (where `adj = header − lo` folds the array's lower
//! bound into the index). Reassociation rewrites this to `vo := ptr +
//! adj; addr := vo + i`, and hoisting then moves `vo` — an untidy pointer
//! that may point *outside* its object when `lo > header` — out of the
//! loop, exactly the paper's virtual-origin example. `vo` is a derived
//! value live across every gc-point in the loop.

use std::collections::HashSet;

use m3gc_ir::cfg::{self, NaturalLoop};
use m3gc_ir::{BinOp, BlockId, Function, Instr, Temp, TempKind, Terminator};

/// Is this instruction pure (safe to speculate)? Division cannot trap in
/// this IR (x div 0 = 0), so all ALU operations qualify.
fn is_pure(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::Const { .. }
            | Instr::Copy { .. }
            | Instr::Bin { .. }
            | Instr::Un { .. }
            | Instr::SlotAddr { .. }
            | Instr::GlobalAddr { .. }
    )
}

/// Count of defs per temp across the whole function.
fn def_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.temp_count()];
    for block in &f.blocks {
        for ins in &block.instrs {
            if let Some(d) = ins.def() {
                counts[d.index()] += 1;
            }
        }
    }
    counts
}

/// Ensures `l.header` has a preheader: a block that is the only loop entry
/// edge source. Returns its id.
pub fn ensure_preheader(f: &mut Function, l: &NaturalLoop) -> BlockId {
    let preds = cfg::predecessors(f);
    let outside: Vec<BlockId> =
        preds[l.header.index()].iter().copied().filter(|p| !l.contains(*p)).collect();
    // An existing unique outside predecessor that only jumps to the header
    // already serves as preheader.
    if outside.len() == 1 {
        let p = outside[0];
        if matches!(f.block(p).term, Terminator::Jump(t) if t == l.header) {
            return p;
        }
    }
    let pre = f.new_block();
    f.block_mut(pre).term = Terminator::Jump(l.header);
    for p in outside {
        let term = &mut f.block_mut(p).term;
        match term {
            Terminator::Jump(t) => {
                if *t == l.header {
                    *t = pre;
                }
            }
            Terminator::Br { then_bb, else_bb, .. } => {
                if *then_bb == l.header {
                    *then_bb = pre;
                }
                if *else_bb == l.header {
                    *else_bb = pre;
                }
            }
            Terminator::Ret(_) => {}
        }
    }
    pre
}

/// Temps with at least one def inside the loop.
fn defined_in_loop(f: &Function, l: &NaturalLoop) -> HashSet<Temp> {
    let mut set = HashSet::new();
    for &b in &l.body {
        for ins in &f.block(b).instrs {
            if let Some(d) = ins.def() {
                set.insert(d);
            }
        }
    }
    set
}

/// Reassociates `addr := p + k` / `k := i + adj` into
/// `vo := p + adj; addr := vo + i` when `p` and `adj` are invariant and
/// `i` varies, enabling the virtual-origin hoist. Returns rewrites done.
fn reassociate(f: &mut Function, l: &NaturalLoop) -> usize {
    let counts = def_counts(f);
    let in_loop = defined_in_loop(f, l);
    let invariant = |t: Temp| !in_loop.contains(&t);
    // Map single-def adds inside the loop: dst -> (a, b).
    let mut adds: Vec<Option<(Temp, Temp)>> = vec![None; f.temp_count()];
    for &b in &l.body {
        for ins in &f.block(b).instrs {
            if let Instr::Bin { dst, op: BinOp::Add, a, b } = ins {
                if counts[dst.index()] == 1 {
                    adds[dst.index()] = Some((*a, *b));
                }
            }
        }
    }
    let mut rewrites = Vec::new(); // (block, index, p, varying, invariant_addend)
    for &bid in &l.body {
        for (i, ins) in f.block(bid).instrs.iter().enumerate() {
            let Instr::Bin { dst, op: BinOp::Add, a, b } = ins else { continue };
            // One side an invariant pointer-ish temp `p`, the other a
            // single-def in-loop add `k = x + y` with exactly one
            // invariant side.
            for (p, k) in [(*a, *b), (*b, *a)] {
                if !invariant(p) {
                    continue;
                }
                let Some((x, y)) = adds[k.index()] else { continue };
                if !in_loop.contains(&k) {
                    continue;
                }
                let (varying, inv) = if invariant(x) && !invariant(y) {
                    (y, x)
                } else if invariant(y) && !invariant(x) {
                    (x, y)
                } else {
                    continue;
                };
                rewrites.push((bid, i, *dst, p, varying, inv));
                break;
            }
        }
    }
    let n = rewrites.len();
    // Later indices first, so insertions don't shift pending positions.
    rewrites.sort_by_key(|&(bid, i, ..)| (bid, std::cmp::Reverse(i)));
    for (bid, i, dst, p, varying, inv) in rewrites {
        let vo = f.new_temp(TempKind::Int);
        let block = f.block_mut(bid);
        // Replace `dst = p + k` with `vo = p + inv; dst = vo + varying`.
        block.instrs[i] = Instr::Bin { dst, op: BinOp::Add, a: vo, b: varying };
        block.instrs.insert(i, Instr::Bin { dst: vo, op: BinOp::Add, a: p, b: inv });
    }
    n
}

/// Hoists invariant pure single-def instructions of loop `l` into its
/// preheader. Returns how many were hoisted.
fn hoist_loop(f: &mut Function, l: &NaturalLoop) -> usize {
    reassociate(f, l);
    let mut hoisted = 0;
    loop {
        let counts = def_counts(f);
        let in_loop = defined_in_loop(f, l);
        let mut found: Option<(BlockId, usize)> = None;
        'search: for &bid in &l.body {
            for (i, ins) in f.block(bid).instrs.iter().enumerate() {
                if !is_pure(ins) {
                    continue;
                }
                let Some(dst) = ins.def() else { continue };
                if counts[dst.index()] != 1 || dst.index() < f.n_params {
                    continue;
                }
                let mut uses = Vec::new();
                ins.uses(&mut uses);
                if uses.iter().any(|u| in_loop.contains(u)) {
                    continue;
                }
                found = Some((bid, i));
                break 'search;
            }
        }
        let Some((bid, i)) = found else { break };
        let pre = ensure_preheader(f, l);
        let ins = f.block_mut(bid).instrs.remove(i);
        f.block_mut(pre).instrs.push(ins);
        hoisted += 1;
    }
    hoisted
}

/// Runs LICM over every natural loop (innermost first). Returns the total
/// number of instructions hoisted.
pub fn loop_invariant_code_motion(f: &mut Function) -> usize {
    let mut loops = cfg::natural_loops(f);
    loops.sort_by_key(|l| l.body.len());
    let mut seen_headers = Vec::new();
    let mut hoisted = 0;
    for l in loops {
        if seen_headers.contains(&l.header) {
            continue;
        }
        seen_headers.push(l.header);
        hoisted += hoist_loop(f, &l);
    }
    hoisted
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::interp;
    use m3gc_ir::Program;

    fn run(f: Function) -> Option<i64> {
        let mut p = Program::new();
        let id = p.add_func(f);
        p.main = id;
        interp::run_program(&p).unwrap().result
    }

    /// while (i < n) { s += n*3; i += 1 } — `n*3` must leave the loop.
    fn invariant_loop() -> (Function, Temp) {
        let mut b = FuncBuilder::with_ret("f", &[], Some(TempKind::Int));
        let n = b.constant(10);
        let i = b.temp(TempKind::Int);
        let s = b.temp(TempKind::Int);
        b.push(Instr::Const { dst: i, value: 0 });
        b.push(Instr::Const { dst: s, value: 0 });
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let three = b.constant(3);
        let inv = b.bin(BinOp::Mul, n, three); // invariant!
        let ns = b.bin(BinOp::Add, s, inv);
        b.push(Instr::Copy { dst: s, src: ns });
        let one = b.constant(1);
        let ni = b.bin(BinOp::Add, i, one);
        b.push(Instr::Copy { dst: i, src: ni });
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(s));
        (b.finish(), inv)
    }

    #[test]
    fn hoists_invariant_multiplication() {
        let (mut f, inv) = invariant_loop();
        let before = run(f.clone());
        let n = loop_invariant_code_motion(&mut f);
        assert!(n >= 2, "expected hoists, got {n}");
        assert_eq!(run(f.clone()), before);
        assert_eq!(before, Some(300));
        // The invariant def must now be outside the loop body.
        let loops = cfg::natural_loops(&f);
        let l = &loops[0];
        let still_inside =
            l.body.iter().any(|&b| f.block(b).instrs.iter().any(|ins| ins.def() == Some(inv)));
        assert!(!still_inside, "invariant def left inside the loop");
    }

    #[test]
    fn does_not_hoist_loop_varying() {
        let (mut f, _) = invariant_loop();
        loop_invariant_code_motion(&mut f);
        // `s + inv` depends on s (loop-varying): must stay inside.
        let loops = cfg::natural_loops(&f);
        let l = &loops[0];
        let adds_inside = l
            .body
            .iter()
            .flat_map(|&b| &f.block(b).instrs)
            .filter(|ins| matches!(ins, Instr::Bin { op: BinOp::Add, .. }))
            .count();
        assert!(adds_inside >= 2, "loop-varying adds must remain");
    }

    #[test]
    fn reassociation_creates_virtual_origin() {
        // addr = p + (i + adj): after LICM, vo = p + adj is hoisted and
        // addr = vo + i remains in the loop.
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr]);
        let i = b.temp(TempKind::Int);
        b.push(Instr::Const { dst: i, value: 0 });
        let adj = b.constant(-5); // e.g. header - lo with lo=7
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        let lim = {
            b.switch_to(header);

            b.constant(10)
        };
        let c = b.bin(BinOp::Lt, i, lim);
        b.br(c, body, exit);
        b.switch_to(body);
        let k = b.bin(BinOp::Add, i, adj);
        let addr = b.bin(BinOp::Add, b.param(0), k);
        let v = b.load(addr, 0, TempKind::Int);
        let _ = v;
        let one = b.constant(1);
        let ni = b.bin(BinOp::Add, i, one);
        b.push(Instr::Copy { dst: i, src: ni });
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        let n = loop_invariant_code_motion(&mut f);
        assert!(n >= 1);
        // There must now exist a hoisted `x = p + adj` outside the loop,
        // i.e. an Add of the pointer param in a non-loop block.
        let loops = cfg::natural_loops(&f);
        let l = &loops[0];
        let vo_outside = f
            .block_ids()
            .filter(|b| !l.contains(*b))
            .flat_map(|b| &f.block(b).instrs)
            .any(|ins| matches!(ins, Instr::Bin { op: BinOp::Add, a, .. } if *a == Temp(0)));
        assert!(
            vo_outside,
            "virtual origin not hoisted: {}",
            m3gc_ir::pretty::function_to_string(&f)
        );
    }

    #[test]
    fn preheader_creation_preserves_semantics() {
        let (mut f, _) = invariant_loop();
        let before = run(f.clone());
        loop_invariant_code_motion(&mut f);
        m3gc_ir::verify::verify_function(&f, None, None).unwrap();
        assert_eq!(run(f), before);
    }
}
