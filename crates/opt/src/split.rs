//! Path splitting (paper Figure 2): the code-duplication alternative to
//! path variables for ambiguous derivations.
//!
//! When a temp `t` has two defs with different derivations (e.g.
//! `t := &P[0]+1` on one path and `t := &Q[0]+1` on the other) and the two
//! paths merge into a region that uses `t` (the loop in the paper's
//! example), the region is duplicated: one def keeps the original region,
//! the other jumps to a clone in which every occurrence of `t` is renamed
//! to a fresh temp. Each copy then has a unique derivation and no path
//! variable is needed — at the cost of code growth.
//!
//! The transformation applies when:
//!
//! * `t` has exactly two defining blocks, each ending in a jump to the
//!   same block (the region entry), and
//! * `t` is live only within a region whose blocks are reachable solely
//!   through that entry (no side entrances).
//!
//! Anything more complex falls back to path variables (the compiler's
//! default, and the paper's choice).

use std::collections::HashMap;

use m3gc_ir::cfg;
use m3gc_ir::deriv::find_ambiguous;
use m3gc_ir::liveness::liveness;
use m3gc_ir::{BlockId, Function, Temp, Terminator};

/// Attempts to split paths for every ambiguous temp; returns the number of
/// temps successfully split (the rest will get path variables).
pub fn split_paths(f: &mut Function) -> usize {
    let mut done = 0;
    // Splitting one temp changes the CFG; recompute after each success.
    loop {
        let ambiguous = find_ambiguous(f);
        let Some(&t) = ambiguous.iter().find(|&&t| try_split(f, t)) else {
            return done;
        };
        let _ = t;
        done += 1;
        if done > 64 {
            return done; // runaway guard
        }
    }
}

/// Attempts the Figure-2 transformation for one temp.
fn try_split(f: &mut Function, t: Temp) -> bool {
    // Locate t's defining blocks.
    let mut def_blocks: Vec<BlockId> = Vec::new();
    for b in f.block_ids() {
        if f.block(b).instrs.iter().any(|i| i.def() == Some(t)) && !def_blocks.contains(&b) {
            def_blocks.push(b);
        }
    }
    if def_blocks.len() != 2 || t.index() < f.n_params {
        return false;
    }
    let (da, db) = (def_blocks[0], def_blocks[1]);
    // Both def blocks must jump to the same region entry.
    let (Terminator::Jump(entry_a), Terminator::Jump(entry_b)) =
        (&f.block(da).term, &f.block(db).term)
    else {
        return false;
    };
    if entry_a != entry_b {
        return false;
    }
    let entry = *entry_a;
    if entry == f.entry || entry == da || entry == db {
        return false;
    }

    // The region: blocks where t is live-in, plus the entry.
    let lv = liveness(f, None);
    let mut region: Vec<BlockId> =
        f.block_ids().filter(|b| lv.live_in[b.index()].contains(t.index())).collect();
    if !region.contains(&entry) {
        region.push(entry);
    }
    // No defs of t inside the region; def blocks outside it.
    if region.contains(&da) || region.contains(&db) {
        return false;
    }
    for &b in &region {
        if f.block(b).instrs.iter().any(|i| i.def() == Some(t)) {
            return false;
        }
    }
    // Single entrance: every region block's predecessors are in the region
    // or (for the entry itself) the def blocks.
    let preds = cfg::predecessors(f);
    for &b in &region {
        for &p in &preds[b.index()] {
            let ok = region.contains(&p) || (b == entry && (p == da || p == db));
            if !ok {
                return false;
            }
        }
    }

    // Clone the region. In the clone, rename `t` and every *region-local*
    // temp (all defs inside the region, value not flowing in from outside)
    // to fresh temps — otherwise shared intermediates recreate the
    // ambiguity one level down. Temps that flow into the region (loop
    // counters initialized outside) or out of it keep their names; the two
    // copies never interleave, so shared updates are safe.
    let mut defs_in_region: HashMap<Temp, (u32, u32)> = HashMap::new(); // (in, out)
    for b in f.block_ids() {
        let inside = region.contains(&b);
        for ins in &f.block(b).instrs {
            if let Some(d) = ins.def() {
                let e = defs_in_region.entry(d).or_insert((0, 0));
                if inside {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
    }
    let mut rename: HashMap<Temp, Temp> = HashMap::new();
    let region_local: Vec<Temp> = defs_in_region
        .iter()
        .filter(|(&x, &(inside, outside))| {
            inside > 0
                && outside == 0
                && x.index() >= f.n_params
                && !lv.live_in[entry.index()].contains(x.index())
        })
        .map(|(&x, _)| x)
        .collect();
    for x in region_local {
        let fresh = f.new_temp(f.kind(x));
        rename.insert(x, fresh);
    }
    let t2 = f.new_temp(f.kind(t));
    rename.insert(t, t2);
    let mut map: HashMap<BlockId, BlockId> = HashMap::new();
    for &b in &region {
        let nb = f.new_block();
        map.insert(b, nb);
    }
    for &b in &region {
        let mut clone = f.block(b).clone();
        for ins in &mut clone.instrs {
            ins.map_uses(|u| rename.get(&u).copied().unwrap_or(u));
            for (&from, &to) in &rename {
                rename_def(ins, from, to);
            }
        }
        clone.term.map_uses(|u| rename.get(&u).copied().unwrap_or(u));
        // Internal edges go to the cloned counterparts.
        let remap = |b: &mut BlockId| {
            if let Some(&nb) = map.get(b) {
                *b = nb;
            }
        };
        match &mut clone.term {
            Terminator::Jump(x) => remap(x),
            Terminator::Br { then_bb, else_bb, .. } => {
                remap(then_bb);
                remap(else_bb);
            }
            Terminator::Ret(_) => {}
        }
        *f.block_mut(map[&b]) = clone;
    }
    // Redirect def block B: rename its def of t to t2 and enter the clone.
    for ins in &mut f.block_mut(db).instrs {
        if ins.def() == Some(t) {
            // Rewrite the destination in place.
            rename_def(ins, t, t2);
        }
    }
    f.block_mut(db).term = Terminator::Jump(map[&entry]);
    true
}

fn rename_def(ins: &mut m3gc_ir::Instr, from: Temp, to: Temp) {
    use m3gc_ir::Instr as I;
    match ins {
        I::Const { dst, .. }
        | I::Copy { dst, .. }
        | I::Bin { dst, .. }
        | I::Un { dst, .. }
        | I::Load { dst, .. }
        | I::LoadSlot { dst, .. }
        | I::SlotAddr { dst, .. }
        | I::LoadGlobal { dst, .. }
        | I::GlobalAddr { dst, .. }
        | I::New { dst, .. } => {
            if *dst == from {
                *dst = to;
            }
        }
        I::Call { dst, .. } | I::CallRuntime { dst, .. } => {
            if *dst == Some(from) {
                *dst = Some(to);
            }
        }
        I::Store { .. } | I::StoreSlot { .. } | I::StoreGlobal { .. } | I::GcPoint => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_ir::builder::FuncBuilder;
    use m3gc_ir::deriv::analyze_and_resolve;
    use m3gc_ir::{BinOp, Instr, Program, TempKind};

    /// Builds the paper's Figure 2 shape: an invariant conditional selects
    /// t := P+1 or t := Q+1, then a loop uses *(t + i).
    fn figure2(split: bool) -> (Function, Temp) {
        let mut b = FuncBuilder::with_ret(
            "fig2",
            &[TempKind::Ptr, TempKind::Ptr, TempKind::Int],
            Some(TempKind::Int),
        );
        let t = b.temp(TempKind::Int);
        let one = b.constant(1);
        let branch_a = b.block();
        let branch_b = b.block();
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.br(b.param(2), branch_a, branch_b);
        b.switch_to(branch_a);
        b.push(Instr::Bin { dst: t, op: BinOp::Add, a: b.param(0), b: one });
        b.jump(header);
        b.switch_to(branch_b);
        b.push(Instr::Bin { dst: t, op: BinOp::Add, a: b.param(1), b: one });
        b.jump(header);
        // while (i < 3) print *(t + i++)
        let i = {
            b.switch_to(header);
            b.temp(TempKind::Int)
        };
        // (initialize i in both def blocks' predecessor isn't possible —
        //  init in entry instead; keep it simple: i initialized in header's
        //  first visit via const in def blocks would complicate; use a slot-free
        //  pattern: init i in entry block before the branch.)
        let mut f = b.finish();
        // Manually stitch: entry block gets `i := 0` before the branch.
        f.block_mut(f.entry).instrs.insert(0, Instr::Const { dst: i, value: 0 });
        // header: c := i < 3 ; br c body exit
        let c = f.new_temp(TempKind::Int);
        let lim = f.new_temp(TempKind::Int);
        f.block_mut(header).instrs.push(Instr::Const { dst: lim, value: 3 });
        f.block_mut(header).instrs.push(Instr::Bin { dst: c, op: BinOp::Lt, a: i, b: lim });
        f.block_mut(header).term = Terminator::Br { cond: c, then_bb: body, else_bb: exit };
        // body: addr := t + i; v := [addr]; print v; i := i + 1; jump header
        let addr = f.new_temp(TempKind::Int);
        let v = f.new_temp(TempKind::Int);
        let onec = f.new_temp(TempKind::Int);
        let ni = f.new_temp(TempKind::Int);
        let body_instrs = vec![
            Instr::Bin { dst: addr, op: BinOp::Add, a: t, b: i },
            Instr::Load { dst: v, addr, offset: 0 },
            Instr::CallRuntime { dst: None, func: m3gc_ir::RuntimeFn::PrintInt, args: vec![v] },
            Instr::Const { dst: onec, value: 1 },
            Instr::Bin { dst: ni, op: BinOp::Add, a: i, b: onec },
            Instr::Copy { dst: i, src: ni },
        ];
        f.block_mut(body).instrs = body_instrs;
        f.block_mut(body).term = Terminator::Jump(header);
        let zero = f.new_temp(TempKind::Int);
        f.block_mut(exit).instrs.push(Instr::Const { dst: zero, value: 0 });
        f.block_mut(exit).term = Terminator::Ret(Some(zero));
        if split {
            split_paths(&mut f);
        }
        (f, t)
    }

    fn run(f: Function, inv: i64) -> String {
        let mut p = Program::new();
        let ty = p.types.add(m3gc_core::heap::HeapType::Record {
            name: "A".into(),
            words: 4,
            ptr_offsets: vec![],
        });
        let fid = p.add_func(f);
        let mut mb = FuncBuilder::new("main", &[]);
        let arr_p = mb.new_object(ty, None);
        let arr_q = mb.new_object(ty, None);
        for (k, base) in [(arr_p, 10i64), (arr_q, 20)] {
            for w in 0..4 {
                let c = mb.constant(base + w);
                mb.store(k, w as i32 + 1, c);
            }
        }
        let sel = mb.constant(inv);
        let _ = mb.call(fid, vec![arr_p, arr_q, sel], Some(TempKind::Int));
        mb.ret(None);
        let mid = mb.finish();
        let mid = p.add_func(mid);
        p.main = mid;
        m3gc_ir::interp::run_program(&p).unwrap().output
    }

    #[test]
    fn figure2_is_ambiguous_without_splitting() {
        let (mut f, t) = figure2(false);
        let a = analyze_and_resolve(&mut f);
        assert!(
            matches!(a.deriv(t), Some(m3gc_ir::deriv::DerivKind::Ambiguous { .. })),
            "expected ambiguity: {:?}",
            a.deriv(t)
        );
    }

    #[test]
    fn splitting_removes_the_ambiguity() {
        let (mut f, _) = figure2(true);
        assert!(find_ambiguous(&f).is_empty(), "split left ambiguity behind");
        let a = analyze_and_resolve(&mut f);
        // No path variables inserted.
        let _ = a;
    }

    #[test]
    fn splitting_grows_the_code() {
        let (plain, _) = figure2(false);
        let (split, _) = figure2(true);
        assert!(split.blocks.len() > plain.blocks.len());
        assert!(split.instr_count() > plain.instr_count());
    }

    #[test]
    fn both_strategies_compute_the_same_output() {
        for inv in [0, 1] {
            let (plain, _) = figure2(false);
            let (split, _) = figure2(true);
            assert_eq!(run(plain, inv), run(split, inv), "inv={inv}");
        }
    }

    #[test]
    fn split_output_matches_source_semantics() {
        // inv=1 selects P (branch_a): prints P[1..3] = 11,12,13.
        let (split, _) = figure2(true);
        assert_eq!(run(split, 1), "101112");
        let (split, _) = figure2(true);
        assert_eq!(run(split, 0), "202122");
    }
}
