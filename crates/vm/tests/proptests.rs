//! Property tests for the VM's binary instruction encoding: every
//! instruction round-trips through encode/decode, instruction streams
//! decode at exactly the boundaries the encoder produced, and the
//! disassembler never panics.

use proptest::prelude::*;

use m3gc_vm::decode::{decode_instr, DecodedCode};
use m3gc_vm::disasm::format_instr;
use m3gc_vm::encode::{encode_instr, instr_size, unvlq64, vlq64};
use m3gc_vm::isa::{AluOp, Instr, UnAluOp, NUM_REGS};

fn arb_reg() -> impl Strategy<Value = u8> {
    0..NUM_REGS as u8
}

fn arb_breg() -> impl Strategy<Value = m3gc_core::layout::BaseReg> {
    prop_oneof![
        Just(m3gc_core::layout::BaseReg::Fp),
        Just(m3gc_core::layout::BaseReg::Sp),
        Just(m3gc_core::layout::BaseReg::Ap),
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    (0..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| Instr::MovI { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, dst, a, b)| Instr::Alu { op, dst, a, b }),
        (arb_alu(), arb_reg(), arb_reg(), any::<i64>())
            .prop_map(|(op, dst, a, imm)| Instr::AluI { op, dst, a, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, a)| Instr::UnAlu { op: UnAluOp::Neg, dst, a }),
        (arb_reg(), arb_reg()).prop_map(|(dst, a)| Instr::UnAlu { op: UnAluOp::Not, dst, a }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, off)| Instr::Ld { dst, base, off }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(base, src, off)| Instr::St { base, off, src }),
        (arb_reg(), arb_breg(), any::<i32>())
            .prop_map(|(dst, breg, off)| Instr::LdF { dst, breg, off }),
        (arb_breg(), arb_reg(), any::<i32>())
            .prop_map(|(breg, src, off)| Instr::StF { breg, off, src }),
        (arb_reg(), arb_breg(), any::<i32>())
            .prop_map(|(dst, breg, off)| Instr::Lea { dst, breg, off }),
        (arb_reg(), 0..=u32::MAX / 2).prop_map(|(dst, goff)| Instr::LdG { dst, goff }),
        (arb_reg(), 0..=u32::MAX / 2).prop_map(|(src, goff)| Instr::StG { goff, src }),
        (arb_reg(), 0..=u32::MAX / 2).prop_map(|(dst, goff)| Instr::LeaG { dst, goff }),
        arb_reg().prop_map(|src| Instr::Push { src }),
        (any::<u16>(), any::<u8>()).prop_map(|(proc, nargs)| Instr::Call { proc, nargs }),
        Just(Instr::Ret),
        any::<u32>().prop_map(|target| Instr::Jmp { target }),
        (arb_reg(), any::<u32>()).prop_map(|(cond, target)| Instr::Brt { cond, target }),
        (arb_reg(), any::<u32>()).prop_map(|(cond, target)| Instr::Brf { cond, target }),
        (arb_reg(), any::<u16>()).prop_map(|(dst, ty)| Instr::Alloc { dst, ty }),
        (arb_reg(), any::<u16>(), arb_reg()).prop_map(|(dst, ty, len)| Instr::AllocA { dst, ty, len }),
        Just(Instr::GcPoint),
        (0..6u8, arb_reg()).prop_map(|(code, arg)| Instr::Sys { code, arg }),
        Just(Instr::Halt),
    ]
}

proptest! {
    #[test]
    fn vlq64_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        let n = vlq64(v, &mut buf);
        let (back, m) = unvlq64(&buf, 0).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(m, n);
    }

    #[test]
    fn instruction_roundtrip(ins in arb_instr()) {
        let mut buf = Vec::new();
        let n = encode_instr(&ins, &mut buf);
        prop_assert_eq!(n, buf.len());
        prop_assert_eq!(n, instr_size(&ins));
        let (back, m) = decode_instr(&buf, 0).expect("decodes");
        prop_assert_eq!(back, ins);
        prop_assert_eq!(m, n);
    }

    #[test]
    fn stream_roundtrip(instrs in proptest::collection::vec(arb_instr(), 0..40)) {
        let mut buf = Vec::new();
        let mut boundaries = Vec::new();
        for i in &instrs {
            boundaries.push(buf.len() as u32);
            encode_instr(i, &mut buf);
        }
        let decoded = DecodedCode::new(&buf);
        prop_assert_eq!(decoded.instrs.len(), instrs.len());
        for (k, (ins, _)) in decoded.instrs.iter().enumerate() {
            prop_assert_eq!(ins, &instrs[k]);
            prop_assert_eq!(decoded.at(boundaries[k]).0.clone(), instrs[k].clone());
        }
    }

    #[test]
    fn disassembly_never_panics_and_is_nonempty(ins in arb_instr()) {
        let s = format_instr(&ins);
        prop_assert!(!s.is_empty());
    }
}
