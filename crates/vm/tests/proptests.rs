//! Property tests for the VM's binary instruction encoding: every
//! instruction round-trips through encode/decode, instruction streams
//! decode at exactly the boundaries the encoder produced, and the
//! disassembler never panics.
//!
//! Uses the registry-free `m3gc-testkit` generator instead of `proptest`
//! so the workspace builds offline.

use m3gc_testkit::{run_cases, Rng};
use m3gc_vm::decode::{decode_instr, DecodedCode};
use m3gc_vm::disasm::format_instr;
use m3gc_vm::encode::{encode_instr, instr_size, unvlq64, vlq64};
use m3gc_vm::isa::{AluOp, Instr, UnAluOp, NUM_REGS};

fn arb_reg(rng: &mut Rng) -> u8 {
    rng.index(NUM_REGS) as u8
}

fn arb_breg(rng: &mut Rng) -> m3gc_core::layout::BaseReg {
    *rng.pick(&[
        m3gc_core::layout::BaseReg::Fp,
        m3gc_core::layout::BaseReg::Sp,
        m3gc_core::layout::BaseReg::Ap,
    ])
}

fn arb_alu(rng: &mut Rng) -> AluOp {
    *rng.pick(&AluOp::ALL)
}

fn arb_goff(rng: &mut Rng) -> u32 {
    rng.range_u32(0, u32::MAX / 2)
}

fn arb_instr(rng: &mut Rng) -> Instr {
    match rng.index(26) {
        0 => Instr::MovI { dst: arb_reg(rng), imm: rng.next_i64() },
        1 => Instr::Mov { dst: arb_reg(rng), src: arb_reg(rng) },
        2 => Instr::Alu { op: arb_alu(rng), dst: arb_reg(rng), a: arb_reg(rng), b: arb_reg(rng) },
        3 => Instr::AluI {
            op: arb_alu(rng),
            dst: arb_reg(rng),
            a: arb_reg(rng),
            imm: rng.next_i64(),
        },
        4 => Instr::UnAlu { op: UnAluOp::Neg, dst: arb_reg(rng), a: arb_reg(rng) },
        5 => Instr::UnAlu { op: UnAluOp::Not, dst: arb_reg(rng), a: arb_reg(rng) },
        6 => Instr::Ld { dst: arb_reg(rng), base: arb_reg(rng), off: rng.next_i32() },
        7 => Instr::St { base: arb_reg(rng), off: rng.next_i32(), src: arb_reg(rng) },
        8 => Instr::LdF { dst: arb_reg(rng), breg: arb_breg(rng), off: rng.next_i32() },
        9 => Instr::StF { breg: arb_breg(rng), off: rng.next_i32(), src: arb_reg(rng) },
        10 => Instr::Lea { dst: arb_reg(rng), breg: arb_breg(rng), off: rng.next_i32() },
        11 => Instr::LdG { dst: arb_reg(rng), goff: arb_goff(rng) },
        12 => Instr::StG { goff: arb_goff(rng), src: arb_reg(rng) },
        13 => Instr::LeaG { dst: arb_reg(rng), goff: arb_goff(rng) },
        14 => Instr::Push { src: arb_reg(rng) },
        15 => Instr::Call { proc: rng.next_u32() as u16, nargs: rng.next_u32() as u8 },
        16 => Instr::Ret,
        17 => Instr::Jmp { target: rng.next_u32() },
        18 => Instr::Brt { cond: arb_reg(rng), target: rng.next_u32() },
        19 => Instr::Brf { cond: arb_reg(rng), target: rng.next_u32() },
        20 => Instr::Alloc { dst: arb_reg(rng), ty: rng.next_u32() as u16 },
        21 => Instr::AllocA { dst: arb_reg(rng), ty: rng.next_u32() as u16, len: arb_reg(rng) },
        22 => Instr::GcPoint,
        23 => Instr::Sys { code: rng.index(6) as u8, arg: arb_reg(rng) },
        24 => Instr::StB { base: arb_reg(rng), off: rng.next_i32(), src: arb_reg(rng) },
        _ => Instr::Halt,
    }
}

#[test]
fn vlq64_roundtrip() {
    run_cases("vlq64_roundtrip", 256, |rng| {
        let v = rng.next_i64();
        let mut buf = Vec::new();
        let n = vlq64(v, &mut buf);
        let (back, m) = unvlq64(&buf, 0).unwrap();
        assert_eq!(back, v);
        assert_eq!(m, n);
    });
}

#[test]
fn instruction_roundtrip() {
    run_cases("instruction_roundtrip", 512, |rng| {
        let ins = arb_instr(rng);
        let mut buf = Vec::new();
        let n = encode_instr(&ins, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, instr_size(&ins));
        let (back, m) = decode_instr(&buf, 0).expect("decodes");
        assert_eq!(back, ins);
        assert_eq!(m, n);
    });
}

#[test]
fn stream_roundtrip() {
    run_cases("stream_roundtrip", 128, |rng| {
        let instrs: Vec<Instr> = (0..rng.index(40)).map(|_| arb_instr(rng)).collect();
        let mut buf = Vec::new();
        let mut boundaries = Vec::new();
        for i in &instrs {
            boundaries.push(buf.len() as u32);
            encode_instr(i, &mut buf);
        }
        let decoded = DecodedCode::new(&buf);
        assert_eq!(decoded.instrs.len(), instrs.len());
        for (k, (ins, _)) in decoded.instrs.iter().enumerate() {
            assert_eq!(ins, &instrs[k]);
            assert_eq!(decoded.at(boundaries[k]).0, instrs[k]);
        }
    });
}

#[test]
fn disassembly_never_panics_and_is_nonempty() {
    run_cases("disassembly_never_panics_and_is_nonempty", 512, |rng| {
        let s = format_instr(&arb_instr(rng));
        assert!(!s.is_empty());
    });
}
