//! The interpreter.
//!
//! Memory is a single word-addressed array: a small reserved prefix (so
//! that address 0 is never valid and NIL dereferences trap), the global
//! area, one stack region per thread, and two heap semispaces. Pointers
//! are untagged `i64` word addresses — exactly the paper's setting: only
//! the compiler-emitted tables distinguish pointers from integers.
//!
//! Garbage collection protocol: `ALLOC` returns [`StepOutcome::NeedGc`]
//! without changing any state when the heap is full; the runtime crate's
//! collector then stops every thread at a gc-point (threads block when
//! their pc reaches a marked gc-point while a collection is pending,
//! §5.3), traces and moves objects, calls
//! [`Machine::finish_collection`], and execution resumes by re-trying the
//! `ALLOC`.

use std::sync::atomic::{AtomicU64, Ordering};

use m3gc_core::decode::DecoderIndex;
use m3gc_core::heap::{HeapType, TypeId};
use m3gc_core::layout::BaseReg;

use crate::decode::DecodedCode;
use crate::isa::{Instr, NUM_REGS};
use crate::module::VmModule;

/// Start of the global area; addresses below this always trap.
pub const GLOBAL_BASE: usize = 16;

/// Return-pc sentinel marking the bottom frame of a thread.
pub const RETURN_SENTINEL: i64 = -1;

/// Source of unique module-lifetime tokens (see [`Machine::module_token`]).
static NEXT_MODULE_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Machine sizing.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Words per heap semispace.
    pub semi_words: usize,
    /// Words per thread stack.
    pub stack_words: usize,
    /// Maximum number of threads.
    pub max_threads: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig { semi_words: 1 << 20, stack_words: 1 << 16, max_threads: 8 }
    }
}

/// Abnormal termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmTrap {
    /// Dereference of NIL (or an address in the reserved prefix).
    NilError,
    /// Address outside every region.
    WildAddress,
    /// Stack region exhausted.
    StackOverflow,
    /// Subscript out of range (from the range-check runtime service or a
    /// negative array length).
    RangeError,
    /// Assertion failure.
    AssertError,
    /// Call to a nonexistent procedure (a compiler bug).
    BadProc,
    /// Heap exhausted even after collection.
    OutOfMemory,
}

impl std::fmt::Display for VmTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VmTrap::NilError => "attempt to dereference NIL",
            VmTrap::WildAddress => "wild memory address",
            VmTrap::StackOverflow => "stack overflow",
            VmTrap::RangeError => "subscript out of range",
            VmTrap::AssertError => "assertion failed",
            VmTrap::BadProc => "call to unknown procedure",
            VmTrap::OutOfMemory => "heap exhausted",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for VmTrap {}

/// Thread scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// May execute.
    Runnable,
    /// Stopped at a gc-point while a collection is pending.
    BlockedAtGcPoint,
    /// Returned from its bottom frame.
    Finished,
}

/// One thread of execution.
#[derive(Debug, Clone)]
pub struct Thread {
    /// General-purpose registers.
    pub regs: [i64; NUM_REGS],
    /// Frame pointer.
    pub fp: i64,
    /// Stack pointer.
    pub sp: i64,
    /// Argument pointer.
    pub ap: i64,
    /// Program counter (byte offset in module code).
    pub pc: u32,
    /// Scheduling state.
    pub status: ThreadStatus,
    /// First word of this thread's stack region.
    pub stack_base: i64,
    /// One past the last usable stack word.
    pub stack_limit: i64,
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Instruction completed.
    Normal,
    /// The heap is full: a collection is required before this `ALLOC` can
    /// proceed. No state changed; the pc still addresses the `ALLOC`.
    NeedGc,
    /// The thread blocked at a gc-point (collection pending).
    AtGcPoint,
    /// The thread returned from its bottom frame (or executed `HALT`).
    Finished,
    /// Abnormal termination.
    Trap(VmTrap),
}

/// Result of running a thread for a while.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The thread finished.
    Finished,
    /// Collection required (triggered by this thread's allocation).
    NeedGc,
    /// The thread blocked at a gc-point.
    AtGcPoint,
    /// The fuel budget ran out.
    OutOfFuel,
    /// Abnormal termination.
    Trap(VmTrap),
}

/// The virtual machine.
pub struct Machine {
    /// The loaded module.
    pub module: VmModule,
    decoded: DecodedCode,
    /// Flat memory: reserved | globals | stacks | semispace A | semispace B.
    pub mem: Vec<i64>,
    /// Threads (never removed; finished threads stay).
    pub threads: Vec<Thread>,
    /// Accumulated program output.
    pub output: String,
    /// Instructions executed.
    pub steps: u64,
    /// Objects allocated.
    pub allocations: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// Collections completed (incremented by `finish_collection`).
    pub collections: u64,
    /// True while a collection is pending (threads advance to gc-points).
    pub gc_pending: bool,
    /// Testing/measurement hook: when set, allocations report "needs gc"
    /// once `allocations` reaches this count, even with heap space left.
    pub force_gc_after: Option<u64>,

    /// Unique token identifying this machine's loaded module instance.
    /// The module (and its gc tables) is immutable for the machine's
    /// lifetime, so anything derived from the tables — notably a
    /// `m3gc_core::decode::DecodeCache` — can bind to this token and be
    /// safely reused across every collection of this machine.
    module_token: u64,
    config: MachineConfig,
    stacks_base: usize,
    heap_base: usize,
    /// True when semispace A (lower) is the from-space (allocation space).
    from_is_lower: bool,
    /// Next free word in the allocation space.
    pub alloc_ptr: i64,
    /// One past the last usable allocation word.
    pub alloc_limit: i64,
    /// `is_gc_point[pc]` — from the module's gc maps.
    is_gc_point: Vec<bool>,
}

impl Machine {
    /// Loads a module.
    ///
    /// # Panics
    ///
    /// Panics if the module's code or gc maps are malformed (they come
    /// from the compiler, so this is a bug).
    #[must_use]
    pub fn new(module: VmModule, config: MachineConfig) -> Machine {
        let decoded = DecodedCode::new(&module.code);
        let stacks_base = GLOBAL_BASE + module.globals_words as usize;
        let heap_base = stacks_base + config.stack_words * config.max_threads;
        let total = heap_base + 2 * config.semi_words;
        let mut is_gc_point = vec![false; module.code.len() + 1];
        let index = DecoderIndex::build(&module.gc_maps).expect("valid gc maps");
        for pc in index.gc_point_pcs() {
            is_gc_point[pc as usize] = true;
        }
        let alloc_ptr = heap_base as i64;
        let alloc_limit = (heap_base + config.semi_words) as i64;
        Machine {
            module,
            decoded,
            mem: vec![0; total],
            threads: Vec::new(),
            output: String::new(),
            steps: 0,
            allocations: 0,
            words_allocated: 0,
            collections: 0,
            gc_pending: false,
            force_gc_after: None,
            module_token: NEXT_MODULE_TOKEN.fetch_add(1, Ordering::Relaxed),
            config,
            stacks_base,
            heap_base,
            from_is_lower: true,
            alloc_ptr,
            alloc_limit,
            is_gc_point,
        }
    }

    /// Start of the global area.
    #[must_use]
    pub fn globals_start(&self) -> usize {
        GLOBAL_BASE
    }

    /// The module-lifetime token: unique per loaded module instance,
    /// stable for this machine's lifetime. Decode caches bind to it so a
    /// cache can never be replayed against a different module's tables.
    #[must_use]
    pub fn module_token(&self) -> u64 {
        self.module_token
    }

    /// The module's encoded gc-map byte stream (what a decode cache or
    /// decoder index reads at collection time).
    #[must_use]
    pub fn gc_map_bytes(&self) -> &[u8] {
        &self.module.gc_maps.bytes
    }

    /// The from-space (currently allocated-into) bounds `[start, end)`.
    #[must_use]
    pub fn from_space(&self) -> (i64, i64) {
        let start = if self.from_is_lower {
            self.heap_base
        } else {
            self.heap_base + self.config.semi_words
        };
        (start as i64, (start + self.config.semi_words) as i64)
    }

    /// The to-space bounds `[start, end)`.
    #[must_use]
    pub fn to_space(&self) -> (i64, i64) {
        let start = if self.from_is_lower {
            self.heap_base + self.config.semi_words
        } else {
            self.heap_base
        };
        (start as i64, (start + self.config.semi_words) as i64)
    }

    /// True if `addr` points into the from-space.
    #[must_use]
    pub fn in_from_space(&self, addr: i64) -> bool {
        let (s, e) = self.from_space();
        (s..e).contains(&addr)
    }

    /// True if `pc` is a gc-point.
    #[must_use]
    pub fn is_gc_point_pc(&self, pc: u32) -> bool {
        self.is_gc_point.get(pc as usize).copied().unwrap_or(false)
    }

    /// Completes a collection: the spaces flip, allocation resumes at
    /// `new_alloc_ptr` (one past the last evacuated word in the old
    /// to-space), the pending flag clears, and blocked threads wake.
    pub fn finish_collection(&mut self, new_alloc_ptr: i64) {
        let (to_start, to_end) = self.to_space();
        assert!((to_start..=to_end).contains(&new_alloc_ptr), "alloc ptr outside new space");
        self.from_is_lower = !self.from_is_lower;
        self.alloc_ptr = new_alloc_ptr;
        self.alloc_limit = to_end;
        self.gc_pending = false;
        self.collections += 1;
        for t in &mut self.threads {
            if t.status == ThreadStatus::BlockedAtGcPoint {
                t.status = ThreadStatus::Runnable;
            }
        }
    }

    /// Spawns a thread running procedure `proc` with the given argument
    /// words; returns the thread index.
    ///
    /// # Panics
    ///
    /// Panics if the thread limit is exceeded or `proc` is invalid.
    pub fn spawn(&mut self, proc: u16, args: &[i64]) -> usize {
        let tid = self.threads.len();
        assert!(tid < self.config.max_threads, "too many threads");
        let meta = &self.module.procs[proc as usize];
        assert_eq!(meta.n_args as usize, args.len(), "argument count mismatch");
        let stack_base = (self.stacks_base + tid * self.config.stack_words) as i64;
        let stack_limit = stack_base + self.config.stack_words as i64;
        let mut sp = stack_base;
        for &a in args {
            self.mem[sp as usize] = a;
            sp += 1;
        }
        // Bottom-frame linkage.
        self.mem[sp as usize] = RETURN_SENTINEL;
        self.mem[sp as usize + 1] = 0;
        self.mem[sp as usize + 2] = 0;
        let fp = sp + 3;
        let frame_words = i64::from(meta.frame_words);
        for w in 0..frame_words {
            self.mem[(fp + w) as usize] = 0;
        }
        self.threads.push(Thread {
            regs: [0; NUM_REGS],
            fp,
            sp: fp + frame_words,
            ap: stack_base,
            pc: meta.entry_pc,
            status: ThreadStatus::Runnable,
            stack_base,
            stack_limit,
        });
        tid
    }

    fn read(&self, addr: i64) -> Result<i64, VmTrap> {
        if !(GLOBAL_BASE as i64..self.mem.len() as i64).contains(&addr) {
            return Err(if addr >= 0 && addr < GLOBAL_BASE as i64 {
                VmTrap::NilError
            } else {
                VmTrap::WildAddress
            });
        }
        Ok(self.mem[addr as usize])
    }

    fn write(&mut self, addr: i64, value: i64) -> Result<(), VmTrap> {
        if !(GLOBAL_BASE as i64..self.mem.len() as i64).contains(&addr) {
            return Err(if addr >= 0 && addr < GLOBAL_BASE as i64 {
                VmTrap::NilError
            } else {
                VmTrap::WildAddress
            });
        }
        self.mem[addr as usize] = value;
        Ok(())
    }

    fn base_value(t: &Thread, b: BaseReg) -> i64 {
        match b {
            BaseReg::Fp => t.fp,
            BaseReg::Sp => t.sp,
            BaseReg::Ap => t.ap,
        }
    }

    /// Attempts a heap allocation; `Ok(None)` means "needs gc".
    fn try_alloc(&mut self, ty: u16, len: i64) -> Result<Option<i64>, VmTrap> {
        if len < 0 {
            return Err(VmTrap::RangeError);
        }
        if self.force_gc_after.is_some_and(|n| self.allocations >= n) {
            return Ok(None);
        }
        let desc = self.module.types.get(TypeId(u32::from(ty)));
        let words = i64::from(desc.object_words(len as u32));
        if self.alloc_ptr + words > self.alloc_limit {
            return Ok(None);
        }
        if words > self.config.semi_words as i64 {
            return Err(VmTrap::OutOfMemory);
        }
        let addr = self.alloc_ptr;
        self.alloc_ptr += words;
        // Zero the object (the space may hold stale data from before a
        // previous flip).
        self.mem[addr as usize..(addr + words) as usize].fill(0);
        self.mem[addr as usize] = i64::from(ty);
        if matches!(desc, HeapType::Array { .. }) {
            self.mem[addr as usize + 1] = len;
        }
        self.allocations += 1;
        self.words_allocated += words as u64;
        Ok(Some(addr))
    }

    fn sys(&mut self, code: u8, arg: i64) -> Result<(), VmTrap> {
        match code {
            0 => {
                self.output.push_str(&arg.to_string());
                Ok(())
            }
            1 => {
                let c = u32::try_from(arg).ok().and_then(char::from_u32).unwrap_or('?');
                self.output.push(c);
                Ok(())
            }
            2 => {
                self.output.push('\n');
                Ok(())
            }
            3 => Err(VmTrap::RangeError),
            4 => Err(VmTrap::NilError),
            5 => Err(VmTrap::AssertError),
            _ => Err(VmTrap::WildAddress),
        }
    }

    /// Executes one instruction of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range or its thread is not runnable.
    pub fn step(&mut self, tid: usize) -> StepOutcome {
        debug_assert_eq!(self.threads[tid].status, ThreadStatus::Runnable, "stepping a non-runnable thread");
        let pc = self.threads[tid].pc;
        // While a collection is pending, a thread reaching any gc-point
        // blocks there (§5.3: resumed threads run until they all reach
        // gc-points, without allocating).
        if self.gc_pending && self.is_gc_point_pc(pc) {
            self.threads[tid].status = ThreadStatus::BlockedAtGcPoint;
            return StepOutcome::AtGcPoint;
        }
        self.steps += 1;
        let (ins, next_pc) = self.decoded.at(pc).clone();
        let t = &mut self.threads[tid];
        let mut new_pc = next_pc;
        macro_rules! trap {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(tr) => return StepOutcome::Trap(tr),
                }
            };
        }
        match ins {
            Instr::MovI { dst, imm } => t.regs[dst as usize] = imm,
            Instr::Mov { dst, src } => t.regs[dst as usize] = t.regs[src as usize],
            Instr::Alu { op, dst, a, b } => {
                t.regs[dst as usize] = op.eval(t.regs[a as usize], t.regs[b as usize]);
            }
            Instr::AluI { op, dst, a, imm } => {
                t.regs[dst as usize] = op.eval(t.regs[a as usize], imm);
            }
            Instr::UnAlu { op, dst, a } => t.regs[dst as usize] = op.eval(t.regs[a as usize]),
            Instr::Ld { dst, base, off } => {
                let addr = t.regs[base as usize] + i64::from(off);
                let v = trap!(self.read(addr));
                self.threads[tid].regs[dst as usize] = v;
            }
            Instr::St { base, off, src } => {
                let addr = t.regs[base as usize] + i64::from(off);
                let v = t.regs[src as usize];
                trap!(self.write(addr, v));
            }
            Instr::LdF { dst, breg, off } => {
                let addr = Self::base_value(t, breg) + i64::from(off);
                let v = trap!(self.read(addr));
                self.threads[tid].regs[dst as usize] = v;
            }
            Instr::StF { breg, off, src } => {
                let addr = Self::base_value(t, breg) + i64::from(off);
                let v = t.regs[src as usize];
                trap!(self.write(addr, v));
            }
            Instr::Lea { dst, breg, off } => {
                t.regs[dst as usize] = Self::base_value(t, breg) + i64::from(off);
            }
            Instr::LdG { dst, goff } => {
                t.regs[dst as usize] = self.mem[GLOBAL_BASE + goff as usize];
            }
            Instr::StG { goff, src } => {
                let v = t.regs[src as usize];
                self.mem[GLOBAL_BASE + goff as usize] = v;
            }
            Instr::LeaG { dst, goff } => {
                t.regs[dst as usize] = (GLOBAL_BASE + goff as usize) as i64;
            }
            Instr::Push { src } => {
                if t.sp >= t.stack_limit {
                    return StepOutcome::Trap(VmTrap::StackOverflow);
                }
                let v = t.regs[src as usize];
                let sp = t.sp;
                t.sp += 1;
                self.mem[sp as usize] = v;
            }
            Instr::Call { proc, nargs } => {
                let Some(meta) = self.module.procs.get(proc as usize) else {
                    return StepOutcome::Trap(VmTrap::BadProc);
                };
                let frame_words = i64::from(meta.frame_words);
                let entry = meta.entry_pc;
                if t.sp + 3 + frame_words >= t.stack_limit {
                    return StepOutcome::Trap(VmTrap::StackOverflow);
                }
                let sp = t.sp;
                self.mem[sp as usize] = i64::from(next_pc);
                self.mem[sp as usize + 1] = t.fp;
                self.mem[sp as usize + 2] = t.ap;
                let t = &mut self.threads[tid];
                t.ap = sp - i64::from(nargs);
                t.fp = sp + 3;
                t.sp = t.fp + frame_words;
                let (f, s) = (t.fp, t.sp);
                self.mem[f as usize..s as usize].fill(0);
                new_pc = entry;
            }
            Instr::Ret => {
                let retpc = self.mem[t.fp as usize - 3];
                let old_fp = self.mem[t.fp as usize - 2];
                let old_ap = self.mem[t.fp as usize - 1];
                if retpc == RETURN_SENTINEL {
                    t.status = ThreadStatus::Finished;
                    return StepOutcome::Finished;
                }
                t.sp = t.ap;
                t.fp = old_fp;
                t.ap = old_ap;
                new_pc = retpc as u32;
            }
            Instr::Jmp { target } => new_pc = target,
            Instr::Brt { cond, target } => {
                if t.regs[cond as usize] != 0 {
                    new_pc = target;
                }
            }
            Instr::Brf { cond, target } => {
                if t.regs[cond as usize] == 0 {
                    new_pc = target;
                }
            }
            Instr::Alloc { dst, ty } => match trap!(self.try_alloc(ty, 0)) {
                Some(addr) => self.threads[tid].regs[dst as usize] = addr,
                None => {
                    self.gc_pending = true;
                    self.threads[tid].status = ThreadStatus::BlockedAtGcPoint;
                    return StepOutcome::NeedGc;
                }
            },
            Instr::AllocA { dst, ty, len } => {
                let l = t.regs[len as usize];
                match trap!(self.try_alloc(ty, l)) {
                    Some(addr) => self.threads[tid].regs[dst as usize] = addr,
                    None => {
                        self.gc_pending = true;
                        self.threads[tid].status = ThreadStatus::BlockedAtGcPoint;
                        return StepOutcome::NeedGc;
                    }
                }
            }
            Instr::GcPoint => {}
            Instr::Sys { code, arg } => {
                let v = t.regs[arg as usize];
                trap!(self.sys(code, v));
            }
            Instr::Halt => {
                t.status = ThreadStatus::Finished;
                return StepOutcome::Finished;
            }
        }
        self.threads[tid].pc = new_pc;
        StepOutcome::Normal
    }

    /// Runs thread `tid` until it finishes, needs a collection, blocks at
    /// a gc-point, traps, or exhausts `fuel` instructions.
    pub fn run_thread(&mut self, tid: usize, fuel: u64) -> RunOutcome {
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return RunOutcome::OutOfFuel;
            }
            remaining -= 1;
            match self.step(tid) {
                StepOutcome::Normal => {}
                StepOutcome::NeedGc => return RunOutcome::NeedGc,
                StepOutcome::AtGcPoint => return RunOutcome::AtGcPoint,
                StepOutcome::Finished => return RunOutcome::Finished,
                StepOutcome::Trap(t) => return RunOutcome::Trap(t),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::AluOp;
    use crate::module::ProcMeta;
    use m3gc_core::encode::{encode_module, Scheme};
    use m3gc_core::heap::TypeTable;
    use m3gc_core::tables::ModuleTables;

    fn module_with(code: Vec<u8>, procs: Vec<ProcMeta>, types: TypeTable) -> VmModule {
        VmModule {
            code,
            procs,
            types,
            globals_words: 4,
            global_ptr_roots: vec![],
            main: 0,
            gc_maps: encode_module(&ModuleTables::default(), Scheme::DELTA_MAIN_PP),
            logical_maps: ModuleTables::default(),
        }
    }

    fn small_config() -> MachineConfig {
        MachineConfig { semi_words: 256, stack_words: 256, max_threads: 2 }
    }

    #[test]
    fn arithmetic_and_output() {
        let mut a = Assembler::new();
        a.emit(&Instr::MovI { dst: 1, imm: 6 });
        a.emit(&Instr::MovI { dst: 2, imm: 7 });
        a.emit(&Instr::Alu { op: AluOp::Mul, dst: 3, a: 1, b: 2 });
        a.emit(&Instr::Sys { code: 0, arg: 3 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 1000), RunOutcome::Finished);
        assert_eq!(vm.output, "42");
    }

    #[test]
    fn call_and_return_with_args() {
        // proc 1: r0 := arg0 + arg1 (args at AP+0, AP+1)
        let mut a = Assembler::new();
        // main (proc 0): push 30, push 12, call 1, print r0, ret
        a.emit(&Instr::MovI { dst: 1, imm: 30 });
        a.emit(&Instr::Push { src: 1 });
        a.emit(&Instr::MovI { dst: 1, imm: 12 });
        a.emit(&Instr::Push { src: 1 });
        a.emit(&Instr::Call { proc: 1, nargs: 2 });
        a.emit(&Instr::Sys { code: 0, arg: 0 });
        a.emit(&Instr::Ret);
        let callee_entry = a.here();
        a.emit(&Instr::LdF { dst: 1, breg: BaseReg::Ap, off: 0 });
        a.emit(&Instr::LdF { dst: 2, breg: BaseReg::Ap, off: 1 });
        a.emit(&Instr::Alu { op: AluOp::Add, dst: 0, a: 1, b: 2 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![
                ProcMeta {
                    name: "main".into(),
                    entry_pc: 0,
                    end_pc: callee_entry,
                    frame_words: 0,
                    save_regs: vec![],
                    n_args: 0,
                },
                ProcMeta {
                    name: "add".into(),
                    entry_pc: callee_entry,
                    end_pc: end,
                    frame_words: 0,
                    save_regs: vec![],
                    n_args: 2,
                },
            ],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 1000), RunOutcome::Finished);
        assert_eq!(vm.output, "42");
        // Stack fully popped.
        let t = &vm.threads[tid];
        assert_eq!(t.sp, t.fp);
    }

    #[test]
    fn allocation_and_field_access() {
        let mut types = TypeTable::default();
        types.add(HeapType::Record { name: "R".into(), words: 2, ptr_offsets: vec![] });
        let mut a = Assembler::new();
        a.emit(&Instr::Alloc { dst: 1, ty: 0 });
        a.emit(&Instr::MovI { dst: 2, imm: 99 });
        a.emit(&Instr::St { base: 1, off: 1, src: 2 });
        a.emit(&Instr::Ld { dst: 3, base: 1, off: 1 });
        a.emit(&Instr::Sys { code: 0, arg: 3 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            types,
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 1000), RunOutcome::Finished);
        assert_eq!(vm.output, "99");
        assert_eq!(vm.allocations, 1);
    }

    #[test]
    fn heap_exhaustion_reports_need_gc() {
        let mut types = TypeTable::default();
        types.add(HeapType::Record { name: "R".into(), words: 100, ptr_offsets: vec![] });
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        a.emit(&Instr::Alloc { dst: 1, ty: 0 });
        a.jmp(top);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            types,
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        let r = vm.run_thread(tid, 1000);
        assert_eq!(r, RunOutcome::NeedGc);
        assert!(vm.gc_pending);
        // Two 101-word objects fit in a 256-word semispace; the third fails.
        assert_eq!(vm.allocations, 2);
        // The pc still addresses the ALLOC: finish a (no-op) collection and
        // the thread can be resumed.
        let (to_start, _) = vm.to_space();
        vm.finish_collection(to_start);
        assert_eq!(vm.threads[tid].status, ThreadStatus::Runnable);
    }

    #[test]
    fn nil_dereference_traps() {
        let mut a = Assembler::new();
        a.emit(&Instr::MovI { dst: 1, imm: 0 });
        a.emit(&Instr::Ld { dst: 2, base: 1, off: 1 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100), RunOutcome::Trap(VmTrap::NilError));
    }

    #[test]
    fn stack_overflow_on_deep_recursion() {
        // proc 0 calls itself forever.
        let mut a = Assembler::new();
        a.emit(&Instr::Call { proc: 0, nargs: 0 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "rec".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 4,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100_000), RunOutcome::Trap(VmTrap::StackOverflow));
    }

    #[test]
    fn globals_load_store() {
        let mut a = Assembler::new();
        a.emit(&Instr::MovI { dst: 1, imm: 5 });
        a.emit(&Instr::StG { goff: 2, src: 1 });
        a.emit(&Instr::LdG { dst: 3, goff: 2 });
        a.emit(&Instr::LeaG { dst: 4, goff: 2 });
        a.emit(&Instr::Ld { dst: 5, base: 4, off: 0 });
        a.emit(&Instr::Alu { op: AluOp::Add, dst: 6, a: 3, b: 5 });
        a.emit(&Instr::Sys { code: 0, arg: 6 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100), RunOutcome::Finished);
        assert_eq!(vm.output, "10");
    }
}
