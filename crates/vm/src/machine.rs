//! The interpreter.
//!
//! Memory is a single word-addressed array: a small reserved prefix (so
//! that address 0 is never valid and NIL dereferences trap), the global
//! area, one stack region per thread, and two heap semispaces. Pointers
//! are untagged `i64` word addresses — exactly the paper's setting: only
//! the compiler-emitted tables distinguish pointers from integers.
//!
//! Garbage collection protocol: `ALLOC` returns [`StepOutcome::NeedGc`]
//! without changing any state when the heap is full; the runtime crate's
//! collector then stops every thread at a gc-point (threads block when
//! their pc reaches a marked gc-point while a collection is pending,
//! §5.3), traces and moves objects, calls
//! [`Machine::finish_collection`], and execution resumes by re-trying the
//! `ALLOC`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use m3gc_core::decode::DecoderIndex;
use m3gc_core::heap::{HeapType, TypeId};
use m3gc_core::layout::BaseReg;
use m3gc_core::stats::BarrierCounters;

use crate::codemap::{CodeMap, JIT_RETPC_BIAS};
use crate::decode::DecodedCode;
use crate::isa::{Instr, NUM_REGS};
use crate::module::VmModule;
use crate::shadow::{Shadow, Tag};

/// Start of the global area; addresses below this always trap.
pub const GLOBAL_BASE: usize = 16;

/// Return-pc sentinel marking the bottom frame of a thread.
pub const RETURN_SENTINEL: i64 = -1;

/// Source of unique module-lifetime tokens (see [`Machine::module_token`]).
static NEXT_MODULE_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Shared `Ret`-side linkage-word resolution (used by both interpreter
/// cores): plain bytecode pcs pass through, biased JIT return tokens
/// resolve through the code map.
///
/// # Panics
///
/// Panics on a biased token without a resolvable code-map entry.
pub(crate) fn resolve_retpc_via(map: Option<&CodeMap>, retpc: i64) -> u32 {
    if retpc < JIT_RETPC_BIAS {
        return retpc as u32;
    }
    map.expect("jit return token on a machine with no code map")
        .resolve_ret(retpc)
        .expect("jit return token resolves to no registered gc-point")
}

/// Allocates a fresh module-lifetime token (shared with [`crate::par`]).
pub(crate) fn next_module_token() -> u64 {
    NEXT_MODULE_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// Heap organisation.
///
/// The seed machine had a single pair of semispaces. The generational
/// strategy prepends a small two-half nursery: all ordinary allocation
/// bumps through the active nursery half, minor collections evacuate
/// survivors into the other half (or into tenured space once old enough),
/// and the semispace pair becomes the tenured generation, still collected
/// by the full Cheney pass when it fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapStrategy {
    /// Two semispaces, full-heap collections (the seed behaviour).
    #[default]
    Semispace,
    /// Nursery + tenured generations with an SSB remembered set.
    Generational {
        /// Words per nursery half (survivors age through the other half).
        nursery_words: usize,
        /// Survival count at which a minor collection promotes an object
        /// to tenured space (1 = promote on first survival).
        promote_age: u32,
    },
}

impl HeapStrategy {
    /// A generational strategy with the default nursery-to-semispace ratio
    /// (one quarter) and promotion age 2.
    #[must_use]
    pub fn generational_for(semi_words: usize) -> HeapStrategy {
        HeapStrategy::Generational { nursery_words: (semi_words / 4).max(64), promote_age: 2 }
    }
}

/// Machine sizing and memory layout.
///
/// This is the low-level sizing struct; most callers build a
/// `m3gc_runtime::RuntimeOptions` and let the runtime derive the layout.
#[derive(Debug, Clone, Copy)]
pub struct MachineLayout {
    /// Words per heap semispace (the tenured generation under
    /// [`HeapStrategy::Generational`]).
    pub semi_words: usize,
    /// Words per thread stack.
    pub stack_words: usize,
    /// Maximum number of threads.
    pub max_threads: usize,
    /// Heap organisation.
    pub heap: HeapStrategy,
}

impl Default for MachineLayout {
    fn default() -> Self {
        MachineLayout {
            semi_words: 1 << 20,
            stack_words: 1 << 16,
            max_threads: 8,
            heap: HeapStrategy::Semispace,
        }
    }
}

/// Words per remembered-set card (dedup granularity of the SSB cache).
pub const CARD_WORDS_SHIFT: u32 = 5;

/// Abnormal termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmTrap {
    /// Dereference of NIL (or an address in the reserved prefix).
    NilError,
    /// Address outside every region.
    WildAddress,
    /// Stack region exhausted.
    StackOverflow,
    /// Subscript out of range (from the range-check runtime service or a
    /// negative array length).
    RangeError,
    /// Assertion failure.
    AssertError,
    /// Call to a nonexistent procedure (a compiler bug).
    BadProc,
    /// Heap exhausted even after collection.
    OutOfMemory,
    /// Shadow-mode only: a memory access through a pointer into a
    /// collected (dead) semispace — the compiler-emitted tables missed a
    /// live pointer or derived value, so it was not updated when its
    /// object moved.
    StalePointer,
}

impl VmTrap {
    /// Dense integer code for the JIT boundary (native code and the
    /// `extern` helpers pass traps as integers). Round-trips through
    /// [`VmTrap::from_code`].
    #[doc(hidden)]
    #[must_use]
    pub fn to_code(self) -> i64 {
        match self {
            VmTrap::NilError => 0,
            VmTrap::WildAddress => 1,
            VmTrap::StackOverflow => 2,
            VmTrap::RangeError => 3,
            VmTrap::AssertError => 4,
            VmTrap::BadProc => 5,
            VmTrap::OutOfMemory => 6,
            VmTrap::StalePointer => 7,
        }
    }

    /// Inverse of [`VmTrap::to_code`]; unknown codes map to
    /// [`VmTrap::WildAddress`] (they cannot come from this crate).
    #[doc(hidden)]
    #[must_use]
    pub fn from_code(code: i64) -> VmTrap {
        match code {
            0 => VmTrap::NilError,
            2 => VmTrap::StackOverflow,
            3 => VmTrap::RangeError,
            4 => VmTrap::AssertError,
            5 => VmTrap::BadProc,
            6 => VmTrap::OutOfMemory,
            7 => VmTrap::StalePointer,
            _ => VmTrap::WildAddress,
        }
    }
}

impl std::fmt::Display for VmTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VmTrap::NilError => "attempt to dereference NIL",
            VmTrap::WildAddress => "wild memory address",
            VmTrap::StackOverflow => "stack overflow",
            VmTrap::RangeError => "subscript out of range",
            VmTrap::AssertError => "assertion failed",
            VmTrap::BadProc => "call to unknown procedure",
            VmTrap::OutOfMemory => "heap exhausted",
            VmTrap::StalePointer => "access through a stale pointer into a collected space",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for VmTrap {}

/// Thread scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// May execute.
    Runnable,
    /// Stopped at a gc-point while a collection is pending.
    BlockedAtGcPoint,
    /// Returned from its bottom frame.
    Finished,
}

/// One thread of execution.
#[derive(Debug, Clone)]
pub struct Thread {
    /// General-purpose registers.
    pub regs: [i64; NUM_REGS],
    /// Frame pointer.
    pub fp: i64,
    /// Stack pointer.
    pub sp: i64,
    /// Argument pointer.
    pub ap: i64,
    /// Program counter (byte offset in module code).
    pub pc: u32,
    /// Scheduling state.
    pub status: ThreadStatus,
    /// First word of this thread's stack region.
    pub stack_base: i64,
    /// One past the last usable stack word.
    pub stack_limit: i64,
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Instruction completed.
    Normal,
    /// The heap is full: a collection is required before this `ALLOC` can
    /// proceed. No state changed; the pc still addresses the `ALLOC`.
    NeedGc,
    /// The thread blocked at a gc-point (collection pending).
    AtGcPoint,
    /// The thread returned from its bottom frame (or executed `HALT`).
    Finished,
    /// Abnormal termination.
    Trap(VmTrap),
}

/// Result of running a thread for a while.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The thread finished.
    Finished,
    /// Collection required (triggered by this thread's allocation).
    NeedGc,
    /// The thread blocked at a gc-point.
    AtGcPoint,
    /// The fuel budget ran out.
    OutOfFuel,
    /// Abnormal termination.
    Trap(VmTrap),
}

/// The virtual machine.
pub struct Machine {
    /// The loaded module.
    pub module: VmModule,
    decoded: DecodedCode,
    /// Flat memory: reserved | globals | stacks | semispace A | semispace B.
    pub mem: Vec<i64>,
    /// Threads (never removed; finished threads stay).
    pub threads: Vec<Thread>,
    /// Accumulated program output.
    pub output: String,
    /// Instructions executed.
    pub steps: u64,
    /// Objects allocated.
    pub allocations: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// Collections completed (incremented by `finish_collection`).
    pub collections: u64,
    /// True while a collection is pending (threads advance to gc-points).
    pub gc_pending: bool,
    /// Testing/measurement hook: when set, allocations report "needs gc"
    /// once `allocations` reaches this count, even with heap space left.
    /// Private so every write goes through
    /// [`Machine::set_force_gc_after`], which keeps the cached fast-path
    /// limit coherent.
    force_gc_after: Option<u64>,
    /// Cached allocation limit for the branch-light fast path: equal to
    /// `alloc_limit` when ordinary bump allocation may proceed, pinned
    /// to `i64::MIN` while forced-gc counting is armed so a single
    /// compare rules out both the full and the forced case.
    alloc_fast_limit: i64,

    /// Unique token identifying this machine's loaded module instance.
    /// The module (and its gc tables) is immutable for the machine's
    /// lifetime, so anything derived from the tables — notably a
    /// `m3gc_core::decode::DecodeCache` — can bind to this token and be
    /// safely reused across every collection of this machine.
    module_token: u64,
    layout: MachineLayout,
    stacks_base: usize,
    heap_base: usize,
    /// True when semispace A (lower) is the from-space (allocation space).
    from_is_lower: bool,
    /// Next free word in the allocation space (the active nursery half
    /// under the generational strategy).
    pub alloc_ptr: i64,
    /// One past the last usable allocation word.
    pub alloc_limit: i64,
    /// `is_gc_point[pc]` — from the module's gc maps.
    is_gc_point: Vec<bool>,

    // Generational state; only meaningful under
    // `HeapStrategy::Generational` (zero-sized / unused otherwise).
    /// First word of the tenured semispace pair.
    tenured_base: usize,
    /// True when the lower nursery half is the allocation half.
    nursery_from_lower: bool,
    /// True when the lower tenured semispace holds the old generation.
    tenured_from_lower: bool,
    /// Next free word in the tenured from-space (promotion / oversized
    /// allocation frontier).
    pub tenured_alloc_ptr: i64,
    /// Remembered set: a sequential store buffer of precise tenured slot
    /// addresses holding (potential) tenured→nursery pointers. Only ever
    /// fed slots the compiler's barrier proved are pointer fields, so
    /// minor collections may treat every entry as a tidy root.
    rs_buf: Vec<i64>,
    /// Card-granularity dedup cache over the tenured area: per card, the
    /// last slot recorded (+1; 0 = empty). A barrier hit on the same slot
    /// as its card's last entry is dropped; a different slot in the same
    /// card replaces the cache entry and is still pushed, so the buffer
    /// stays precise while tight update loops dedup to one entry per card.
    rs_card: Vec<i64>,
    /// Write-barrier event counters.
    pub barrier: BarrierCounters,
    /// Minor collections completed.
    pub minor_collections: u64,
    /// Major collections completed.
    pub major_collections: u64,
    /// Set when an oversized allocation could not fit the tenured
    /// from-space: the next collection should be a major one.
    pub wants_major_gc: bool,
    /// Shadow root tracking for the gc-map precision oracle (see
    /// [`crate::shadow`]); `None` unless [`Machine::enable_shadow`] was
    /// called.
    pub shadow: Option<Box<Shadow>>,
    /// Native-code address map installed by the JIT engine. When set,
    /// frame linkage words may hold biased return tokens
    /// ([`crate::codemap::JIT_RETPC_BIAS`]` + native offset`) that `Ret`
    /// and the stack walker resolve back to bytecode gc-point pcs.
    code_map: Option<Arc<CodeMap>>,
}

impl Machine {
    /// Loads a module.
    ///
    /// # Panics
    ///
    /// Panics if the module's code or gc maps are malformed (they come
    /// from the compiler, so this is a bug).
    #[must_use]
    pub fn new(module: VmModule, layout: impl Into<MachineLayout>) -> Machine {
        let layout = layout.into();
        let decoded = DecodedCode::new(&module.code);
        let stacks_base = GLOBAL_BASE + module.globals_words as usize;
        let heap_base = stacks_base + layout.stack_words * layout.max_threads;
        // Memory layout:
        //   semispace:    reserved | globals | stacks | semi A | semi B
        //   generational: reserved | globals | stacks | nursery A | nursery B
        //                 | tenured A | tenured B
        let nursery_words = match layout.heap {
            HeapStrategy::Semispace => 0,
            HeapStrategy::Generational { nursery_words, .. } => {
                assert!(nursery_words >= 8, "nursery too small to hold any object");
                assert!(
                    nursery_words <= layout.semi_words,
                    "nursery larger than a tenured semispace breaks the \
                     promotion headroom bound"
                );
                nursery_words
            }
        };
        let tenured_base = heap_base + 2 * nursery_words;
        let total = tenured_base + 2 * layout.semi_words;
        let mut is_gc_point = vec![false; module.code.len() + 1];
        let index = DecoderIndex::build(&module.gc_maps).expect("valid gc maps");
        for pc in index.gc_point_pcs() {
            is_gc_point[pc as usize] = true;
        }
        let (alloc_ptr, alloc_limit) = match layout.heap {
            HeapStrategy::Semispace => (heap_base as i64, (heap_base + layout.semi_words) as i64),
            HeapStrategy::Generational { .. } => {
                (heap_base as i64, (heap_base + nursery_words) as i64)
            }
        };
        let cards = match layout.heap {
            HeapStrategy::Semispace => 0,
            HeapStrategy::Generational { .. } => ((2 * layout.semi_words) >> CARD_WORDS_SHIFT) + 1,
        };
        Machine {
            module,
            decoded,
            mem: vec![0; total],
            threads: Vec::new(),
            output: String::new(),
            steps: 0,
            allocations: 0,
            words_allocated: 0,
            collections: 0,
            gc_pending: false,
            force_gc_after: None,
            alloc_fast_limit: alloc_limit,
            module_token: next_module_token(),
            layout,
            stacks_base,
            heap_base,
            from_is_lower: true,
            alloc_ptr,
            alloc_limit,
            is_gc_point,
            tenured_base,
            nursery_from_lower: true,
            tenured_from_lower: true,
            tenured_alloc_ptr: tenured_base as i64,
            rs_buf: Vec::new(),
            rs_card: vec![0; cards],
            barrier: BarrierCounters::default(),
            minor_collections: 0,
            major_collections: 0,
            wants_major_gc: false,
            shadow: None,
            code_map: None,
        }
    }

    /// Installs the JIT engine's native-code address map. From here on,
    /// frame linkage words may hold biased native return tokens; `Ret`
    /// and the stack walker resolve them through this map.
    pub fn set_code_map(&mut self, map: Arc<CodeMap>) {
        self.code_map = Some(map);
    }

    /// The installed native-code address map, if a JIT is attached.
    #[must_use]
    pub fn code_map(&self) -> Option<&Arc<CodeMap>> {
        self.code_map.as_ref()
    }

    /// Resolves a frame linkage return word to a bytecode pc: plain pcs
    /// pass through, biased JIT tokens resolve through the code map.
    ///
    /// # Panics
    ///
    /// Panics on a biased token with no (or an unmapped) code map — a
    /// JIT frame exists but no engine registered its gc-points.
    #[must_use]
    pub fn resolve_retpc(&self, retpc: i64) -> u32 {
        resolve_retpc_via(self.code_map.as_deref(), retpc)
    }

    /// Turns on shadow root tracking (instrumented execution for the
    /// gc-map precision oracle). Must be called before any thread runs;
    /// tags for already-spawned threads start as all-`NonPtr`.
    pub fn enable_shadow(&mut self) {
        let mut sh = Shadow::new(self.mem.len());
        sh.regs = vec![[Tag::NonPtr; NUM_REGS]; self.threads.len()];
        self.shadow = Some(Box::new(sh));
    }

    /// True if `addr` lies in a dead (just-collected) heap region: the
    /// inactive semispace, or either inactive half of a generational
    /// heap. Any program access landing there went through a pointer the
    /// collector did not update — a gc-map hole.
    #[must_use]
    pub fn in_dead_space(&self, addr: i64) -> bool {
        if self.is_generational() {
            let (ns, ne) = self.nursery_to_space();
            let (ts, te) = self.tenured_to_space();
            (ns..ne).contains(&addr) || (ts..te).contains(&addr)
        } else {
            let (s, e) = self.to_space();
            (s..e).contains(&addr)
        }
    }

    /// Start of the global area.
    #[must_use]
    pub fn globals_start(&self) -> usize {
        GLOBAL_BASE
    }

    /// The module-lifetime token: unique per loaded module instance,
    /// stable for this machine's lifetime. Decode caches bind to it so a
    /// cache can never be replayed against a different module's tables.
    #[must_use]
    pub fn module_token(&self) -> u64 {
        self.module_token
    }

    /// The module's encoded gc-map byte stream (what a decode cache or
    /// decoder index reads at collection time).
    #[must_use]
    pub fn gc_map_bytes(&self) -> &[u8] {
        &self.module.gc_maps.bytes
    }

    /// The from-space (currently allocated-into) bounds `[start, end)`.
    #[must_use]
    pub fn from_space(&self) -> (i64, i64) {
        let start = if self.from_is_lower {
            self.heap_base
        } else {
            self.heap_base + self.layout.semi_words
        };
        (start as i64, (start + self.layout.semi_words) as i64)
    }

    /// The to-space bounds `[start, end)`.
    #[must_use]
    pub fn to_space(&self) -> (i64, i64) {
        let start = if self.from_is_lower {
            self.heap_base + self.layout.semi_words
        } else {
            self.heap_base
        };
        (start as i64, (start + self.layout.semi_words) as i64)
    }

    /// True if `addr` points into the from-space.
    #[must_use]
    pub fn in_from_space(&self, addr: i64) -> bool {
        let (s, e) = self.from_space();
        (s..e).contains(&addr)
    }

    /// True under [`HeapStrategy::Generational`].
    #[must_use]
    pub fn is_generational(&self) -> bool {
        matches!(self.layout.heap, HeapStrategy::Generational { .. })
    }

    /// Words per nursery half (0 under the semispace strategy).
    #[must_use]
    pub fn nursery_words(&self) -> usize {
        match self.layout.heap {
            HeapStrategy::Semispace => 0,
            HeapStrategy::Generational { nursery_words, .. } => nursery_words,
        }
    }

    /// Survival count at which minor collections promote (0 if semispace).
    #[must_use]
    pub fn promote_age(&self) -> u32 {
        match self.layout.heap {
            HeapStrategy::Semispace => 0,
            HeapStrategy::Generational { promote_age, .. } => promote_age.max(1),
        }
    }

    /// The active (allocation) nursery half `[start, end)`.
    #[must_use]
    pub fn nursery_from_space(&self) -> (i64, i64) {
        let n = self.nursery_words();
        let start = if self.nursery_from_lower { self.heap_base } else { self.heap_base + n };
        (start as i64, (start + n) as i64)
    }

    /// The inactive nursery half `[start, end)` (minor-GC survivor space).
    #[must_use]
    pub fn nursery_to_space(&self) -> (i64, i64) {
        let n = self.nursery_words();
        let start = if self.nursery_from_lower { self.heap_base + n } else { self.heap_base };
        (start as i64, (start + n) as i64)
    }

    /// True if `addr` points into the active nursery half.
    #[must_use]
    pub fn in_active_nursery(&self, addr: i64) -> bool {
        let (s, e) = self.nursery_from_space();
        (s..e).contains(&addr)
    }

    /// The tenured from-space `[start, end)` (the live old generation).
    #[must_use]
    pub fn tenured_space(&self) -> (i64, i64) {
        let start = if self.tenured_from_lower {
            self.tenured_base
        } else {
            self.tenured_base + self.layout.semi_words
        };
        (start as i64, (start + self.layout.semi_words) as i64)
    }

    /// The tenured to-space `[start, end)` (major-GC target).
    #[must_use]
    pub fn tenured_to_space(&self) -> (i64, i64) {
        let start = if self.tenured_from_lower {
            self.tenured_base + self.layout.semi_words
        } else {
            self.tenured_base
        };
        (start as i64, (start + self.layout.semi_words) as i64)
    }

    /// True if `addr` points into the tenured from-space.
    #[must_use]
    pub fn in_tenured(&self, addr: i64) -> bool {
        let (s, e) = self.tenured_space();
        (s..e).contains(&addr)
    }

    /// Words currently allocated in the active nursery half.
    #[must_use]
    pub fn nursery_used(&self) -> i64 {
        self.alloc_ptr - self.nursery_from_space().0
    }

    /// Free words left in the tenured from-space.
    #[must_use]
    pub fn tenured_free(&self) -> i64 {
        self.tenured_space().1 - self.tenured_alloc_ptr
    }

    /// Number of slots currently in the remembered set.
    #[must_use]
    pub fn remembered_len(&self) -> usize {
        self.rs_buf.len()
    }

    /// Records a tenured slot address into the remembered set with
    /// card-granularity dedup. The caller is responsible for the value
    /// filter (the write barrier checks the stored value points into the
    /// active nursery; eager remembering of freshly tenured objects skips
    /// the check, which is sound because minor collections ignore
    /// remembered slots whose value is not a nursery pointer).
    pub fn remember_slot(&mut self, slot: i64) {
        Self::remember_slot_in(&mut self.rs_buf, &mut self.rs_card, self.tenured_base, slot);
    }

    /// Returns true if the slot was pushed (false: card-deduped). Does not
    /// touch the barrier counters — those count *barrier* activity only,
    /// not the collector's re-recording or the allocator's eager
    /// remembering.
    fn remember_slot_in(
        rs_buf: &mut Vec<i64>,
        rs_card: &mut [i64],
        tenured_base: usize,
        slot: i64,
    ) -> bool {
        debug_assert!(slot >= tenured_base as i64, "remembered slot below tenured area");
        let card = ((slot - tenured_base as i64) >> CARD_WORDS_SHIFT) as usize;
        if rs_card[card] == slot + 1 {
            return false;
        }
        rs_card[card] = slot + 1;
        rs_buf.push(slot);
        true
    }

    /// Drains the remembered set for a minor collection, resetting the
    /// card cache. The collector re-records surviving tenured→nursery
    /// edges (via [`Machine::remember_slot`]) after the flip.
    pub fn take_remembered_slots(&mut self) -> Vec<i64> {
        self.rs_card.fill(0);
        std::mem::take(&mut self.rs_buf)
    }

    /// The write-barrier slow path for [`Instr::StB`]: records `addr` if
    /// it is a tenured slot now holding a pointer into the active nursery.
    fn note_barrier(&mut self, addr: i64, value: i64) {
        self.barrier.executed += 1;
        if !self.is_generational() || value == 0 {
            return;
        }
        if !self.in_active_nursery(value) || !self.in_tenured(addr) {
            return;
        }
        if Self::remember_slot_in(&mut self.rs_buf, &mut self.rs_card, self.tenured_base, addr) {
            self.barrier.recorded += 1;
        } else {
            self.barrier.deduped += 1;
        }
    }

    /// True if `pc` is a gc-point.
    #[must_use]
    pub fn is_gc_point_pc(&self, pc: u32) -> bool {
        self.is_gc_point.get(pc as usize).copied().unwrap_or(false)
    }

    /// Re-derives the cached fast-path limit from `alloc_limit` and the
    /// forced-gc hook. Must run after every write to either.
    fn refresh_alloc_fast_limit(&mut self) {
        self.alloc_fast_limit =
            if self.force_gc_after.is_some() { i64::MIN } else { self.alloc_limit };
    }

    /// Arms (or disarms) the forced-collection hook. While armed, every
    /// allocation takes the slow path so the allocation count is checked
    /// exactly.
    pub fn set_force_gc_after(&mut self, n: Option<u64>) {
        self.force_gc_after = n;
        self.refresh_alloc_fast_limit();
    }

    /// The forced-collection threshold, if armed.
    #[must_use]
    pub fn force_gc_after(&self) -> Option<u64> {
        self.force_gc_after
    }

    /// Completes a collection: the spaces flip, allocation resumes at
    /// `new_alloc_ptr` (one past the last evacuated word in the old
    /// to-space), the pending flag clears, and blocked threads wake.
    pub fn finish_collection(&mut self, new_alloc_ptr: i64) {
        let (to_start, to_end) = self.to_space();
        assert!((to_start..=to_end).contains(&new_alloc_ptr), "alloc ptr outside new space");
        self.from_is_lower = !self.from_is_lower;
        self.alloc_ptr = new_alloc_ptr;
        self.alloc_limit = to_end;
        self.refresh_alloc_fast_limit();
        self.gc_pending = false;
        self.collections += 1;
        self.wake_blocked_threads();
    }

    /// Completes a minor collection: the nursery halves flip, nursery
    /// allocation resumes at `new_young_alloc` (one past the survivors in
    /// the old to-half), promotion advanced the tenured frontier to
    /// `new_tenured_alloc`, and blocked threads wake. The remembered set
    /// must already have been drained by [`Machine::take_remembered_slots`];
    /// the collector re-records surviving old→young edges afterwards.
    ///
    /// # Panics
    ///
    /// Panics if either frontier lies outside its space (a collector bug).
    pub fn finish_minor_collection(&mut self, new_young_alloc: i64, new_tenured_alloc: i64) {
        assert!(self.is_generational(), "minor collection on a semispace heap");
        let (to_start, to_end) = self.nursery_to_space();
        assert!((to_start..=to_end).contains(&new_young_alloc), "young alloc outside to-half");
        let (t_start, t_end) = self.tenured_space();
        assert!((t_start..=t_end).contains(&new_tenured_alloc), "tenured frontier outside space");
        assert!(new_tenured_alloc >= self.tenured_alloc_ptr, "promotion moved frontier backwards");
        debug_assert!(self.rs_buf.is_empty(), "remembered set not drained before finish");
        self.nursery_from_lower = !self.nursery_from_lower;
        self.alloc_ptr = new_young_alloc;
        self.alloc_limit = to_end;
        self.refresh_alloc_fast_limit();
        self.tenured_alloc_ptr = new_tenured_alloc;
        self.wants_major_gc = false;
        self.gc_pending = false;
        self.collections += 1;
        self.minor_collections += 1;
        self.wake_blocked_threads();
    }

    /// Completes a major collection: the tenured semispaces flip with the
    /// survivor frontier at `new_tenured_alloc`, the nursery empties (every
    /// live object was promoted), the remembered set clears (no
    /// tenured→nursery edges can exist into an empty nursery), and blocked
    /// threads wake.
    ///
    /// # Panics
    ///
    /// Panics if `new_tenured_alloc` lies outside the tenured to-space.
    pub fn finish_major_collection(&mut self, new_tenured_alloc: i64) {
        assert!(self.is_generational(), "major collection on a semispace heap");
        let (to_start, to_end) = self.tenured_to_space();
        assert!((to_start..=to_end).contains(&new_tenured_alloc), "tenured alloc outside space");
        self.tenured_from_lower = !self.tenured_from_lower;
        self.tenured_alloc_ptr = new_tenured_alloc;
        let (n_start, n_end) = self.nursery_from_space();
        self.alloc_ptr = n_start;
        self.alloc_limit = n_end;
        self.refresh_alloc_fast_limit();
        self.rs_buf.clear();
        self.rs_card.fill(0);
        self.wants_major_gc = false;
        self.gc_pending = false;
        self.collections += 1;
        self.major_collections += 1;
        self.wake_blocked_threads();
    }

    fn wake_blocked_threads(&mut self) {
        for t in &mut self.threads {
            if t.status == ThreadStatus::BlockedAtGcPoint {
                t.status = ThreadStatus::Runnable;
            }
        }
    }

    /// Spawns a thread running procedure `proc` with the given argument
    /// words; returns the thread index.
    ///
    /// # Panics
    ///
    /// Panics if the thread limit is exceeded or `proc` is invalid.
    pub fn spawn(&mut self, proc: u16, args: &[i64]) -> usize {
        let tid = self.threads.len();
        assert!(tid < self.layout.max_threads, "too many threads");
        let meta = &self.module.procs[proc as usize];
        assert_eq!(meta.n_args as usize, args.len(), "argument count mismatch");
        let stack_base = (self.stacks_base + tid * self.layout.stack_words) as i64;
        let stack_limit = stack_base + self.layout.stack_words as i64;
        let mut sp = stack_base;
        for &a in args {
            self.mem[sp as usize] = a;
            sp += 1;
        }
        // Bottom-frame linkage.
        self.mem[sp as usize] = RETURN_SENTINEL;
        self.mem[sp as usize + 1] = 0;
        self.mem[sp as usize + 2] = 0;
        let fp = sp + 3;
        let frame_words = i64::from(meta.frame_words);
        for w in 0..frame_words {
            self.mem[(fp + w) as usize] = 0;
        }
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.regs.push([Tag::NonPtr; NUM_REGS]);
            sh.clear_range(stack_base, fp + frame_words - stack_base);
        }
        self.threads.push(Thread {
            regs: [0; NUM_REGS],
            fp,
            sp: fp + frame_words,
            ap: stack_base,
            pc: meta.entry_pc,
            status: ThreadStatus::Runnable,
            stack_base,
            stack_limit,
        });
        tid
    }

    fn read(&self, addr: i64) -> Result<i64, VmTrap> {
        if !(GLOBAL_BASE as i64..self.mem.len() as i64).contains(&addr) {
            return Err(if addr >= 0 && addr < GLOBAL_BASE as i64 {
                VmTrap::NilError
            } else {
                VmTrap::WildAddress
            });
        }
        Ok(self.mem[addr as usize])
    }

    fn write(&mut self, addr: i64, value: i64) -> Result<(), VmTrap> {
        if !(GLOBAL_BASE as i64..self.mem.len() as i64).contains(&addr) {
            return Err(if addr >= 0 && addr < GLOBAL_BASE as i64 {
                VmTrap::NilError
            } else {
                VmTrap::WildAddress
            });
        }
        self.mem[addr as usize] = value;
        Ok(())
    }

    fn base_value(t: &Thread, b: BaseReg) -> i64 {
        match b {
            BaseReg::Fp => t.fp,
            BaseReg::Sp => t.sp,
            BaseReg::Ap => t.ap,
        }
    }

    /// Shadow-mode instrumentation, run before the instruction executes:
    /// checks register-based accesses against the dead heap regions and
    /// propagates [`Tag`]s through the instruction's data flow. Allocation
    /// tags are handled in the `Alloc` arms of [`Machine::step`] (the
    /// result address is not known here).
    fn shadow_step(&mut self, tid: usize, ins: &Instr) -> Option<VmTrap> {
        use crate::isa::AluOp;
        // A register-based access whose effective address lands in a
        // just-collected space went through a pointer the tables missed.
        if let Instr::Ld { base, off, .. }
        | Instr::St { base, off, .. }
        | Instr::StB { base, off, .. } = *ins
        {
            let addr = self.threads[tid].regs[base as usize] + i64::from(off);
            if self.in_dead_space(addr) {
                return Some(VmTrap::StalePointer);
            }
        }
        let Machine { threads, shadow, module, .. } = self;
        let sh = shadow.as_deref_mut().expect("shadow_step without shadow");
        let t = &threads[tid];
        match *ins {
            Instr::MovI { dst, .. } | Instr::UnAlu { dst, .. } => {
                sh.regs[tid][dst as usize] = Tag::NonPtr;
            }
            Instr::Mov { dst, src } => sh.regs[tid][dst as usize] = sh.regs[tid][src as usize],
            Instr::Alu { op, dst, a, b } => {
                let (ta, tb) = (sh.regs[tid][a as usize], sh.regs[tid][b as usize]);
                sh.regs[tid][dst as usize] = match op {
                    AluOp::Add | AluOp::Sub => Shadow::combine_additive(ta, tb),
                    _ => Tag::NonPtr,
                };
            }
            Instr::AluI { op, dst, a, .. } => {
                let ta = sh.regs[tid][a as usize];
                sh.regs[tid][dst as usize] = match op {
                    AluOp::Add | AluOp::Sub => Shadow::combine_additive(ta, Tag::NonPtr),
                    _ => Tag::NonPtr,
                };
            }
            Instr::Ld { dst, base, off } => {
                let addr = t.regs[base as usize] + i64::from(off);
                sh.regs[tid][dst as usize] = sh.mem_tag(addr);
            }
            Instr::St { base, off, src } | Instr::StB { base, off, src } => {
                let addr = t.regs[base as usize] + i64::from(off);
                let tag = sh.regs[tid][src as usize];
                sh.set_mem(addr, tag);
            }
            Instr::LdF { dst, breg, off } => {
                let addr = Self::base_value(t, breg) + i64::from(off);
                sh.regs[tid][dst as usize] = sh.mem_tag(addr);
            }
            Instr::StF { breg, off, src } => {
                let addr = Self::base_value(t, breg) + i64::from(off);
                let tag = sh.regs[tid][src as usize];
                sh.set_mem(addr, tag);
            }
            Instr::Lea { dst, .. } | Instr::LeaG { dst, .. } => {
                // Stack and global addresses are not heap pointers; the
                // tables must never list them as tidy roots.
                sh.regs[tid][dst as usize] = Tag::NonPtr;
            }
            Instr::LdG { dst, goff } => {
                sh.regs[tid][dst as usize] = sh.mem_tag((GLOBAL_BASE + goff as usize) as i64);
            }
            Instr::StG { goff, src } => {
                let tag = sh.regs[tid][src as usize];
                sh.set_mem((GLOBAL_BASE + goff as usize) as i64, tag);
            }
            Instr::Push { src } => {
                let tag = sh.regs[tid][src as usize];
                sh.set_mem(t.sp, tag);
            }
            Instr::Call { proc, .. } => {
                // Linkage words and the zeroed frame hold no pointers yet.
                if let Some(meta) = module.procs.get(proc as usize) {
                    sh.clear_range(t.sp, 3 + i64::from(meta.frame_words));
                }
            }
            // Allocation is tagged after the fact; everything else moves
            // no data.
            Instr::Alloc { .. }
            | Instr::AllocA { .. }
            | Instr::Ret
            | Instr::Jmp { .. }
            | Instr::Brt { .. }
            | Instr::Brf { .. }
            | Instr::GcPoint
            | Instr::Sys { .. }
            | Instr::Halt => {}
        }
        None
    }

    /// Attempts a heap allocation; `Ok(None)` means "needs gc".
    ///
    /// The fast path bumps through the allocation space (the active
    /// nursery half when generational). Objects too large for the nursery
    /// go straight to the tenured frontier, with every pointer slot
    /// eagerly remembered: the compiler elides write barriers on stores
    /// into provably fresh objects, and those stores all execute before
    /// the next gc-point, so the eager entries stand in for the elided
    /// records until the next collection rebuilds the set.
    fn try_alloc(&mut self, ty: u16, len: i64) -> Result<Option<i64>, VmTrap> {
        if len < 0 {
            return Err(VmTrap::RangeError);
        }
        let desc = self.module.types.get(TypeId(u32::from(ty)));
        let words = i64::from(desc.object_words(len as u32));
        // Branch-light fast path: one compare against the cached limit.
        // `alloc_fast_limit` equals `alloc_limit` only when no forced-gc
        // counting is armed (it is pinned to `i64::MIN` otherwise), so
        // this single test also rules out the torture case.
        let addr = self.alloc_ptr;
        if addr + words <= self.alloc_fast_limit {
            self.alloc_ptr = addr + words;
            let is_array = matches!(desc, HeapType::Array { .. });
            self.mem[addr as usize..(addr + words) as usize].fill(0);
            if let Some(sh) = self.shadow.as_deref_mut() {
                sh.clear_range(addr, words);
            }
            self.mem[addr as usize] = i64::from(ty);
            if is_array {
                self.mem[addr as usize + 1] = len;
            }
            self.allocations += 1;
            self.words_allocated += words as u64;
            return Ok(Some(addr));
        }
        self.try_alloc_slow(ty, len, words)
    }

    /// Slow allocation path: forced-gc accounting, space exhaustion, and
    /// the generational large-object cases.
    fn try_alloc_slow(&mut self, ty: u16, len: i64, words: i64) -> Result<Option<i64>, VmTrap> {
        if self.force_gc_after.is_some_and(|n| self.allocations >= n) {
            return Ok(None);
        }
        let desc = self.module.types.get(TypeId(u32::from(ty)));
        let mut tenured_direct = false;
        let addr = if self.alloc_ptr + words <= self.alloc_limit {
            let a = self.alloc_ptr;
            self.alloc_ptr += words;
            a
        } else if words > self.layout.semi_words as i64 {
            return Err(VmTrap::OutOfMemory);
        } else if let HeapStrategy::Generational { nursery_words, .. } = self.layout.heap {
            if words <= nursery_words as i64 {
                // Fits an empty nursery half: a minor collection makes room.
                return Ok(None);
            }
            if self.tenured_alloc_ptr + words > self.tenured_space().1 {
                self.wants_major_gc = true;
                return Ok(None);
            }
            tenured_direct = true;
            let a = self.tenured_alloc_ptr;
            self.tenured_alloc_ptr += words;
            a
        } else {
            return Ok(None);
        };
        // Zero the object (the space may hold stale data from before a
        // previous flip).
        self.mem[addr as usize..(addr + words) as usize].fill(0);
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.clear_range(addr, words);
        }
        self.mem[addr as usize] = i64::from(ty);
        if matches!(desc, HeapType::Array { .. }) {
            self.mem[addr as usize + 1] = len;
        }
        if tenured_direct && desc.has_pointers() {
            let desc = self.module.types.get(TypeId(u32::from(ty)));
            for off in desc.pointer_offset_iter(len as u32) {
                Self::remember_slot_in(
                    &mut self.rs_buf,
                    &mut self.rs_card,
                    self.tenured_base,
                    addr + i64::from(off),
                );
            }
        }
        self.allocations += 1;
        self.words_allocated += words as u64;
        Ok(Some(addr))
    }

    /// JIT runtime-call surface: the native baseline compiler's call-outs
    /// land on these thin wrappers so the JIT crate (a layer above) can
    /// reach the interpreter's private slow paths without duplicating
    /// their semantics. Not part of the public machine API.
    #[doc(hidden)]
    pub fn jit_try_alloc(&mut self, ty: u16, len: i64) -> Result<Option<i64>, VmTrap> {
        self.try_alloc(ty, len)
    }

    #[doc(hidden)]
    pub fn jit_note_barrier(&mut self, addr: i64, value: i64) {
        self.note_barrier(addr, value);
    }

    #[doc(hidden)]
    pub fn jit_sys(&mut self, code: u8, arg: i64) -> Result<(), VmTrap> {
        self.sys(code, arg)
    }

    #[doc(hidden)]
    pub fn jit_shadow_step(&mut self, tid: usize, ins: &Instr) -> Option<VmTrap> {
        if self.shadow.is_some() {
            self.shadow_step(tid, ins)
        } else {
            None
        }
    }

    /// Address of the cached fast-path allocation limit, for the JIT's
    /// inline bump sequence (the cell moves with every collection, the
    /// field does not).
    #[doc(hidden)]
    #[must_use]
    pub fn jit_alloc_fast_limit_ptr(&self) -> *const i64 {
        &raw const self.alloc_fast_limit
    }

    fn sys(&mut self, code: u8, arg: i64) -> Result<(), VmTrap> {
        match code {
            0 => {
                self.output.push_str(&arg.to_string());
                Ok(())
            }
            1 => {
                let c = u32::try_from(arg).ok().and_then(char::from_u32).unwrap_or('?');
                self.output.push(c);
                Ok(())
            }
            2 => {
                self.output.push('\n');
                Ok(())
            }
            3 => Err(VmTrap::RangeError),
            4 => Err(VmTrap::NilError),
            5 => Err(VmTrap::AssertError),
            _ => Err(VmTrap::WildAddress),
        }
    }

    /// Executes one instruction of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range or its thread is not runnable.
    pub fn step(&mut self, tid: usize) -> StepOutcome {
        debug_assert_eq!(
            self.threads[tid].status,
            ThreadStatus::Runnable,
            "stepping a non-runnable thread"
        );
        let pc = self.threads[tid].pc;
        // While a collection is pending, a thread reaching any gc-point
        // blocks there (§5.3: resumed threads run until they all reach
        // gc-points, without allocating).
        if self.gc_pending && self.is_gc_point_pc(pc) {
            self.threads[tid].status = ThreadStatus::BlockedAtGcPoint;
            return StepOutcome::AtGcPoint;
        }
        self.steps += 1;
        let (ins, next_pc) = self.decoded.at(pc).clone();
        if self.shadow.is_some() {
            if let Some(trap) = self.shadow_step(tid, &ins) {
                return StepOutcome::Trap(trap);
            }
        }
        let t = &mut self.threads[tid];
        let mut new_pc = next_pc;
        macro_rules! trap {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(tr) => return StepOutcome::Trap(tr),
                }
            };
        }
        match ins {
            Instr::MovI { dst, imm } => t.regs[dst as usize] = imm,
            Instr::Mov { dst, src } => t.regs[dst as usize] = t.regs[src as usize],
            Instr::Alu { op, dst, a, b } => {
                t.regs[dst as usize] = op.eval(t.regs[a as usize], t.regs[b as usize]);
            }
            Instr::AluI { op, dst, a, imm } => {
                t.regs[dst as usize] = op.eval(t.regs[a as usize], imm);
            }
            Instr::UnAlu { op, dst, a } => t.regs[dst as usize] = op.eval(t.regs[a as usize]),
            Instr::Ld { dst, base, off } => {
                let addr = t.regs[base as usize] + i64::from(off);
                let v = trap!(self.read(addr));
                self.threads[tid].regs[dst as usize] = v;
            }
            Instr::St { base, off, src } => {
                let addr = t.regs[base as usize] + i64::from(off);
                let v = t.regs[src as usize];
                trap!(self.write(addr, v));
            }
            Instr::StB { base, off, src } => {
                let addr = t.regs[base as usize] + i64::from(off);
                let v = t.regs[src as usize];
                trap!(self.write(addr, v));
                // On a semispace heap the barrier store degenerates to a
                // plain store, so one compiled module runs under either
                // `--gc` mode.
                self.note_barrier(addr, v);
            }
            Instr::LdF { dst, breg, off } => {
                let addr = Self::base_value(t, breg) + i64::from(off);
                let v = trap!(self.read(addr));
                self.threads[tid].regs[dst as usize] = v;
            }
            Instr::StF { breg, off, src } => {
                let addr = Self::base_value(t, breg) + i64::from(off);
                let v = t.regs[src as usize];
                trap!(self.write(addr, v));
            }
            Instr::Lea { dst, breg, off } => {
                t.regs[dst as usize] = Self::base_value(t, breg) + i64::from(off);
            }
            Instr::LdG { dst, goff } => {
                t.regs[dst as usize] = self.mem[GLOBAL_BASE + goff as usize];
            }
            Instr::StG { goff, src } => {
                let v = t.regs[src as usize];
                self.mem[GLOBAL_BASE + goff as usize] = v;
            }
            Instr::LeaG { dst, goff } => {
                t.regs[dst as usize] = (GLOBAL_BASE + goff as usize) as i64;
            }
            Instr::Push { src } => {
                if t.sp >= t.stack_limit {
                    return StepOutcome::Trap(VmTrap::StackOverflow);
                }
                let v = t.regs[src as usize];
                let sp = t.sp;
                t.sp += 1;
                self.mem[sp as usize] = v;
            }
            Instr::Call { proc, nargs } => {
                let Some(meta) = self.module.procs.get(proc as usize) else {
                    return StepOutcome::Trap(VmTrap::BadProc);
                };
                let frame_words = i64::from(meta.frame_words);
                let entry = meta.entry_pc;
                if t.sp + 3 + frame_words >= t.stack_limit {
                    return StepOutcome::Trap(VmTrap::StackOverflow);
                }
                let sp = t.sp;
                self.mem[sp as usize] = i64::from(next_pc);
                self.mem[sp as usize + 1] = t.fp;
                self.mem[sp as usize + 2] = t.ap;
                let t = &mut self.threads[tid];
                t.ap = sp - i64::from(nargs);
                t.fp = sp + 3;
                t.sp = t.fp + frame_words;
                let (f, s) = (t.fp, t.sp);
                self.mem[f as usize..s as usize].fill(0);
                new_pc = entry;
            }
            Instr::Ret => {
                let retpc = self.mem[t.fp as usize - 3];
                let old_fp = self.mem[t.fp as usize - 2];
                let old_ap = self.mem[t.fp as usize - 1];
                if retpc == RETURN_SENTINEL {
                    t.status = ThreadStatus::Finished;
                    return StepOutcome::Finished;
                }
                t.sp = t.ap;
                t.fp = old_fp;
                t.ap = old_ap;
                new_pc = resolve_retpc_via(self.code_map.as_deref(), retpc);
            }
            Instr::Jmp { target } => new_pc = target,
            Instr::Brt { cond, target } => {
                if t.regs[cond as usize] != 0 {
                    new_pc = target;
                }
            }
            Instr::Brf { cond, target } => {
                if t.regs[cond as usize] == 0 {
                    new_pc = target;
                }
            }
            Instr::Alloc { dst, ty } => match trap!(self.try_alloc(ty, 0)) {
                Some(addr) => {
                    self.threads[tid].regs[dst as usize] = addr;
                    if let Some(sh) = self.shadow.as_deref_mut() {
                        sh.regs[tid][dst as usize] = Tag::Ptr;
                    }
                }
                None => {
                    self.gc_pending = true;
                    self.threads[tid].status = ThreadStatus::BlockedAtGcPoint;
                    return StepOutcome::NeedGc;
                }
            },
            Instr::AllocA { dst, ty, len } => {
                let l = t.regs[len as usize];
                match trap!(self.try_alloc(ty, l)) {
                    Some(addr) => {
                        self.threads[tid].regs[dst as usize] = addr;
                        if let Some(sh) = self.shadow.as_deref_mut() {
                            sh.regs[tid][dst as usize] = Tag::Ptr;
                        }
                    }
                    None => {
                        self.gc_pending = true;
                        self.threads[tid].status = ThreadStatus::BlockedAtGcPoint;
                        return StepOutcome::NeedGc;
                    }
                }
            }
            Instr::GcPoint => {}
            Instr::Sys { code, arg } => {
                let v = t.regs[arg as usize];
                trap!(self.sys(code, v));
            }
            Instr::Halt => {
                t.status = ThreadStatus::Finished;
                return StepOutcome::Finished;
            }
        }
        self.threads[tid].pc = new_pc;
        StepOutcome::Normal
    }

    /// Runs thread `tid` until it finishes, needs a collection, blocks at
    /// a gc-point, traps, or exhausts `fuel` instructions.
    pub fn run_thread(&mut self, tid: usize, fuel: u64) -> RunOutcome {
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return RunOutcome::OutOfFuel;
            }
            remaining -= 1;
            match self.step(tid) {
                StepOutcome::Normal => {}
                StepOutcome::NeedGc => return RunOutcome::NeedGc,
                StepOutcome::AtGcPoint => return RunOutcome::AtGcPoint,
                StepOutcome::Finished => return RunOutcome::Finished,
                StepOutcome::Trap(t) => return RunOutcome::Trap(t),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::AluOp;
    use crate::module::ProcMeta;
    use m3gc_core::encode::{encode_module, Scheme};
    use m3gc_core::heap::TypeTable;
    use m3gc_core::tables::ModuleTables;

    fn module_with(code: Vec<u8>, procs: Vec<ProcMeta>, types: TypeTable) -> VmModule {
        VmModule {
            code,
            procs,
            types,
            globals_words: 4,
            global_ptr_roots: vec![],
            main: 0,
            poll_pcs: vec![],
            gc_maps: encode_module(&ModuleTables::default(), Scheme::DELTA_MAIN_PP),
            logical_maps: ModuleTables::default(),
        }
    }

    fn small_config() -> MachineLayout {
        MachineLayout {
            semi_words: 256,
            stack_words: 256,
            max_threads: 2,
            ..MachineLayout::default()
        }
    }

    fn small_gen_config() -> MachineLayout {
        MachineLayout {
            heap: HeapStrategy::Generational { nursery_words: 64, promote_age: 2 },
            ..small_config()
        }
    }

    #[test]
    fn arithmetic_and_output() {
        let mut a = Assembler::new();
        a.emit(&Instr::MovI { dst: 1, imm: 6 });
        a.emit(&Instr::MovI { dst: 2, imm: 7 });
        a.emit(&Instr::Alu { op: AluOp::Mul, dst: 3, a: 1, b: 2 });
        a.emit(&Instr::Sys { code: 0, arg: 3 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 1000), RunOutcome::Finished);
        assert_eq!(vm.output, "42");
    }

    #[test]
    fn call_and_return_with_args() {
        // proc 1: r0 := arg0 + arg1 (args at AP+0, AP+1)
        let mut a = Assembler::new();
        // main (proc 0): push 30, push 12, call 1, print r0, ret
        a.emit(&Instr::MovI { dst: 1, imm: 30 });
        a.emit(&Instr::Push { src: 1 });
        a.emit(&Instr::MovI { dst: 1, imm: 12 });
        a.emit(&Instr::Push { src: 1 });
        a.emit(&Instr::Call { proc: 1, nargs: 2 });
        a.emit(&Instr::Sys { code: 0, arg: 0 });
        a.emit(&Instr::Ret);
        let callee_entry = a.here();
        a.emit(&Instr::LdF { dst: 1, breg: BaseReg::Ap, off: 0 });
        a.emit(&Instr::LdF { dst: 2, breg: BaseReg::Ap, off: 1 });
        a.emit(&Instr::Alu { op: AluOp::Add, dst: 0, a: 1, b: 2 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![
                ProcMeta {
                    name: "main".into(),
                    entry_pc: 0,
                    end_pc: callee_entry,
                    frame_words: 0,
                    save_regs: vec![],
                    n_args: 0,
                },
                ProcMeta {
                    name: "add".into(),
                    entry_pc: callee_entry,
                    end_pc: end,
                    frame_words: 0,
                    save_regs: vec![],
                    n_args: 2,
                },
            ],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 1000), RunOutcome::Finished);
        assert_eq!(vm.output, "42");
        // Stack fully popped.
        let t = &vm.threads[tid];
        assert_eq!(t.sp, t.fp);
    }

    #[test]
    fn allocation_and_field_access() {
        let mut types = TypeTable::default();
        types.add(HeapType::Record { name: "R".into(), words: 2, ptr_offsets: vec![] });
        let mut a = Assembler::new();
        a.emit(&Instr::Alloc { dst: 1, ty: 0 });
        a.emit(&Instr::MovI { dst: 2, imm: 99 });
        a.emit(&Instr::St { base: 1, off: 1, src: 2 });
        a.emit(&Instr::Ld { dst: 3, base: 1, off: 1 });
        a.emit(&Instr::Sys { code: 0, arg: 3 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            types,
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 1000), RunOutcome::Finished);
        assert_eq!(vm.output, "99");
        assert_eq!(vm.allocations, 1);
    }

    #[test]
    fn heap_exhaustion_reports_need_gc() {
        let mut types = TypeTable::default();
        types.add(HeapType::Record { name: "R".into(), words: 100, ptr_offsets: vec![] });
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        a.emit(&Instr::Alloc { dst: 1, ty: 0 });
        a.jmp(top);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            types,
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        let r = vm.run_thread(tid, 1000);
        assert_eq!(r, RunOutcome::NeedGc);
        assert!(vm.gc_pending);
        // Two 101-word objects fit in a 256-word semispace; the third fails.
        assert_eq!(vm.allocations, 2);
        // The pc still addresses the ALLOC: finish a (no-op) collection and
        // the thread can be resumed.
        let (to_start, _) = vm.to_space();
        vm.finish_collection(to_start);
        assert_eq!(vm.threads[tid].status, ThreadStatus::Runnable);
    }

    #[test]
    fn generational_layout_and_nursery_allocation() {
        let mut types = TypeTable::default();
        types.add(HeapType::Record { name: "R".into(), words: 2, ptr_offsets: vec![] });
        let mut a = Assembler::new();
        a.emit(&Instr::Alloc { dst: 1, ty: 0 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            types,
        );
        let mut vm = Machine::new(m, small_gen_config());
        assert!(vm.is_generational());
        let (nf, nfe) = vm.nursery_from_space();
        let (nt, nte) = vm.nursery_to_space();
        let (tf, tfe) = vm.tenured_space();
        let (tt, tte) = vm.tenured_to_space();
        assert_eq!(nfe - nf, 64);
        assert_eq!(nte - nt, 64);
        assert_eq!(tfe - tf, 256);
        assert_eq!(tte - tt, 256);
        assert_eq!(nfe, nt, "nursery halves adjacent");
        assert_eq!(nte, tf, "tenured follows nursery");
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100), RunOutcome::Finished);
        let addr = vm.threads[tid].regs[1];
        assert!(vm.in_active_nursery(addr), "small object allocates in nursery");
        assert_eq!(vm.nursery_used(), 3);
        assert_eq!(vm.tenured_free(), 256);
    }

    #[test]
    fn oversized_allocation_goes_to_tenured_with_eager_remembering() {
        let mut types = TypeTable::default();
        // 100 field words > 64-word nursery half; two pointer fields.
        types.add(HeapType::Record { name: "Big".into(), words: 100, ptr_offsets: vec![0, 99] });
        let mut a = Assembler::new();
        a.emit(&Instr::Alloc { dst: 1, ty: 0 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            types,
        );
        let mut vm = Machine::new(m, small_gen_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100), RunOutcome::Finished);
        let addr = vm.threads[tid].regs[1];
        assert!(vm.in_tenured(addr), "oversized object bypasses the nursery");
        assert_eq!(vm.nursery_used(), 0);
        // Both pointer slots eagerly remembered (barrier elision on fresh
        // objects would otherwise lose tenured→nursery edges).
        assert_eq!(vm.remembered_len(), 2);
    }

    #[test]
    fn write_barrier_records_tenured_to_nursery_edges_once_per_card_entry() {
        let mut types = TypeTable::default();
        types.add(HeapType::Record { name: "Big".into(), words: 100, ptr_offsets: vec![0] });
        types.add(HeapType::Record { name: "Small".into(), words: 1, ptr_offsets: vec![] });
        let mut a = Assembler::new();
        a.emit(&Instr::Alloc { dst: 1, ty: 0 }); // tenured (oversized)
        a.emit(&Instr::Alloc { dst: 2, ty: 1 }); // nursery
        a.emit(&Instr::StB { base: 1, off: 1, src: 2 }); // old → young
        a.emit(&Instr::StB { base: 1, off: 1, src: 2 }); // same slot again
        a.emit(&Instr::StB { base: 2, off: 1, src: 1 }); // young → old: filtered
        a.emit(&Instr::MovI { dst: 3, imm: 0 });
        a.emit(&Instr::StB { base: 1, off: 1, src: 3 }); // NIL store: filtered
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            types,
        );
        let mut vm = Machine::new(m, small_gen_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100), RunOutcome::Finished);
        assert_eq!(vm.barrier.executed, 4);
        // Eager remembering already holds the slot (same card entry), so
        // both explicit barrier hits on it dedup.
        assert_eq!(vm.remembered_len(), 1);
        assert_eq!(vm.barrier.deduped, 2);
    }

    #[test]
    fn stb_behaves_like_plain_store_on_semispace_heap() {
        let mut types = TypeTable::default();
        types.add(HeapType::Record { name: "R".into(), words: 2, ptr_offsets: vec![0, 1] });
        let mut a = Assembler::new();
        a.emit(&Instr::Alloc { dst: 1, ty: 0 });
        a.emit(&Instr::StB { base: 1, off: 1, src: 1 });
        a.emit(&Instr::Ld { dst: 2, base: 1, off: 1 });
        a.emit(&Instr::Alu { op: AluOp::Eq, dst: 3, a: 1, b: 2 });
        a.emit(&Instr::Sys { code: 0, arg: 3 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            types,
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100), RunOutcome::Finished);
        assert_eq!(vm.output, "1");
        assert_eq!(vm.remembered_len(), 0);
        assert_eq!(vm.barrier.executed, 1);
        assert_eq!(vm.barrier.recorded, 0);
    }

    #[test]
    fn nil_dereference_traps() {
        let mut a = Assembler::new();
        a.emit(&Instr::MovI { dst: 1, imm: 0 });
        a.emit(&Instr::Ld { dst: 2, base: 1, off: 1 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100), RunOutcome::Trap(VmTrap::NilError));
    }

    #[test]
    fn stack_overflow_on_deep_recursion() {
        // proc 0 calls itself forever.
        let mut a = Assembler::new();
        a.emit(&Instr::Call { proc: 0, nargs: 0 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "rec".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 4,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100_000), RunOutcome::Trap(VmTrap::StackOverflow));
    }

    #[test]
    fn globals_load_store() {
        let mut a = Assembler::new();
        a.emit(&Instr::MovI { dst: 1, imm: 5 });
        a.emit(&Instr::StG { goff: 2, src: 1 });
        a.emit(&Instr::LdG { dst: 3, goff: 2 });
        a.emit(&Instr::LeaG { dst: 4, goff: 2 });
        a.emit(&Instr::Ld { dst: 5, base: 4, off: 0 });
        a.emit(&Instr::Alu { op: AluOp::Add, dst: 6, a: 3, b: 5 });
        a.emit(&Instr::Sys { code: 0, arg: 6 });
        a.emit(&Instr::Ret);
        let code = a.finish();
        let end = code.len() as u32;
        let m = module_with(
            code,
            vec![ProcMeta {
                name: "main".into(),
                entry_pc: 0,
                end_pc: end,
                frame_words: 0,
                save_regs: vec![],
                n_args: 0,
            }],
            TypeTable::default(),
        );
        let mut vm = Machine::new(m, small_config());
        let tid = vm.spawn(0, &[]);
        assert_eq!(vm.run_thread(tid, 100), RunOutcome::Finished);
        assert_eq!(vm.output, "10");
    }
}
