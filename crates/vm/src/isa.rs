//! The instruction set.
//!
//! Twelve general-purpose registers `r0..r11` (r0 carries return values;
//! r0–r5 are caller-save, r6–r11 callee-save) plus three base registers
//! `FP`, `SP`, `AP` addressed by dedicated frame instructions. All memory
//! operands are word-granular.

use m3gc_core::layout::BaseReg;

/// Number of general-purpose registers (equals the register pointer
/// table's width).
pub const NUM_REGS: usize = m3gc_core::layout::NUM_HARD_REGS;

/// First callee-save register; `r6..r11` are callee-save.
pub const FIRST_CALLEE_SAVE: u8 = 6;

/// The register that carries return values.
pub const RET_REG: u8 = 0;

/// Binary ALU operations (same semantics as the IR's operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl AluOp {
    /// All operations, in opcode order.
    pub const ALL: [AluOp; 14] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Eq,
        AluOp::Ne,
        AluOp::Lt,
        AluOp::Le,
        AluOp::Gt,
        AluOp::Ge,
    ];

    /// Evaluates the operation.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Mod => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Eq => i64::from(a == b),
            AluOp::Ne => i64::from(a != b),
            AluOp::Lt => i64::from(a < b),
            AluOp::Le => i64::from(a <= b),
            AluOp::Gt => i64::from(a > b),
            AluOp::Ge => i64::from(a >= b),
        }
    }
}

/// Unary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnAluOp {
    Neg,
    Not,
}

impl UnAluOp {
    /// Evaluates the operation.
    #[must_use]
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnAluOp::Neg => a.wrapping_neg(),
            UnAluOp::Not => i64::from(a == 0),
        }
    }
}

/// One machine instruction.
///
/// Branch/jump targets are absolute byte addresses in the module's code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst := imm`.
    MovI { dst: u8, imm: i64 },
    /// `dst := src`.
    Mov { dst: u8, src: u8 },
    /// `dst := a op b`.
    Alu { op: AluOp, dst: u8, a: u8, b: u8 },
    /// `dst := a op imm` (common enough to deserve an immediate form).
    AluI { op: AluOp, dst: u8, a: u8, imm: i64 },
    /// `dst := op a`.
    UnAlu { op: UnAluOp, dst: u8, a: u8 },
    /// `dst := mem[rbase + off]`.
    Ld { dst: u8, base: u8, off: i32 },
    /// `mem[rbase + off] := src`.
    St { base: u8, off: i32, src: u8 },
    /// `mem[rbase + off] := src` with a generational write barrier: if the
    /// target slot is tenured and the stored value points into the
    /// nursery, the slot address is recorded in the remembered set.
    /// Codegen emits this for pointer stores into heap objects; on a
    /// semispace heap it behaves exactly like `St`.
    StB { base: u8, off: i32, src: u8 },
    /// `dst := mem[breg + off]` — frame-relative load.
    LdF { dst: u8, breg: BaseReg, off: i32 },
    /// `mem[breg + off] := src` — frame-relative store.
    StF { breg: BaseReg, off: i32, src: u8 },
    /// `dst := breg + off` — frame address.
    Lea { dst: u8, breg: BaseReg, off: i32 },
    /// `dst := globals[goff]`.
    LdG { dst: u8, goff: u32 },
    /// `globals[goff] := src`.
    StG { goff: u32, src: u8 },
    /// `dst := &globals[goff]`.
    LeaG { dst: u8, goff: u32 },
    /// `mem[SP] := src; SP += 1` — push an outgoing argument.
    Push { src: u8 },
    /// Call procedure `proc` with `nargs` already pushed.
    Call { proc: u16, nargs: u8 },
    /// Return to the caller (return value, if any, in `r0`).
    Ret,
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Branch if `cond != 0`.
    Brt { cond: u8, target: u32 },
    /// Branch if `cond == 0`.
    Brf { cond: u8, target: u32 },
    /// `dst := allocate(ty)` — a gc-point; pauses the machine when the
    /// heap is full.
    Alloc { dst: u8, ty: u16 },
    /// `dst := allocate(ty, rlen)` — open-array allocation.
    AllocA { dst: u8, ty: u16, len: u8 },
    /// Explicit gc-point (loop back edges, §5.3). No effect when no
    /// collection is pending.
    GcPoint,
    /// Non-allocating runtime service (print, fatal errors).
    Sys { code: u8, arg: u8 },
    /// Stop the machine.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_matches_reference_semantics() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Div.eval(9, 0), 0);
        assert_eq!(AluOp::Lt.eval(-1, 0), 1);
        assert_eq!(UnAluOp::Not.eval(0), 1);
        assert_eq!(UnAluOp::Neg.eval(-5), 5);
    }

    #[test]
    fn register_partition() {
        assert_eq!(NUM_REGS, 12);
        assert!((FIRST_CALLEE_SAVE as usize) < NUM_REGS);
    }
}
