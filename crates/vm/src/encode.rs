//! Binary instruction encoding.
//!
//! One opcode byte, then operands: registers are single bytes, offsets and
//! immediates are variable-length (the same sign-extended MSB-first
//! continuation-bit format the gc tables use, widened to 64 bits),
//! procedure/type ids are 2-byte LE, branch targets are fixed 4-byte LE so
//! the assembler can backpatch them. Instruction sizes therefore reflect a
//! realistic CISC-ish encoding — Table 1's "program size in bytes" uses
//! them.

use m3gc_core::layout::BaseReg;

use crate::isa::{AluOp, Instr, UnAluOp};

/// Opcode values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Op {
    MovI = 0,
    Mov,
    Alu,
    AluI,
    UnAlu,
    Ld,
    St,
    LdF,
    StF,
    Lea,
    LdG,
    StG,
    LeaG,
    Push,
    Call,
    Ret,
    Jmp,
    Brt,
    Brf,
    Alloc,
    AllocA,
    GcPoint,
    Sys,
    Halt,
    // Appended after Halt so every pre-barrier opcode value is unchanged.
    StB,
}

const OPS: [Op; 25] = [
    Op::MovI,
    Op::Mov,
    Op::Alu,
    Op::AluI,
    Op::UnAlu,
    Op::Ld,
    Op::St,
    Op::LdF,
    Op::StF,
    Op::Lea,
    Op::LdG,
    Op::StG,
    Op::LeaG,
    Op::Push,
    Op::Call,
    Op::Ret,
    Op::Jmp,
    Op::Brt,
    Op::Brf,
    Op::Alloc,
    Op::AllocA,
    Op::GcPoint,
    Op::Sys,
    Op::Halt,
    Op::StB,
];

pub(crate) fn op_from_byte(b: u8) -> Option<Op> {
    OPS.get(b as usize).copied()
}

/// Encodes a 64-bit value with 7-bit continuation bytes, sign-extended,
/// most significant first (the gc tables' Figure 3 format, widened).
pub fn vlq64(value: i64, out: &mut Vec<u8>) -> usize {
    let mut n = 1;
    while n < 10 {
        let bits = 7 * n as u32;
        let min = -(1i128 << (bits - 1));
        let max = (1i128 << (bits - 1)) - 1;
        if i128::from(value) >= min && i128::from(value) <= max {
            break;
        }
        n += 1;
    }
    for i in (0..n).rev() {
        let payload = ((value >> (7 * i)) & 0x7f) as u8;
        let flag = if i == 0 { 0 } else { 0x80 };
        out.push(flag | payload);
    }
    n
}

/// Decodes a [`vlq64`] value, returning it and its byte length.
pub fn unvlq64(bytes: &[u8], pos: usize) -> Option<(i64, usize)> {
    let first = *bytes.get(pos)?;
    let mut value = i64::from(((first & 0x7f) as i8) << 1 >> 1);
    let mut len = 1;
    let mut cont = first & 0x80 != 0;
    while cont {
        if len >= 10 {
            return None;
        }
        let b = *bytes.get(pos + len)?;
        value = (value << 7) | i64::from(b & 0x7f);
        cont = b & 0x80 != 0;
        len += 1;
    }
    Some((value, len))
}

fn breg_byte(b: BaseReg) -> u8 {
    b.code() as u8
}

pub(crate) fn breg_from_byte(b: u8) -> Option<BaseReg> {
    BaseReg::from_code(i32::from(b))
}

fn alu_byte(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|&o| o == op).expect("listed") as u8
}

pub(crate) fn alu_from_byte(b: u8) -> Option<AluOp> {
    AluOp::ALL.get(b as usize).copied()
}

/// Encodes one instruction onto `out`, returning its size in bytes.
pub fn encode_instr(ins: &Instr, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    match ins {
        Instr::MovI { dst, imm } => {
            out.push(Op::MovI as u8);
            out.push(*dst);
            vlq64(*imm, out);
        }
        Instr::Mov { dst, src } => {
            out.push(Op::Mov as u8);
            out.push(*dst);
            out.push(*src);
        }
        Instr::Alu { op, dst, a, b } => {
            out.push(Op::Alu as u8);
            out.push(alu_byte(*op));
            out.push(*dst);
            out.push(*a);
            out.push(*b);
        }
        Instr::AluI { op, dst, a, imm } => {
            out.push(Op::AluI as u8);
            out.push(alu_byte(*op));
            out.push(*dst);
            out.push(*a);
            vlq64(*imm, out);
        }
        Instr::UnAlu { op, dst, a } => {
            out.push(Op::UnAlu as u8);
            out.push(match op {
                UnAluOp::Neg => 0,
                UnAluOp::Not => 1,
            });
            out.push(*dst);
            out.push(*a);
        }
        Instr::Ld { dst, base, off } => {
            out.push(Op::Ld as u8);
            out.push(*dst);
            out.push(*base);
            vlq64(i64::from(*off), out);
        }
        Instr::St { base, off, src } => {
            out.push(Op::St as u8);
            out.push(*base);
            out.push(*src);
            vlq64(i64::from(*off), out);
        }
        Instr::StB { base, off, src } => {
            out.push(Op::StB as u8);
            out.push(*base);
            out.push(*src);
            vlq64(i64::from(*off), out);
        }
        Instr::LdF { dst, breg, off } => {
            out.push(Op::LdF as u8);
            out.push(*dst);
            out.push(breg_byte(*breg));
            vlq64(i64::from(*off), out);
        }
        Instr::StF { breg, off, src } => {
            out.push(Op::StF as u8);
            out.push(breg_byte(*breg));
            out.push(*src);
            vlq64(i64::from(*off), out);
        }
        Instr::Lea { dst, breg, off } => {
            out.push(Op::Lea as u8);
            out.push(*dst);
            out.push(breg_byte(*breg));
            vlq64(i64::from(*off), out);
        }
        Instr::LdG { dst, goff } => {
            out.push(Op::LdG as u8);
            out.push(*dst);
            vlq64(i64::from(*goff), out);
        }
        Instr::StG { goff, src } => {
            out.push(Op::StG as u8);
            out.push(*src);
            vlq64(i64::from(*goff), out);
        }
        Instr::LeaG { dst, goff } => {
            out.push(Op::LeaG as u8);
            out.push(*dst);
            vlq64(i64::from(*goff), out);
        }
        Instr::Push { src } => {
            out.push(Op::Push as u8);
            out.push(*src);
        }
        Instr::Call { proc, nargs } => {
            out.push(Op::Call as u8);
            out.extend_from_slice(&proc.to_le_bytes());
            out.push(*nargs);
        }
        Instr::Ret => out.push(Op::Ret as u8),
        Instr::Jmp { target } => {
            out.push(Op::Jmp as u8);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Instr::Brt { cond, target } => {
            out.push(Op::Brt as u8);
            out.push(*cond);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Instr::Brf { cond, target } => {
            out.push(Op::Brf as u8);
            out.push(*cond);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Instr::Alloc { dst, ty } => {
            out.push(Op::Alloc as u8);
            out.push(*dst);
            out.extend_from_slice(&ty.to_le_bytes());
        }
        Instr::AllocA { dst, ty, len } => {
            out.push(Op::AllocA as u8);
            out.push(*dst);
            out.extend_from_slice(&ty.to_le_bytes());
            out.push(*len);
        }
        Instr::GcPoint => out.push(Op::GcPoint as u8),
        Instr::Sys { code, arg } => {
            out.push(Op::Sys as u8);
            out.push(*code);
            out.push(*arg);
        }
        Instr::Halt => out.push(Op::Halt as u8),
    }
    out.len() - start
}

/// Returns the encoded size of an instruction without emitting it.
#[must_use]
pub fn instr_size(ins: &Instr) -> usize {
    let mut buf = Vec::with_capacity(16);
    encode_instr(ins, &mut buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_instr;

    #[test]
    fn vlq64_roundtrip() {
        for &v in &[0i64, 1, -1, 63, -64, 64, 8191, -8192, i64::from(i32::MAX), i64::MAX, i64::MIN]
        {
            let mut buf = Vec::new();
            let n = vlq64(v, &mut buf);
            let (back, m) = unvlq64(&buf, 0).unwrap();
            assert_eq!(back, v, "value {v}");
            assert_eq!(m, n);
        }
    }

    fn sample_instrs() -> Vec<Instr> {
        use m3gc_core::layout::BaseReg::*;
        vec![
            Instr::MovI { dst: 3, imm: -1234567 },
            Instr::Mov { dst: 0, src: 11 },
            Instr::Alu { op: AluOp::Add, dst: 1, a: 2, b: 3 },
            Instr::AluI { op: AluOp::Mul, dst: 1, a: 2, imm: 40 },
            Instr::UnAlu { op: UnAluOp::Not, dst: 4, a: 4 },
            Instr::Ld { dst: 5, base: 6, off: -3 },
            Instr::St { base: 6, off: 2, src: 7 },
            Instr::LdF { dst: 1, breg: Fp, off: 4 },
            Instr::StF { breg: Ap, off: 0, src: 2 },
            Instr::Lea { dst: 9, breg: Sp, off: -1 },
            Instr::LdG { dst: 2, goff: 7 },
            Instr::StG { goff: 300, src: 3 },
            Instr::LeaG { dst: 1, goff: 0 },
            Instr::Push { src: 4 },
            Instr::Call { proc: 513, nargs: 2 },
            Instr::Ret,
            Instr::Jmp { target: 0xdead },
            Instr::Brt { cond: 1, target: 77 },
            Instr::Brf { cond: 2, target: 0 },
            Instr::Alloc { dst: 0, ty: 9 },
            Instr::AllocA { dst: 1, ty: 2, len: 3 },
            Instr::GcPoint,
            Instr::Sys { code: 0, arg: 5 },
            Instr::Halt,
        ]
    }

    #[test]
    fn every_instruction_roundtrips() {
        for ins in sample_instrs() {
            let mut buf = Vec::new();
            let n = encode_instr(&ins, &mut buf);
            assert_eq!(n, buf.len());
            let (back, m) = decode_instr(&buf, 0).unwrap_or_else(|| panic!("decode {ins:?}"));
            assert_eq!(back, ins);
            assert_eq!(m, n, "{ins:?}");
        }
    }

    #[test]
    fn stream_of_instructions_roundtrips() {
        let instrs = sample_instrs();
        let mut buf = Vec::new();
        for i in &instrs {
            encode_instr(i, &mut buf);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        while pos < buf.len() {
            let (i, n) = decode_instr(&buf, pos).expect("valid stream");
            back.push(i);
            pos += n;
        }
        assert_eq!(back, instrs);
    }

    #[test]
    fn small_instructions_are_small() {
        assert_eq!(instr_size(&Instr::Ret), 1);
        assert_eq!(instr_size(&Instr::Mov { dst: 0, src: 1 }), 3);
        assert_eq!(instr_size(&Instr::MovI { dst: 0, imm: 5 }), 3);
        // Branches are fixed-size for backpatching.
        assert_eq!(instr_size(&Instr::Jmp { target: 0 }), 5);
        assert_eq!(instr_size(&Instr::Jmp { target: u32::MAX }), 5);
    }
}
