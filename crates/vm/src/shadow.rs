//! Shadow root tracking — the dynamic ground truth the gc-map precision
//! oracle confronts the static tables with.
//!
//! When enabled ([`crate::machine::Machine::enable_shadow`]), the machine
//! maintains, alongside every memory word and every register of every
//! thread, a [`Tag`] describing what the instrumented execution *knows*
//! the value to be:
//!
//! * [`Tag::Ptr`] — the word was produced by an allocation (or copied
//!   from one), i.e. it is the address of an object's header;
//! * [`Tag::Derived`] — the word was produced by pointer arithmetic
//!   involving at least one `Ptr`/`Derived` operand (interior pointers
//!   from `WITH`, strength-reduced induction pointers, virtual array
//!   origins);
//! * [`Tag::NonPtr`] — everything else.
//!
//! Propagation is purely local: moves and loads copy tags, stores write
//! them through, additive ALU operations involving exactly one
//! pointerish operand yield `Derived` (a pointer difference or a
//! comparison yields `NonPtr`), and allocation tags its result `Ptr`
//! while clearing the object's field tags. The collector relocates an
//! object's tags together with its words ([`Shadow::copy_words`]) so the
//! shadow stays truthful across space flips.
//!
//! Two properties make this an oracle for the compiler-emitted tables:
//!
//! 1. **Missed pointers trap.** Under a copying collector every live
//!    object moves at every collection, so a pointer the tables failed to
//!    describe keeps its stale from-space value. The machine checks every
//!    register-based memory access against the dead half(s) of the heap
//!    and raises [`crate::machine::VmTrap::StalePointer`] — turning the
//!    silent unsoundness into a deterministic trap at first use. A stale
//!    pointer that is *never* used again is exactly the liveness slack the
//!    paper permits, and passes.
//! 2. **Stale extras are visible.** At each collection the runtime's
//!    oracle compares every decoded table entry against these tags: a
//!    "tidy pointer" slot whose tag is `NonPtr`, or a derivation whose
//!    base is not a `Ptr`, is a table lying about the frame contents.

use crate::isa::NUM_REGS;

/// What the instrumented execution knows a word to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tag {
    /// Not known to involve a pointer.
    #[default]
    NonPtr,
    /// The address of an object header, as returned by an allocation.
    Ptr,
    /// A value computed by pointer arithmetic (interior pointer, virtual
    /// array origin, …).
    Derived,
}

impl Tag {
    /// True for `Ptr` and `Derived` — values that participate in pointer
    /// arithmetic.
    #[must_use]
    pub fn pointerish(self) -> bool {
        self != Tag::NonPtr
    }

    /// Byte encoding, for atomic shadow storage (`crate::par`).
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            Tag::NonPtr => 0,
            Tag::Ptr => 1,
            Tag::Derived => 2,
        }
    }

    /// Inverse of [`Tag::to_byte`]; unknown bytes decode as `NonPtr`.
    #[must_use]
    pub fn from_byte(b: u8) -> Tag {
        match b {
            1 => Tag::Ptr,
            2 => Tag::Derived,
            _ => Tag::NonPtr,
        }
    }
}

/// The shadow state: one tag per memory word, one tag per register per
/// thread.
#[derive(Debug, Clone)]
pub struct Shadow {
    /// Per-word tags, parallel to `Machine::mem`.
    pub mem: Vec<Tag>,
    /// Per-thread register tags, parallel to `Machine::threads`.
    pub regs: Vec<[Tag; NUM_REGS]>,
}

impl Shadow {
    /// Creates a shadow for a machine with `mem_words` words of memory.
    #[must_use]
    pub fn new(mem_words: usize) -> Shadow {
        Shadow { mem: vec![Tag::NonPtr; mem_words], regs: Vec::new() }
    }

    /// Reads a memory word's tag.
    #[must_use]
    pub fn mem_tag(&self, addr: i64) -> Tag {
        self.mem.get(addr as usize).copied().unwrap_or(Tag::NonPtr)
    }

    /// Writes a memory word's tag (out-of-range addresses are ignored —
    /// the real access traps first).
    pub fn set_mem(&mut self, addr: i64, tag: Tag) {
        if let Some(t) = self.mem.get_mut(addr as usize) {
            *t = tag;
        }
    }

    /// Clears `words` tags starting at `addr` (fresh allocation, zeroed
    /// frame).
    pub fn clear_range(&mut self, addr: i64, words: i64) {
        let lo = addr as usize;
        let hi = (addr + words) as usize;
        if hi <= self.mem.len() {
            self.mem[lo..hi].fill(Tag::NonPtr);
        }
    }

    /// Moves an object's tags along with its words (called by the
    /// collectors' forwarding routines).
    pub fn copy_words(&mut self, from: i64, to: i64, words: i64) {
        self.mem.copy_within(from as usize..(from + words) as usize, to as usize);
    }

    /// The tag combination rule for additive ALU operations: exactly one
    /// pointerish operand derives; anything else (including a pointer
    /// difference) is an ordinary integer.
    #[must_use]
    pub fn combine_additive(a: Tag, b: Tag) -> Tag {
        if a.pointerish() != b.pointerish() {
            Tag::Derived
        } else {
            Tag::NonPtr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_combination() {
        assert_eq!(Shadow::combine_additive(Tag::Ptr, Tag::NonPtr), Tag::Derived);
        assert_eq!(Shadow::combine_additive(Tag::NonPtr, Tag::Derived), Tag::Derived);
        assert_eq!(Shadow::combine_additive(Tag::Ptr, Tag::Ptr), Tag::NonPtr);
        assert_eq!(Shadow::combine_additive(Tag::NonPtr, Tag::NonPtr), Tag::NonPtr);
    }

    #[test]
    fn copy_moves_tags() {
        let mut s = Shadow::new(16);
        s.set_mem(2, Tag::Ptr);
        s.set_mem(3, Tag::Derived);
        s.copy_words(2, 10, 2);
        assert_eq!(s.mem_tag(10), Tag::Ptr);
        assert_eq!(s.mem_tag(11), Tag::Derived);
        s.clear_range(10, 2);
        assert_eq!(s.mem_tag(10), Tag::NonPtr);
    }
}
