//! Instruction decoding.

use crate::encode::{alu_from_byte, breg_from_byte, op_from_byte, unvlq64, Op};
use crate::isa::{Instr, UnAluOp};

/// Decodes the instruction at byte offset `pos`, returning it and its
/// encoded length. `None` on malformed input.
#[must_use]
pub fn decode_instr(code: &[u8], pos: usize) -> Option<(Instr, usize)> {
    let op = op_from_byte(*code.get(pos)?)?;
    let mut p = pos + 1;
    let byte = |p: &mut usize| -> Option<u8> {
        let b = *code.get(*p)?;
        *p += 1;
        Some(b)
    };
    let vlq = |p: &mut usize| -> Option<i64> {
        let (v, n) = unvlq64(code, *p)?;
        *p += n;
        Some(v)
    };
    let u16le = |p: &mut usize| -> Option<u16> {
        let v = u16::from_le_bytes([*code.get(*p)?, *code.get(*p + 1)?]);
        *p += 2;
        Some(v)
    };
    let u32le = |p: &mut usize| -> Option<u32> {
        let v = u32::from_le_bytes([
            *code.get(*p)?,
            *code.get(*p + 1)?,
            *code.get(*p + 2)?,
            *code.get(*p + 3)?,
        ]);
        *p += 4;
        Some(v)
    };
    let ins = match op {
        Op::MovI => {
            let dst = byte(&mut p)?;
            let imm = vlq(&mut p)?;
            Instr::MovI { dst, imm }
        }
        Op::Mov => Instr::Mov { dst: byte(&mut p)?, src: byte(&mut p)? },
        Op::Alu => {
            let op = alu_from_byte(byte(&mut p)?)?;
            Instr::Alu { op, dst: byte(&mut p)?, a: byte(&mut p)?, b: byte(&mut p)? }
        }
        Op::AluI => {
            let op = alu_from_byte(byte(&mut p)?)?;
            let dst = byte(&mut p)?;
            let a = byte(&mut p)?;
            let imm = vlq(&mut p)?;
            Instr::AluI { op, dst, a, imm }
        }
        Op::UnAlu => {
            let op = match byte(&mut p)? {
                0 => UnAluOp::Neg,
                1 => UnAluOp::Not,
                _ => return None,
            };
            Instr::UnAlu { op, dst: byte(&mut p)?, a: byte(&mut p)? }
        }
        Op::Ld => {
            let dst = byte(&mut p)?;
            let base = byte(&mut p)?;
            let off = vlq(&mut p)? as i32;
            Instr::Ld { dst, base, off }
        }
        Op::St => {
            let base = byte(&mut p)?;
            let src = byte(&mut p)?;
            let off = vlq(&mut p)? as i32;
            Instr::St { base, off, src }
        }
        Op::StB => {
            let base = byte(&mut p)?;
            let src = byte(&mut p)?;
            let off = vlq(&mut p)? as i32;
            Instr::StB { base, off, src }
        }
        Op::LdF => {
            let dst = byte(&mut p)?;
            let breg = breg_from_byte(byte(&mut p)?)?;
            let off = vlq(&mut p)? as i32;
            Instr::LdF { dst, breg, off }
        }
        Op::StF => {
            let breg = breg_from_byte(byte(&mut p)?)?;
            let src = byte(&mut p)?;
            let off = vlq(&mut p)? as i32;
            Instr::StF { breg, off, src }
        }
        Op::Lea => {
            let dst = byte(&mut p)?;
            let breg = breg_from_byte(byte(&mut p)?)?;
            let off = vlq(&mut p)? as i32;
            Instr::Lea { dst, breg, off }
        }
        Op::LdG => {
            let dst = byte(&mut p)?;
            let goff = vlq(&mut p)? as u32;
            Instr::LdG { dst, goff }
        }
        Op::StG => {
            let src = byte(&mut p)?;
            let goff = vlq(&mut p)? as u32;
            Instr::StG { goff, src }
        }
        Op::LeaG => {
            let dst = byte(&mut p)?;
            let goff = vlq(&mut p)? as u32;
            Instr::LeaG { dst, goff }
        }
        Op::Push => Instr::Push { src: byte(&mut p)? },
        Op::Call => {
            let proc = u16le(&mut p)?;
            let nargs = byte(&mut p)?;
            Instr::Call { proc, nargs }
        }
        Op::Ret => Instr::Ret,
        Op::Jmp => Instr::Jmp { target: u32le(&mut p)? },
        Op::Brt => {
            let cond = byte(&mut p)?;
            Instr::Brt { cond, target: u32le(&mut p)? }
        }
        Op::Brf => {
            let cond = byte(&mut p)?;
            Instr::Brf { cond, target: u32le(&mut p)? }
        }
        Op::Alloc => {
            let dst = byte(&mut p)?;
            let ty = u16le(&mut p)?;
            Instr::Alloc { dst, ty }
        }
        Op::AllocA => {
            let dst = byte(&mut p)?;
            let ty = u16le(&mut p)?;
            let len = byte(&mut p)?;
            Instr::AllocA { dst, ty, len }
        }
        Op::GcPoint => Instr::GcPoint,
        Op::Sys => Instr::Sys { code: byte(&mut p)?, arg: byte(&mut p)? },
        Op::Halt => Instr::Halt,
    };
    Some((ins, p - pos))
}

/// Pre-decoded program: instruction plus next pc, indexed by a dense map
/// from byte pc.
#[derive(Debug, Clone)]
pub struct DecodedCode {
    /// Decoded instructions, in code order.
    pub instrs: Vec<(Instr, u32)>,
    /// `pc_index[pc]` = index into `instrs`, or `u32::MAX` mid-instruction.
    pub pc_index: Vec<u32>,
}

impl DecodedCode {
    /// Decodes a whole code stream.
    ///
    /// # Panics
    ///
    /// Panics on malformed code (the assembler produced it, so this is a
    /// bug).
    #[must_use]
    pub fn new(code: &[u8]) -> DecodedCode {
        let mut instrs = Vec::new();
        let mut pc_index = vec![u32::MAX; code.len() + 1];
        let mut pos = 0;
        while pos < code.len() {
            let (ins, n) = decode_instr(code, pos).unwrap_or_else(|| {
                panic!("malformed instruction at pc {pos}");
            });
            pc_index[pos] = instrs.len() as u32;
            instrs.push((ins, (pos + n) as u32));
            pos += n;
        }
        DecodedCode { instrs, pc_index }
    }

    /// The instruction at byte pc, with its successor pc.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not an instruction boundary.
    #[must_use]
    pub fn at(&self, pc: u32) -> &(Instr, u32) {
        let idx = self.pc_index[pc as usize];
        assert_ne!(idx, u32::MAX, "pc {pc} is mid-instruction");
        &self.instrs[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_instr;

    #[test]
    fn decoded_code_indexes_boundaries() {
        let mut code = Vec::new();
        encode_instr(&Instr::MovI { dst: 0, imm: 7 }, &mut code);
        let second_pc = code.len() as u32;
        encode_instr(&Instr::Halt, &mut code);
        let d = DecodedCode::new(&code);
        assert_eq!(d.instrs.len(), 2);
        assert_eq!(d.at(0).0, Instr::MovI { dst: 0, imm: 7 });
        assert_eq!(d.at(0).1, second_pc);
        assert_eq!(d.at(second_pc).0, Instr::Halt);
    }

    #[test]
    #[should_panic(expected = "mid-instruction")]
    fn mid_instruction_pc_panics() {
        let mut code = Vec::new();
        encode_instr(&Instr::MovI { dst: 0, imm: 7 }, &mut code);
        let d = DecodedCode::new(&code);
        let _ = d.at(1);
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert!(decode_instr(&[0xff], 0).is_none());
        assert!(decode_instr(&[], 0).is_none());
    }
}
