//! A VAX-flavoured virtual register machine.
//!
//! The paper's measurements are tied to a concrete machine: Table 1
//! reports program sizes in bytes, ground-table entries encode `{FP, SP,
//! AP} + offset` (Figure 4), and the collector reconstructs register
//! contents "as of the time of the call" from callee save areas. This
//! crate provides that machine:
//!
//! * a word-addressed memory (`i64` words) holding globals, per-thread
//!   stacks and a two-semispace heap,
//! * twelve general-purpose registers (r6–r11 callee-save) plus `FP`
//!   (frame pointer), `SP` (stack pointer) and `AP` (argument pointer),
//! * a byte-encoded instruction stream with variable-length operands
//!   ([`encode`]), an assembler with labels ([`asm`]), a decoder and a
//!   disassembler,
//! * an interpreter ([`machine`]) whose `ALLOC` instruction *pauses* the
//!   machine when the heap is full — the collector (in `m3gc-runtime`)
//!   runs and the instruction is retried — and whose frame layout
//!   (`CALL` pushes return pc, saved FP, saved AP) is what the collector's
//!   stack walk decodes.

pub mod asm;
pub mod codemap;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod isa;
pub mod machine;
pub mod module;
pub mod par;
pub mod shadow;

pub use codemap::{CodeMap, CodeMapBuilder, ProcRange, JIT_RETPC_BIAS};
pub use isa::{AluOp, Instr, UnAluOp};
pub use machine::{Machine, MachineLayout, StepOutcome, Thread, ThreadStatus, VmTrap};
pub use module::{ProcMeta, VmModule};
pub use par::{
    CmsHeap, EvacFault, Mutator, ParLayout, ParMachine, ParStep, SatbFault, DEFAULT_TLAB_WORDS,
};
