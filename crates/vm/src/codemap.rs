//! Native-code address maps for the baseline JIT.
//!
//! The paper's central claim is that gc tables can describe *arbitrary
//! code addresses*; the JIT exercises that literally by keying gc-points
//! by **native return addresses**. A [`CodeMap`] records, per compiled
//! procedure, the native code range and two sorted tables:
//!
//! * *gc-points*: `(native offset, bytecode pc)` pairs for every call
//!   return site, safepoint poll and allocation in native code. A JIT
//!   frame's linkage word holds a *biased token*
//!   ([`JIT_RETPC_BIAS`]` + native offset`); the stack walker and the
//!   interpreter's `Ret` resolve it here and then consult the ordinary
//!   pc-delta tables — the collectors never see a native address.
//! * *entries*: `(bytecode pc, native offset)` for every instruction
//!   start, so the engine can re-enter native code at any interpreter
//!   pc (mixed interpreter/JIT stacks switch engines at call/return
//!   boundaries).
//!
//! Resolution is a **floor search** (greatest registered offset `<=`
//! the token's offset), mirroring how a return address inside a native
//! call sequence maps to the call's gc-point. The mutation test leans
//! on this: nudging one key off by one deterministically resolves the
//! true token to the *neighboring* gc-point instead of failing the
//! lookup, and the precision oracle or torture divergence must catch
//! the mis-walked frame.

/// Bias distinguishing JIT return tokens from bytecode pcs in frame
/// linkage words. Bytecode pcs fit in `u32`; anything `>= 1 << 32` in a
/// return-pc slot is `JIT_RETPC_BIAS + native_offset`. The sentinel
/// (`-1`) and plain pcs are unaffected.
pub const JIT_RETPC_BIAS: i64 = 1 << 32;

/// Native code range of one compiled procedure. Offsets are global
/// (into the engine's single executable region), so ranges of distinct
/// procedures never overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcRange {
    /// Procedure index in `VmModule::procs`.
    pub proc: usize,
    /// First native offset of the procedure's code (inclusive).
    pub start: u32,
    /// One past the last native offset (exclusive).
    pub end: u32,
}

/// Sorted code-range → gc-point / re-entry tables for JIT-compiled
/// code. Built once per engine, then shared (`Arc`) by the machine,
/// the stack walker and the engine itself.
#[derive(Debug, Clone, Default)]
pub struct CodeMap {
    ranges: Vec<ProcRange>,
    /// `(native offset, bytecode pc)`, sorted by offset.
    gc_points: Vec<(u32, u32)>,
    /// `(bytecode pc, native offset)`, sorted by pc. Bytecode pcs are
    /// globally unique (procedures occupy disjoint slices of the one
    /// code array), so one flat table serves every procedure.
    entries: Vec<(u32, u32)>,
}

impl CodeMap {
    /// Starts building a map.
    #[must_use]
    pub fn builder() -> CodeMapBuilder {
        CodeMapBuilder { map: CodeMap::default() }
    }

    /// Resolves a biased return token to its gc-point's bytecode pc:
    /// floor search over the registered native offsets. `None` when the
    /// token is not biased, underflows the first registered point, or
    /// no code was compiled.
    #[must_use]
    pub fn resolve_ret(&self, token: i64) -> Option<u32> {
        let off = token.checked_sub(JIT_RETPC_BIAS)?;
        let off = u32::try_from(off).ok()?;
        let i = self.gc_points.partition_point(|&(o, _)| o <= off);
        if i == 0 {
            return None;
        }
        Some(self.gc_points[i - 1].1)
    }

    /// The native offset at which execution of bytecode pc `pc` may
    /// (re-)enter native code, if `pc` belongs to a compiled procedure.
    #[must_use]
    pub fn entry_native_off(&self, pc: u32) -> Option<u32> {
        let i = self.entries.binary_search_by_key(&pc, |&(p, _)| p).ok()?;
        Some(self.entries[i].1)
    }

    /// The compiled procedure whose code range contains native offset
    /// `off`, if any (a pc between procedures resolves to `None`).
    #[must_use]
    pub fn proc_at_native(&self, off: u32) -> Option<ProcRange> {
        let i = self.ranges.partition_point(|r| r.start <= off);
        if i == 0 {
            return None;
        }
        let r = self.ranges[i - 1];
        (off < r.end).then_some(r)
    }

    /// The code range compiled for procedure `proc`, if any.
    #[must_use]
    pub fn range_of_proc(&self, proc: usize) -> Option<ProcRange> {
        self.ranges.iter().copied().find(|r| r.proc == proc)
    }

    /// All registered gc-points, sorted by native offset.
    #[must_use]
    pub fn gc_points(&self) -> &[(u32, u32)] {
        &self.gc_points
    }

    /// Number of compiled procedures.
    #[must_use]
    pub fn proc_count(&self) -> usize {
        self.ranges.len()
    }

    /// True when nothing was compiled (interpreter-only run).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Test hook: nudges the native-offset *key* of gc-point `idx` by
    /// `delta` bytes, simulating a mis-registered return address. With
    /// `delta == 1` a token minted for the true offset floor-resolves
    /// to the *previous* gc-point — the neighboring-point corruption
    /// the mutation test must catch. Returns the (old, new) key.
    ///
    /// # Panics
    ///
    /// Panics if the nudged key would reorder the table (keys are
    /// several bytes apart in real code, so ±1 never reorders).
    #[doc(hidden)]
    pub fn corrupt_gc_point_key(&mut self, idx: usize, delta: i32) -> (u32, u32) {
        let old = self.gc_points[idx].0;
        let new = old.checked_add_signed(delta).expect("corrupted key overflows");
        self.gc_points[idx].0 = new;
        assert!(
            self.gc_points.windows(2).all(|w| w[0].0 < w[1].0),
            "corruption reordered the gc-point table — pick a smaller delta"
        );
        (old, new)
    }
}

/// Incremental [`CodeMap`] construction, one procedure at a time in
/// ascending native-offset order (the engine compiles procedures
/// back-to-back into one region).
#[derive(Debug)]
pub struct CodeMapBuilder {
    map: CodeMap,
}

impl CodeMapBuilder {
    /// Registers the code range of `proc` as `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or overlaps the previous one.
    pub fn add_proc(&mut self, proc: usize, start: u32, end: u32) {
        assert!(start < end, "empty native range for proc {proc}");
        if let Some(prev) = self.map.ranges.last() {
            assert!(prev.end <= start, "native ranges out of order");
        }
        self.map.ranges.push(ProcRange { proc, start, end });
    }

    /// Registers a gc-point at global native offset `off` standing for
    /// bytecode pc `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `off` is not strictly greater than the previous key.
    pub fn add_gc_point(&mut self, off: u32, pc: u32) {
        if let Some(&(prev, _)) = self.map.gc_points.last() {
            assert!(prev < off, "gc-point keys out of order: {prev} then {off}");
        }
        self.map.gc_points.push((off, pc));
    }

    /// Registers bytecode pc `pc` as re-enterable at native offset
    /// `off`.
    pub fn add_entry(&mut self, pc: u32, off: u32) {
        self.map.entries.push((pc, off));
    }

    /// Finishes the map, sorting the entry table.
    #[must_use]
    pub fn finish(mut self) -> CodeMap {
        self.map.entries.sort_unstable();
        self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodeMap {
        let mut b = CodeMap::builder();
        b.add_proc(0, 0, 100);
        b.add_gc_point(10, 4);
        b.add_gc_point(40, 12);
        b.add_entry(0, 0);
        b.add_entry(4, 10);
        b.add_entry(12, 40);
        b.add_proc(1, 100, 150);
        b.add_gc_point(120, 30);
        b.add_entry(28, 100);
        b.add_entry(30, 120);
        b.finish()
    }

    #[test]
    fn resolves_exact_and_floor() {
        let m = sample();
        assert_eq!(m.resolve_ret(JIT_RETPC_BIAS + 10), Some(4));
        assert_eq!(m.resolve_ret(JIT_RETPC_BIAS + 41), Some(12), "floor");
        assert_eq!(m.resolve_ret(JIT_RETPC_BIAS + 5), None, "below first key");
        assert_eq!(m.resolve_ret(17), None, "unbiased pc is not a token");
        assert_eq!(m.resolve_ret(-1), None, "sentinel is not a token");
    }

    #[test]
    fn range_boundaries() {
        let m = sample();
        assert_eq!(m.proc_at_native(0).unwrap().proc, 0, "first byte");
        assert_eq!(m.proc_at_native(99).unwrap().proc, 0, "last byte");
        assert_eq!(m.proc_at_native(100).unwrap().proc, 1, "next proc's first byte");
        assert_eq!(m.proc_at_native(149).unwrap().proc, 1);
        assert_eq!(m.proc_at_native(150), None, "past the last range");
        assert_eq!(m.entry_native_off(12), Some(40));
        assert_eq!(m.entry_native_off(13), None);
    }

    #[test]
    fn corruption_resolves_to_neighbor() {
        let mut m = sample();
        m.corrupt_gc_point_key(1, 1); // key 40 -> 41
        assert_eq!(
            m.resolve_ret(JIT_RETPC_BIAS + 40),
            Some(4),
            "true token now floor-resolves to the neighboring gc-point"
        );
    }
}
