//! A small assembler: emit instructions with forward-referenced labels,
//! then resolve.

use crate::encode::encode_instr;
use crate::isa::Instr;

/// A branch target handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(u32);

/// The assembler.
#[derive(Debug, Default)]
pub struct Assembler {
    code: Vec<u8>,
    labels: Vec<Option<u32>>,
    /// (byte offset of a 4-byte LE target field, label).
    fixups: Vec<(usize, Label)>,
}

impl Assembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Current pc (byte offset of the next instruction).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Binds `label` to the current pc.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let pc = self.here();
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(pc);
    }

    /// Emits an instruction, returning its pc.
    pub fn emit(&mut self, ins: &Instr) -> u32 {
        let pc = self.here();
        encode_instr(ins, &mut self.code);
        pc
    }

    /// Emits `Jmp` to a label.
    pub fn jmp(&mut self, label: Label) -> u32 {
        let pc = self.emit(&Instr::Jmp { target: 0 });
        self.fixups.push((self.code.len() - 4, label));
        pc
    }

    /// Emits `Brt cond, label`.
    pub fn brt(&mut self, cond: u8, label: Label) -> u32 {
        let pc = self.emit(&Instr::Brt { cond, target: 0 });
        self.fixups.push((self.code.len() - 4, label));
        pc
    }

    /// Emits `Brf cond, label`.
    pub fn brf(&mut self, cond: u8, label: Label) -> u32 {
        let pc = self.emit(&Instr::Brf { cond, target: 0 });
        self.fixups.push((self.code.len() - 4, label));
        pc
    }

    /// Resolves all fixups and returns the code.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        for (off, label) in self.fixups {
            let target =
                self.labels[label.0 as usize].unwrap_or_else(|| panic!("unbound label {label:?}"));
            self.code[off..off + 4].copy_from_slice(&target.to_le_bytes());
        }
        self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecodedCode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        let top = a.new_label();
        let end = a.new_label();
        a.bind(top);
        a.emit(&Instr::MovI { dst: 0, imm: 1 });
        a.brt(0, end); // forward
        a.jmp(top); // backward
        a.bind(end);
        a.emit(&Instr::Halt);
        let code = a.finish();
        let d = DecodedCode::new(&code);
        // Find the Brt and Jmp and check their targets.
        let brt = d.instrs.iter().find_map(|(i, _)| match i {
            Instr::Brt { target, .. } => Some(*target),
            _ => None,
        });
        let jmp = d.instrs.iter().find_map(|(i, _)| match i {
            Instr::Jmp { target } => Some(*target),
            _ => None,
        });
        let halt_pc = d.instrs.last().map(|_| code.len() as u32 - 1);
        assert_eq!(brt, halt_pc);
        assert_eq!(jmp, Some(0));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.jmp(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }
}
