//! Disassembler, for debugging and golden tests.

use crate::decode::decode_instr;
use crate::isa::Instr;
use crate::module::VmModule;

/// Formats one instruction.
#[must_use]
pub fn format_instr(ins: &Instr) -> String {
    match ins {
        Instr::MovI { dst, imm } => format!("movi  r{dst}, {imm}"),
        Instr::Mov { dst, src } => format!("mov   r{dst}, r{src}"),
        Instr::Alu { op, dst, a, b } => {
            format!("{:<5} r{dst}, r{a}, r{b}", format!("{op:?}").to_lowercase())
        }
        Instr::AluI { op, dst, a, imm } => {
            format!("{:<5} r{dst}, r{a}, {imm}", format!("{op:?}").to_lowercase())
        }
        Instr::UnAlu { op, dst, a } => {
            format!("{:<5} r{dst}, r{a}", format!("{op:?}").to_lowercase())
        }
        Instr::Ld { dst, base, off } => format!("ld    r{dst}, [r{base}{off:+}]"),
        Instr::St { base, off, src } => format!("st    [r{base}{off:+}], r{src}"),
        Instr::StB { base, off, src } => format!("stb   [r{base}{off:+}], r{src}"),
        Instr::LdF { dst, breg, off } => format!("ld    r{dst}, [{breg}{off:+}]"),
        Instr::StF { breg, off, src } => format!("st    [{breg}{off:+}], r{src}"),
        Instr::Lea { dst, breg, off } => format!("lea   r{dst}, {breg}{off:+}"),
        Instr::LdG { dst, goff } => format!("ldg   r{dst}, g[{goff}]"),
        Instr::StG { goff, src } => format!("stg   g[{goff}], r{src}"),
        Instr::LeaG { dst, goff } => format!("leag  r{dst}, g[{goff}]"),
        Instr::Push { src } => format!("push  r{src}"),
        Instr::Call { proc, nargs } => format!("call  p{proc}, {nargs}"),
        Instr::Ret => "ret".to_string(),
        Instr::Jmp { target } => format!("jmp   {target}"),
        Instr::Brt { cond, target } => format!("brt   r{cond}, {target}"),
        Instr::Brf { cond, target } => format!("brf   r{cond}, {target}"),
        Instr::Alloc { dst, ty } => format!("alloc r{dst}, ty{ty}"),
        Instr::AllocA { dst, ty, len } => format!("alloc r{dst}, ty{ty}[r{len}]"),
        Instr::GcPoint => "gcpoint".to_string(),
        Instr::Sys { code, arg } => format!("sys   {code}, r{arg}"),
        Instr::Halt => "halt".to_string(),
    }
}

/// Disassembles a whole module, with procedure headers and gc-point marks.
#[must_use]
pub fn disassemble(module: &VmModule) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let decoder = m3gc_core::decode::TableDecoder::build(&module.gc_maps).ok();
    let gc_pcs: std::collections::HashSet<u32> =
        decoder.as_ref().map(|d| d.gc_point_pcs().collect()).unwrap_or_default();
    let mut pos = 0usize;
    while pos < module.code.len() {
        if let Some((_, meta)) = module.proc_at(pos as u32) {
            if meta.entry_pc == pos as u32 {
                let _ = writeln!(
                    out,
                    "\n{}:  (frame {} words, {} args)",
                    meta.name, meta.frame_words, meta.n_args
                );
            }
        }
        let Some((ins, n)) = decode_instr(&module.code, pos) else {
            let _ = writeln!(out, "{pos:6}  ???");
            break;
        };
        let mark = if gc_pcs.contains(&(pos as u32)) { "*" } else { " " };
        let _ = writeln!(out, "{pos:6}{mark} {}", format_instr(&ins));
        pos += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::AluOp;

    #[test]
    fn formats_are_stable() {
        assert_eq!(format_instr(&Instr::MovI { dst: 1, imm: -3 }), "movi  r1, -3");
        assert_eq!(
            format_instr(&Instr::Alu { op: AluOp::Add, dst: 0, a: 1, b: 2 }),
            "add   r0, r1, r2"
        );
        assert_eq!(format_instr(&Instr::Ret), "ret");
        assert_eq!(
            format_instr(&Instr::LdF { dst: 2, breg: m3gc_core::layout::BaseReg::Ap, off: 1 }),
            "ld    r2, [AP+1]"
        );
    }
}
