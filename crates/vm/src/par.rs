//! The thread-safe interpreter core for parallel execution.
//!
//! [`crate::machine::Machine`] owns its memory and threads outright and
//! is driven by one OS thread; this module splits the machine state so
//! that each mutator runs on a real `std::thread`:
//!
//! * [`ParMachine`] is the *shared* world — module, decoded code, one
//!   flat array of `AtomicI64` memory words, the allocation frontier,
//!   and the collection-request flag. It is `Sync`; every mutator and
//!   every gc worker holds an `&ParMachine`.
//! * [`Mutator`] is the *private* per-thread state — registers, frame
//!   cursor, pc and output buffer — owned by the OS thread driving it.
//!
//! Ordinary interpreter loads and stores use `Relaxed` atomics: the
//! language has no cross-thread synchronisation primitives, so programs
//! cannot observe ordering between mutators, and the runtime's
//! stop-the-world handshake (mutex + condvar in `m3gc-runtime`)
//! provides the synchronises-with edges between mutation and
//! collection. Allocation is a CAS bump loop; collection forwarding
//! CASes a claim into object headers (see `m3gc_runtime::parallel`).
//!
//! Safepoints: the machine checks the shared request flag only at
//! gc-point pcs (allocation sites and the explicit loop back-edge polls
//! `codegen::gcpoints` inserts — §5.3's guarantee that a thread reaches
//! a describable state in bounded time). [`ParStep::AtSafepoint`] hands
//! control to the runtime, which parks the thread and deposits its
//! state for the gc workers.
//!
//! Only the semispace heap is supported. `StB` degenerates to a plain
//! store exactly as it does on a semispace [`Machine`] — unless the
//! machine runs under the concurrent-marking collector
//! ([`ParMachine::enable_cms`]), in which case `StB` becomes a
//! snapshot-at-the-beginning *deletion barrier* while a marking cycle
//! is live: it records the pointer value it overwrites into the
//! mutator's [`Mutator::satb_buf`] so concurrent tracing cannot lose an
//! object that was reachable at the snapshot.
//!
//! [`Machine`]: crate::machine::Machine

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use m3gc_core::decode::DecoderIndex;
use m3gc_core::heap::{HeapType, TypeId};
use m3gc_core::layout::BaseReg;

use crate::codemap::CodeMap;
use crate::decode::DecodedCode;
use crate::isa::{Instr, NUM_REGS};
use crate::machine::{resolve_retpc_via, GLOBAL_BASE, RETURN_SENTINEL};
use crate::module::VmModule;
use crate::shadow::{Shadow, Tag};

/// Relaxed load/store shorthand — see the module docs for why relaxed
/// ordering is sufficient for interpreter data.
const R: Ordering = Ordering::Relaxed;

/// Sizing and memory layout for a [`ParMachine`].
///
/// This is the low-level sizing struct; most callers build a
/// `m3gc_runtime::RuntimeOptions` and let the runtime derive the layout.
#[derive(Debug, Clone, Copy)]
pub struct ParLayout {
    /// Words per heap semispace.
    pub semi_words: usize,
    /// Words per mutator stack.
    pub stack_words: usize,
    /// Number of mutator slots (stack and region areas are pre-carved).
    pub mutators: usize,
    /// Words per thread-local allocation buffer. Each mutator claims a
    /// buffer of this size from the shared frontier with one CAS, then
    /// bump-allocates privately inside it. `0` disables TLABs: every
    /// allocation CASes the shared frontier directly (the contended
    /// baseline the `allocfast` bench measures against).
    pub tlab_words: usize,
    /// Words per per-request region. `0` (the default) disables regions.
    /// Nonzero puts the machine in allocation-service mode: each mutator
    /// slot owns a region, request-local allocation bumps privately
    /// inside it, and the interpreter watches every `St`/`StB`/`StG` for
    /// stores that leak a region pointer outside its region (see
    /// [`ParMachine::is_region_escaped`]). Regions are reclaimed in O(1)
    /// at request exit unless they escaped.
    pub region_words: usize,
}

/// Default TLAB size (~1 KiW, per the sizing discussion in DESIGN.md).
pub const DEFAULT_TLAB_WORDS: usize = 1024;

impl Default for ParLayout {
    fn default() -> Self {
        ParLayout {
            semi_words: 1 << 20,
            stack_words: 1 << 16,
            mutators: 1,
            tlab_words: DEFAULT_TLAB_WORDS,
            region_words: 0,
        }
    }
}

/// Injected SATB-barrier faults, for mutation testing the oracle's
/// ability to notice a broken deletion barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatbFault {
    /// The barrier works as designed (default).
    None,
    /// The old value is never enqueued — a classic lost-object bug.
    Drop,
    /// The store is performed *before* the old value is read, so the
    /// barrier enqueues the freshly written value instead of the one it
    /// overwrote — the exact ordering bug SATB exists to forbid.
    Reorder,
}

/// Injected concurrent-evacuation faults, for mutation testing that the
/// oracle notices a broken forwarding protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvacFault {
    /// The protocol works as designed (default).
    None,
    /// Pointer loads skip the self-healing forwarding check, so a
    /// mutator keeps reading a from-space original after its copy was
    /// published — the classic stale-read hazard.
    StaleRead,
    /// Stores skip the forwarding redirect and the post-store recheck,
    /// so a mutation lands in the from-space original after the copy
    /// was published and is silently lost — a torn forwarding publish.
    TornForward,
    /// The copier skips the header claim, so the same object is copied
    /// (and its forwarding word published) twice.
    DoubleCopy,
}

/// The header claim word used by concurrent copiers: a worker CASes
/// this into an object header before copying, then publishes the
/// forwarding word `-(new+1)` with release ordering. Mirrors
/// `m3gc_runtime::evac::BUSY`, re-declared here because mutators must
/// recognise an in-flight claim on their self-healing fast path.
pub const EVAC_BUSY: i64 = i64::MIN;

/// Default words per evacuation region (conc-evac cset granularity).
pub const DEFAULT_EVAC_REGION_WORDS: usize = 1 << 12;

/// Shared concurrent-marking state ([`ParMachine::enable_cms`]).
///
/// The snapshot-at-the-beginning invariant this state maintains: every
/// object reachable when the marking cycle's snapshot was taken is
/// marked by the time the cycle's final pause finishes. Roots are
/// captured *by value* at the snapshot handshake; every heap pointer
/// overwritten while `marking` is set is enqueued (old value first) by
/// the `StB` deletion barrier; and objects allocated during marking are
/// born black. Nothing moves until the final pause, so marking works on
/// stable addresses.
#[derive(Debug)]
pub struct CmsHeap {
    /// True from the snapshot handshake until the final pause completes.
    /// Mutators read it on every `StB` to decide whether the deletion
    /// barrier is live; acquire/release pairs with the handshake locks.
    pub marking: AtomicBool,
    /// Value of `free` at the snapshot: only objects below it existed at
    /// snapshot time, so only those can be SATB-protected old values.
    /// Allocations at or above it are born black instead.
    pub snap_free: AtomicI64,
    /// Occupancy trigger: once `free` crosses this while no cycle is
    /// running, the next allocation reports "needs gc" to start a
    /// snapshot handshake well before the space is exhausted.
    pub trigger_at: AtomicI64,
    /// Mark bitmap, one bit per memory word; bits are only ever set on
    /// object header addresses. Cleared by the snapshot leader, written
    /// by marking workers and born-black allocation.
    bits: Vec<AtomicU64>,
    /// Overflow sink for retired per-mutator SATB buffers; marking
    /// workers drain it between gray-stack batches.
    pub satb_sink: std::sync::Mutex<Vec<i64>>,
    /// Old values enqueued by the deletion barrier (stat).
    pub satb_enqueued: AtomicU64,
    /// SATB entries drained by marking/final-pause tracing (stat).
    pub satb_drained: AtomicU64,
    /// Injected barrier fault (mutation tests only).
    pub satb_fault: AtomicU8,
    /// Test knob: marking workers stand down, so every object that the
    /// barrier (not the tracing race) must save is provably saved by the
    /// barrier alone. Used by the deterministic lost-object reproducer.
    pub hold_marking: AtomicBool,

    /// Concurrent evacuation enabled (`--conc-evac`). Set once before
    /// the machine is shared.
    pub conc_evac: AtomicBool,
    /// Words per evacuation region (cset granularity).
    pub evac_region_words: AtomicI64,
    /// True while an evacuation set is being copied concurrently: from
    /// the select handshake until the final pause completes. Mutators
    /// read it (acquire) on heap loads and stores to decide whether the
    /// self-healing forwarding path is live.
    pub evacuating: AtomicBool,
    /// Value of `free` at the evacuation-select handshake: only objects
    /// below it are candidates for the cset; allocations at or above it
    /// are the "in-flight region" the final pause flushes.
    pub evac_snap: AtomicI64,
    /// To-space copy frontier for concurrent copiers (CAS bump). The
    /// final pause's residual copy continues from its final value.
    pub evac_to: AtomicI64,
    /// Per-region cset membership, indexed by `addr / evac_region_words`
    /// over the whole memory. Written by the select handshake (world
    /// stopped), read by mutator fast paths while `evacuating`.
    cset: Vec<AtomicBool>,
    /// Per-region pin flags: regions holding targets of ambiguous frame
    /// derivations, excluded from the cset for this cycle.
    pinned: Vec<AtomicBool>,
    /// Per-word dirty bits over to-space copies: set by redirected
    /// mutator stores and updater rewrites, so the final-pause audit can
    /// tell a legitimate post-publish divergence from a torn (lost)
    /// store, and so the pause can re-fix deferred words cheaply.
    dirty: Vec<AtomicU64>,
    /// Injected forwarding fault (mutation tests only).
    pub evac_fault: AtomicU8,
    /// Test knob: after publishing every cset copy the coordinator
    /// stands down instead of requesting the final pause, so mutators
    /// deterministically run against published forwarding words. The
    /// exit audit still runs, so faults are caught without the pause.
    pub hold_evac: AtomicBool,

    /// Objects copied concurrently this run (claims won; stat).
    pub evac_objects: AtomicU64,
    /// Words copied concurrently this run (stat).
    pub evac_words: AtomicU64,
    /// Regions evacuated concurrently this run (stat).
    pub evac_regions: AtomicU64,
    /// Regions pinned out of csets this run (stat).
    pub evac_pinned: AtomicU64,
    /// Stale references healed by the load fast path (stat).
    pub evac_healed_loads: AtomicU64,
    /// Stores redirected or replayed into a published copy (stat).
    pub evac_healed_stores: AtomicU64,
}

impl CmsHeap {
    fn new(words: usize) -> CmsHeap {
        CmsHeap {
            marking: AtomicBool::new(false),
            snap_free: AtomicI64::new(0),
            trigger_at: AtomicI64::new(i64::MAX),
            bits: (0..words.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            satb_sink: std::sync::Mutex::new(Vec::new()),
            satb_enqueued: AtomicU64::new(0),
            satb_drained: AtomicU64::new(0),
            satb_fault: AtomicU8::new(0),
            hold_marking: AtomicBool::new(false),
            conc_evac: AtomicBool::new(false),
            evac_region_words: AtomicI64::new(DEFAULT_EVAC_REGION_WORDS as i64),
            evacuating: AtomicBool::new(false),
            evac_snap: AtomicI64::new(0),
            evac_to: AtomicI64::new(0),
            cset: (0..words.div_ceil(DEFAULT_EVAC_REGION_WORDS))
                .map(|_| AtomicBool::new(false))
                .collect(),
            pinned: (0..words.div_ceil(DEFAULT_EVAC_REGION_WORDS))
                .map(|_| AtomicBool::new(false))
                .collect(),
            dirty: (0..words.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            evac_fault: AtomicU8::new(0),
            hold_evac: AtomicBool::new(false),
            evac_objects: AtomicU64::new(0),
            evac_words: AtomicU64::new(0),
            evac_regions: AtomicU64::new(0),
            evac_pinned: AtomicU64::new(0),
            evac_healed_loads: AtomicU64::new(0),
            evac_healed_stores: AtomicU64::new(0),
        }
    }

    /// Reconfigures the evacuation-region granularity (and resizes the
    /// cset/pin tables to match). Must run before the machine is shared.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn set_evac_region_words(&mut self, words: usize, mem_words: usize) {
        assert!(words > 0, "evacuation regions must be non-empty");
        self.evac_region_words.store(words as i64, R);
        let regions = mem_words.div_ceil(words);
        self.cset = (0..regions).map(|_| AtomicBool::new(false)).collect();
        self.pinned = (0..regions).map(|_| AtomicBool::new(false)).collect();
    }

    /// The evacuation-region index containing `addr`.
    #[must_use]
    pub fn evac_region_of(&self, addr: i64) -> usize {
        (addr / self.evac_region_words.load(R)) as usize
    }

    /// The number of evacuation regions covering memory.
    #[must_use]
    pub fn evac_region_count(&self) -> usize {
        self.cset.len()
    }

    /// True if `region` is in this cycle's evacuation set.
    #[must_use]
    pub fn in_cset(&self, region: usize) -> bool {
        self.cset.get(region).is_some_and(|r| r.load(R))
    }

    /// Adds `region` to the evacuation set (select handshake, world
    /// stopped).
    pub fn set_cset(&self, region: usize, on: bool) {
        if let Some(r) = self.cset.get(region) {
            r.store(on, R);
        }
    }

    /// True if `region` is pinned out of this cycle's evacuation set.
    #[must_use]
    pub fn is_pinned(&self, region: usize) -> bool {
        self.pinned.get(region).is_some_and(|r| r.load(R))
    }

    /// Pins `region` out of the evacuation set for this cycle. Returns
    /// `true` if this call set the flag.
    pub fn pin_region(&self, region: usize) -> bool {
        self.pinned.get(region).is_some_and(|r| !r.swap(true, R))
    }

    /// Clears cset membership and pins (cycle boundary, world stopped).
    pub fn clear_evac_sets(&self) {
        for r in &self.cset {
            r.store(false, R);
        }
        for r in &self.pinned {
            r.store(false, R);
        }
    }

    /// Marks the word at `addr` dirty: its post-publish value was
    /// legitimately changed (redirected store or updater rewrite), so
    /// the torn-store audit must not flag its divergence.
    pub fn set_dirty(&self, addr: i64) {
        let a = addr as usize;
        self.dirty[a / 64].fetch_or(1 << (a % 64), R);
    }

    /// True if the word at `addr` is dirty.
    #[must_use]
    pub fn is_dirty(&self, addr: i64) -> bool {
        let a = addr as usize;
        self.dirty[a / 64].load(R) & (1 << (a % 64)) != 0
    }

    /// Clears the whole dirty bitmap (cycle boundary, world stopped).
    pub fn clear_dirty(&self) {
        for w in &self.dirty {
            w.store(0, R);
        }
    }

    /// The injected barrier fault.
    #[must_use]
    pub fn fault(&self) -> SatbFault {
        match self.satb_fault.load(R) {
            1 => SatbFault::Drop,
            2 => SatbFault::Reorder,
            _ => SatbFault::None,
        }
    }

    /// Injects a barrier fault (mutation tests).
    pub fn set_fault(&self, f: SatbFault) {
        let b = match f {
            SatbFault::None => 0,
            SatbFault::Drop => 1,
            SatbFault::Reorder => 2,
        };
        self.satb_fault.store(b, R);
    }

    /// The injected forwarding fault.
    #[must_use]
    pub fn fault_evac(&self) -> EvacFault {
        match self.evac_fault.load(R) {
            1 => EvacFault::StaleRead,
            2 => EvacFault::TornForward,
            3 => EvacFault::DoubleCopy,
            _ => EvacFault::None,
        }
    }

    /// Injects a forwarding fault (mutation tests).
    pub fn set_evac_fault(&self, f: EvacFault) {
        let b = match f {
            EvacFault::None => 0,
            EvacFault::StaleRead => 1,
            EvacFault::TornForward => 2,
            EvacFault::DoubleCopy => 3,
        };
        self.evac_fault.store(b, R);
    }

    /// Atomically marks the word at `addr`, returning `true` if this
    /// call set the bit (the caller owns tracing the object).
    pub fn mark_if_unmarked(&self, addr: i64) -> bool {
        let a = addr as usize;
        let old = self.bits[a / 64].fetch_or(1 << (a % 64), R);
        old & (1 << (a % 64)) == 0
    }

    /// True if the word at `addr` is marked.
    #[must_use]
    pub fn is_marked(&self, addr: i64) -> bool {
        let a = addr as usize;
        self.bits[a / 64].load(R) & (1 << (a % 64)) != 0
    }

    /// Clears the whole bitmap (snapshot leader, world stopped).
    pub fn clear_marks(&self) {
        for w in &self.bits {
            w.store(0, R);
        }
    }

    /// Iterates the marked header addresses in `[start, end)` in
    /// address order, calling `f` on each. Used by the final pause's
    /// bitmap evacuation.
    pub fn for_each_marked(&self, start: i64, end: i64, mut f: impl FnMut(i64)) {
        let mut a = start;
        while a < end {
            let word = self.bits[a as usize / 64].load(R);
            let bit = a as usize % 64;
            if word >> bit == 0 {
                // No marked word left in this bitmap word: skip ahead.
                a = (a / 64 + 1) * 64;
                continue;
            }
            if word & (1 << bit) != 0 {
                f(a);
            }
            a += 1;
        }
    }
}

/// Atomic shadow tags, parallel to [`ParMachine::mem`] (the per-register
/// tags live in each [`Mutator`]). See [`crate::shadow`] for the tag
/// semantics; this is the same ground truth, stored so that mutators and
/// gc workers can update it concurrently.
#[derive(Debug)]
pub struct ParShadow {
    /// One tag byte per memory word.
    pub mem: Vec<AtomicU8>,
}

impl ParShadow {
    fn new(words: usize) -> ParShadow {
        ParShadow { mem: (0..words).map(|_| AtomicU8::new(0)).collect() }
    }

    /// Reads a memory word's tag.
    #[must_use]
    pub fn mem_tag(&self, addr: i64) -> Tag {
        self.mem.get(addr as usize).map_or(Tag::NonPtr, |t| Tag::from_byte(t.load(R)))
    }

    /// Writes a memory word's tag (out-of-range addresses are ignored —
    /// the real access traps first).
    pub fn set_mem(&self, addr: i64, tag: Tag) {
        if let Some(t) = self.mem.get(addr as usize) {
            t.store(tag.to_byte(), R);
        }
    }

    /// Clears `words` tags starting at `addr`.
    pub fn clear_range(&self, addr: i64, words: i64) {
        for a in addr..addr + words {
            self.set_mem(a, Tag::NonPtr);
        }
    }

    /// Moves an object's tags along with its words (called by the
    /// parallel collector's forwarding routine; the object is claimed,
    /// so no other worker touches these words).
    pub fn copy_words(&self, from: i64, to: i64, words: i64) {
        for w in 0..words {
            let tag = self.mem[(from + w) as usize].load(R);
            self.mem[(to + w) as usize].store(tag, R);
        }
    }
}

/// Result of executing one instruction of a mutator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParStep {
    /// Instruction completed.
    Normal,
    /// The heap is full: a collection is required before this `ALLOC`
    /// can proceed. No state changed; the pc still addresses the
    /// `ALLOC`.
    NeedGc,
    /// A collection request is pending and the pc is at a gc-point: the
    /// thread must park. No state changed.
    AtSafepoint,
    /// The thread returned from its bottom frame (or executed `HALT`).
    Finished,
    /// Abnormal termination.
    Trap(crate::machine::VmTrap),
}

use crate::machine::VmTrap;

/// Per-OS-thread mutator state. Everything a gc worker needs to scan
/// this thread's frame is either here (registers, cursor) or in the
/// shared memory (the stack region).
#[derive(Debug, Clone)]
pub struct Mutator {
    /// Thread id (stack-region index; also the output-ordering key).
    pub tid: usize,
    /// General-purpose registers.
    pub regs: [i64; NUM_REGS],
    /// Frame pointer.
    pub fp: i64,
    /// Stack pointer.
    pub sp: i64,
    /// Argument pointer.
    pub ap: i64,
    /// Program counter (byte offset in module code).
    pub pc: u32,
    /// First word of this thread's stack region.
    pub stack_base: i64,
    /// One past the last usable stack word.
    pub stack_limit: i64,
    /// This thread's program output (concatenated in tid order at exit).
    pub output: String,
    /// Instructions executed by this thread.
    pub steps: u64,
    /// Shadow tags for the registers (mirrors `Shadow::regs[tid]`).
    pub reg_tags: [Tag; NUM_REGS],
    /// Next free word of this thread's TLAB (`tlab_ptr == tlab_limit`
    /// means no buffer is held and the next allocation refills).
    pub tlab_ptr: i64,
    /// One past the last usable word of this thread's TLAB.
    pub tlab_limit: i64,
    /// Objects allocated since the last stat flush (see
    /// [`ParMachine::retire_tlab`]; global counters are only exact while
    /// this thread is parked or finished).
    pub pending_allocations: u64,
    /// Words allocated since the last stat flush.
    pub pending_alloc_words: u64,
    /// TLAB fast-path (no CAS) allocations since the last stat flush.
    pub pending_tlab_allocs: u64,
    /// Region bump-path allocations since the last stat flush
    /// (allocation-service mode only).
    pub pending_region_allocs: u64,
    /// Words allocated on the region bump path since the last stat flush.
    pub pending_region_words: u64,
    /// SATB deletion-barrier buffer: old pointer values overwritten
    /// while concurrent marking runs, awaiting a flush to the shared
    /// sink. Private to this thread between flushes.
    pub satb_buf: Vec<i64>,
}

/// Flush threshold for a mutator's private SATB buffer.
const SATB_FLUSH: usize = 64;

/// The shared half of a parallel machine. See the module docs.
pub struct ParMachine {
    /// The loaded module.
    pub module: VmModule,
    decoded: DecodedCode,
    /// Flat memory: reserved | globals | stacks | regions | semi A | semi B
    /// (the region area is empty unless `layout.region_words > 0`).
    pub mem: Vec<AtomicI64>,
    layout: ParLayout,
    stacks_base: usize,
    regions_base: usize,
    heap_base: usize,
    module_token: u64,
    is_gc_point: Vec<bool>,
    is_poll: Vec<bool>,

    /// True when semispace A (lower) is the from-space. Written only by
    /// the collection leader while every mutator is parked.
    from_is_lower: AtomicBool,
    /// Next free word in the from-space (CAS bump frontier).
    pub free: AtomicI64,
    /// One past the last usable allocation word.
    pub alloc_limit: AtomicI64,
    /// Set by the thread that wins the collection request; polled by
    /// every mutator at gc-points.
    pub gc_request: AtomicBool,

    /// Objects allocated (all mutators).
    pub allocations: AtomicU64,
    /// Words allocated (all mutators).
    pub words_allocated: AtomicU64,
    /// TLAB refills (one shared-frontier CAS each).
    pub tlab_refills: AtomicU64,
    /// Allocations served by the TLAB fast path (no shared CAS).
    pub tlab_allocs: AtomicU64,
    /// Words discarded from partial TLABs at retirement. Together with
    /// `words_allocated` these account for every word the frontier has
    /// moved past: while all mutators are parked,
    /// `free - from_start == live-prefix words + allocated + waste`.
    pub tlab_waste_words: AtomicU64,
    /// Collections completed.
    pub collections: AtomicU64,
    /// Torture hook: allocations report "needs gc" once `allocations`
    /// reaches this count (`u64::MAX` = disabled, the default).
    pub force_gc_at: AtomicU64,

    /// Region bump-path allocations (allocation-service mode).
    pub region_allocs: AtomicU64,
    /// Words allocated on the region bump path.
    pub region_alloc_words: AtomicU64,
    /// Regions marked escaped (first escaping store per region).
    pub region_escapes: AtomicU64,
    /// Per-slot region bump pointers. Single writer — the owning
    /// mutator — while running; the collection leader reads them with
    /// the world stopped (the handshake provides the ordering).
    region_ptrs: Vec<AtomicI64>,
    /// Per-slot "a request currently owns this region" flags.
    region_live: Vec<AtomicBool>,
    /// Per-slot "a pointer into this region was stored outside it"
    /// flags. Sticky until the region is reset.
    region_escaped: Vec<AtomicBool>,

    /// Shadow tags, when instrumented ([`ParMachine::enable_shadow`]).
    pub shadow: Option<ParShadow>,
    /// Concurrent-marking state, when the machine runs under the `cms`
    /// collector ([`ParMachine::enable_cms`]).
    pub cms: Option<CmsHeap>,
    /// Native-code address map installed by the JIT engine (see
    /// [`crate::codemap`]): resolves biased native return tokens in
    /// frame linkage words back to bytecode gc-point pcs.
    code_map: Option<Arc<CodeMap>>,
}

impl ParMachine {
    /// Loads a module.
    ///
    /// # Panics
    ///
    /// Panics if the module's code or gc maps are malformed (they come
    /// from the compiler, so this is a bug).
    #[must_use]
    pub fn new(module: VmModule, layout: impl Into<ParLayout>) -> ParMachine {
        let layout = layout.into();
        assert!(layout.mutators >= 1, "at least one mutator");
        let decoded = DecodedCode::new(&module.code);
        let stacks_base = GLOBAL_BASE + module.globals_words as usize;
        let regions_base = stacks_base + layout.stack_words * layout.mutators;
        let heap_base = regions_base + layout.region_words * layout.mutators;
        let total = heap_base + 2 * layout.semi_words;
        let mut is_gc_point = vec![false; module.code.len() + 1];
        let index = DecoderIndex::build(&module.gc_maps).expect("valid gc maps");
        for pc in index.gc_point_pcs() {
            is_gc_point[pc as usize] = true;
        }
        let mut is_poll = vec![false; module.code.len() + 1];
        for &pc in &module.poll_pcs {
            is_poll[pc as usize] = true;
        }
        let module_token = crate::machine::next_module_token();
        let region_ptrs = (0..layout.mutators)
            .map(|slot| AtomicI64::new((regions_base + slot * layout.region_words) as i64))
            .collect();
        ParMachine {
            module,
            decoded,
            mem: (0..total).map(|_| AtomicI64::new(0)).collect(),
            layout,
            stacks_base,
            regions_base,
            heap_base,
            module_token,
            is_gc_point,
            is_poll,
            from_is_lower: AtomicBool::new(true),
            free: AtomicI64::new(heap_base as i64),
            alloc_limit: AtomicI64::new((heap_base + layout.semi_words) as i64),
            gc_request: AtomicBool::new(false),
            allocations: AtomicU64::new(0),
            words_allocated: AtomicU64::new(0),
            tlab_refills: AtomicU64::new(0),
            tlab_allocs: AtomicU64::new(0),
            tlab_waste_words: AtomicU64::new(0),
            collections: AtomicU64::new(0),
            force_gc_at: AtomicU64::new(u64::MAX),
            region_allocs: AtomicU64::new(0),
            region_alloc_words: AtomicU64::new(0),
            region_escapes: AtomicU64::new(0),
            region_ptrs,
            region_live: (0..layout.mutators).map(|_| AtomicBool::new(false)).collect(),
            region_escaped: (0..layout.mutators).map(|_| AtomicBool::new(false)).collect(),
            shadow: None,
            cms: None,
            code_map: None,
        }
    }

    /// Turns on shadow root tracking. Must be called before the machine
    /// is shared (hence `&mut`).
    pub fn enable_shadow(&mut self) {
        self.shadow = Some(ParShadow::new(self.mem.len()));
    }

    /// Installs the JIT engine's native-code address map. Must be called
    /// before the machine is shared (hence `&mut`).
    pub fn set_code_map(&mut self, map: Arc<CodeMap>) {
        self.code_map = Some(map);
    }

    /// The installed native-code address map, if a JIT is attached.
    #[must_use]
    pub fn code_map(&self) -> Option<&Arc<CodeMap>> {
        self.code_map.as_ref()
    }

    /// Resolves a frame linkage return word to a bytecode pc (see
    /// `Machine::resolve_retpc`).
    ///
    /// # Panics
    ///
    /// Panics on a biased token with no resolvable code-map entry.
    #[must_use]
    pub fn resolve_retpc(&self, retpc: i64) -> u32 {
        resolve_retpc_via(self.code_map.as_deref(), retpc)
    }

    /// Turns on concurrent-marking (SATB) support. Must be called before
    /// the machine is shared (hence `&mut`).
    ///
    /// # Panics
    ///
    /// Panics if allocation-service regions are enabled: region
    /// reclamation moves objects outside the collection handshake, which
    /// would invalidate snapshot marking.
    pub fn enable_cms(&mut self) {
        assert!(self.layout.region_words == 0, "cms is incompatible with regions");
        let cms = CmsHeap::new(self.mem.len());
        cms.trigger_at.store(self.heap_base as i64 + (3 * self.layout.semi_words as i64) / 4, R);
        self.cms = Some(cms);
    }

    /// Turns on incremental, mutator-concurrent evacuation for the cms
    /// collector (`--conc-evac`), with the given cset region
    /// granularity. Must be called after [`ParMachine::enable_cms`] and
    /// before the machine is shared.
    ///
    /// # Panics
    ///
    /// Panics if cms is not enabled.
    pub fn enable_conc_evac(&mut self, region_words: usize) {
        let words = self.mem.len();
        let cms = self.cms.as_mut().expect("conc-evac requires the cms collector");
        cms.conc_evac.store(true, R);
        cms.set_evac_region_words(region_words.max(1), words);
    }

    /// The number of mutator stack regions.
    #[must_use]
    pub fn mutators(&self) -> usize {
        self.layout.mutators
    }

    /// Words per semispace.
    #[must_use]
    pub fn semi_words(&self) -> usize {
        self.layout.semi_words
    }

    /// Words per per-request region (0 when allocation-service mode is
    /// off).
    #[must_use]
    pub fn region_words(&self) -> usize {
        self.layout.region_words
    }

    /// Total memory words.
    #[must_use]
    pub fn mem_words(&self) -> usize {
        self.mem.len()
    }

    /// Start of the global area.
    #[must_use]
    pub fn globals_start(&self) -> usize {
        GLOBAL_BASE
    }

    /// The module-lifetime token (see `Machine::module_token`).
    #[must_use]
    pub fn module_token(&self) -> u64 {
        self.module_token
    }

    /// The module's encoded gc-map byte stream.
    #[must_use]
    pub fn gc_map_bytes(&self) -> &[u8] {
        &self.module.gc_maps.bytes
    }

    /// True if `pc` is a gc-point.
    #[must_use]
    pub fn is_gc_point_pc(&self, pc: u32) -> bool {
        self.is_gc_point.get(pc as usize).copied().unwrap_or(false)
    }

    /// True if `pc` is an explicit poll site (a `GcPoint` instruction,
    /// as opposed to an allocation gc-point).
    #[must_use]
    pub fn is_poll_pc(&self, pc: u32) -> bool {
        self.is_poll.get(pc as usize).copied().unwrap_or(false)
    }

    /// The from-space (currently allocated-into) bounds `[start, end)`.
    #[must_use]
    pub fn from_space(&self) -> (i64, i64) {
        let start = if self.from_is_lower.load(R) {
            self.heap_base
        } else {
            self.heap_base + self.layout.semi_words
        };
        (start as i64, (start + self.layout.semi_words) as i64)
    }

    /// The to-space bounds `[start, end)`.
    #[must_use]
    pub fn to_space(&self) -> (i64, i64) {
        let start = if self.from_is_lower.load(R) {
            self.heap_base + self.layout.semi_words
        } else {
            self.heap_base
        };
        (start as i64, (start + self.layout.semi_words) as i64)
    }

    /// True if `addr` lies in dead space: the just-collected semispace,
    /// or a reclaimed (free) per-request region. A pointer into a free
    /// region is exactly an "escaping object reclaimed with its region"
    /// failure, so shadow mode turns any access through one into a
    /// [`VmTrap::StalePointer`].
    #[must_use]
    pub fn in_dead_space(&self, addr: i64) -> bool {
        let (s, e) = self.to_space();
        if (s..e).contains(&addr) {
            // During a concurrent evacuation phase the to-space prefix
            // below the copy frontier holds live, published copies that
            // mutators legitimately access through healed pointers.
            if let Some(cms) = &self.cms {
                if cms.evacuating.load(Ordering::Acquire) && addr < cms.evac_to.load(R) {
                    return false;
                }
            }
            return true;
        }
        match self.region_slot_of(addr) {
            Some(slot) => !self.region_live[slot].load(R) && !self.region_escaped[slot].load(R),
            None => false,
        }
    }

    /// Bounds `[start, end)` of `slot`'s per-request region.
    ///
    /// # Panics
    ///
    /// Panics if regions are disabled or `slot` is out of range.
    #[must_use]
    pub fn region_bounds(&self, slot: usize) -> (i64, i64) {
        assert!(self.layout.region_words > 0, "regions disabled");
        assert!(slot < self.layout.mutators, "region slot out of range");
        let start = self.regions_base + slot * self.layout.region_words;
        (start as i64, (start + self.layout.region_words) as i64)
    }

    /// The region slot whose area contains `addr`, if any.
    #[must_use]
    pub fn region_slot_of(&self, addr: i64) -> Option<usize> {
        if self.layout.region_words == 0 || addr < self.regions_base as i64 {
            return None;
        }
        let a = addr as usize;
        if a >= self.heap_base {
            return None;
        }
        Some((a - self.regions_base) / self.layout.region_words)
    }

    /// Words currently allocated in `slot`'s region.
    #[must_use]
    pub fn region_used(&self, slot: usize) -> i64 {
        self.region_ptrs[slot].load(R) - self.region_bounds(slot).0
    }

    /// One past the last allocated word of `slot`'s region (collector
    /// use: the linear-scan upper bound).
    #[must_use]
    pub fn region_top(&self, slot: usize) -> i64 {
        self.region_ptrs[slot].load(R)
    }

    /// True while a request owns `slot`'s region.
    #[must_use]
    pub fn is_region_live(&self, slot: usize) -> bool {
        self.region_live[slot].load(R)
    }

    /// True once a pointer into `slot`'s region has been stored outside
    /// it (sticky until the region resets).
    #[must_use]
    pub fn is_region_escaped(&self, slot: usize) -> bool {
        self.region_escaped[slot].load(R)
    }

    /// True if `slot` holds a zombie region: its request exited but a
    /// pointer escaped, so the data must stay intact until the next
    /// stop-the-world collection evacuates the reachable objects.
    #[must_use]
    pub fn is_region_zombie(&self, slot: usize) -> bool {
        !self.region_live[slot].load(R) && self.region_escaped[slot].load(R)
    }

    /// Opens `slot`'s region for a new request.
    ///
    /// # Panics
    ///
    /// Panics if the slot still holds a zombie region (a collection must
    /// reset it first) or is already live.
    pub fn begin_region(&self, slot: usize) {
        assert!(!self.is_region_zombie(slot), "slot holds an uncollected zombie region");
        assert!(!self.region_live[slot].load(R), "region already live");
        self.region_ptrs[slot].store(self.region_bounds(slot).0, R);
        self.region_escaped[slot].store(false, R);
        self.region_live[slot].store(true, R);
    }

    /// Closes `slot`'s region at request exit. If no pointer escaped,
    /// the region is reclaimed in O(1) — bump pointer reset, slot
    /// immediately reusable — and `Some(words reclaimed)` is returned.
    /// If it escaped the region becomes a zombie and `None` is returned;
    /// [`ParMachine::reset_region`] reclaims it after the next
    /// collection rewrites every surviving reference.
    ///
    /// The owner can read its own escape flag without synchronisation:
    /// the *first* escaping store of a region is always executed by the
    /// owning mutator itself (any other thread can only obtain the
    /// pointer by loading it from shared memory, i.e. after such a
    /// store), and it happens-before the owner's exit in program order.
    pub fn end_region(&self, slot: usize) -> Option<i64> {
        self.region_live[slot].store(false, R);
        if self.region_escaped[slot].load(R) {
            return None;
        }
        Some(self.reset_region(slot))
    }

    /// Resets `slot`'s region to empty, zeroing the used prefix and its
    /// shadow tags, and clearing the escaped flag. Returns the words
    /// reclaimed. The live flag is *not* touched: `end_region` clears it
    /// before calling here, while a collector resetting an escaped
    /// still-live region (its objects were just evacuated to the shared
    /// heap) must leave the owner's region open for further allocation.
    /// Clearing `escaped` is sound in both cases because every surviving
    /// reference into the region has been rewritten by then.
    pub fn reset_region(&self, slot: usize) -> i64 {
        let (base, _) = self.region_bounds(slot);
        let used = self.region_ptrs[slot].load(R) - base;
        for w in base..base + used {
            self.mem[w as usize].store(0, R);
        }
        if let Some(sh) = &self.shadow {
            sh.clear_range(base, used);
        }
        self.region_ptrs[slot].store(base, R);
        self.region_escaped[slot].store(false, R);
        used
    }

    /// Unchecked word read (collector use; `addr` must be in range).
    #[must_use]
    pub fn word(&self, addr: i64) -> i64 {
        self.mem[addr as usize].load(R)
    }

    /// Unchecked word write (collector use; `addr` must be in range).
    pub fn set_word(&self, addr: i64, v: i64) {
        self.mem[addr as usize].store(v, R);
    }

    /// Acquire word read: pairs with [`ParMachine::set_word_release`] so
    /// a reader that observes a published forwarding word also observes
    /// the copied body it points to.
    #[must_use]
    pub fn word_acquire(&self, addr: i64) -> i64 {
        self.mem[addr as usize].load(Ordering::Acquire)
    }

    /// Release word write: publishes everything written before it (the
    /// concurrent copier's forwarding-word publish).
    pub fn set_word_release(&self, addr: i64, v: i64) {
        self.mem[addr as usize].store(v, Ordering::Release)
    }

    /// Sequentially consistent compare-and-swap on one memory word
    /// (concurrent copier claims, updater rewrites, load healing).
    /// Returns `Ok(old)` on success, `Err(actual)` otherwise.
    ///
    /// SeqCst on the claim CAS is load-bearing: paired with the SeqCst
    /// fence in the mutator's store path it forbids the store-buffer
    /// outcome where a copier misses a committed store *and* the mutator
    /// misses the claim — one side always sees the other.
    pub fn cas_word(&self, addr: i64, old: i64, new: i64) -> Result<i64, i64> {
        self.mem[addr as usize].compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Completes a collection: the spaces flip and allocation resumes at
    /// `new_free`. Must only be called by the collection leader while
    /// every mutator is parked (the runtime's handshake provides the
    /// ordering; these stores are not a synchronisation point).
    ///
    /// # Panics
    ///
    /// Panics if `new_free` lies outside the (new) from-space.
    pub fn finish_collection(&self, new_free: i64) {
        let (to_start, to_end) = self.to_space();
        assert!((to_start..=to_end).contains(&new_free), "alloc ptr outside new space");
        self.from_is_lower.store(!self.from_is_lower.load(R), R);
        self.free.store(new_free, R);
        self.alloc_limit.store(to_end, R);
        self.collections.fetch_add(1, R);
        if let Some(cms) = &self.cms {
            // Re-arm the occupancy trigger at 3/4 of the new space so
            // the next marking cycle starts with headroom for the
            // mutators to keep allocating while it traces.
            cms.trigger_at.store(to_start + (3 * self.layout.semi_words as i64) / 4, R);
        }
    }

    /// Spawns a mutator running procedure `proc` with the given argument
    /// words in stack region `tid`. The caller moves the returned
    /// [`Mutator`] onto its OS thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range or `proc` is invalid.
    #[must_use]
    pub fn spawn_mutator(&self, tid: usize, proc: u16, args: &[i64]) -> Mutator {
        assert!(tid < self.layout.mutators, "mutator id out of range");
        let meta = &self.module.procs[proc as usize];
        assert_eq!(meta.n_args as usize, args.len(), "argument count mismatch");
        let stack_base = (self.stacks_base + tid * self.layout.stack_words) as i64;
        let stack_limit = stack_base + self.layout.stack_words as i64;
        let mut sp = stack_base;
        for &a in args {
            self.mem[sp as usize].store(a, R);
            sp += 1;
        }
        self.mem[sp as usize].store(RETURN_SENTINEL, R);
        self.mem[sp as usize + 1].store(0, R);
        self.mem[sp as usize + 2].store(0, R);
        let fp = sp + 3;
        let frame_words = i64::from(meta.frame_words);
        for w in 0..frame_words {
            self.mem[(fp + w) as usize].store(0, R);
        }
        if let Some(sh) = &self.shadow {
            sh.clear_range(stack_base, fp + frame_words - stack_base);
        }
        Mutator {
            tid,
            regs: [0; NUM_REGS],
            fp,
            sp: fp + frame_words,
            ap: stack_base,
            pc: meta.entry_pc,
            stack_base,
            stack_limit,
            output: String::new(),
            steps: 0,
            reg_tags: [Tag::NonPtr; NUM_REGS],
            tlab_ptr: 0,
            tlab_limit: 0,
            pending_allocations: 0,
            pending_alloc_words: 0,
            pending_tlab_allocs: 0,
            pending_region_allocs: 0,
            pending_region_words: 0,
            satb_buf: Vec::new(),
        }
    }

    fn load(&self, addr: i64) -> Result<i64, VmTrap> {
        if !(GLOBAL_BASE as i64..self.mem.len() as i64).contains(&addr) {
            return Err(if addr >= 0 && addr < GLOBAL_BASE as i64 {
                VmTrap::NilError
            } else {
                VmTrap::WildAddress
            });
        }
        Ok(self.mem[addr as usize].load(R))
    }

    fn store(&self, addr: i64, value: i64) -> Result<(), VmTrap> {
        if !(GLOBAL_BASE as i64..self.mem.len() as i64).contains(&addr) {
            return Err(if addr >= 0 && addr < GLOBAL_BASE as i64 {
                VmTrap::NilError
            } else {
                VmTrap::WildAddress
            });
        }
        self.mem[addr as usize].store(value, R);
        Ok(())
    }

    fn base_value(mu: &Mutator, b: BaseReg) -> i64 {
        match b {
            BaseReg::Fp => mu.fp,
            BaseReg::Sp => mu.sp,
            BaseReg::Ap => mu.ap,
        }
    }

    /// Claims `words` from the shared frontier with a CAS bump loop.
    /// `None` means the space is exhausted and a collection is required.
    fn cas_claim(&self, words: i64) -> Option<i64> {
        let mut addr = self.free.load(R);
        loop {
            if addr + words > self.alloc_limit.load(R) {
                return None;
            }
            match self.free.compare_exchange_weak(addr, addr + words, R, R) {
                Ok(_) => return Some(addr),
                Err(cur) => addr = cur,
            }
        }
    }

    /// Flushes `mu`'s locally-buffered allocation counters into the
    /// shared totals. The shared counters are only exact at points where
    /// every mutator has flushed (park, retirement, thread exit) — which
    /// is exactly when the runtime reads them.
    pub fn flush_alloc_stats(&self, mu: &mut Mutator) {
        if mu.pending_allocations > 0 {
            self.allocations.fetch_add(mu.pending_allocations, R);
            self.words_allocated.fetch_add(mu.pending_alloc_words, R);
            mu.pending_allocations = 0;
            mu.pending_alloc_words = 0;
        }
        if mu.pending_tlab_allocs > 0 {
            self.tlab_allocs.fetch_add(mu.pending_tlab_allocs, R);
            mu.pending_tlab_allocs = 0;
        }
        if mu.pending_region_allocs > 0 {
            self.region_allocs.fetch_add(mu.pending_region_allocs, R);
            self.region_alloc_words.fetch_add(mu.pending_region_words, R);
            mu.pending_region_allocs = 0;
            mu.pending_region_words = 0;
        }
    }

    /// Retires `mu`'s TLAB (if any) and flushes its allocation stats.
    /// The unused tail is zeroed and accounted as waste so the shared
    /// frontier is exact again: gc workers and the collection leader see
    /// no words in limbo. Must be called before the mutator parks at a
    /// safepoint or exits; after a collection the old buffer would lie
    /// in dead space, so parking without retiring would be unsound.
    pub fn retire_tlab(&self, mu: &mut Mutator) {
        let waste = mu.tlab_limit - mu.tlab_ptr;
        if waste > 0 {
            for w in mu.tlab_ptr..mu.tlab_limit {
                self.mem[w as usize].store(0, R);
            }
            if let Some(sh) = &self.shadow {
                sh.clear_range(mu.tlab_ptr, waste);
            }
            self.tlab_waste_words.fetch_add(waste as u64, R);
        }
        mu.tlab_ptr = 0;
        mu.tlab_limit = 0;
        self.flush_alloc_stats(mu);
        self.flush_satb(mu);
    }

    /// Publishes `mu`'s private SATB buffer to the shared sink where
    /// marking workers drain it. Called when the buffer fills and,
    /// unconditionally, from [`ParMachine::retire_tlab`] — which runs on
    /// every park, lead and thread-exit path, so no entry is ever left
    /// behind when the final pause drains residual buffers.
    pub fn flush_satb(&self, mu: &mut Mutator) {
        if mu.satb_buf.is_empty() {
            return;
        }
        let Some(cms) = &self.cms else {
            mu.satb_buf.clear();
            return;
        };
        cms.satb_sink.lock().expect("satb sink poisoned").append(&mut mu.satb_buf);
    }

    /// The SATB deletion barrier behind `StB`: while marking, record the
    /// pointer value the store is about to overwrite, so the object it
    /// references cannot be lost even if every other path to it is cut.
    /// Old values outside the snapshot prefix (born black) or already
    /// marked need no protection.
    fn satb_record_old(&self, cms: &CmsHeap, mu: &mut Mutator, old: i64) {
        let (from_start, _) = self.from_space();
        if old == 0 || old < from_start || old >= cms.snap_free.load(R) || cms.is_marked(old) {
            return;
        }
        cms.satb_enqueued.fetch_add(1, R);
        mu.satb_buf.push(old);
        if mu.satb_buf.len() >= SATB_FLUSH {
            self.flush_satb(mu);
        }
    }

    /// Words of the object whose header word lives at `addr` (the
    /// header must be intact, i.e. a type id — use the to-space copy's
    /// header for forwarded originals).
    fn object_words_at(&self, addr: i64) -> i64 {
        let ty = self.mem[addr as usize].load(R);
        let desc = self.module.types.get(TypeId(ty as u32));
        let len = if matches!(desc, HeapType::Array { .. }) {
            self.mem[addr as usize + 1].load(R)
        } else {
            0
        };
        i64::from(desc.object_words(len as u32))
    }

    /// The header address of the cset object containing `addr`, if the
    /// access falls inside this cycle's evacuation candidates. Live
    /// object headers are exactly the marked bits (SATB guarantees
    /// every reachable pre-snapshot object is marked by the time
    /// evacuation starts), so the containing header is the nearest
    /// marked bit at or below `addr`.
    fn evac_header_of(&self, cms: &CmsHeap, addr: i64) -> Option<i64> {
        let (from_start, _) = self.from_space();
        if addr < from_start || addr >= cms.evac_snap.load(R) {
            return None;
        }
        let mut h = addr;
        while h >= from_start && !cms.is_marked(h) {
            h -= 1;
        }
        if h < from_start || !cms.in_cset(cms.evac_region_of(h)) {
            return None;
        }
        Some(h)
    }

    /// Resolves `addr` through the forwarding word of the claimed object
    /// headed at `h`: spins out an in-flight claim, then returns the
    /// equivalent to-space address once the copy is published. `None`
    /// while the object is still unclaimed (the original is current), or
    /// if `addr` turns out to lie past the object (a value that merely
    /// aliases the heap range).
    fn evac_forwarded_from(&self, h: i64, addr: i64) -> Option<i64> {
        let mut hval = self.mem[h as usize].load(Ordering::Acquire);
        while hval == EVAC_BUSY {
            std::thread::yield_now();
            hval = self.mem[h as usize].load(Ordering::Acquire);
        }
        if hval >= 0 {
            return None;
        }
        let new = -(hval + 1);
        if addr - h >= self.object_words_at(new) {
            return None;
        }
        Some(new + (addr - h))
    }

    /// The self-healing read's address resolution: one cset compare,
    /// then forwarding. Under the injected [`EvacFault::StaleRead`] the
    /// resolution is skipped, so loads keep hitting published originals.
    fn evac_resolve_load(&self, cms: &CmsHeap, addr: i64) -> i64 {
        if cms.fault_evac() == EvacFault::StaleRead {
            return addr;
        }
        match self.evac_header_of(cms, addr) {
            Some(h) => self.evac_forwarded_from(h, addr).unwrap_or(addr),
            None => addr,
        }
    }

    /// True if `addr` lies inside a from-space original whose copy has
    /// been published — an address no healthy access can land on, since
    /// resolution always redirects it. The shadow oracle traps such an
    /// access as stale.
    fn evac_is_published_original(&self, cms: &CmsHeap, addr: i64) -> bool {
        match self.evac_header_of(cms, addr) {
            Some(h) => self.mem[h as usize].load(Ordering::Acquire) < 0,
            None => false,
        }
    }

    /// Heals a pointer *value*: if `v` is the address of a cset object
    /// whose copy is published, the to-space address. Values that merely
    /// alias the heap range but are not marked headers are left alone.
    fn evac_heal_value(&self, cms: &CmsHeap, v: i64) -> Option<i64> {
        let (from_start, _) = self.from_space();
        if v < from_start || v >= cms.evac_snap.load(R) {
            return None;
        }
        if !cms.in_cset(cms.evac_region_of(v)) || !cms.is_marked(v) {
            return None;
        }
        let mut hval = self.mem[v as usize].load(Ordering::Acquire);
        while hval == EVAC_BUSY {
            std::thread::yield_now();
            hval = self.mem[v as usize].load(Ordering::Acquire);
        }
        if hval < 0 {
            Some(-(hval + 1))
        } else {
            None
        }
    }

    /// True if `v` is the address of a cset original whose evacuation
    /// is claimed or published. During a concurrent-evacuation pause,
    /// roots legally still hold such stale values — healing is lazy,
    /// and the pause's own fixup rewrites them right after the oracle
    /// check — so the oracle must not reject them.
    #[must_use]
    pub fn evac_root_forwarded(&self, v: i64) -> bool {
        let Some(cms) = self.cms.as_ref().filter(|c| c.evacuating.load(Ordering::Acquire)) else {
            return false;
        };
        let (from_start, _) = self.from_space();
        if v < from_start || v >= cms.evac_snap.load(R) {
            return false;
        }
        if !cms.in_cset(cms.evac_region_of(v)) || !cms.is_marked(v) {
            return false;
        }
        self.mem[v as usize].load(Ordering::Acquire) < 0
    }

    /// The `Ld` heap load with the conc-evac self-healing fast path:
    /// one compare on `evacuating` when no cycle is in flight. During a
    /// cycle the access address is resolved through forwarding, and a
    /// loaded value whose object already moved is rewritten in place
    /// (memory and register) as it is touched.
    fn heap_load(&self, mu: &mut Mutator, dst: u8, addr: i64) -> Result<(), VmTrap> {
        let Some(cms) = self.cms.as_ref().filter(|c| c.evacuating.load(Ordering::Acquire)) else {
            mu.regs[dst as usize] = self.load(addr)?;
            return Ok(());
        };
        // Same trap surface as the plain load, checked on the raw
        // address before any resolution.
        if !(GLOBAL_BASE as i64..self.mem.len() as i64).contains(&addr) {
            return Err(if addr >= 0 && addr < GLOBAL_BASE as i64 {
                VmTrap::NilError
            } else {
                VmTrap::WildAddress
            });
        }
        let mut a2 = self.evac_resolve_load(cms, addr);
        if self.shadow.is_some() && self.evac_is_published_original(cms, a2) {
            // A copier may have published between the resolution and
            // this check — a benign race the second resolution (ordered
            // after the publish by its Acquire header read) repairs.
            // Only a faulted-off resolution still lands on a published
            // original twice: a healthy load never does.
            a2 = self.evac_resolve_load(cms, addr);
            if self.evac_is_published_original(cms, a2) {
                return Err(VmTrap::StalePointer);
            }
        }
        let v = self.mem[a2 as usize].load(R);
        // Rewrite a stale loaded *value* in place — but only when the
        // word is provably a pointer. `Ld` loads integer fields too,
        // and an integer that numerically aliases a marked cset header
        // must not be "healed" into a to-space address; the shadow tag
        // is the ground truth. Untagged (non-shadow) runs skip the
        // in-place rewrite: resolution redirects every later use of
        // the stale value, and the final pause's type-directed rewrite
        // fixes it durably.
        let is_ptr = self.shadow.as_ref().is_some_and(|sh| sh.mem_tag(a2) == Tag::Ptr);
        let v = match self.evac_heal_value(cms, v).filter(|_| is_ptr) {
            Some(nv) => {
                // A racing store wins (its value was healed on its own
                // path).
                if self.mem[a2 as usize].compare_exchange(v, nv, R, R).is_ok() {
                    cms.set_dirty(a2);
                    cms.evac_healed_loads.fetch_add(1, R);
                }
                nv
            }
            None => v,
        };
        mu.regs[dst as usize] = v;
        if a2 != addr {
            if let Some(sh) = &self.shadow {
                mu.reg_tags[dst as usize] = sh.mem_tag(a2);
            }
        }
        Ok(())
    }

    /// The heap store with the conc-evac redirect and post-store
    /// recheck. If the target object's copy is already published the
    /// store lands in the copy; if it is unclaimed the store hits the
    /// original and the header is re-checked afterwards — a copier may
    /// have claimed the object between the check and the store, so the
    /// value is replayed into the published copy rather than lost.
    /// Under [`EvacFault::TornForward`] both the redirect and the
    /// recheck are skipped, modelling exactly that lost store.
    fn heap_store(&self, addr: i64, value: i64) -> Result<(), VmTrap> {
        let Some(cms) = self.cms.as_ref().filter(|c| c.evacuating.load(Ordering::Acquire)) else {
            return self.store(addr, value);
        };
        if !(GLOBAL_BASE as i64..self.mem.len() as i64).contains(&addr) {
            return Err(if addr >= 0 && addr < GLOBAL_BASE as i64 {
                VmTrap::NilError
            } else {
                VmTrap::WildAddress
            });
        }
        if cms.fault_evac() == EvacFault::TornForward {
            self.mem[addr as usize].store(value, R);
            return Ok(());
        }
        let recheck = match self.evac_header_of(cms, addr) {
            None => None,
            Some(h) => match self.evac_forwarded_from(h, addr) {
                Some(a2) => {
                    self.mem[a2 as usize].store(value, R);
                    cms.set_dirty(a2);
                    cms.evac_healed_stores.fetch_add(1, R);
                    if let Some(sh) = &self.shadow {
                        sh.set_mem(a2, sh.mem_tag(addr));
                    }
                    return Ok(());
                }
                None => Some(h),
            },
        };
        // A store through an already-healed pointer lands directly in
        // to-space: the copy then legitimately diverges from its frozen
        // original, and the torn-store audit must not read that as a
        // lost store.
        let (to_start, _) = self.to_space();
        if addr >= to_start && addr < cms.evac_to.load(Ordering::Acquire) {
            cms.set_dirty(addr);
        }
        self.mem[addr as usize].store(value, R);
        // The fence pairs with the copier's SeqCst claim CAS (+ its own
        // fence before reading the body): without it the store and the
        // recheck below could reorder (the classic store-buffer outcome)
        // and a claim racing this store would be missed by both sides.
        std::sync::atomic::fence(Ordering::SeqCst);
        if let Some(h) = recheck {
            if let Some(a2) = self.evac_forwarded_from(h, addr) {
                // Claimed between the check and the store: the copy may
                // have missed this value, so replay it.
                self.mem[a2 as usize].store(value, R);
                cms.set_dirty(a2);
                cms.evac_healed_stores.fetch_add(1, R);
                if let Some(sh) = &self.shadow {
                    sh.set_mem(a2, sh.mem_tag(addr));
                }
            }
        }
        Ok(())
    }

    /// Allocation: TLAB bump fast path, one-CAS refill slow path,
    /// direct shared CAS for oversized objects; `Ok(None)` means "needs
    /// gc". Mirrors `Machine::try_alloc` minus the generational paths.
    pub fn try_alloc(&self, mu: &mut Mutator, ty: u16, len: i64) -> Result<Option<i64>, VmTrap> {
        if len < 0 {
            return Err(VmTrap::RangeError);
        }
        let force_at = self.force_gc_at.load(R);
        let torture = force_at != u64::MAX;
        if torture && self.allocations.load(R) + mu.pending_allocations >= force_at {
            return Ok(None);
        }
        if let Some(cms) = &self.cms {
            // Occupancy trigger: start a marking cycle while allocation
            // headroom remains, so tracing genuinely overlaps mutation
            // instead of always being driven by a full heap.
            if !cms.marking.load(R) && self.free.load(R) >= cms.trigger_at.load(R) {
                return Ok(None);
            }
        }
        let desc = self.module.types.get(TypeId(u32::from(ty)));
        let words = i64::from(desc.object_words(len as u32));
        if words > self.layout.semi_words as i64 {
            return Err(VmTrap::OutOfMemory);
        }
        let addr = if self.layout.region_words > 0 && self.region_live[mu.tid].load(R) {
            // Allocation-service mode: request-local bump into the
            // slot's region, no shared traffic. Objects that would
            // overflow the region fall back to the shared frontier and
            // are traced like any shared allocation.
            let (_, limit) = self.region_bounds(mu.tid);
            let ptr = self.region_ptrs[mu.tid].load(R);
            if ptr + words <= limit {
                self.region_ptrs[mu.tid].store(ptr + words, R);
                mu.pending_region_allocs += 1;
                mu.pending_region_words += words as u64;
                ptr
            } else {
                match self.cas_claim(words) {
                    Some(a) => a,
                    None => return Ok(None),
                }
            }
        } else if mu.tlab_ptr + words <= mu.tlab_limit {
            // Fast path: private bump inside the TLAB, no shared traffic.
            let a = mu.tlab_ptr;
            mu.tlab_ptr = a + words;
            mu.pending_tlab_allocs += 1;
            a
        } else {
            let tlab_words = self.layout.tlab_words as i64;
            if tlab_words == 0 || words > tlab_words {
                // TLABs disabled, or the object would not fit even in a
                // fresh buffer: claim it from the shared frontier
                // directly, leaving the current TLAB intact.
                match self.cas_claim(words) {
                    Some(a) => a,
                    None => return Ok(None),
                }
            } else {
                // Refill: retire what is left of the old buffer, then
                // claim a whole new one with a single CAS. If the space
                // cannot fit a full buffer, fall back to claiming just
                // this object so the last words of the space are still
                // usable before a collection is forced.
                self.retire_tlab(mu);
                match self.cas_claim(tlab_words) {
                    Some(base) => {
                        mu.tlab_ptr = base + words;
                        mu.tlab_limit = base + tlab_words;
                        self.tlab_refills.fetch_add(1, R);
                        base
                    }
                    None => match self.cas_claim(words) {
                        Some(a) => a,
                        None => return Ok(None),
                    },
                }
            }
        };
        // Zero the object (the space may hold stale data from before a
        // previous flip). The words are exclusively ours: either the
        // bump CAS reserved them or they lie inside our TLAB.
        for w in addr..addr + words {
            self.mem[w as usize].store(0, R);
        }
        if let Some(sh) = &self.shadow {
            sh.clear_range(addr, words);
        }
        self.mem[addr as usize].store(i64::from(ty), R);
        if matches!(desc, HeapType::Array { .. }) {
            self.mem[addr as usize + 1].store(len, R);
        }
        if let Some(cms) = &self.cms {
            // Born black: objects allocated during marking are marked at
            // birth, so concurrent tracing never needs to visit them and
            // the final pause's bitmap evacuation keeps them alive.
            if cms.marking.load(R) {
                cms.mark_if_unmarked(addr);
            }
        }
        mu.pending_allocations += 1;
        mu.pending_alloc_words += words as u64;
        if torture {
            // Torture counts individual allocations to schedule forced
            // collections; keep the shared counter exact per-allocation.
            self.flush_alloc_stats(mu);
        }
        Ok(Some(addr))
    }

    /// Escape detection (allocation-service mode): a store whose value
    /// is a pointer into a live region and whose target lies outside
    /// both that region and its owner's stack marks the region escaped.
    ///
    /// This must run at the machine level on every `St`/`StB`/`StG` —
    /// codegen's write barriers cannot carry it, because barriers are
    /// elided by *target* (statically non-pointer value, nursery-fresh
    /// object, frame-slot or global address) and direct global
    /// assignment emits `StG` with no barrier at all. `StF`/`Push` are
    /// exempt: a mutator's stack is request-private and dies with the
    /// request. A non-pointer word whose value happens to alias a
    /// region address only costs a spurious escape (the region is kept
    /// as a zombie and traced), never an unsound reclaim.
    fn note_escape(&self, addr: i64, value: i64) {
        let Some(vs) = self.region_slot_of(value) else { return };
        if !self.region_live[vs].load(R) {
            return;
        }
        let (rb, re) = self.region_bounds(vs);
        if (rb..re).contains(&addr) {
            return; // intra-region store
        }
        let sb = (self.stacks_base + vs * self.layout.stack_words) as i64;
        if (sb..sb + self.layout.stack_words as i64).contains(&addr) {
            return; // the owner's private stack dies with the request
        }
        if !self.region_escaped[vs].swap(true, R) {
            self.region_escapes.fetch_add(1, R);
        }
    }

    fn sys(&self, mu: &mut Mutator, code: u8, arg: i64) -> Result<(), VmTrap> {
        match code {
            0 => {
                mu.output.push_str(&arg.to_string());
                Ok(())
            }
            1 => {
                let c = u32::try_from(arg).ok().and_then(char::from_u32).unwrap_or('?');
                mu.output.push(c);
                Ok(())
            }
            2 => {
                mu.output.push('\n');
                Ok(())
            }
            3 => Err(VmTrap::RangeError),
            4 => Err(VmTrap::NilError),
            5 => Err(VmTrap::AssertError),
            _ => Err(VmTrap::WildAddress),
        }
    }

    /// The barrier store of [`Instr::StB`], shared between the
    /// interpreter arm and the JIT's call-out so both execute the exact
    /// same SATB (and fault-injection) semantics.
    fn store_barrier(&self, mu: &mut Mutator, addr: i64, value: i64) -> Result<(), VmTrap> {
        // Concurrent evacuation extends the barrier: a stored value
        // whose object already moved is healed to the to-space copy
        // before it re-enters the heap, and the store itself goes
        // through the forwarding-aware path.
        let value = match self.cms.as_ref().filter(|c| c.evacuating.load(Ordering::Acquire)) {
            Some(cms) => match self.evac_heal_value(cms, value) {
                Some(nv) => {
                    cms.evac_healed_stores.fetch_add(1, R);
                    nv
                }
                None => value,
            },
            None => value,
        };
        match self.cms.as_ref().filter(|c| c.marking.load(Ordering::Acquire)) {
            None => {
                // Outside a marking cycle (or a non-cms run) the
                // barrier store is a plain store, exactly as on a
                // semispace `Machine`.
                self.heap_store(addr, value)
            }
            Some(cms) => match cms.fault() {
                SatbFault::None => {
                    // Deletion barrier: read the old value *before*
                    // overwriting it.
                    let old = self.load(addr)?;
                    self.heap_store(addr, value)?;
                    self.satb_record_old(cms, mu, old);
                    Ok(())
                }
                SatbFault::Drop => self.heap_store(addr, value),
                SatbFault::Reorder => {
                    // Buggy ordering: store first, then "record the old
                    // value" — which now reads the new one, so the
                    // barrier enqueues the wrong pointer.
                    self.heap_store(addr, value)?;
                    let old = self.load(addr)?;
                    self.satb_record_old(cms, mu, old);
                    Ok(())
                }
            },
        }
    }

    /// JIT runtime-call surface (see `Machine::jit_try_alloc` for the
    /// rationale); `try_alloc` itself is already public.
    #[doc(hidden)]
    pub fn jit_store_barrier(&self, mu: &mut Mutator, addr: i64, value: i64) -> Result<(), VmTrap> {
        self.store_barrier(mu, addr, value)
    }

    #[doc(hidden)]
    pub fn jit_sys(&self, mu: &mut Mutator, code: u8, arg: i64) -> Result<(), VmTrap> {
        self.sys(mu, code, arg)
    }

    /// JIT call-out for the `Ld` template under conc-evac: byte-identical
    /// to the interpreter's self-healing load.
    #[doc(hidden)]
    pub fn jit_heap_load(&self, mu: &mut Mutator, dst: u8, addr: i64) -> Result<(), VmTrap> {
        self.heap_load(mu, dst, addr)
    }

    /// JIT call-out for the `St` template under conc-evac: byte-identical
    /// to the interpreter's forwarding-aware store.
    #[doc(hidden)]
    pub fn jit_heap_store(&self, addr: i64, value: i64) -> Result<(), VmTrap> {
        self.heap_store(addr, value)
    }

    #[doc(hidden)]
    pub fn jit_shadow_step(&self, mu: &mut Mutator, ins: &Instr) -> Option<VmTrap> {
        if self.shadow.is_some() {
            self.shadow_step(mu, ins)
        } else {
            None
        }
    }

    /// Shadow-mode instrumentation, mirroring `Machine::shadow_step`:
    /// stale-pointer detection against the dead semispace plus tag
    /// propagation through the instruction's data flow.
    fn shadow_step(&self, mu: &mut Mutator, ins: &Instr) -> Option<VmTrap> {
        use crate::isa::AluOp;
        if let Instr::Ld { base, off, .. }
        | Instr::St { base, off, .. }
        | Instr::StB { base, off, .. } = *ins
        {
            let addr = mu.regs[base as usize] + i64::from(off);
            if self.in_dead_space(addr) {
                return Some(VmTrap::StalePointer);
            }
        }
        let sh = self.shadow.as_ref().expect("shadow_step without shadow");
        match *ins {
            Instr::MovI { dst, .. } | Instr::UnAlu { dst, .. } => {
                mu.reg_tags[dst as usize] = Tag::NonPtr;
            }
            Instr::Mov { dst, src } => mu.reg_tags[dst as usize] = mu.reg_tags[src as usize],
            Instr::Alu { op, dst, a, b } => {
                let (ta, tb) = (mu.reg_tags[a as usize], mu.reg_tags[b as usize]);
                mu.reg_tags[dst as usize] = match op {
                    AluOp::Add | AluOp::Sub => Shadow::combine_additive(ta, tb),
                    _ => Tag::NonPtr,
                };
            }
            Instr::AluI { op, dst, a, .. } => {
                let ta = mu.reg_tags[a as usize];
                mu.reg_tags[dst as usize] = match op {
                    AluOp::Add | AluOp::Sub => Shadow::combine_additive(ta, Tag::NonPtr),
                    _ => Tag::NonPtr,
                };
            }
            Instr::Ld { dst, base, off } => {
                let addr = mu.regs[base as usize] + i64::from(off);
                mu.reg_tags[dst as usize] = sh.mem_tag(addr);
            }
            Instr::St { base, off, src } | Instr::StB { base, off, src } => {
                let addr = mu.regs[base as usize] + i64::from(off);
                sh.set_mem(addr, mu.reg_tags[src as usize]);
            }
            Instr::LdF { dst, breg, off } => {
                let addr = Self::base_value(mu, breg) + i64::from(off);
                mu.reg_tags[dst as usize] = sh.mem_tag(addr);
            }
            Instr::StF { breg, off, src } => {
                let addr = Self::base_value(mu, breg) + i64::from(off);
                sh.set_mem(addr, mu.reg_tags[src as usize]);
            }
            Instr::Lea { dst, .. } | Instr::LeaG { dst, .. } => {
                mu.reg_tags[dst as usize] = Tag::NonPtr;
            }
            Instr::LdG { dst, goff } => {
                mu.reg_tags[dst as usize] = sh.mem_tag((GLOBAL_BASE + goff as usize) as i64);
            }
            Instr::StG { goff, src } => {
                sh.set_mem((GLOBAL_BASE + goff as usize) as i64, mu.reg_tags[src as usize]);
            }
            Instr::Push { src } => {
                sh.set_mem(mu.sp, mu.reg_tags[src as usize]);
            }
            Instr::Call { proc, .. } => {
                if let Some(meta) = self.module.procs.get(proc as usize) {
                    sh.clear_range(mu.sp, 3 + i64::from(meta.frame_words));
                }
            }
            Instr::Alloc { .. }
            | Instr::AllocA { .. }
            | Instr::Ret
            | Instr::Jmp { .. }
            | Instr::Brt { .. }
            | Instr::Brf { .. }
            | Instr::GcPoint
            | Instr::Sys { .. }
            | Instr::Halt => {}
        }
        None
    }

    /// Executes one instruction of `mu`. Mirrors `Machine::step`; the
    /// differences are the shared atomic memory, the safepoint poll
    /// (request flag instead of `gc_pending` status bookkeeping) and
    /// per-mutator output.
    pub fn step(&self, mu: &mut Mutator) -> ParStep {
        let pc = mu.pc;
        // Poll: at any gc-point, a pending collection request parks the
        // thread before the instruction executes — an allocation must
        // not race the collection, and §5.3's tables describe exactly
        // this pc.
        if self.is_gc_point_pc(pc) && self.gc_request.load(R) {
            return ParStep::AtSafepoint;
        }
        mu.steps += 1;
        let (ins, next_pc) = self.decoded.at(pc).clone();
        if self.shadow.is_some() {
            if let Some(trap) = self.shadow_step(mu, &ins) {
                return ParStep::Trap(trap);
            }
        }
        let mut new_pc = next_pc;
        macro_rules! trap {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(tr) => return ParStep::Trap(tr),
                }
            };
        }
        match ins {
            Instr::MovI { dst, imm } => mu.regs[dst as usize] = imm,
            Instr::Mov { dst, src } => mu.regs[dst as usize] = mu.regs[src as usize],
            Instr::Alu { op, dst, a, b } => {
                mu.regs[dst as usize] = op.eval(mu.regs[a as usize], mu.regs[b as usize]);
            }
            Instr::AluI { op, dst, a, imm } => {
                mu.regs[dst as usize] = op.eval(mu.regs[a as usize], imm);
            }
            Instr::UnAlu { op, dst, a } => mu.regs[dst as usize] = op.eval(mu.regs[a as usize]),
            Instr::Ld { dst, base, off } => {
                let addr = mu.regs[base as usize] + i64::from(off);
                trap!(self.heap_load(mu, dst, addr));
            }
            Instr::St { base, off, src } => {
                // Unbarriered store: codegen proved the old value needs
                // no protection (non-pointer value or nursery-fresh
                // target — see the SATB soundness notes in
                // `codegen::emit`). During concurrent evacuation it
                // still resolves forwarding, since even a non-pointer
                // store into a claimed object would otherwise be lost.
                let addr = mu.regs[base as usize] + i64::from(off);
                let value = mu.regs[src as usize];
                trap!(self.heap_store(addr, value));
                if self.layout.region_words > 0 {
                    self.note_escape(addr, value);
                }
            }
            Instr::StB { base, off, src } => {
                let addr = mu.regs[base as usize] + i64::from(off);
                let value = mu.regs[src as usize];
                trap!(self.store_barrier(mu, addr, value));
                if self.layout.region_words > 0 {
                    self.note_escape(addr, value);
                }
            }
            Instr::LdF { dst, breg, off } => {
                let addr = Self::base_value(mu, breg) + i64::from(off);
                mu.regs[dst as usize] = trap!(self.load(addr));
            }
            Instr::StF { breg, off, src } => {
                let addr = Self::base_value(mu, breg) + i64::from(off);
                trap!(self.store(addr, mu.regs[src as usize]));
            }
            Instr::Lea { dst, breg, off } => {
                mu.regs[dst as usize] = Self::base_value(mu, breg) + i64::from(off);
            }
            Instr::LdG { dst, goff } => {
                mu.regs[dst as usize] = self.mem[GLOBAL_BASE + goff as usize].load(R);
            }
            Instr::StG { goff, src } => {
                let value = mu.regs[src as usize];
                self.mem[GLOBAL_BASE + goff as usize].store(value, R);
                if self.layout.region_words > 0 {
                    self.note_escape((GLOBAL_BASE + goff as usize) as i64, value);
                }
            }
            Instr::LeaG { dst, goff } => {
                mu.regs[dst as usize] = (GLOBAL_BASE + goff as usize) as i64;
            }
            Instr::Push { src } => {
                if mu.sp >= mu.stack_limit {
                    return ParStep::Trap(VmTrap::StackOverflow);
                }
                let sp = mu.sp;
                mu.sp += 1;
                self.mem[sp as usize].store(mu.regs[src as usize], R);
            }
            Instr::Call { proc, nargs } => {
                let Some(meta) = self.module.procs.get(proc as usize) else {
                    return ParStep::Trap(VmTrap::BadProc);
                };
                let frame_words = i64::from(meta.frame_words);
                let entry = meta.entry_pc;
                if mu.sp + 3 + frame_words >= mu.stack_limit {
                    return ParStep::Trap(VmTrap::StackOverflow);
                }
                let sp = mu.sp;
                self.mem[sp as usize].store(i64::from(next_pc), R);
                self.mem[sp as usize + 1].store(mu.fp, R);
                self.mem[sp as usize + 2].store(mu.ap, R);
                mu.ap = sp - i64::from(nargs);
                mu.fp = sp + 3;
                mu.sp = mu.fp + frame_words;
                for w in mu.fp..mu.sp {
                    self.mem[w as usize].store(0, R);
                }
                new_pc = entry;
            }
            Instr::Ret => {
                let retpc = self.mem[mu.fp as usize - 3].load(R);
                let old_fp = self.mem[mu.fp as usize - 2].load(R);
                let old_ap = self.mem[mu.fp as usize - 1].load(R);
                if retpc == RETURN_SENTINEL {
                    return ParStep::Finished;
                }
                mu.sp = mu.ap;
                mu.fp = old_fp;
                mu.ap = old_ap;
                new_pc = resolve_retpc_via(self.code_map.as_deref(), retpc);
            }
            Instr::Jmp { target } => new_pc = target,
            Instr::Brt { cond, target } => {
                if mu.regs[cond as usize] != 0 {
                    new_pc = target;
                }
            }
            Instr::Brf { cond, target } => {
                if mu.regs[cond as usize] == 0 {
                    new_pc = target;
                }
            }
            Instr::Alloc { dst, ty } => match trap!(self.try_alloc(mu, ty, 0)) {
                Some(addr) => {
                    mu.regs[dst as usize] = addr;
                    if self.shadow.is_some() {
                        mu.reg_tags[dst as usize] = Tag::Ptr;
                    }
                }
                None => return ParStep::NeedGc,
            },
            Instr::AllocA { dst, ty, len } => {
                let l = mu.regs[len as usize];
                match trap!(self.try_alloc(mu, ty, l)) {
                    Some(addr) => {
                        mu.regs[dst as usize] = addr;
                        if self.shadow.is_some() {
                            mu.reg_tags[dst as usize] = Tag::Ptr;
                        }
                    }
                    None => return ParStep::NeedGc,
                }
            }
            Instr::GcPoint => {}
            Instr::Sys { code, arg } => {
                let v = mu.regs[arg as usize];
                trap!(self.sys(mu, code, v));
            }
            Instr::Halt => return ParStep::Finished,
        }
        mu.pc = new_pc;
        ParStep::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_bytes_roundtrip() {
        for tag in [Tag::NonPtr, Tag::Ptr, Tag::Derived] {
            assert_eq!(Tag::from_byte(tag.to_byte()), tag);
        }
        assert_eq!(Tag::from_byte(99), Tag::NonPtr);
    }

    #[test]
    fn par_machine_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ParMachine>();
    }

    #[test]
    fn cms_bitmap_marks_and_iterates() {
        let cms = CmsHeap::new(1 << 10);
        for addr in [3_i64, 64, 65, 700] {
            assert!(!cms.is_marked(addr));
            assert!(cms.mark_if_unmarked(addr), "first mark wins");
            assert!(!cms.mark_if_unmarked(addr), "second mark loses");
            assert!(cms.is_marked(addr));
        }
        let mut seen = Vec::new();
        cms.for_each_marked(0, 1 << 10, |a| seen.push(a));
        assert_eq!(seen, vec![3, 64, 65, 700]);
        let mut window = Vec::new();
        cms.for_each_marked(64, 700, |a| window.push(a));
        assert_eq!(window, vec![64, 65]);
        cms.clear_marks();
        assert!(!cms.is_marked(3));
    }

    #[test]
    fn satb_fault_roundtrip() {
        let cms = CmsHeap::new(64);
        assert_eq!(cms.fault(), SatbFault::None);
        for f in [SatbFault::Drop, SatbFault::Reorder, SatbFault::None] {
            cms.set_fault(f);
            assert_eq!(cms.fault(), f);
        }
    }

    #[test]
    fn evac_fault_roundtrip() {
        let cms = CmsHeap::new(64);
        assert_eq!(cms.fault_evac(), EvacFault::None);
        for f in
            [EvacFault::StaleRead, EvacFault::TornForward, EvacFault::DoubleCopy, EvacFault::None]
        {
            cms.set_evac_fault(f);
            assert_eq!(cms.fault_evac(), f);
        }
    }

    #[test]
    fn evac_cset_pin_and_dirty_roundtrip() {
        let mut cms = CmsHeap::new(1 << 14);
        cms.set_evac_region_words(64, 1 << 14);
        assert_eq!(cms.evac_region_count(), (1 << 14) / 64);
        assert_eq!(cms.evac_region_of(130), 2);
        assert!(!cms.in_cset(2));
        cms.set_cset(2, true);
        assert!(cms.in_cset(2));
        assert!(!cms.is_pinned(3));
        assert!(cms.pin_region(3), "first pin wins");
        assert!(!cms.pin_region(3), "second pin loses");
        assert!(cms.is_pinned(3));
        cms.set_dirty(777);
        assert!(cms.is_dirty(777));
        assert!(!cms.is_dirty(776));
        cms.clear_evac_sets();
        cms.clear_dirty();
        assert!(!cms.in_cset(2));
        assert!(!cms.is_pinned(3));
        assert!(!cms.is_dirty(777));
    }
}
