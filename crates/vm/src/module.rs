//! Compiled modules: code, procedure metadata, heap types and gc maps.

use m3gc_core::encode::EncodedTables;
use m3gc_core::heap::TypeTable;
use m3gc_core::tables::ModuleTables;

/// Per-procedure metadata the machine and the collector need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcMeta {
    /// Source name.
    pub name: String,
    /// Entry pc (byte offset in the module code).
    pub entry_pc: u32,
    /// One past the procedure's last instruction byte.
    pub end_pc: u32,
    /// Frame size in words (locals, spills, save area).
    pub frame_words: u32,
    /// Callee-save registers this procedure saves, with the FP-relative
    /// word offset of each save slot. The collector uses this to
    /// reconstruct register contents as of the time of a call (§3).
    pub save_regs: Vec<(u8, i32)>,
    /// Number of argument words.
    pub n_args: u32,
}

impl ProcMeta {
    /// True if `pc` lies within this procedure's code.
    #[must_use]
    pub fn contains(&self, pc: u32) -> bool {
        (self.entry_pc..self.end_pc).contains(&pc)
    }
}

/// A complete compiled module.
#[derive(Debug, Clone)]
pub struct VmModule {
    /// Encoded instruction stream.
    pub code: Vec<u8>,
    /// Procedure metadata; `Call` operands index this.
    pub procs: Vec<ProcMeta>,
    /// Heap type descriptors.
    pub types: TypeTable,
    /// Size of the global area in words.
    pub globals_words: u32,
    /// Word offsets of tidy-pointer roots within the global area.
    pub global_ptr_roots: Vec<u32>,
    /// The entry procedure.
    pub main: u16,
    /// Pcs of explicit `GcPoint` poll instructions (loop back-edges and
    /// other non-allocating gc-points inserted by `codegen::gcpoints`).
    /// Allocation sites are gc-points too but need no poll — the
    /// allocation itself synchronizes with the collector. The parallel
    /// runtime uses this to distinguish parks at poll sites from parks
    /// at allocations in its handshake statistics.
    pub poll_pcs: Vec<u32>,
    /// Encoded gc-map tables.
    pub gc_maps: EncodedTables,
    /// The logical tables (for statistics and debugging; the collector
    /// uses only `gc_maps`).
    pub logical_maps: ModuleTables,
}

impl VmModule {
    /// The procedure containing `pc`, if any.
    #[must_use]
    pub fn proc_at(&self, pc: u32) -> Option<(u16, &ProcMeta)> {
        self.procs.iter().enumerate().find(|(_, p)| p.contains(pc)).map(|(i, p)| (i as u16, p))
    }

    /// Code size in bytes (Table 1's `Size` column).
    #[must_use]
    pub fn code_size(&self) -> usize {
        self.code.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_core::encode::{encode_module, Scheme};

    fn dummy_module() -> VmModule {
        VmModule {
            code: vec![0; 100],
            procs: vec![
                ProcMeta {
                    name: "a".into(),
                    entry_pc: 0,
                    end_pc: 40,
                    frame_words: 2,
                    save_regs: vec![],
                    n_args: 0,
                },
                ProcMeta {
                    name: "b".into(),
                    entry_pc: 40,
                    end_pc: 100,
                    frame_words: 0,
                    save_regs: vec![(6, 0)],
                    n_args: 1,
                },
            ],
            types: TypeTable::default(),
            globals_words: 0,
            global_ptr_roots: vec![],
            main: 0,
            poll_pcs: vec![],
            gc_maps: encode_module(&ModuleTables::default(), Scheme::DELTA_MAIN_PP),
            logical_maps: ModuleTables::default(),
        }
    }

    #[test]
    fn proc_lookup_by_pc() {
        let m = dummy_module();
        assert_eq!(m.proc_at(0).unwrap().0, 0);
        assert_eq!(m.proc_at(39).unwrap().0, 0);
        assert_eq!(m.proc_at(40).unwrap().0, 1);
        assert!(m.proc_at(100).is_none());
        assert_eq!(m.code_size(), 100);
    }
}
