//! Decoding of encoded gc-map tables at collection time.
//!
//! At garbage collection time the first task is to locate the tables for
//! each frame on the stack: return addresses extracted from frames are
//! looked up in the pc map, then the gc-point's tables are decoded. Because
//! the *Previous* compression makes a gc-point's tables depend on the
//! preceding gc-point's, decoding is sequential within a procedure; the
//! decoder walks from the procedure's first gc-point to the requested one.
//! This is the decoding overhead §6.3 measures — compactly encoded tables
//! are cheap to store but cost more to read.

use crate::derive::{DerivationRecord, Sign};
use crate::encode::{descriptor, EncodedTables, Scheme, TableLayout};
use crate::layout::{GroundEntry, Location, RegSet};
use crate::pack;

/// The fully resolved tables for one gc-point, as the collector consumes
/// them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedPoint {
    /// Code address of the gc-point.
    pub pc: u32,
    /// Frame slots containing live tidy pointers.
    pub stack_slots: Vec<GroundEntry>,
    /// Registers containing live tidy pointers.
    pub regs: RegSet,
    /// Derivations of live derived values, derived-before-base order.
    pub derivations: Vec<DerivationRecord>,
}

/// Error produced when the encoded stream is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub what: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gc-table decode error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    packing: bool,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, what: &'static str) -> DecodeError {
        DecodeError { offset: self.pos, what }
    }

    fn word(&mut self) -> Result<i32, DecodeError> {
        if self.packing {
            let (v, n) = pack::unpack_word(self.bytes, self.pos)
                .map_err(|_| self.err("truncated packed word"))?;
            self.pos += n;
            Ok(v)
        } else {
            let end = self.pos + 4;
            let slice = self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated word"))?;
            self.pos = end;
            Ok(i32::from_le_bytes(slice.try_into().expect("4-byte slice")))
        }
    }

    fn uword(&mut self) -> Result<u32, DecodeError> {
        if self.packing {
            let (v, n) = pack::unpack_uword(self.bytes, self.pos)
                .map_err(|_| self.err("truncated packed uword"))?;
            self.pos += n;
            Ok(v)
        } else {
            self.word().map(|w| w as u32)
        }
    }

    fn descriptor(&mut self) -> Result<u8, DecodeError> {
        if self.packing {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("truncated descriptor"))?;
            self.pos += 1;
            Ok(b)
        } else {
            self.uword().map(|w| w as u8)
        }
    }

    fn pc_distance(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos + 2;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated pc distance"))?;
        self.pos = end;
        Ok(u32::from(u16::from_le_bytes(slice.try_into().expect("2-byte slice"))))
    }

    fn location(&mut self) -> Result<Location, DecodeError> {
        let w = self.word()?;
        Location::from_word(w).ok_or_else(|| self.err("bad location word"))
    }

    fn signed_location(&mut self) -> Result<(Location, Sign), DecodeError> {
        let w = self.word()?;
        let sign = if w & 1 == 0 { Sign::Plus } else { Sign::Minus };
        let loc = Location::from_word(w >> 1).ok_or_else(|| self.err("bad base location"))?;
        Ok((loc, sign))
    }
}

fn read_derivations(r: &mut Reader<'_>) -> Result<Vec<DerivationRecord>, DecodeError> {
    let n = r.uword()? as usize;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let target = r.location()?;
        let ctl = r.word()?;
        if ctl >= 0 {
            let mut bases = Vec::with_capacity(ctl as usize);
            for _ in 0..ctl {
                bases.push(r.signed_location()?);
            }
            records.push(DerivationRecord::Simple { target, bases });
        } else {
            let n_variants = (-ctl) as usize;
            let path_var = r.location()?;
            let mut variants = Vec::with_capacity(n_variants);
            for _ in 0..n_variants {
                let k = r.uword()? as usize;
                let mut bases = Vec::with_capacity(k);
                for _ in 0..k {
                    bases.push(r.signed_location()?);
                }
                variants.push(bases);
            }
            records.push(DerivationRecord::Ambiguous { target, path_var, variants });
        }
    }
    Ok(records)
}

/// Index entry for one procedure's region of the encoded stream.
#[derive(Debug, Clone)]
struct ProcIndex {
    entry_pc: u32,
    n_points: usize,
    n_ground: usize,
    /// Offset of the ground table words (δ-main) — unused for full-info.
    ground_off: usize,
    /// Offset of the first gc-point's data (after the pc map).
    points_off: usize,
    /// Decoded gc-point pcs (from the pc map), ascending.
    pcs: Vec<u32>,
}

/// The owned, reusable part of a decoder: procedure boundaries and the
/// decoded pc map. The paper's pc→tables map is static emitted data; a
/// production runtime builds this index once at module load and keeps it
/// for every collection.
#[derive(Debug, Clone)]
pub struct DecoderIndex {
    scheme: Scheme,
    procs: Vec<ProcIndex>,
    /// (pc, proc index, point index), sorted by pc.
    point_index: Vec<(u32, u32, u32)>,
}

/// A decoder over an encoded table stream: an index plus the bytes.
///
/// Construction makes a single indexing pass (finding procedure boundaries
/// and decoding the pc maps); [`TableDecoder::lookup`] then decodes the
/// requested gc-point's tables from the bytes, walking the owning
/// procedure's gc-points from the start as the *Previous* compression
/// requires.
pub struct TableDecoder<'a> {
    index: DecoderIndex,
    bytes: &'a [u8],
}

impl DecoderIndex {
    /// Builds the index with a single pass over the stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream is truncated or contains
    /// invalid words.
    pub fn build(encoded: &EncodedTables) -> Result<DecoderIndex, DecodeError> {
        let scheme = encoded.scheme;
        let mut r = Reader { packing: scheme.packing, bytes: &encoded.bytes, pos: 0 };
        let n_procs = r.uword()? as usize;
        let mut procs = Vec::with_capacity(n_procs);
        let mut point_index = Vec::new();
        for proc_i in 0..n_procs {
            let entry_pc = r.uword()?;
            let n_points = r.uword()? as usize;
            let mut n_ground = 0;
            let mut ground_off = r.pos;
            if scheme.layout == TableLayout::DeltaMain {
                n_ground = r.uword()? as usize;
                ground_off = r.pos;
                for _ in 0..n_ground {
                    r.word()?;
                }
            }
            let mut pcs = Vec::with_capacity(n_points);
            let mut pc = entry_pc;
            for _ in 0..n_points {
                pc += r.pc_distance()?;
                pcs.push(pc);
            }
            let points_off = r.pos;
            for (pt_i, &pc) in pcs.iter().enumerate() {
                point_index.push((pc, proc_i as u32, pt_i as u32));
            }
            procs.push(ProcIndex { entry_pc, n_points, n_ground, ground_off, points_off, pcs });
            // Skip over the per-point data to find the next procedure.
            let mut prev = DecodedPoint::default();
            let idx = procs.last().expect("just pushed");
            let ground = Self::read_ground(scheme, &encoded.bytes, idx)?;
            for _ in 0..n_points {
                prev = Self::read_point(scheme, &mut r, &ground, &prev)?;
            }
        }
        point_index.sort_unstable();
        Ok(DecoderIndex { scheme, procs, point_index })
    }

    /// Number of procedures in the stream.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// All gc-point pcs, ascending.
    pub fn gc_point_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.point_index.iter().map(|&(pc, _, _)| pc)
    }

    /// Entry pc of the procedure containing gc-point `pc`, if any.
    #[must_use]
    pub fn proc_entry_of(&self, pc: u32) -> Option<u32> {
        let i = self.point_index.binary_search_by_key(&pc, |&(p, _, _)| p).ok()?;
        let (_, proc_i, _) = self.point_index[i];
        Some(self.procs[proc_i as usize].entry_pc)
    }

    /// Decodes the tables for the gc-point at exactly `pc` from `bytes`
    /// (which must be the same stream the index was built from).
    #[must_use]
    pub fn lookup(&self, bytes: &[u8], pc: u32) -> Option<DecodedPoint> {
        let i = self.point_index.binary_search_by_key(&pc, |&(p, _, _)| p).ok()?;
        let (_, proc_i, pt_i) = self.point_index[i];
        let idx = &self.procs[proc_i as usize];
        let ground =
            Self::read_ground(self.scheme, bytes, idx).expect("validated at construction");
        let mut r = Reader { packing: self.scheme.packing, bytes, pos: idx.points_off };
        let mut point = DecodedPoint::default();
        for k in 0..=pt_i {
            point = Self::read_point(self.scheme, &mut r, &ground, &point)
                .expect("validated at construction");
            point.pc = idx.pcs[k as usize];
        }
        debug_assert_eq!(point.pc, pc);
        Some(point)
    }

    fn read_ground(
        scheme: Scheme,
        bytes: &[u8],
        idx: &ProcIndex,
    ) -> Result<Vec<GroundEntry>, DecodeError> {
        if scheme.layout != TableLayout::DeltaMain {
            return Ok(Vec::new());
        }
        let mut r = Reader { packing: scheme.packing, bytes, pos: idx.ground_off };
        let mut ground = Vec::with_capacity(idx.n_ground);
        for _ in 0..idx.n_ground {
            let w = r.word()?;
            ground.push(GroundEntry::from_word(w).ok_or_else(|| r.err("bad ground entry"))?);
        }
        Ok(ground)
    }

    /// Decodes one gc-point's tables at the reader's position, given the
    /// previous point's decoded tables (for the *Previous* compression).
    fn read_point(
        scheme: Scheme,
        r: &mut Reader<'_>,
        ground: &[GroundEntry],
        prev: &DecodedPoint,
    ) -> Result<DecodedPoint, DecodeError> {
        let desc = r.descriptor()?;
        let stack_slots = if desc & descriptor::STACK_EMPTY != 0 {
            Vec::new()
        } else if desc & descriptor::STACK_SAME != 0 {
            prev.stack_slots.clone()
        } else {
            match scheme.layout {
                TableLayout::DeltaMain => {
                    let n_words = ground.len().div_ceil(32);
                    let mut slots = Vec::new();
                    for w in 0..n_words {
                        let bits = r.uword()?;
                        for b in 0..32 {
                            if bits & (1 << b) != 0 {
                                let gi = w * 32 + b;
                                let entry =
                                    ground.get(gi).ok_or_else(|| r.err("delta bit out of range"))?;
                                slots.push(*entry);
                            }
                        }
                    }
                    slots
                }
                TableLayout::FullInfo => {
                    let n = r.uword()? as usize;
                    let mut slots = Vec::with_capacity(n);
                    for _ in 0..n {
                        let w = r.word()?;
                        slots.push(GroundEntry::from_word(w).ok_or_else(|| r.err("bad slot word"))?);
                    }
                    slots
                }
            }
        };
        let regs = if desc & descriptor::REGS_EMPTY != 0 {
            RegSet::EMPTY
        } else if desc & descriptor::REGS_SAME != 0 {
            prev.regs
        } else {
            RegSet(r.uword()?)
        };
        let derivations = if desc & descriptor::DER_EMPTY != 0 {
            Vec::new()
        } else if desc & descriptor::DER_SAME != 0 {
            prev.derivations.clone()
        } else {
            read_derivations(r)?
        };
        Ok(DecodedPoint { pc: 0, stack_slots, regs, derivations })
    }

}

impl<'a> TableDecoder<'a> {
    /// Indexes an encoded table stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed (it was produced by
    /// [`crate::encode::encode_module`], so malformation is a bug).
    #[must_use]
    pub fn new(encoded: &'a EncodedTables) -> TableDecoder<'a> {
        Self::try_new(encoded).expect("malformed encoded gc tables")
    }

    /// Fallible variant of [`TableDecoder::new`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream is truncated or contains
    /// invalid words.
    pub fn try_new(encoded: &'a EncodedTables) -> Result<TableDecoder<'a>, DecodeError> {
        Ok(TableDecoder { index: DecoderIndex::build(encoded)?, bytes: &encoded.bytes })
    }

    /// Wraps a prebuilt index around the stream it was built from.
    #[must_use]
    pub fn with_index(index: DecoderIndex, encoded: &'a EncodedTables) -> TableDecoder<'a> {
        TableDecoder { index, bytes: &encoded.bytes }
    }

    /// Number of procedures in the stream.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.index.num_procs()
    }

    /// All gc-point pcs, ascending.
    pub fn gc_point_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.index.gc_point_pcs()
    }

    /// Entry pc of the procedure containing gc-point `pc`, if any.
    #[must_use]
    pub fn proc_entry_of(&self, pc: u32) -> Option<u32> {
        self.index.proc_entry_of(pc)
    }

    /// Decodes the tables for the gc-point at exactly `pc`.
    ///
    /// Returns `None` if `pc` is not a gc-point. This is the per-frame
    /// operation the collector performs during a stack trace: find the
    /// tables via the pc map, then decode them (sequentially from the
    /// procedure's first gc-point, as *Previous* requires).
    #[must_use]
    pub fn lookup(&self, pc: u32) -> Option<DecodedPoint> {
        self.index.lookup(self.bytes, pc)
    }

    /// Decodes every gc-point of every procedure, in stream order.
    ///
    /// Used by tests and by bulk consumers; collectors use [`lookup`].
    ///
    /// [`lookup`]: TableDecoder::lookup
    #[must_use]
    pub fn decode_all(&self) -> Vec<DecodedPoint> {
        let mut out = Vec::new();
        for idx in &self.index.procs {
            let ground = DecoderIndex::read_ground(self.index.scheme, self.bytes, idx)
                .expect("validated at construction");
            let mut r =
                Reader { packing: self.index.scheme.packing, bytes: self.bytes, pos: idx.points_off };
            let mut point = DecodedPoint::default();
            for k in 0..idx.n_points {
                point = DecoderIndex::read_point(self.index.scheme, &mut r, &ground, &point)
                    .expect("validated at construction");
                point.pc = idx.pcs[k];
                out.push(point.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_module;
    use crate::layout::BaseReg;
    use crate::tables::{GcPointTables, ModuleTables, ProcTables};

    fn ge(off: i32) -> GroundEntry {
        GroundEntry::new(BaseReg::Fp, off)
    }

    fn sample_module() -> ModuleTables {
        ModuleTables {
            procs: vec![
                ProcTables {
                    name: "a".into(),
                    entry_pc: 0,
                    ground: vec![ge(0), ge(1), ge(4)],
                    points: vec![
                        GcPointTables {
                            pc: 6,
                            live_stack: vec![0, 1],
                            regs: RegSet::single(2),
                            derivations: vec![DerivationRecord::Simple {
                                target: Location::Reg(5),
                                bases: vec![
                                    (Location::Slot(BaseReg::Fp, 0), Sign::Plus),
                                    (Location::Slot(BaseReg::Fp, 1), Sign::Minus),
                                ],
                            }],
                        },
                        GcPointTables {
                            pc: 14,
                            live_stack: vec![0, 1],
                            regs: RegSet::single(2),
                            derivations: vec![],
                        },
                        GcPointTables { pc: 30, live_stack: vec![2], ..Default::default() },
                    ],
                },
                ProcTables {
                    name: "b".into(),
                    entry_pc: 100,
                    ground: vec![ge(-2)],
                    points: vec![GcPointTables {
                        pc: 108,
                        live_stack: vec![0],
                        regs: RegSet::EMPTY,
                        derivations: vec![DerivationRecord::Ambiguous {
                            target: Location::Reg(1),
                            path_var: Location::Slot(BaseReg::Fp, 3),
                            variants: vec![
                                vec![(Location::Slot(BaseReg::Fp, -2), Sign::Plus)],
                                vec![(Location::Reg(2), Sign::Plus)],
                            ],
                        }],
                    }],
                },
            ],
        }
    }

    fn expect_roundtrip(scheme: Scheme) {
        let m = sample_module();
        let enc = encode_module(&m, scheme);
        let dec = TableDecoder::new(&enc);
        assert_eq!(dec.num_procs(), 2);
        for proc in &m.procs {
            for (i, pt) in proc.points.iter().enumerate() {
                let d = dec.lookup(pt.pc).unwrap_or_else(|| panic!("{scheme}: pc {}", pt.pc));
                assert_eq!(d.stack_slots, proc.live_slots(i), "{scheme} stack at pc {}", pt.pc);
                assert_eq!(d.regs, pt.regs, "{scheme} regs at pc {}", pt.pc);
                assert_eq!(d.derivations, pt.derivations, "{scheme} derivs at pc {}", pt.pc);
            }
        }
    }

    #[test]
    fn roundtrip_all_schemes() {
        for scheme in Scheme::TABLE2 {
            expect_roundtrip(scheme);
        }
    }

    #[test]
    fn lookup_misses_non_gc_points() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let dec = TableDecoder::new(&enc);
        assert_eq!(dec.lookup(7), None);
        assert_eq!(dec.lookup(0), None);
    }

    #[test]
    fn decode_all_matches_lookups() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let dec = TableDecoder::new(&enc);
        let all = dec.decode_all();
        assert_eq!(all.len(), 4);
        for p in &all {
            assert_eq!(dec.lookup(p.pc).as_ref(), Some(p));
        }
    }

    #[test]
    fn proc_entry_lookup() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let dec = TableDecoder::new(&enc);
        assert_eq!(dec.proc_entry_of(108), Some(100));
        assert_eq!(dec.proc_entry_of(6), Some(0));
        assert_eq!(dec.proc_entry_of(7), None);
    }

    #[test]
    fn truncated_stream_reports_error() {
        let mut enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        enc.bytes.truncate(enc.bytes.len() / 2);
        assert!(TableDecoder::try_new(&enc).is_err());
    }
}
