//! Decoding of encoded gc-map tables at collection time.
//!
//! At garbage collection time the first task is to locate the tables for
//! each frame on the stack: return addresses extracted from frames are
//! looked up in the pc map, then the gc-point's tables are decoded. Because
//! the *Previous* compression makes a gc-point's tables depend on the
//! preceding gc-point's, decoding is sequential within a procedure; the
//! decoder walks from the procedure's first gc-point to the requested one.
//! This is the decoding overhead §6.3 measures — compactly encoded tables
//! are cheap to store but cost more to read.
//!
//! The tables of a loaded module are immutable, so that sequential walk
//! never has to recur: [`DecodeCache`] memoizes every [`DecodedPoint`] it
//! resolves and keeps, per procedure, a *prefix checkpoint* (the byte
//! position and last decoded point of the longest already-decoded prefix).
//! A miss at gc-point *k* resumes decoding from the checkpoint instead of
//! the procedure's first gc-point, so across the lifetime of a module each
//! gc-point's tables are decoded at most once no matter how many
//! collections consult them.

use std::sync::Arc;

use crate::derive::{DerivationRecord, Sign};
use crate::encode::{descriptor, EncodedTables, Scheme, TableLayout};
use crate::layout::{GroundEntry, Location, RegSet};
use crate::pack;

/// The fully resolved tables for one gc-point, as the collector consumes
/// them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedPoint {
    /// Code address of the gc-point.
    pub pc: u32,
    /// Frame slots containing live tidy pointers.
    pub stack_slots: Vec<GroundEntry>,
    /// Registers containing live tidy pointers.
    pub regs: RegSet,
    /// Derivations of live derived values, derived-before-base order.
    pub derivations: Vec<DerivationRecord>,
    /// Frame slots whose pointer contents are dead here: the collector
    /// nulls these instead of tracing them.
    pub killed: Vec<GroundEntry>,
}

/// Error produced when the encoded stream is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub what: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gc-table decode error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    packing: bool,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, what: &'static str) -> DecodeError {
        DecodeError { offset: self.pos, what }
    }

    fn word(&mut self) -> Result<i32, DecodeError> {
        if self.packing {
            let (v, n) = pack::unpack_word(self.bytes, self.pos)
                .map_err(|_| self.err("truncated packed word"))?;
            self.pos += n;
            Ok(v)
        } else {
            let end = self.pos + 4;
            let slice = self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated word"))?;
            self.pos = end;
            Ok(i32::from_le_bytes(slice.try_into().expect("4-byte slice")))
        }
    }

    fn uword(&mut self) -> Result<u32, DecodeError> {
        if self.packing {
            let (v, n) = pack::unpack_uword(self.bytes, self.pos)
                .map_err(|_| self.err("truncated packed uword"))?;
            self.pos += n;
            Ok(v)
        } else {
            self.word().map(|w| w as u32)
        }
    }

    fn descriptor(&mut self) -> Result<u8, DecodeError> {
        if self.packing {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("truncated descriptor"))?;
            self.pos += 1;
            Ok(b)
        } else {
            self.uword().map(|w| w as u8)
        }
    }

    fn pc_distance(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos + 2;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated pc distance"))?;
        self.pos = end;
        Ok(u32::from(u16::from_le_bytes(slice.try_into().expect("2-byte slice"))))
    }

    fn location(&mut self) -> Result<Location, DecodeError> {
        let w = self.word()?;
        Location::from_word(w).ok_or_else(|| self.err("bad location word"))
    }

    fn signed_location(&mut self) -> Result<(Location, Sign), DecodeError> {
        let w = self.word()?;
        let sign = if w & 1 == 0 { Sign::Plus } else { Sign::Minus };
        let loc = Location::from_word(w >> 1).ok_or_else(|| self.err("bad base location"))?;
        Ok((loc, sign))
    }
}

fn read_derivations(r: &mut Reader<'_>) -> Result<Vec<DerivationRecord>, DecodeError> {
    let n = r.uword()? as usize;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let target = r.location()?;
        let ctl = r.word()?;
        if ctl >= 0 {
            let mut bases = Vec::with_capacity(ctl as usize);
            for _ in 0..ctl {
                bases.push(r.signed_location()?);
            }
            records.push(DerivationRecord::Simple { target, bases });
        } else {
            let n_variants = (-ctl) as usize;
            let path_var = r.location()?;
            let mut variants = Vec::with_capacity(n_variants);
            for _ in 0..n_variants {
                let k = r.uword()? as usize;
                let mut bases = Vec::with_capacity(k);
                for _ in 0..k {
                    bases.push(r.signed_location()?);
                }
                variants.push(bases);
            }
            records.push(DerivationRecord::Ambiguous { target, path_var, variants });
        }
    }
    Ok(records)
}

/// Index entry for one procedure's region of the encoded stream.
#[derive(Debug, Clone)]
struct ProcIndex {
    entry_pc: u32,
    n_points: usize,
    n_ground: usize,
    /// Offset of the ground table words (δ-main) — unused for full-info.
    ground_off: usize,
    /// Offset of the first gc-point's data (after the pc map).
    points_off: usize,
    /// Decoded gc-point pcs (from the pc map), ascending.
    pcs: Vec<u32>,
}

/// The owned, reusable part of a decoder: procedure boundaries and the
/// decoded pc map. The paper's pc→tables map is static emitted data; a
/// production runtime builds this index once at module load and keeps it
/// for every collection.
#[derive(Debug, Clone)]
pub struct DecoderIndex {
    scheme: Scheme,
    procs: Vec<ProcIndex>,
    /// (pc, proc index, point index), sorted by pc.
    point_index: Vec<(u32, u32, u32)>,
}

/// A decoder over an encoded table stream: an index plus the bytes.
///
/// Construction makes a single indexing pass (finding procedure boundaries
/// and decoding the pc maps); [`TableDecoder::lookup`] then decodes the
/// requested gc-point's tables from the bytes, walking the owning
/// procedure's gc-points from the start as the *Previous* compression
/// requires.
pub struct TableDecoder<'a> {
    index: DecoderIndex,
    bytes: &'a [u8],
}

impl DecoderIndex {
    /// Builds the index with a single pass over the stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream is truncated or contains
    /// invalid words.
    pub fn build(encoded: &EncodedTables) -> Result<DecoderIndex, DecodeError> {
        let scheme = encoded.scheme;
        let mut r = Reader { packing: scheme.packing, bytes: &encoded.bytes, pos: 0 };
        let n_procs = r.uword()? as usize;
        let mut procs = Vec::with_capacity(n_procs);
        let mut point_index = Vec::new();
        for proc_i in 0..n_procs {
            let entry_pc = r.uword()?;
            let n_points = r.uword()? as usize;
            let mut n_ground = 0;
            let mut ground_off = r.pos;
            if scheme.layout == TableLayout::DeltaMain {
                n_ground = r.uword()? as usize;
                ground_off = r.pos;
                for _ in 0..n_ground {
                    r.word()?;
                }
            }
            let mut pcs = Vec::with_capacity(n_points);
            let mut pc = entry_pc;
            for _ in 0..n_points {
                pc += r.pc_distance()?;
                pcs.push(pc);
            }
            let points_off = r.pos;
            for (pt_i, &pc) in pcs.iter().enumerate() {
                point_index.push((pc, proc_i as u32, pt_i as u32));
            }
            procs.push(ProcIndex { entry_pc, n_points, n_ground, ground_off, points_off, pcs });
            // Skip over the per-point data to find the next procedure.
            let mut prev = DecodedPoint::default();
            let idx = procs.last().expect("just pushed");
            let ground = Self::read_ground(scheme, &encoded.bytes, idx)?;
            for _ in 0..n_points {
                prev = Self::read_point(scheme, &mut r, &ground, &prev)?;
            }
        }
        point_index.sort_unstable();
        Ok(DecoderIndex { scheme, procs, point_index })
    }

    /// Number of procedures in the stream.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// All gc-point pcs, ascending.
    pub fn gc_point_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.point_index.iter().map(|&(pc, _, _)| pc)
    }

    /// Entry pc of the procedure containing gc-point `pc`, if any.
    #[must_use]
    pub fn proc_entry_of(&self, pc: u32) -> Option<u32> {
        let i = self.point_index.binary_search_by_key(&pc, |&(p, _, _)| p).ok()?;
        let (_, proc_i, _) = self.point_index[i];
        Some(self.procs[proc_i as usize].entry_pc)
    }

    /// Decodes the tables for the gc-point at exactly `pc` from `bytes`
    /// (which must be the same stream the index was built from).
    #[must_use]
    pub fn lookup(&self, bytes: &[u8], pc: u32) -> Option<DecodedPoint> {
        let i = self.point_index.binary_search_by_key(&pc, |&(p, _, _)| p).ok()?;
        let (_, proc_i, pt_i) = self.point_index[i];
        let idx = &self.procs[proc_i as usize];
        let ground = Self::read_ground(self.scheme, bytes, idx).expect("validated at construction");
        let mut r = Reader { packing: self.scheme.packing, bytes, pos: idx.points_off };
        let mut point = DecodedPoint::default();
        for k in 0..=pt_i {
            point = Self::read_point(self.scheme, &mut r, &ground, &point)
                .expect("validated at construction");
            point.pc = idx.pcs[k as usize];
        }
        debug_assert_eq!(point.pc, pc);
        Some(point)
    }

    fn read_ground(
        scheme: Scheme,
        bytes: &[u8],
        idx: &ProcIndex,
    ) -> Result<Vec<GroundEntry>, DecodeError> {
        if scheme.layout != TableLayout::DeltaMain {
            return Ok(Vec::new());
        }
        let mut r = Reader { packing: scheme.packing, bytes, pos: idx.ground_off };
        let mut ground = Vec::with_capacity(idx.n_ground);
        for _ in 0..idx.n_ground {
            let w = r.word()?;
            ground.push(GroundEntry::from_word(w).ok_or_else(|| r.err("bad ground entry"))?);
        }
        Ok(ground)
    }

    /// Decodes one gc-point's tables at the reader's position, given the
    /// previous point's decoded tables (for the *Previous* compression).
    fn read_point(
        scheme: Scheme,
        r: &mut Reader<'_>,
        ground: &[GroundEntry],
        prev: &DecodedPoint,
    ) -> Result<DecodedPoint, DecodeError> {
        let desc = r.descriptor()?;
        let stack_slots = if desc & descriptor::STACK_EMPTY != 0 {
            Vec::new()
        } else if desc & descriptor::STACK_SAME != 0 {
            prev.stack_slots.clone()
        } else {
            match scheme.layout {
                TableLayout::DeltaMain => {
                    let n_words = ground.len().div_ceil(32);
                    let mut slots = Vec::new();
                    for w in 0..n_words {
                        let bits = r.uword()?;
                        for b in 0..32 {
                            if bits & (1 << b) != 0 {
                                let gi = w * 32 + b;
                                let entry = ground
                                    .get(gi)
                                    .ok_or_else(|| r.err("delta bit out of range"))?;
                                slots.push(*entry);
                            }
                        }
                    }
                    slots
                }
                TableLayout::FullInfo => {
                    let n = r.uword()? as usize;
                    let mut slots = Vec::with_capacity(n);
                    for _ in 0..n {
                        let w = r.word()?;
                        slots
                            .push(GroundEntry::from_word(w).ok_or_else(|| r.err("bad slot word"))?);
                    }
                    slots
                }
            }
        };
        let regs = if desc & descriptor::REGS_EMPTY != 0 {
            RegSet::EMPTY
        } else if desc & descriptor::REGS_SAME != 0 {
            prev.regs
        } else {
            RegSet(r.uword()?)
        };
        let derivations = if desc & descriptor::DER_EMPTY != 0 {
            Vec::new()
        } else if desc & descriptor::DER_SAME != 0 {
            prev.derivations.clone()
        } else {
            read_derivations(r)?
        };
        let killed = if desc & descriptor::KILLED_EMPTY != 0 {
            Vec::new()
        } else if desc & descriptor::KILLED_SAME != 0 {
            prev.killed.clone()
        } else {
            match scheme.layout {
                TableLayout::DeltaMain => {
                    let n_words = ground.len().div_ceil(32);
                    let mut slots = Vec::new();
                    for w in 0..n_words {
                        let bits = r.uword()?;
                        for b in 0..32 {
                            if bits & (1 << b) != 0 {
                                let gi = w * 32 + b;
                                let entry = ground
                                    .get(gi)
                                    .ok_or_else(|| r.err("killed bit out of range"))?;
                                slots.push(*entry);
                            }
                        }
                    }
                    slots
                }
                TableLayout::FullInfo => {
                    let n = r.uword()? as usize;
                    let mut slots = Vec::with_capacity(n);
                    for _ in 0..n {
                        let w = r.word()?;
                        slots.push(
                            GroundEntry::from_word(w).ok_or_else(|| r.err("bad killed word"))?,
                        );
                    }
                    slots
                }
            }
        };
        Ok(DecodedPoint { pc: 0, stack_slots, regs, derivations, killed })
    }
}

impl<'a> TableDecoder<'a> {
    /// Indexes an encoded table stream. This is the one constructor:
    /// indexing reads the whole stream, so construction is inherently
    /// fallible and every caller must face the [`DecodeError`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream is truncated or contains
    /// invalid words.
    pub fn build(encoded: &'a EncodedTables) -> Result<TableDecoder<'a>, DecodeError> {
        Ok(TableDecoder { index: DecoderIndex::build(encoded)?, bytes: &encoded.bytes })
    }

    /// Wraps a prebuilt (already validated) index around the stream it was
    /// built from.
    #[must_use]
    pub fn from_index(index: DecoderIndex, encoded: &'a EncodedTables) -> TableDecoder<'a> {
        TableDecoder { index, bytes: &encoded.bytes }
    }

    /// Number of procedures in the stream.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.index.num_procs()
    }

    /// All gc-point pcs, ascending.
    pub fn gc_point_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.index.gc_point_pcs()
    }

    /// Entry pc of the procedure containing gc-point `pc`, if any.
    #[must_use]
    pub fn proc_entry_of(&self, pc: u32) -> Option<u32> {
        self.index.proc_entry_of(pc)
    }

    /// Decodes the tables for the gc-point at exactly `pc`.
    ///
    /// Returns `None` if `pc` is not a gc-point. This is the per-frame
    /// operation the collector performs during a stack trace: find the
    /// tables via the pc map, then decode them (sequentially from the
    /// procedure's first gc-point, as *Previous* requires).
    #[must_use]
    pub fn lookup(&self, pc: u32) -> Option<DecodedPoint> {
        self.index.lookup(self.bytes, pc)
    }

    /// Decodes every gc-point of every procedure, in stream order.
    ///
    /// Used by tests and by bulk consumers; collectors use a
    /// [`DecodeCache`].
    #[must_use]
    pub fn decode_all(&self) -> Vec<DecodedPoint> {
        let mut out = Vec::new();
        for idx in &self.index.procs {
            let ground = DecoderIndex::read_ground(self.index.scheme, self.bytes, idx)
                .expect("validated at construction");
            let mut r = Reader {
                packing: self.index.scheme.packing,
                bytes: self.bytes,
                pos: idx.points_off,
            };
            let mut point = DecodedPoint::default();
            for k in 0..idx.n_points {
                point = DecoderIndex::read_point(self.index.scheme, &mut r, &ground, &point)
                    .expect("validated at construction");
                point.pc = idx.pcs[k];
                out.push(point.clone());
            }
        }
        out
    }
}

/// Counters describing the decode work a [`DecodeCache`] has performed.
///
/// `points_decoded` counts individual gc-point decode operations (the unit
/// §6.3's overhead discussion is about); without a cache, a lookup at the
/// *k*-th gc-point of a procedure costs *k*+1 of them, every time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCounters {
    /// Lookups served entirely from memoized points.
    pub hits: u64,
    /// Lookups that had to decode at least one gc-point.
    pub misses: u64,
    /// Individual gc-point decode operations performed.
    pub points_decoded: u64,
}

impl DecodeCounters {
    /// Component-wise difference against an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: DecodeCounters) -> DecodeCounters {
        DecodeCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            points_decoded: self.points_decoded - earlier.points_decoded,
        }
    }

    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Per-procedure memoization state: the decoded prefix and the checkpoint
/// from which decoding resumes.
#[derive(Debug, Clone)]
struct ProcCacheState {
    /// Lazily decoded ground table (δ-main layouts only).
    ground: Option<Vec<GroundEntry>>,
    /// Fully resolved gc-points `0..points.len()` — always a prefix, since
    /// *Previous* makes decoding strictly sequential.
    points: Vec<DecodedPoint>,
    /// Byte position just past the last decoded point: the resume
    /// checkpoint for the next miss in this procedure.
    resume_pos: usize,
}

/// A memoizing decode front-end for the collector.
///
/// The encoded tables of a loaded module never change, so every
/// [`DecodedPoint`] this cache resolves is kept for the lifetime of the
/// module. A miss at gc-point *k* of a procedure resumes the sequential
/// decode from the procedure's prefix checkpoint (the last point already
/// decoded) rather than from the procedure's first gc-point, so each
/// gc-point is decoded **at most once** ever; repeated collections of the
/// same stacks are pure cache hits.
///
/// Invariants (see DESIGN.md §"Decode cache"):
///
/// * the cache must only be consulted with the byte stream its index was
///   built from (same module, immutable tables);
/// * memoized points per procedure always form a prefix — checkpoint
///   granularity is exactly one gc-point;
/// * memory is bounded by the fully decoded tables of the module (what
///   [`TableDecoder::decode_all`] would return), reached only if every
///   gc-point is eventually consulted.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    /// The validated index, shareable across caches: parallel gc workers
    /// each keep a private memoizing cache over one `Arc`'d index built
    /// at module load (the encoded bytes themselves live in the module).
    index: Arc<DecoderIndex>,
    procs: Vec<ProcCacheState>,
    /// Identity of the module this cache is bound to (a VM-assigned
    /// token); `None` until first bound.
    module_token: Option<u64>,
    counters: DecodeCounters,
}

impl DecodeCache {
    /// Wraps a prebuilt index.
    #[must_use]
    pub fn new(index: DecoderIndex) -> DecodeCache {
        DecodeCache::with_shared_index(Arc::new(index))
    }

    /// Wraps an index that is already shared. Several caches built over
    /// the same `Arc` (one per gc worker) memoize independently but pay
    /// the indexing pass only once.
    #[must_use]
    pub fn with_shared_index(index: Arc<DecoderIndex>) -> DecodeCache {
        let procs = index
            .procs
            .iter()
            .map(|p| ProcCacheState { ground: None, points: Vec::new(), resume_pos: p.points_off })
            .collect();
        DecodeCache { index, procs, module_token: None, counters: DecodeCounters::default() }
    }

    /// Indexes an encoded table stream and wraps it in a fresh cache.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream is truncated or contains
    /// invalid words.
    pub fn build(encoded: &EncodedTables) -> Result<DecodeCache, DecodeError> {
        Ok(DecodeCache::new(DecoderIndex::build(encoded)?))
    }

    /// The underlying index.
    #[must_use]
    pub fn index(&self) -> &DecoderIndex {
        &self.index
    }

    /// A clonable handle to the underlying index, for building sibling
    /// caches without re-indexing.
    #[must_use]
    pub fn shared_index(&self) -> Arc<DecoderIndex> {
        Arc::clone(&self.index)
    }

    /// Binds the cache to a module identity token (e.g.
    /// `Machine::module_token`). The first bind sticks; rebinding to a
    /// different token panics, because memoized points from one module's
    /// tables must never serve another's.
    ///
    /// # Panics
    ///
    /// Panics if already bound to a different token.
    pub fn bind_module(&mut self, token: u64) {
        match self.module_token {
            None => self.module_token = Some(token),
            Some(t) => assert_eq!(t, token, "DecodeCache reused across modules"),
        }
    }

    /// The module token this cache is bound to, if any.
    #[must_use]
    pub fn module_token(&self) -> Option<u64> {
        self.module_token
    }

    /// Cumulative hit/miss/decode-op counters.
    #[must_use]
    pub fn counters(&self) -> DecodeCounters {
        self.counters
    }

    /// Resets the counters (the memoized points stay).
    pub fn reset_counters(&mut self) {
        self.counters = DecodeCounters::default();
    }

    /// Number of gc-points currently memoized (the memory bound is the
    /// module's total gc-point count).
    #[must_use]
    pub fn memoized_points(&self) -> usize {
        self.procs.iter().map(|p| p.points.len()).sum()
    }

    /// Decodes (or serves from memo) the tables for the gc-point at
    /// exactly `pc`. `bytes` must be the stream the index was built from.
    ///
    /// Returns `None` if `pc` is not a gc-point.
    ///
    /// # Panics
    ///
    /// Panics if the stream differs from the one validated at
    /// construction.
    pub fn lookup(&mut self, bytes: &[u8], pc: u32) -> Option<&DecodedPoint> {
        let i = self.index.point_index.binary_search_by_key(&pc, |&(p, _, _)| p).ok()?;
        let (_, proc_i, pt_i) = self.index.point_index[i];
        let pt_i = pt_i as usize;
        let idx = &self.index.procs[proc_i as usize];
        let scheme = self.index.scheme;
        let ProcCacheState { ground, points, resume_pos } = &mut self.procs[proc_i as usize];
        if pt_i < points.len() {
            self.counters.hits += 1;
            return Some(&points[pt_i]);
        }
        self.counters.misses += 1;
        if ground.is_none() {
            *ground = Some(
                DecoderIndex::read_ground(scheme, bytes, idx).expect("validated at construction"),
            );
        }
        let ground = ground.as_deref().expect("just populated");
        let mut r = Reader { packing: scheme.packing, bytes, pos: *resume_pos };
        let empty = DecodedPoint::default();
        for k in points.len()..=pt_i {
            let prev = points.last().unwrap_or(&empty);
            let mut point = DecoderIndex::read_point(scheme, &mut r, ground, prev)
                .expect("validated at construction");
            point.pc = idx.pcs[k];
            points.push(point);
            self.counters.points_decoded += 1;
        }
        *resume_pos = r.pos;
        Some(&points[pt_i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_module;
    use crate::layout::BaseReg;
    use crate::tables::{GcPointTables, ModuleTables, ProcTables};

    fn ge(off: i32) -> GroundEntry {
        GroundEntry::new(BaseReg::Fp, off)
    }

    fn sample_module() -> ModuleTables {
        ModuleTables {
            procs: vec![
                ProcTables {
                    name: "a".into(),
                    entry_pc: 0,
                    ground: vec![ge(0), ge(1), ge(4)],
                    points: vec![
                        GcPointTables {
                            pc: 6,
                            live_stack: vec![0, 1],
                            regs: RegSet::single(2),
                            derivations: vec![DerivationRecord::Simple {
                                target: Location::Reg(5),
                                bases: vec![
                                    (Location::Slot(BaseReg::Fp, 0), Sign::Plus),
                                    (Location::Slot(BaseReg::Fp, 1), Sign::Minus),
                                ],
                            }],
                            killed: vec![],
                        },
                        GcPointTables {
                            pc: 14,
                            live_stack: vec![0, 1],
                            regs: RegSet::single(2),
                            derivations: vec![],
                            killed: vec![2],
                        },
                        GcPointTables {
                            pc: 30,
                            live_stack: vec![2],
                            killed: vec![0, 1],
                            ..Default::default()
                        },
                    ],
                },
                ProcTables {
                    name: "b".into(),
                    entry_pc: 100,
                    ground: vec![ge(-2)],
                    points: vec![GcPointTables {
                        pc: 108,
                        live_stack: vec![0],
                        regs: RegSet::EMPTY,
                        derivations: vec![DerivationRecord::Ambiguous {
                            target: Location::Reg(1),
                            path_var: Location::Slot(BaseReg::Fp, 3),
                            variants: vec![
                                vec![(Location::Slot(BaseReg::Fp, -2), Sign::Plus)],
                                vec![(Location::Reg(2), Sign::Plus)],
                            ],
                        }],
                        killed: vec![],
                    }],
                },
            ],
        }
    }

    fn expect_roundtrip(scheme: Scheme) {
        let m = sample_module();
        let enc = encode_module(&m, scheme);
        let dec = TableDecoder::build(&enc).unwrap();
        assert_eq!(dec.num_procs(), 2);
        for proc in &m.procs {
            for (i, pt) in proc.points.iter().enumerate() {
                let d = dec.lookup(pt.pc).unwrap_or_else(|| panic!("{scheme}: pc {}", pt.pc));
                assert_eq!(d.stack_slots, proc.live_slots(i), "{scheme} stack at pc {}", pt.pc);
                assert_eq!(d.regs, pt.regs, "{scheme} regs at pc {}", pt.pc);
                assert_eq!(d.derivations, pt.derivations, "{scheme} derivs at pc {}", pt.pc);
                assert_eq!(d.killed, proc.killed_slots(i), "{scheme} killed at pc {}", pt.pc);
            }
        }
    }

    #[test]
    fn roundtrip_all_schemes() {
        for scheme in Scheme::TABLE2 {
            expect_roundtrip(scheme);
        }
    }

    #[test]
    fn lookup_misses_non_gc_points() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let dec = TableDecoder::build(&enc).unwrap();
        assert_eq!(dec.lookup(7), None);
        assert_eq!(dec.lookup(0), None);
    }

    #[test]
    fn decode_all_matches_lookups() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let dec = TableDecoder::build(&enc).unwrap();
        let all = dec.decode_all();
        assert_eq!(all.len(), 4);
        for p in &all {
            assert_eq!(dec.lookup(p.pc).as_ref(), Some(p));
        }
    }

    #[test]
    fn proc_entry_lookup() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let dec = TableDecoder::build(&enc).unwrap();
        assert_eq!(dec.proc_entry_of(108), Some(100));
        assert_eq!(dec.proc_entry_of(6), Some(0));
        assert_eq!(dec.proc_entry_of(7), None);
    }

    #[test]
    fn from_index_reuses_a_prebuilt_index() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let index = DecoderIndex::build(&enc).unwrap();
        let dec = TableDecoder::from_index(index, &enc);
        assert_eq!(dec.num_procs(), 2);
        assert!(dec.lookup(14).is_some());
    }

    #[test]
    fn truncated_stream_reports_error() {
        let mut enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        enc.bytes.truncate(enc.bytes.len() / 2);
        assert!(TableDecoder::build(&enc).is_err());
        assert!(DecodeCache::build(&enc).is_err());
    }

    #[test]
    fn fresh_cache_for_second_module_does_not_serve_stale_points() {
        // Two modules whose procedures collide on index *and* pc layout
        // but carry different tables: the second module's cache must
        // decode its own stream cold (miss, not hit) and must not leak
        // the first module's memoized entries.
        let first = sample_module();
        let mut second = sample_module();
        second.procs[0].points[0].live_stack = vec![2]; // FP+4, not {FP+0, FP+1}
        let enc_a = encode_module(&first, Scheme::DELTA_MAIN_PP);
        let enc_b = encode_module(&second, Scheme::DELTA_MAIN_PP);

        let mut cache_a = DecodeCache::build(&enc_a).unwrap();
        cache_a.bind_module(1);
        let slots_a = cache_a.lookup(&enc_a.bytes, 6).unwrap().stack_slots.clone();
        assert_eq!(cache_a.counters(), DecodeCounters { hits: 0, misses: 1, points_decoded: 1 });

        let mut cache_b = DecodeCache::build(&enc_b).unwrap();
        cache_b.bind_module(2);
        let slots_b = cache_b.lookup(&enc_b.bytes, 6).unwrap().stack_slots.clone();
        assert_eq!(
            cache_b.counters(),
            DecodeCounters { hits: 0, misses: 1, points_decoded: 1 },
            "second cache must start cold, not inherit memos"
        );
        assert_ne!(slots_a, slots_b, "colliding pc must decode per-module tables");
        assert_eq!(slots_b, vec![ge(4)]);

        // The first cache is untouched and still serves its own entry.
        assert_eq!(cache_a.lookup(&enc_a.bytes, 6).unwrap().stack_slots, slots_a);
        assert_eq!(cache_a.counters(), DecodeCounters { hits: 1, misses: 1, points_decoded: 1 });
    }

    #[test]
    #[should_panic(expected = "DecodeCache reused across modules")]
    fn rebinding_cache_to_another_module_panics() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let mut cache = DecodeCache::build(&enc).unwrap();
        cache.bind_module(1);
        cache.bind_module(2);
    }

    #[test]
    fn cache_agrees_with_decoder_under_every_scheme() {
        let m = sample_module();
        for scheme in Scheme::TABLE2 {
            let enc = encode_module(&m, scheme);
            let dec = TableDecoder::build(&enc).unwrap();
            let mut cache = DecodeCache::build(&enc).unwrap();
            // Twice: first pass populates, second pass must serve memos.
            for _ in 0..2 {
                for pc in dec.gc_point_pcs().collect::<Vec<_>>() {
                    assert_eq!(
                        cache.lookup(&enc.bytes, pc),
                        dec.lookup(pc).as_ref(),
                        "{scheme}: pc {pc}"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_counts_hits_misses_and_decode_ops() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let mut cache = DecodeCache::build(&enc).unwrap();
        // Procedure `a` has points at pcs 6, 14, 30; `b` at 108.
        // Cold lookup at the *last* point of `a` decodes the whole prefix.
        assert!(cache.lookup(&enc.bytes, 30).is_some());
        assert_eq!(cache.counters(), DecodeCounters { hits: 0, misses: 1, points_decoded: 3 });
        // Earlier points of `a` are now memoized: pure hits.
        assert!(cache.lookup(&enc.bytes, 6).is_some());
        assert!(cache.lookup(&enc.bytes, 14).is_some());
        assert_eq!(cache.counters(), DecodeCounters { hits: 2, misses: 1, points_decoded: 3 });
        // A different procedure misses independently.
        assert!(cache.lookup(&enc.bytes, 108).is_some());
        assert_eq!(cache.counters(), DecodeCounters { hits: 2, misses: 2, points_decoded: 4 });
        // Warm repeat of everything: hits only, no further decode ops.
        for pc in [6, 14, 30, 108] {
            assert!(cache.lookup(&enc.bytes, pc).is_some());
        }
        assert_eq!(cache.counters(), DecodeCounters { hits: 6, misses: 2, points_decoded: 4 });
        assert_eq!(cache.memoized_points(), 4);
        assert_eq!(cache.lookup(&enc.bytes, 7), None, "non-gc-point pc");
    }

    #[test]
    fn cache_resumes_from_prefix_checkpoint() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let mut cache = DecodeCache::build(&enc).unwrap();
        // Decode the prefix up to the middle point, then extend by one:
        // the extension must cost exactly one decode op, not a rewalk.
        assert!(cache.lookup(&enc.bytes, 14).is_some());
        let mid = cache.counters();
        assert_eq!(mid.points_decoded, 2);
        assert!(cache.lookup(&enc.bytes, 30).is_some());
        let end = cache.counters();
        assert_eq!(end.since(mid), DecodeCounters { hits: 0, misses: 1, points_decoded: 1 });
    }

    #[test]
    fn cache_module_binding_is_sticky() {
        let enc = encode_module(&sample_module(), Scheme::DELTA_MAIN_PP);
        let mut cache = DecodeCache::build(&enc).unwrap();
        assert_eq!(cache.module_token(), None);
        cache.bind_module(17);
        cache.bind_module(17);
        assert_eq!(cache.module_token(), Some(17));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.bind_module(18)));
        assert!(r.is_err(), "rebinding to another module must panic");
    }
}
