//! Statistics over gc-map tables, matching the columns of the paper's
//! Tables 1 and 2.

use crate::encode::{encode_module, Scheme, SectionSizes};
use crate::tables::ModuleTables;

/// What kind of collection a `GcStats` record describes.
///
/// The seed system only had full-heap semispace collections; the
/// generational extension splits the count into minor (nursery-only) and
/// major (nursery + tenured) passes so `--stats` and the benches can price
/// them separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcKind {
    /// Full-heap semispace collection (the seed collector).
    #[default]
    Full,
    /// Generational minor collection: nursery + remembered set only.
    Minor,
    /// Generational major collection: nursery and tenured space together.
    Major,
}

impl std::fmt::Display for GcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcKind::Full => write!(f, "full"),
            GcKind::Minor => write!(f, "minor"),
            GcKind::Major => write!(f, "major"),
        }
    }
}

/// Write-barrier event counters, sequential-store-buffer style.
///
/// `executed` counts dynamic barrier-store executions; `recorded` the
/// subset that pushed a slot into the remembered set; `deduped` the subset
/// filtered by the card-granularity duplicate cache. Executions that store
/// NIL, a non-nursery value, or target a non-tenured slot are
/// value-filtered and appear in none of the latter two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BarrierCounters {
    /// Barrier store instructions executed.
    pub executed: u64,
    /// Slots recorded into the remembered set.
    pub recorded: u64,
    /// Slots skipped by the card-granularity dedup cache.
    pub deduped: u64,
}

impl BarrierCounters {
    /// Executions filtered before reaching the remembered set (NIL or
    /// non-nursery value, non-tenured target, or dedup hit).
    #[must_use]
    pub fn filtered(&self) -> u64 {
        self.executed.saturating_sub(self.recorded + self.deduped)
    }
}

/// The per-program statistics of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// `NGC`: number of gc-points with at least one non-empty table.
    pub ngc: usize,
    /// Total number of gc-points (including all-empty ones).
    pub total_gc_points: usize,
    /// `NPTRS`: total number of pointer locations across all ground tables.
    pub nptrs: usize,
    /// `NDEL`: number of (non-empty) stack-pointer delta tables.
    pub ndel: usize,
    /// `NREG`: number of (non-empty) register pointer tables.
    pub nreg: usize,
    /// `NDER`: number of (non-empty) derivations tables.
    pub nder: usize,
}

/// Computes Table 1 statistics for a module.
#[must_use]
pub fn table_stats(module: &ModuleTables) -> TableStats {
    let mut s = TableStats::default();
    for proc in &module.procs {
        s.nptrs += proc.ground.len();
        for point in &proc.points {
            s.total_gc_points += 1;
            if !point.is_empty() {
                s.ngc += 1;
            }
            if !point.live_stack.is_empty() {
                s.ndel += 1;
            }
            if !point.regs.is_empty() {
                s.nreg += 1;
            }
            if !point.derivations.is_empty() {
                s.nder += 1;
            }
        }
    }
    s
}

/// Table sizes under one scheme, both absolute and relative to code size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Per-section byte counts.
    pub sizes: SectionSizes,
    /// Total table bytes.
    pub total_bytes: usize,
    /// Table bytes as a percentage of code size (Table 2's unit).
    pub percent_of_code: f64,
}

/// Encodes `module` under `scheme` and reports sizes relative to
/// `code_bytes` of generated code.
#[must_use]
pub fn size_report(module: &ModuleTables, scheme: Scheme, code_bytes: usize) -> SizeReport {
    let encoded = encode_module(module, scheme);
    let total = encoded.bytes.len();
    let percent = if code_bytes == 0 { 0.0 } else { 100.0 * total as f64 / code_bytes as f64 };
    SizeReport { scheme, sizes: encoded.sizes, total_bytes: total, percent_of_code: percent }
}

/// Size reports for all six Table 2 scheme columns.
#[must_use]
pub fn table2_row(module: &ModuleTables, code_bytes: usize) -> Vec<SizeReport> {
    Scheme::TABLE2.iter().map(|&s| size_report(module, s, code_bytes)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{BaseReg, GroundEntry, RegSet};
    use crate::tables::{GcPointTables, ProcTables};

    fn module() -> ModuleTables {
        ModuleTables {
            procs: vec![ProcTables {
                name: "p".into(),
                entry_pc: 0,
                ground: vec![GroundEntry::new(BaseReg::Fp, 0), GroundEntry::new(BaseReg::Fp, 1)],
                points: vec![
                    GcPointTables {
                        pc: 4,
                        live_stack: vec![0],
                        regs: RegSet::single(1),
                        ..Default::default()
                    },
                    GcPointTables { pc: 9, ..Default::default() },
                ],
            }],
        }
    }

    #[test]
    fn stats_count_non_empty_tables() {
        let s = table_stats(&module());
        assert_eq!(s.total_gc_points, 2);
        assert_eq!(s.ngc, 1);
        assert_eq!(s.nptrs, 2);
        assert_eq!(s.ndel, 1);
        assert_eq!(s.nreg, 1);
        assert_eq!(s.nder, 0);
    }

    #[test]
    fn size_report_percentage() {
        let r = size_report(&module(), Scheme::DELTA_MAIN_PP, 100);
        assert_eq!(r.total_bytes, r.sizes.total());
        assert!((r.percent_of_code - r.total_bytes as f64).abs() < 1e-9);
    }

    #[test]
    fn zero_code_size_does_not_divide_by_zero() {
        let r = size_report(&module(), Scheme::DELTA_MAIN_PP, 0);
        assert_eq!(r.percent_of_code, 0.0);
    }

    #[test]
    fn table2_row_has_six_columns() {
        let rows = table2_row(&module(), 100);
        assert_eq!(rows.len(), 6);
        // PP must not be larger than plain δ-main.
        assert!(rows[5].total_bytes <= rows[2].total_bytes);
    }
}
