//! Variable-length byte packing of 32-bit words (paper Figure 3).
//!
//! The table generator works in two phases: phase one produces tables of
//! 32-bit words; phase two packs each word into as few bytes as possible.
//! The high bit of each byte says whether the *following* byte is also part
//! of the word; bytes are stored from most- to least-significant, and the
//! first byte is sign-extended (many frame offsets, hence many word values,
//! are negative).

/// Maximum number of bytes a packed 32-bit word can occupy (⌈32/7⌉ = 5).
pub const MAX_PACKED_LEN: usize = 5;

/// Continuation flag: set on every byte except the last byte of a word.
const CONT: u8 = 0x80;

/// Number of payload bits per byte.
const BITS: u32 = 7;

/// Returns the number of bytes needed to pack `value`.
///
/// The encoding is minimal: the shortest prefix whose sign-extension
/// reproduces the value.
#[must_use]
pub fn packed_len(value: i32) -> usize {
    for n in 1..MAX_PACKED_LEN {
        let bits = BITS * n as u32;
        // Does the value fit in `bits` bits as a signed quantity?
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        if i64::from(value) >= min && i64::from(value) <= max {
            return n;
        }
    }
    MAX_PACKED_LEN
}

/// Packs one word onto the end of `out`, returning the number of bytes
/// written.
pub fn pack_word(value: i32, out: &mut Vec<u8>) -> usize {
    let n = packed_len(value);
    for i in (0..n).rev() {
        let payload = ((value >> (BITS as usize * i)) & 0x7f) as u8;
        let flag = if i == 0 { 0 } else { CONT };
        out.push(flag | payload);
    }
    n
}

/// Packs a slice of words.
#[must_use]
pub fn pack_words(values: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for &v in values {
        pack_word(v, &mut out);
    }
    out
}

/// Returns the number of bytes needed to pack `value` zero-extended.
///
/// Bitmaps and element counts are inherently unsigned; packing them without
/// sign extension lets e.g. a 7-entry delta bitmap fit in one byte.
#[must_use]
pub fn packed_ulen(value: u32) -> usize {
    for n in 1..MAX_PACKED_LEN {
        if u64::from(value) < 1u64 << (BITS * n as u32) {
            return n;
        }
    }
    MAX_PACKED_LEN
}

/// Packs one zero-extended word onto `out`, returning the bytes written.
pub fn pack_uword(value: u32, out: &mut Vec<u8>) -> usize {
    let n = packed_ulen(value);
    for i in (0..n).rev() {
        let payload = ((value >> (BITS as usize * i)) & 0x7f) as u8;
        let flag = if i == 0 { 0 } else { CONT };
        out.push(flag | payload);
    }
    n
}

/// Unpacks one zero-extended word starting at `pos`.
///
/// # Errors
///
/// Returns [`UnpackError`] if the buffer ends mid-word or the word is longer
/// than [`MAX_PACKED_LEN`] bytes.
pub fn unpack_uword(bytes: &[u8], pos: usize) -> Result<(u32, usize), UnpackError> {
    let err = UnpackError { offset: pos };
    let mut value: u64 = 0;
    let mut len = 0;
    loop {
        if len >= MAX_PACKED_LEN {
            return Err(err);
        }
        let b = *bytes.get(pos + len).ok_or(err)?;
        value = (value << BITS) | u64::from(b & 0x7f);
        len += 1;
        if b & CONT == 0 {
            break;
        }
    }
    Ok((value as u32, len))
}

/// Error returned when unpacking runs off the end of the buffer or a word
/// exceeds [`MAX_PACKED_LEN`] bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnpackError {
    /// Byte offset at which the malformed word started.
    pub offset: usize,
}

impl std::fmt::Display for UnpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed packed word at byte offset {}", self.offset)
    }
}

impl std::error::Error for UnpackError {}

/// Unpacks one word starting at `pos`, returning the word and the number of
/// bytes consumed.
///
/// # Errors
///
/// Returns [`UnpackError`] if the buffer ends mid-word or the word is longer
/// than [`MAX_PACKED_LEN`] bytes.
pub fn unpack_word(bytes: &[u8], pos: usize) -> Result<(i32, usize), UnpackError> {
    let err = UnpackError { offset: pos };
    let first = *bytes.get(pos).ok_or(err)?;
    // Sign-extend the first byte's 7 payload bits.
    let mut value = i64::from(((first & 0x7f) as i8) << 1 >> 1);
    let mut len = 1;
    let mut cont = first & CONT != 0;
    while cont {
        if len >= MAX_PACKED_LEN {
            return Err(err);
        }
        let b = *bytes.get(pos + len).ok_or(err)?;
        value = (value << BITS) | i64::from(b & 0x7f);
        cont = b & CONT != 0;
        len += 1;
    }
    Ok((value as i32, len))
}

/// Unpacks exactly `count` words starting at `pos`, returning the words and
/// the total number of bytes consumed.
///
/// # Errors
///
/// Propagates [`UnpackError`] from [`unpack_word`].
pub fn unpack_words(
    bytes: &[u8],
    pos: usize,
    count: usize,
) -> Result<(Vec<i32>, usize), UnpackError> {
    let mut words = Vec::with_capacity(count);
    let mut offset = 0;
    for _ in 0..count {
        let (w, n) = unpack_word(bytes, pos + offset)?;
        words.push(w);
        offset += n;
    }
    Ok((words, offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_fit_in_one_byte() {
        for v in -64..=63 {
            assert_eq!(packed_len(v), 1, "value {v}");
        }
        assert_eq!(packed_len(64), 2);
        assert_eq!(packed_len(-65), 2);
    }

    #[test]
    fn boundary_lengths() {
        assert_eq!(packed_len(8191), 2);
        assert_eq!(packed_len(8192), 3);
        assert_eq!(packed_len(-8192), 2);
        assert_eq!(packed_len(-8193), 3);
        assert_eq!(packed_len(i32::MAX), 5);
        assert_eq!(packed_len(i32::MIN), 5);
    }

    #[test]
    fn roundtrip_selected() {
        for &v in &[0, 1, -1, 63, 64, -64, -65, 127, 128, 8191, 8192, i32::MAX, i32::MIN] {
            let mut buf = Vec::new();
            let n = pack_word(v, &mut buf);
            assert_eq!(n, buf.len());
            let (back, m) = unpack_word(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(m, n);
        }
    }

    #[test]
    fn continuation_bit_layout() {
        // 200 needs two bytes: payload bits 0b0000001_1001000.
        let mut buf = Vec::new();
        pack_word(200, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0] & CONT, CONT, "first byte carries continuation bit");
        assert_eq!(buf[1] & CONT, 0, "last byte has continuation bit clear");
        assert_eq!(buf[0] & 0x7f, 0b0000001);
        assert_eq!(buf[1] & 0x7f, 0b1001000);
    }

    #[test]
    fn negative_offsets_stay_single_byte() {
        // Common frame offsets are small negatives; they must pack to 1 byte.
        let mut buf = Vec::new();
        pack_word(-3, &mut buf);
        assert_eq!(buf, vec![0x7d]);
        let (v, _) = unpack_word(&buf, 0).unwrap();
        assert_eq!(v, -3);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut buf = Vec::new();
        pack_word(100_000, &mut buf);
        buf.pop();
        assert!(unpack_word(&buf, 0).is_err());
    }

    #[test]
    fn overlong_word_is_an_error() {
        let buf = [CONT; 6];
        assert!(unpack_word(&buf, 0).is_err());
    }

    #[test]
    fn unsigned_roundtrip() {
        for &v in &[0u32, 1, 63, 64, 127, 128, 16_383, 16_384, u32::MAX] {
            let mut buf = Vec::new();
            let n = pack_uword(v, &mut buf);
            let (back, m) = unpack_uword(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(m, n);
        }
    }

    #[test]
    fn seven_bit_bitmap_fits_one_byte() {
        // A delta bitmap for a procedure with 7 ground entries, all live.
        assert_eq!(packed_ulen(0b111_1111), 1);
        assert_eq!(packed_ulen(0b1111_1111), 2);
    }

    #[test]
    fn register_mask_fits_two_bytes() {
        // Paper: register pointer tables compact to 1 or 2 bytes each.
        let all_regs = (1u32 << crate::layout::NUM_HARD_REGS) - 1;
        assert!(packed_ulen(all_regs) <= 2);
    }

    #[test]
    fn sign_extension_edges_roundtrip() {
        // The signed capacity of an n-byte word is [-2^(7n-1), 2^(7n-1)).
        // Walk every 7-bit boundary: the last value that fits n bytes and
        // the first that needs n+1, on both sides of zero.
        for n in 1..MAX_PACKED_LEN {
            let half = 1i64 << (BITS as usize * n - 1);
            for v in [
                (half - 1) as i32,  // largest n-byte positive
                half as i32,        // first (n+1)-byte positive
                (-half) as i32,     // most negative n-byte value
                (-half - 1) as i32, // first (n+1)-byte negative
            ] {
                let expected = if i64::from(v) >= -half && i64::from(v) < half { n } else { n + 1 };
                assert_eq!(packed_len(v), expected, "packed_len({v})");
                let mut buf = Vec::new();
                let wrote = pack_word(v, &mut buf);
                assert_eq!(wrote, expected, "pack_word({v}) length");
                let (back, read) = unpack_word(&buf, 0).unwrap();
                assert_eq!(back, v, "roundtrip at edge {v}");
                assert_eq!(read, wrote);
            }
        }
    }

    #[test]
    fn bytes_are_most_significant_first() {
        // 21-bit value 0b0000100_0000010_0000001: three payload septets
        // must appear high-to-low, continuation set on all but the last.
        let v = (4 << 14) | (2 << 7) | 1;
        let mut buf = Vec::new();
        pack_word(v, &mut buf);
        assert_eq!(buf, vec![CONT | 4, CONT | 2, 1]);
        // Unsigned packing uses the same ordering.
        let mut ubuf = Vec::new();
        pack_uword(v as u32, &mut ubuf);
        assert_eq!(ubuf, buf);
    }

    #[test]
    fn extreme_values_roundtrip_at_full_width() {
        for v in [i32::MIN, i32::MIN + 1, i32::MAX - 1, i32::MAX] {
            let mut buf = Vec::new();
            let n = pack_word(v, &mut buf);
            assert_eq!(n, MAX_PACKED_LEN, "extremes need all {MAX_PACKED_LEN} bytes");
            let (back, m) = unpack_word(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(m, n);
        }
        // And mixed into a stream with small neighbours.
        let words = vec![i32::MIN, -1, 0, 1, i32::MAX];
        let packed = pack_words(&words);
        let (back, len) = unpack_words(&packed, 0, words.len()).unwrap();
        assert_eq!(back, words);
        assert_eq!(len, packed.len());
    }

    #[test]
    fn multi_word_stream() {
        let words = vec![-1, 0, 1000, -70_000, 5];
        let packed = pack_words(&words);
        let (back, len) = unpack_words(&packed, 0, words.len()).unwrap();
        assert_eq!(back, words);
        assert_eq!(len, packed.len());
    }
}
