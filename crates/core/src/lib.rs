//! GC map tables for precise, fully compacting garbage collection.
//!
//! This crate is the heart of the reproduction of Diwan, Moss & Hudson,
//! *"Compiler Support for Garbage Collection in a Statically Typed
//! Language"* (PLDI 1992). The compiler emits, for every *gc-point* (a
//! program point where a collection may occur), three kinds of tables:
//!
//! * **stack pointer tables** — which frame slots hold live *tidy* pointers,
//! * **register pointer tables** — which hard registers hold live tidy
//!   pointers, and
//! * **derivation tables** — for every live *derived value* (a value created
//!   by pointer arithmetic), the locations of its base values and the sign
//!   with which each base participates.
//!
//! The collector uses these tables to find and update every pointer in the
//! stack and registers, which is what makes *every* heap object movable.
//!
//! The crate provides:
//!
//! * the logical table model ([`tables::ModuleTables`] and friends),
//! * the paper's encodings: the *δ-main* scheme (per-procedure ground table
//!   plus per-gc-point delta bitmaps) and the *full information* scheme,
//!   each with optional *Previous* (identical-to-previous elision via a
//!   per-gc-point descriptor byte) and *Packing* (variable-length byte
//!   packing of 32-bit words, Figure 3) compression ([`encode`]),
//! * a decoder used by the collector at trace time, plus a memoizing
//!   [`decode::DecodeCache`] that amortizes the compression/decoding
//!   trade-off across collections ([`decode`]),
//! * the pc→gc-point map stored as inter-gc-point distances ([`pcmap`]),
//! * and size/statistics accounting used to regenerate Tables 1 and 2 of
//!   the paper ([`stats`]).
//!
//! # Example
//!
//! ```
//! use m3gc_core::layout::{BaseReg, GroundEntry, RegSet};
//! use m3gc_core::tables::{GcPointTables, ModuleTables, ProcTables};
//! use m3gc_core::encode::{encode_module, Scheme};
//! use m3gc_core::decode::TableDecoder;
//!
//! let proc_tables = ProcTables {
//!     name: "main".into(),
//!     entry_pc: 0,
//!     ground: vec![GroundEntry::new(BaseReg::Fp, 2)],
//!     points: vec![GcPointTables {
//!         pc: 10,
//!         live_stack: vec![0],
//!         regs: RegSet::EMPTY,
//!         derivations: vec![],
//!         killed: vec![],
//!     }],
//! };
//! let module = ModuleTables { procs: vec![proc_tables] };
//! let encoded = encode_module(&module, Scheme::DELTA_MAIN_PP);
//! let decoder = TableDecoder::build(&encoded).expect("well-formed tables");
//! let point = decoder.lookup(10).expect("gc-point at pc 10");
//! assert_eq!(point.stack_slots, vec![GroundEntry::new(BaseReg::Fp, 2)]);
//! ```

pub mod decode;
pub mod derive;
pub mod encode;
pub mod heap;
pub mod layout;
pub mod pack;
pub mod pcmap;
pub mod stats;
pub mod tables;

pub use decode::{DecodeCache, DecodeCounters, DecodedPoint, TableDecoder};
pub use derive::{DerivationRecord, Sign};
pub use encode::{encode_module, EncodedTables, Scheme, TableLayout};
pub use layout::{BaseReg, GroundEntry, Location, RegSet, NUM_HARD_REGS};
pub use tables::{GcPointTables, ModuleTables, ProcTables};
