//! Derivation tables (paper §3, Figure 1, and §4).
//!
//! A *derived value* is any value created by pointer arithmetic; a *base
//! value* is any value participating in the derivation. Our tables handle
//! deriving expressions of the form `Σ pᵢ − Σ qⱼ + E` where the `pᵢ`/`qⱼ`
//! are pointers (or derived values) and `E` involves neither. The collector
//! updates a derived value in two steps: before objects move it recovers
//! `E` by applying the inverse operation for each base (`a := a − b₁ − b₃ +
//! b₂`), and after collection it re-derives the value from the relocated
//! bases.
//!
//! When multiple derivations of a value reach a gc-point (an *ambiguous
//! derivation*, §4), the compiler introduces a *path variable* recording
//! which derivation actually happened, emits a table per possible
//! derivation, and the collector selects the right one at run time from the
//! path variable's value.

use crate::layout::Location;

/// The sign with which a base value participates in a derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// The base is added in the deriving expression.
    Plus,
    /// The base is subtracted in the deriving expression.
    Minus,
}

impl Sign {
    /// The opposite sign.
    #[must_use]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }

    /// +1 or −1, as an `i64` multiplier.
    #[must_use]
    pub fn factor(self) -> i64 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }
}

impl std::fmt::Display for Sign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// One base of a derivation: where the base value lives and its sign.
pub type BaseRef = (Location, Sign);

/// The derivation of one live derived value at one gc-point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivationRecord {
    /// The common case: a single statically known derivation.
    Simple {
        /// Where the derived value lives.
        target: Location,
        /// The bases it was derived from, with their signs.
        bases: Vec<BaseRef>,
    },
    /// Multiple derivations reach this gc-point; the path variable's
    /// run-time value (an index) selects which variant applies.
    Ambiguous {
        /// Where the derived value lives.
        target: Location,
        /// Where the compiler-introduced path variable lives.
        path_var: Location,
        /// One base list per possible derivation, indexed by the path
        /// variable's value.
        variants: Vec<Vec<BaseRef>>,
    },
}

impl DerivationRecord {
    /// The location of the derived value itself.
    #[must_use]
    pub fn target(&self) -> Location {
        match self {
            DerivationRecord::Simple { target, .. }
            | DerivationRecord::Ambiguous { target, .. } => *target,
        }
    }

    /// True if this record needs a path variable at run time.
    #[must_use]
    pub fn is_ambiguous(&self) -> bool {
        matches!(self, DerivationRecord::Ambiguous { .. })
    }

    /// The bases of the variant selected by `path` (0 for simple records).
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range for an ambiguous record.
    #[must_use]
    pub fn bases_for_path(&self, path: usize) -> &[BaseRef] {
        match self {
            DerivationRecord::Simple { bases, .. } => bases,
            DerivationRecord::Ambiguous { variants, .. } => &variants[path],
        }
    }

    /// All locations this record can mention as a base, across variants.
    pub fn all_base_locations(&self) -> impl Iterator<Item = Location> + '_ {
        let slices: Vec<&[BaseRef]> = match self {
            DerivationRecord::Simple { bases, .. } => vec![bases.as_slice()],
            DerivationRecord::Ambiguous { variants, .. } => {
                variants.iter().map(Vec::as_slice).collect()
            }
        };
        slices.into_iter().flatten().map(|&(loc, _)| loc).collect::<Vec<_>>().into_iter()
    }
}

impl std::fmt::Display for DerivationRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn write_bases(f: &mut std::fmt::Formatter<'_>, bases: &[BaseRef]) -> std::fmt::Result {
            for (loc, sign) in bases {
                write!(f, " {sign} {loc}")?;
            }
            Ok(())
        }
        match self {
            DerivationRecord::Simple { target, bases } => {
                write!(f, "{target} := E")?;
                write_bases(f, bases)
            }
            DerivationRecord::Ambiguous { target, path_var, variants } => {
                write!(f, "{target} := E (path {path_var})")?;
                for (i, v) in variants.iter().enumerate() {
                    write!(f, " [{i}]:")?;
                    write_bases(f, v)?;
                }
                Ok(())
            }
        }
    }
}

/// Orders derivation records so that a derived value comes **before** any of
/// its base values (paper §3: "the derivations table of a derived value
/// comes before the derivations tables of its base values").
///
/// The collector visits records in this order when recovering `E`
/// (un-deriving) and in exactly the reverse order when re-deriving.
/// Circular dependencies cannot occur because derivations are always made
/// from previously computed base values, but this function is defensive: if
/// a cycle is present (malformed input), the residue is appended in the
/// original relative order rather than looping forever.
#[must_use]
pub fn order_derived_before_bases(records: Vec<DerivationRecord>) -> Vec<DerivationRecord> {
    let mut remaining: Vec<Option<DerivationRecord>> = records.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(remaining.len());
    // Repeatedly emit a record whose target is not a base of any remaining
    // record. O(n²) with tiny n: derived values are rare.
    loop {
        let mut emitted = false;
        for i in 0..remaining.len() {
            let Some(rec) = remaining[i].as_ref() else { continue };
            let target = rec.target();
            let is_base_of_other = remaining.iter().enumerate().any(|(j, other)| {
                j != i
                    && other
                        .as_ref()
                        .is_some_and(|o| o.all_base_locations().any(|loc| loc == target))
            });
            if !is_base_of_other {
                out.push(remaining[i].take().expect("checked above"));
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
    }
    // Defensive residue handling for (impossible) cycles.
    out.extend(remaining.into_iter().flatten());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{BaseReg, Location};

    fn slot(off: i32) -> Location {
        Location::Slot(BaseReg::Fp, off)
    }

    #[test]
    fn sign_behaviour() {
        assert_eq!(Sign::Plus.flip(), Sign::Minus);
        assert_eq!(Sign::Minus.factor(), -1);
        assert_eq!(format!("{}{}", Sign::Plus, Sign::Minus), "+-");
    }

    #[test]
    fn figure_1_derivation_table() {
        // a := b1 + b3 - b2 + E  (paper Figure 1): bases b1 (+), b2 (−), b3 (+).
        let rec = DerivationRecord::Simple {
            target: slot(0),
            bases: vec![(slot(1), Sign::Plus), (slot(2), Sign::Minus), (slot(3), Sign::Plus)],
        };
        assert_eq!(rec.target(), slot(0));
        assert!(!rec.is_ambiguous());
        assert_eq!(rec.bases_for_path(0).len(), 3);
        assert_eq!(rec.bases_for_path(0)[1], (slot(2), Sign::Minus));
    }

    #[test]
    fn ambiguous_record_selects_by_path() {
        let rec = DerivationRecord::Ambiguous {
            target: slot(0),
            path_var: slot(9),
            variants: vec![vec![(slot(1), Sign::Plus)], vec![(slot(2), Sign::Plus)]],
        };
        assert!(rec.is_ambiguous());
        assert_eq!(rec.bases_for_path(0), &[(slot(1), Sign::Plus)]);
        assert_eq!(rec.bases_for_path(1), &[(slot(2), Sign::Plus)]);
        let locs: Vec<_> = rec.all_base_locations().collect();
        assert_eq!(locs, vec![slot(1), slot(2)]);
    }

    #[test]
    fn ordering_puts_derived_before_its_base() {
        // d2 is derived from d1, which is derived from p.
        let d1 = DerivationRecord::Simple { target: slot(1), bases: vec![(slot(0), Sign::Plus)] };
        let d2 = DerivationRecord::Simple { target: slot(2), bases: vec![(slot(1), Sign::Plus)] };
        // Feed them base-first: the orderer must flip them.
        let ordered = order_derived_before_bases(vec![d1.clone(), d2.clone()]);
        assert_eq!(ordered, vec![d2, d1]);
    }

    #[test]
    fn ordering_is_stable_for_independent_records() {
        let a = DerivationRecord::Simple { target: slot(1), bases: vec![(slot(0), Sign::Plus)] };
        let b = DerivationRecord::Simple { target: slot(3), bases: vec![(slot(2), Sign::Plus)] };
        let ordered = order_derived_before_bases(vec![a.clone(), b.clone()]);
        assert_eq!(ordered, vec![a, b]);
    }

    #[test]
    fn ordering_survives_malformed_cycle() {
        let a = DerivationRecord::Simple { target: slot(1), bases: vec![(slot(2), Sign::Plus)] };
        let b = DerivationRecord::Simple { target: slot(2), bases: vec![(slot(1), Sign::Plus)] };
        let ordered = order_derived_before_bases(vec![a.clone(), b.clone()]);
        assert_eq!(ordered.len(), 2);
    }
}
