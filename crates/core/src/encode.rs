//! Binary encoding of gc-map tables under the paper's schemes (§5.1–5.2).
//!
//! Two **layouts**:
//!
//! * **full information**: each gc-point lists all of its live pointer
//!   slots directly;
//! * **δ-main**: each procedure has a *ground* (main) table of every slot
//!   that holds a pointer at some gc-point, and each gc-point carries only a
//!   *delta* bitmap — one liveness bit per ground entry.
//!
//! Two independent **compressions**:
//!
//! * **Previous**: a per-gc-point descriptor records when a table is empty
//!   or identical to the table at the preceding gc-point, in which case the
//!   table body is not emitted at all;
//! * **Packing**: phase-two byte packing of 32-bit words ([`crate::pack`]).
//!
//! Table 2 of the paper reports sizes for FullInfo×{Plain, Packing} and
//! δ-main×{Plain, Previous, Packing, Previous+Packing}; [`encode_module`]
//! reproduces all six. A descriptor is kept at each gc-point in every
//! scheme (one byte packed, one word plain).

use crate::derive::{DerivationRecord, Sign};
use crate::layout::{GroundEntry, Location};
use crate::pack;
use crate::tables::{GcPointTables, ModuleTables, ProcTables};

/// Which per-gc-point stack-table layout is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableLayout {
    /// Store the full list of live pointer slots at each gc-point.
    FullInfo,
    /// Per-procedure ground table plus per-gc-point liveness delta bitmaps.
    DeltaMain,
}

impl std::fmt::Display for TableLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableLayout::FullInfo => write!(f, "full-info"),
            TableLayout::DeltaMain => write!(f, "delta-main"),
        }
    }
}

/// A complete encoding scheme: layout plus the two compressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scheme {
    /// Stack-table layout.
    pub layout: TableLayout,
    /// Phase-two byte packing (Figure 3).
    pub packing: bool,
    /// Identical-to-previous elision via descriptor bits.
    pub previous: bool,
}

impl Scheme {
    /// Full information, no compression ("Plain" column).
    pub const FULL_PLAIN: Scheme =
        Scheme { layout: TableLayout::FullInfo, packing: false, previous: false };
    /// Full information with byte packing.
    pub const FULL_PACKED: Scheme =
        Scheme { layout: TableLayout::FullInfo, packing: true, previous: false };
    /// δ-main, no compression.
    pub const DELTA_PLAIN: Scheme =
        Scheme { layout: TableLayout::DeltaMain, packing: false, previous: false };
    /// δ-main with identical-to-previous elision only.
    pub const DELTA_PREVIOUS: Scheme =
        Scheme { layout: TableLayout::DeltaMain, packing: false, previous: true };
    /// δ-main with byte packing only.
    pub const DELTA_PACKED: Scheme =
        Scheme { layout: TableLayout::DeltaMain, packing: true, previous: false };
    /// δ-main with both compressions ("PP") — the production scheme.
    pub const DELTA_MAIN_PP: Scheme =
        Scheme { layout: TableLayout::DeltaMain, packing: true, previous: true };

    /// The six scheme combinations Table 2 reports, in column order.
    pub const TABLE2: [Scheme; 6] = [
        Scheme::FULL_PLAIN,
        Scheme::FULL_PACKED,
        Scheme::DELTA_PLAIN,
        Scheme::DELTA_PREVIOUS,
        Scheme::DELTA_PACKED,
        Scheme::DELTA_MAIN_PP,
    ];
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.layout)?;
        if self.previous {
            write!(f, "+previous")?;
        }
        if self.packing {
            write!(f, "+packing")?;
        }
        Ok(())
    }
}

/// Byte counts attributed to each table section, for Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSizes {
    /// Per-module and per-procedure headers (counts, entry pcs).
    pub headers: usize,
    /// Ground (main) tables (δ-main only).
    pub ground: usize,
    /// The pc→gc-point map (gc-point distances).
    pub pcmap: usize,
    /// Per-gc-point descriptors.
    pub descriptors: usize,
    /// Stack pointer tables (delta bitmaps or full slot lists).
    pub stack: usize,
    /// Register pointer tables.
    pub regs: usize,
    /// Derivation tables.
    pub derivations: usize,
    /// Killed (dead pointer slot) tables.
    pub killed: usize,
}

impl SectionSizes {
    /// Total bytes across all sections.
    #[must_use]
    pub fn total(&self) -> usize {
        self.headers
            + self.ground
            + self.pcmap
            + self.descriptors
            + self.stack
            + self.regs
            + self.derivations
            + self.killed
    }
}

/// Section tags for size accounting.
#[derive(Debug, Clone, Copy)]
enum Section {
    Headers,
    Ground,
    PcMap,
    Descriptors,
    Stack,
    Regs,
    Derivations,
    Killed,
}

/// Descriptor bits (one descriptor per gc-point).
pub(crate) mod descriptor {
    pub const STACK_EMPTY: u8 = 1 << 0;
    pub const STACK_SAME: u8 = 1 << 1;
    pub const REGS_EMPTY: u8 = 1 << 2;
    pub const REGS_SAME: u8 = 1 << 3;
    pub const DER_EMPTY: u8 = 1 << 4;
    pub const DER_SAME: u8 = 1 << 5;
    pub const KILLED_EMPTY: u8 = 1 << 6;
    pub const KILLED_SAME: u8 = 1 << 7;
}

/// The encoded tables for a module, plus size accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTables {
    /// The scheme the bytes were produced under.
    pub scheme: Scheme,
    /// The encoded byte stream.
    pub bytes: Vec<u8>,
    /// Bytes attributed to each section.
    pub sizes: SectionSizes,
}

struct Sink {
    packing: bool,
    bytes: Vec<u8>,
    sizes: SectionSizes,
}

impl Sink {
    fn new(packing: bool) -> Sink {
        Sink { packing, bytes: Vec::new(), sizes: SectionSizes::default() }
    }

    fn charge(&mut self, sec: Section, n: usize) {
        let slot = match sec {
            Section::Headers => &mut self.sizes.headers,
            Section::Ground => &mut self.sizes.ground,
            Section::PcMap => &mut self.sizes.pcmap,
            Section::Descriptors => &mut self.sizes.descriptors,
            Section::Stack => &mut self.sizes.stack,
            Section::Regs => &mut self.sizes.regs,
            Section::Derivations => &mut self.sizes.derivations,
            Section::Killed => &mut self.sizes.killed,
        };
        *slot += n;
    }

    /// A signed 32-bit word: packed or fixed 4 bytes.
    fn word(&mut self, sec: Section, v: i32) {
        let n = if self.packing {
            pack::pack_word(v, &mut self.bytes)
        } else {
            self.bytes.extend_from_slice(&v.to_le_bytes());
            4
        };
        self.charge(sec, n);
    }

    /// An unsigned 32-bit word (bitmaps, counts): packed or fixed 4 bytes.
    fn uword(&mut self, sec: Section, v: u32) {
        let n = if self.packing {
            pack::pack_uword(v, &mut self.bytes)
        } else {
            self.bytes.extend_from_slice(&v.to_le_bytes());
            4
        };
        self.charge(sec, n);
    }

    /// A gc-point descriptor: one byte packed, one word plain.
    fn descriptor(&mut self, v: u8) {
        if self.packing {
            self.bytes.push(v);
            self.charge(Section::Descriptors, 1);
        } else {
            self.uword(Section::Descriptors, u32::from(v));
        }
    }

    /// A fixed two-byte pc distance (§5.2: "our compiler assumes that
    /// distances between adjacent gc-points can fit in two bytes").
    fn pc_distance(&mut self, d: u32) {
        assert!(d <= u32::from(u16::MAX), "gc-point distance {d} exceeds two bytes");
        self.bytes.extend_from_slice(&(d as u16).to_le_bytes());
        self.charge(Section::PcMap, 2);
    }
}

fn delta_bitmap(indices: &[u32], n_ground: usize) -> Vec<u32> {
    let n_words = n_ground.div_ceil(32);
    let mut words = vec![0u32; n_words];
    for &idx in indices {
        words[idx as usize / 32] |= 1 << (idx % 32);
    }
    words
}

fn encode_signed_loc(sink: &mut Sink, loc: Location, sign: Sign) {
    let bit = match sign {
        Sign::Plus => 0,
        Sign::Minus => 1,
    };
    sink.word(Section::Derivations, (loc.to_word() << 1) | bit);
}

fn encode_derivations(sink: &mut Sink, derivations: &[DerivationRecord]) {
    sink.uword(Section::Derivations, derivations.len() as u32);
    for rec in derivations {
        sink.word(Section::Derivations, rec.target().to_word());
        match rec {
            DerivationRecord::Simple { bases, .. } => {
                sink.word(Section::Derivations, bases.len() as i32);
                for &(loc, sign) in bases {
                    encode_signed_loc(sink, loc, sign);
                }
            }
            DerivationRecord::Ambiguous { path_var, variants, .. } => {
                sink.word(Section::Derivations, -(variants.len() as i32));
                sink.word(Section::Derivations, path_var.to_word());
                for variant in variants {
                    sink.uword(Section::Derivations, variant.len() as u32);
                    for &(loc, sign) in variant {
                        encode_signed_loc(sink, loc, sign);
                    }
                }
            }
        }
    }
}

fn encode_proc(sink: &mut Sink, proc: &ProcTables, scheme: Scheme) {
    sink.uword(Section::Headers, proc.entry_pc);
    sink.uword(Section::Headers, proc.points.len() as u32);
    if scheme.layout == TableLayout::DeltaMain {
        sink.uword(Section::Headers, proc.ground.len() as u32);
        for entry in &proc.ground {
            sink.word(Section::Ground, entry.to_word());
        }
    }
    // pc map: distance of each point from the previous (first from entry).
    let mut prev_pc = proc.entry_pc;
    for point in &proc.points {
        sink.pc_distance(point.pc - prev_pc);
        prev_pc = point.pc;
    }
    let mut prev: Option<&GcPointTables> = None;
    for point in &proc.points {
        let mut desc = 0u8;
        let stack_same = scheme.previous && prev.is_some_and(|p| p.live_stack == point.live_stack);
        let regs_same = scheme.previous && prev.is_some_and(|p| p.regs == point.regs);
        let der_same = scheme.previous && prev.is_some_and(|p| p.derivations == point.derivations);
        let killed_same = scheme.previous && prev.is_some_and(|p| p.killed == point.killed);
        if point.live_stack.is_empty() {
            desc |= descriptor::STACK_EMPTY;
        } else if stack_same {
            desc |= descriptor::STACK_SAME;
        }
        if point.regs.is_empty() {
            desc |= descriptor::REGS_EMPTY;
        } else if regs_same {
            desc |= descriptor::REGS_SAME;
        }
        if point.derivations.is_empty() {
            desc |= descriptor::DER_EMPTY;
        } else if der_same {
            desc |= descriptor::DER_SAME;
        }
        if point.killed.is_empty() {
            desc |= descriptor::KILLED_EMPTY;
        } else if killed_same {
            desc |= descriptor::KILLED_SAME;
        }
        sink.descriptor(desc);

        if desc & (descriptor::STACK_EMPTY | descriptor::STACK_SAME) == 0 {
            match scheme.layout {
                TableLayout::DeltaMain => {
                    for w in delta_bitmap(&point.live_stack, proc.ground.len()) {
                        sink.uword(Section::Stack, w);
                    }
                }
                TableLayout::FullInfo => {
                    sink.uword(Section::Stack, point.live_stack.len() as u32);
                    for &idx in &point.live_stack {
                        let entry: GroundEntry = proc.ground[idx as usize];
                        sink.word(Section::Stack, entry.to_word());
                    }
                }
            }
        }
        if desc & (descriptor::REGS_EMPTY | descriptor::REGS_SAME) == 0 {
            sink.uword(Section::Regs, point.regs.0);
        }
        if desc & (descriptor::DER_EMPTY | descriptor::DER_SAME) == 0 {
            encode_derivations(sink, &point.derivations);
        }
        if desc & (descriptor::KILLED_EMPTY | descriptor::KILLED_SAME) == 0 {
            match scheme.layout {
                TableLayout::DeltaMain => {
                    for w in delta_bitmap(&point.killed, proc.ground.len()) {
                        sink.uword(Section::Killed, w);
                    }
                }
                TableLayout::FullInfo => {
                    sink.uword(Section::Killed, point.killed.len() as u32);
                    for &idx in &point.killed {
                        let entry: GroundEntry = proc.ground[idx as usize];
                        sink.word(Section::Killed, entry.to_word());
                    }
                }
            }
        }
        prev = Some(point);
    }
}

/// Encodes a module's tables under `scheme`.
///
/// # Panics
///
/// Panics if the distance between adjacent gc-points exceeds two bytes
/// (the compiler keeps procedures small enough that it never does), or if
/// the module fails [`ModuleTables::validate`] in debug builds.
#[must_use]
pub fn encode_module(module: &ModuleTables, scheme: Scheme) -> EncodedTables {
    debug_assert_eq!(module.validate(), Ok(()));
    let mut sink = Sink::new(scheme.packing);
    sink.uword(Section::Headers, module.procs.len() as u32);
    for proc in &module.procs {
        encode_proc(&mut sink, proc, scheme);
    }
    EncodedTables { scheme, bytes: sink.bytes, sizes: sink.sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{BaseReg, RegSet};

    fn ge(off: i32) -> GroundEntry {
        GroundEntry::new(BaseReg::Fp, off)
    }

    fn sample_module() -> ModuleTables {
        ModuleTables {
            procs: vec![ProcTables {
                name: "p".into(),
                entry_pc: 0,
                ground: vec![ge(0), ge(1), ge(2)],
                points: vec![
                    GcPointTables {
                        pc: 8,
                        live_stack: vec![0, 2],
                        regs: RegSet::single(3),
                        derivations: vec![DerivationRecord::Simple {
                            target: Location::Reg(4),
                            bases: vec![(Location::Slot(BaseReg::Fp, 0), Sign::Plus)],
                        }],
                        killed: vec![],
                    },
                    GcPointTables {
                        pc: 20,
                        live_stack: vec![0, 2],
                        regs: RegSet::single(3),
                        derivations: vec![],
                        killed: vec![1],
                    },
                    GcPointTables {
                        pc: 32,
                        live_stack: vec![0, 2],
                        regs: RegSet::single(3),
                        derivations: vec![],
                        killed: vec![1],
                    },
                ],
            }],
        }
    }

    #[test]
    fn packing_always_smaller_than_plain() {
        let m = sample_module();
        let plain = encode_module(&m, Scheme::DELTA_PLAIN);
        let packed = encode_module(&m, Scheme::DELTA_PACKED);
        assert!(packed.bytes.len() < plain.bytes.len());
    }

    #[test]
    fn previous_elides_identical_tables() {
        let m = sample_module();
        let without = encode_module(&m, Scheme::DELTA_PACKED);
        let with = encode_module(&m, Scheme::DELTA_MAIN_PP);
        // Second point's stack and reg tables are identical to the first and
        // must vanish under Previous; the third point's killed table repeats
        // the second's.
        assert!(with.sizes.stack < without.sizes.stack);
        assert!(with.sizes.regs < without.sizes.regs);
        assert!(with.sizes.killed < without.sizes.killed);
    }

    #[test]
    fn sizes_sum_to_byte_length() {
        let m = sample_module();
        for scheme in Scheme::TABLE2 {
            let enc = encode_module(&m, scheme);
            assert_eq!(enc.sizes.total(), enc.bytes.len(), "{scheme}");
        }
    }

    #[test]
    fn full_info_has_no_ground_section() {
        let m = sample_module();
        let enc = encode_module(&m, Scheme::FULL_PACKED);
        assert_eq!(enc.sizes.ground, 0);
    }

    #[test]
    fn empty_module_encodes() {
        let m = ModuleTables::default();
        let enc = encode_module(&m, Scheme::DELTA_MAIN_PP);
        assert_eq!(enc.bytes, vec![0]);
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(Scheme::DELTA_MAIN_PP.to_string(), "delta-main+previous+packing");
        assert_eq!(Scheme::FULL_PLAIN.to_string(), "full-info");
    }
}
