//! The pc→gc-tables map (§5.2).
//!
//! Rather than storing a 32-bit program counter per gc-point, the map
//! stores *distances* between adjacent gc-points, anchored at the enclosing
//! procedure's start address. Distances are not known until link time, so
//! the compiler reserves a fixed **two bytes** per distance; the paper
//! notes that had distances been available, most would compress to one
//! byte, "yielding an additional savings of 1 byte per gc-point". This
//! module computes both costs so the ablation (A3 in DESIGN.md) can report
//! the savings.

use crate::pack;
use crate::tables::ModuleTables;

/// Byte cost of the pc map under the two distance encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcMapCost {
    /// Fixed two bytes per gc-point (what the compiler emits).
    pub fixed_two_byte: usize,
    /// Variable-length distances (available only at link time).
    pub variable: usize,
    /// Number of gc-points whose distance would fit in one byte.
    pub one_byte_distances: usize,
    /// Total number of gc-points.
    pub total_points: usize,
}

impl PcMapCost {
    /// Bytes saved by the variable encoding.
    #[must_use]
    pub fn savings(&self) -> usize {
        self.fixed_two_byte.saturating_sub(self.variable)
    }
}

/// Computes the pc-map cost for a module under both encodings.
#[must_use]
pub fn pcmap_cost(module: &ModuleTables) -> PcMapCost {
    let mut cost = PcMapCost::default();
    for proc in &module.procs {
        let mut prev = proc.entry_pc;
        for point in &proc.points {
            let distance = point.pc - prev;
            prev = point.pc;
            cost.fixed_two_byte += 2;
            let len = pack::packed_ulen(distance);
            cost.variable += len;
            if len == 1 {
                cost.one_byte_distances += 1;
            }
            cost.total_points += 1;
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{BaseReg, GroundEntry};
    use crate::tables::{GcPointTables, ProcTables};

    fn module_with_pcs(pcs: &[u32]) -> ModuleTables {
        ModuleTables {
            procs: vec![ProcTables {
                name: "p".into(),
                entry_pc: 0,
                ground: vec![GroundEntry::new(BaseReg::Fp, 0)],
                points: pcs
                    .iter()
                    .map(|&pc| GcPointTables { pc, live_stack: vec![0], ..Default::default() })
                    .collect(),
            }],
        }
    }

    #[test]
    fn close_points_fit_one_byte() {
        let m = module_with_pcs(&[10, 30, 80]);
        let c = pcmap_cost(&m);
        assert_eq!(c.total_points, 3);
        assert_eq!(c.fixed_two_byte, 6);
        assert_eq!(c.variable, 3);
        assert_eq!(c.one_byte_distances, 3);
        assert_eq!(c.savings(), 3);
    }

    #[test]
    fn far_points_need_two_bytes() {
        let m = module_with_pcs(&[10, 2000]);
        let c = pcmap_cost(&m);
        assert_eq!(c.one_byte_distances, 1);
        assert_eq!(c.variable, 1 + 2);
    }

    #[test]
    fn empty_module_costs_nothing() {
        let c = pcmap_cost(&ModuleTables::default());
        assert_eq!(c, PcMapCost::default());
    }

    #[test]
    fn procedure_without_gc_points_costs_nothing() {
        // A leaf procedure that neither calls nor allocates has an empty
        // pc map; it must contribute zero bytes, not a header's worth.
        let m = module_with_pcs(&[]);
        let c = pcmap_cost(&m);
        assert_eq!(c, PcMapCost::default());
        assert!(m.point_at(0).is_none());
    }

    #[test]
    fn adjacent_gc_points_have_distinct_tables() {
        // Two gc-points one instruction apart (e.g. a call immediately
        // followed by an allocation in the caller): distance 1 packs to
        // one byte, and lookup resolves each pc to its own table.
        let m = module_with_pcs(&[10, 11]);
        let c = pcmap_cost(&m);
        assert_eq!(c.total_points, 2);
        assert_eq!(c.variable, 2);
        assert_eq!(c.one_byte_distances, 2);
        let (_, first) = m.point_at(10).expect("first point");
        let (_, second) = m.point_at(11).expect("second point");
        assert_eq!(first.pc, 10);
        assert_eq!(second.pc, 11);
    }

    #[test]
    fn lookup_past_the_last_gc_point_misses() {
        // pcs around the table: before the first, between points (not a
        // gc-point), and one past the last must all miss — the map is
        // exact, not a covering interval.
        let m = module_with_pcs(&[10, 30]);
        assert!(m.point_at(9).is_none(), "before the first gc-point");
        assert!(m.point_at(20).is_none(), "between gc-points");
        assert!(m.point_at(31).is_none(), "one past the last gc-point");
        assert!(m.point_at(u32::MAX).is_none(), "far past the procedure");
    }
}
