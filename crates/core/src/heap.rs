//! Heap object type descriptors.
//!
//! Modula-3 requires type descriptors in heap objects, "which makes it
//! straightforward to determine the size of heap allocated objects and to
//! find pointers within them" (§2, requirements i–ii). Every heap object
//! starts with a header word holding its [`TypeId`]; open arrays carry an
//! additional length word. The collector consults the [`TypeTable`] to size
//! and trace objects; because descriptors are type-specific, tracing does
//! not need per-object pointer tags.

/// Index of a type descriptor in the module's [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

impl std::fmt::Display for TypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// Number of header words preceding a record's fields.
pub const RECORD_HEADER_WORDS: u32 = 1;
/// Number of header words preceding an array's elements (type + length).
pub const ARRAY_HEADER_WORDS: u32 = 2;

/// The shape of one heap-allocated type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapType {
    /// A record: fixed size, pointers at fixed offsets (in words, relative
    /// to the first field, i.e. excluding the header).
    Record {
        /// Source-level type name, for diagnostics.
        name: String,
        /// Number of field words (excluding the header).
        words: u32,
        /// Offsets of pointer fields within the field area.
        ptr_offsets: Vec<u32>,
    },
    /// An array: per-element size and pointer pattern; the length is stored
    /// in the object (second header word).
    Array {
        /// Source-level type name, for diagnostics.
        name: String,
        /// Words per element.
        elem_words: u32,
        /// Offsets of pointers within one element.
        elem_ptr_offsets: Vec<u32>,
    },
}

impl HeapType {
    /// The type's source-level name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            HeapType::Record { name, .. } | HeapType::Array { name, .. } => name,
        }
    }

    /// Total object size in words (header included) for an instance with
    /// `len` elements (`len` ignored for records).
    #[must_use]
    pub fn object_words(&self, len: u32) -> u32 {
        match self {
            HeapType::Record { words, .. } => RECORD_HEADER_WORDS + words,
            HeapType::Array { elem_words, .. } => ARRAY_HEADER_WORDS + elem_words * len,
        }
    }

    /// Offsets (in words, relative to the object header) of every pointer
    /// field of an instance with `len` elements.
    pub fn pointer_offsets(&self, len: u32) -> Vec<u32> {
        match self {
            HeapType::Record { ptr_offsets, .. } => {
                ptr_offsets.iter().map(|&o| RECORD_HEADER_WORDS + o).collect()
            }
            HeapType::Array { elem_words, elem_ptr_offsets, .. } => {
                let mut out = Vec::with_capacity(elem_ptr_offsets.len() * len as usize);
                for i in 0..len {
                    for &o in elem_ptr_offsets {
                        out.push(ARRAY_HEADER_WORDS + i * elem_words + o);
                    }
                }
                out
            }
        }
    }

    /// True if instances can contain pointers.
    #[must_use]
    pub fn has_pointers(&self) -> bool {
        match self {
            HeapType::Record { ptr_offsets, .. } => !ptr_offsets.is_empty(),
            HeapType::Array { elem_ptr_offsets, .. } => !elem_ptr_offsets.is_empty(),
        }
    }
}

/// The module's table of heap type descriptors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeTable {
    /// Descriptors, indexed by [`TypeId`].
    pub types: Vec<HeapType>,
}

impl TypeTable {
    /// Adds a descriptor, returning its id.
    pub fn add(&mut self, ty: HeapType) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push(ty);
        id
    }

    /// Looks up a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn get(&self, id: TypeId) -> &HeapType {
        &self.types[id.0 as usize]
    }

    /// Number of descriptors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if the table has no descriptors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_layout() {
        let t = HeapType::Record { name: "List".into(), words: 2, ptr_offsets: vec![1] };
        assert_eq!(t.object_words(0), 3);
        assert_eq!(t.pointer_offsets(0), vec![2]);
        assert!(t.has_pointers());
        assert_eq!(t.name(), "List");
    }

    #[test]
    fn array_layout() {
        let t = HeapType::Array { name: "Refs".into(), elem_words: 2, elem_ptr_offsets: vec![0] };
        assert_eq!(t.object_words(3), 2 + 6);
        assert_eq!(t.pointer_offsets(3), vec![2, 4, 6]);
    }

    #[test]
    fn pointer_free_types() {
        let t = HeapType::Array { name: "Ints".into(), elem_words: 1, elem_ptr_offsets: vec![] };
        assert!(!t.has_pointers());
        assert_eq!(t.pointer_offsets(10), Vec::<u32>::new());
    }

    #[test]
    fn type_table() {
        let mut table = TypeTable::default();
        assert!(table.is_empty());
        let id = table.add(HeapType::Record { name: "T".into(), words: 1, ptr_offsets: vec![] });
        assert_eq!(id, TypeId(0));
        assert_eq!(table.get(id).name(), "T");
        assert_eq!(table.len(), 1);
    }
}
