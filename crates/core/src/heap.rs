//! Heap object type descriptors.
//!
//! Modula-3 requires type descriptors in heap objects, "which makes it
//! straightforward to determine the size of heap allocated objects and to
//! find pointers within them" (§2, requirements i–ii). Every heap object
//! starts with a header word holding its [`TypeId`]; open arrays carry an
//! additional length word. The collector consults the [`TypeTable`] to size
//! and trace objects; because descriptors are type-specific, tracing does
//! not need per-object pointer tags.

/// Index of a type descriptor in the module's [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

impl std::fmt::Display for TypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// Number of header words preceding a record's fields.
pub const RECORD_HEADER_WORDS: u32 = 1;
/// Number of header words preceding an array's elements (type + length).
pub const ARRAY_HEADER_WORDS: u32 = 2;

/// Bit position of the object age field within a (non-negative) header word.
///
/// The low 32 bits of a live header hold the [`TypeId`]; the generational
/// collector packs a small survival count above them. Forwarded objects
/// store `-(new_addr + 1)` instead, so the age bits only ever matter while
/// the object is live — they are dropped when the copy's header is written.
pub const HEADER_AGE_SHIFT: u32 = 32;
/// Maximum representable object age (saturating).
pub const HEADER_AGE_MAX: u32 = 0xff;

/// Extracts the type id from a live (non-negative) header word.
#[must_use]
pub fn header_type_id(header: i64) -> TypeId {
    debug_assert!(header >= 0, "forwarded header has no type id");
    TypeId(header as u32)
}

/// Extracts the survival count from a live (non-negative) header word.
#[must_use]
pub fn header_age(header: i64) -> u32 {
    debug_assert!(header >= 0, "forwarded header has no age");
    ((header >> HEADER_AGE_SHIFT) as u32) & HEADER_AGE_MAX
}

/// Returns `header` with its age field replaced by `age` (saturated).
#[must_use]
pub fn header_with_age(header: i64, age: u32) -> i64 {
    debug_assert!(header >= 0, "forwarded header has no age");
    let age = i64::from(age.min(HEADER_AGE_MAX));
    (header & !((i64::from(HEADER_AGE_MAX)) << HEADER_AGE_SHIFT)) | (age << HEADER_AGE_SHIFT)
}

/// The shape of one heap-allocated type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapType {
    /// A record: fixed size, pointers at fixed offsets (in words, relative
    /// to the first field, i.e. excluding the header).
    Record {
        /// Source-level type name, for diagnostics.
        name: String,
        /// Number of field words (excluding the header).
        words: u32,
        /// Offsets of pointer fields within the field area.
        ptr_offsets: Vec<u32>,
    },
    /// An array: per-element size and pointer pattern; the length is stored
    /// in the object (second header word).
    Array {
        /// Source-level type name, for diagnostics.
        name: String,
        /// Words per element.
        elem_words: u32,
        /// Offsets of pointers within one element.
        elem_ptr_offsets: Vec<u32>,
    },
}

impl HeapType {
    /// The type's source-level name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            HeapType::Record { name, .. } | HeapType::Array { name, .. } => name,
        }
    }

    /// Total object size in words (header included) for an instance with
    /// `len` elements (`len` ignored for records).
    #[must_use]
    pub fn object_words(&self, len: u32) -> u32 {
        match self {
            HeapType::Record { words, .. } => RECORD_HEADER_WORDS + words,
            HeapType::Array { elem_words, .. } => ARRAY_HEADER_WORDS + elem_words * len,
        }
    }

    /// Offsets (in words, relative to the object header) of every pointer
    /// field of an instance with `len` elements.
    ///
    /// Thin wrapper over [`HeapType::pointer_offset_iter`] kept for tests
    /// and callers that want a materialised list; the collectors use the
    /// iterator directly so the evacuation scan loop never allocates.
    pub fn pointer_offsets(&self, len: u32) -> Vec<u32> {
        self.pointer_offset_iter(len).collect()
    }

    /// Allocation-free iterator over the offsets (in words, relative to the
    /// object header) of every pointer field of an instance with `len`
    /// elements (`len` ignored for records).
    pub fn pointer_offset_iter(&self, len: u32) -> PointerOffsets<'_> {
        match self {
            HeapType::Record { ptr_offsets, .. } => PointerOffsets {
                offsets: ptr_offsets,
                next: 0,
                elem: 0,
                elems: 1,
                base: RECORD_HEADER_WORDS,
                stride: 0,
            },
            HeapType::Array { elem_words, elem_ptr_offsets, .. } => PointerOffsets {
                offsets: elem_ptr_offsets,
                next: 0,
                elem: 0,
                elems: len,
                base: ARRAY_HEADER_WORDS,
                stride: *elem_words,
            },
        }
    }

    /// True if instances can contain pointers.
    #[must_use]
    pub fn has_pointers(&self) -> bool {
        match self {
            HeapType::Record { ptr_offsets, .. } => !ptr_offsets.is_empty(),
            HeapType::Array { elem_ptr_offsets, .. } => !elem_ptr_offsets.is_empty(),
        }
    }
}

/// Allocation-free iterator over an object's pointer-field offsets.
///
/// Borrowed from a [`HeapType`]; produced by
/// [`HeapType::pointer_offset_iter`]. For records it walks the descriptor's
/// offset list once; for arrays it replays the per-element pattern `elems`
/// times, adding the element stride each pass.
#[derive(Debug, Clone)]
pub struct PointerOffsets<'a> {
    offsets: &'a [u32],
    next: usize,
    elem: u32,
    elems: u32,
    base: u32,
    stride: u32,
}

impl Iterator for PointerOffsets<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.offsets.is_empty() {
            return None;
        }
        while self.elem < self.elems {
            if let Some(&o) = self.offsets.get(self.next) {
                self.next += 1;
                return Some(self.base + self.elem * self.stride + o);
            }
            self.elem += 1;
            self.next = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.elem >= self.elems || self.offsets.is_empty() {
            return (0, Some(0));
        }
        let remaining_elems = (self.elems - self.elem - 1) as usize;
        let n = remaining_elems * self.offsets.len() + (self.offsets.len() - self.next);
        (n, Some(n))
    }
}

impl ExactSizeIterator for PointerOffsets<'_> {}

/// The module's table of heap type descriptors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeTable {
    /// Descriptors, indexed by [`TypeId`].
    pub types: Vec<HeapType>,
}

impl TypeTable {
    /// Adds a descriptor, returning its id.
    pub fn add(&mut self, ty: HeapType) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push(ty);
        id
    }

    /// Looks up a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn get(&self, id: TypeId) -> &HeapType {
        &self.types[id.0 as usize]
    }

    /// Number of descriptors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if the table has no descriptors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_layout() {
        let t = HeapType::Record { name: "List".into(), words: 2, ptr_offsets: vec![1] };
        assert_eq!(t.object_words(0), 3);
        assert_eq!(t.pointer_offsets(0), vec![2]);
        assert!(t.has_pointers());
        assert_eq!(t.name(), "List");
    }

    #[test]
    fn array_layout() {
        let t = HeapType::Array { name: "Refs".into(), elem_words: 2, elem_ptr_offsets: vec![0] };
        assert_eq!(t.object_words(3), 2 + 6);
        assert_eq!(t.pointer_offsets(3), vec![2, 4, 6]);
    }

    #[test]
    fn pointer_free_types() {
        let t = HeapType::Array { name: "Ints".into(), elem_words: 1, elem_ptr_offsets: vec![] };
        assert!(!t.has_pointers());
        assert_eq!(t.pointer_offsets(10), Vec::<u32>::new());
    }

    #[test]
    fn offset_iterator_matches_vec_api() {
        let rec = HeapType::Record { name: "R".into(), words: 5, ptr_offsets: vec![0, 2, 4] };
        let arr = HeapType::Array { name: "A".into(), elem_words: 3, elem_ptr_offsets: vec![1, 2] };
        for len in [0u32, 1, 2, 7] {
            assert_eq!(rec.pointer_offset_iter(len).collect::<Vec<_>>(), rec.pointer_offsets(len));
            assert_eq!(arr.pointer_offset_iter(len).collect::<Vec<_>>(), arr.pointer_offsets(len));
            assert_eq!(arr.pointer_offset_iter(len).len(), arr.pointer_offsets(len).len());
        }
        assert_eq!(arr.pointer_offset_iter(2).collect::<Vec<_>>(), vec![3, 4, 6, 7]);
    }

    #[test]
    fn header_age_packing() {
        let header = i64::from(TypeId(7).0);
        assert_eq!(header_type_id(header), TypeId(7));
        assert_eq!(header_age(header), 0);
        let aged = header_with_age(header, 3);
        assert_eq!(header_type_id(aged), TypeId(7));
        assert_eq!(header_age(aged), 3);
        assert!(aged >= 0, "aged headers must stay non-negative (forwarding uses sign)");
        let sat = header_with_age(aged, HEADER_AGE_MAX + 10);
        assert_eq!(header_age(sat), HEADER_AGE_MAX);
        assert_eq!(header_with_age(sat, 0), header);
    }

    #[test]
    fn type_table() {
        let mut table = TypeTable::default();
        assert!(table.is_empty());
        let id = table.add(HeapType::Record { name: "T".into(), words: 1, ptr_offsets: vec![] });
        assert_eq!(id, TypeId(0));
        assert_eq!(table.get(id).name(), "T");
        assert_eq!(table.len(), 1);
    }
}
