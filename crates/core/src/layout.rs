//! Encodings of stack locations, registers and value locations
//! (paper Figure 4 and §5.1–5.2).

use crate::pack;

/// Number of hard (general-purpose) registers the register pointer table
/// covers. One bit per register; the table always fits one 32-bit word.
pub const NUM_HARD_REGS: usize = 12;

/// The base register of a frame-relative address.
///
/// As on the VAX, frame slots are addressed relative to the frame pointer
/// (`FP`, locals and spills), the argument pointer (`AP`, incoming
/// arguments) or the stack pointer (`SP`, outgoing/temporary pushes). The
/// base register occupies the low two bits of a ground-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseReg {
    /// Frame pointer: locals, spill slots, register save area.
    Fp,
    /// Stack pointer: transient pushes (rare in generated code).
    Sp,
    /// Argument pointer: incoming argument slots.
    Ap,
}

impl BaseReg {
    /// All base registers, in encoding order.
    pub const ALL: [BaseReg; 3] = [BaseReg::Fp, BaseReg::Sp, BaseReg::Ap];

    /// Two-bit encoding used in ground-table entries.
    #[must_use]
    pub fn code(self) -> i32 {
        match self {
            BaseReg::Fp => 0,
            BaseReg::Sp => 1,
            BaseReg::Ap => 2,
        }
    }

    /// Decodes a two-bit base-register code.
    #[must_use]
    pub fn from_code(code: i32) -> Option<BaseReg> {
        match code {
            0 => Some(BaseReg::Fp),
            1 => Some(BaseReg::Sp),
            2 => Some(BaseReg::Ap),
            _ => None,
        }
    }
}

impl std::fmt::Display for BaseReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaseReg::Fp => write!(f, "FP"),
            BaseReg::Sp => write!(f, "SP"),
            BaseReg::Ap => write!(f, "AP"),
        }
    }
}

/// One entry of a procedure's *ground* (main) table: a frame slot that
/// contains a live tidy pointer at some gc-point in the procedure.
///
/// Encoded as a single word `offset << 2 | base`; most entries pack into a
/// single byte (paper Figure 4) because frame offsets are small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundEntry {
    /// Base register the offset is relative to.
    pub base: BaseReg,
    /// Offset in words from the base register.
    pub offset: i32,
}

impl GroundEntry {
    /// Creates a ground entry for `base + offset` (offset in words).
    #[must_use]
    pub fn new(base: BaseReg, offset: i32) -> Self {
        GroundEntry { base, offset }
    }

    /// The 32-bit word encoding: `offset << 2 | base`.
    #[must_use]
    pub fn to_word(self) -> i32 {
        (self.offset << 2) | self.base.code()
    }

    /// Decodes a ground-entry word.
    #[must_use]
    pub fn from_word(word: i32) -> Option<GroundEntry> {
        let base = BaseReg::from_code(word & 0b11)?;
        Some(GroundEntry { base, offset: word >> 2 })
    }

    /// Number of bytes this entry takes when packed.
    #[must_use]
    pub fn packed_len(self) -> usize {
        pack::packed_len(self.to_word())
    }
}

impl std::fmt::Display for GroundEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{:+}", self.base, self.offset)
    }
}

/// The register pointer table for one gc-point: one bit per hard register,
/// set if the register holds a live tidy pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(pub u32);

impl RegSet {
    /// The empty register set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Returns a set containing only `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `reg >= NUM_HARD_REGS`.
    #[must_use]
    pub fn single(reg: u8) -> RegSet {
        assert!((reg as usize) < NUM_HARD_REGS, "register {reg} out of range");
        RegSet(1 << reg)
    }

    /// Inserts `reg` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `reg >= NUM_HARD_REGS`.
    pub fn insert(&mut self, reg: u8) {
        assert!((reg as usize) < NUM_HARD_REGS, "register {reg} out of range");
        self.0 |= 1 << reg;
    }

    /// Tests membership.
    #[must_use]
    pub fn contains(self, reg: u8) -> bool {
        (reg as usize) < NUM_HARD_REGS && self.0 & (1 << reg) != 0
    }

    /// True if no register is in the set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over member registers in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..NUM_HARD_REGS as u8).filter(move |&r| self.contains(r))
    }

    /// Union of two sets.
    #[must_use]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }
}

impl FromIterator<u8> for RegSet {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl std::fmt::Display for RegSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "r{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// The location of a value: either a hard register or a frame slot.
///
/// Derivation-table entries are not restricted to `{FP, SP, AP} + offset`
/// the way ground entries are — a derived value or base may live in a
/// register — so locations carry one extra discriminator bit and usually
/// pack into two bytes (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// A hard register.
    Reg(u8),
    /// A frame slot: base register plus word offset.
    Slot(BaseReg, i32),
}

impl Location {
    /// The word encoding: registers are `reg << 1`, slots are
    /// `(offset << 2 | base) << 1 | 1`.
    #[must_use]
    pub fn to_word(self) -> i32 {
        match self {
            Location::Reg(r) => i32::from(r) << 1,
            Location::Slot(base, off) => (((off << 2) | base.code()) << 1) | 1,
        }
    }

    /// Decodes a location word.
    #[must_use]
    pub fn from_word(word: i32) -> Option<Location> {
        if word & 1 == 0 {
            let r = word >> 1;
            if (0..NUM_HARD_REGS as i32).contains(&r) {
                Some(Location::Reg(r as u8))
            } else {
                None
            }
        } else {
            let entry = GroundEntry::from_word(word >> 1)?;
            Some(Location::Slot(entry.base, entry.offset))
        }
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Reg(r) => write!(f, "r{r}"),
            Location::Slot(b, o) => write!(f, "{b}{o:+}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_entry_roundtrip() {
        for base in BaseReg::ALL {
            for off in [-1000, -3, -1, 0, 1, 7, 200, 100_000] {
                let e = GroundEntry::new(base, off);
                assert_eq!(GroundEntry::from_word(e.to_word()), Some(e));
            }
        }
    }

    #[test]
    fn typical_ground_entry_fits_one_byte() {
        // Paper: "Most entries in the ground table fit into one byte each."
        for off in -8..=7 {
            assert_eq!(GroundEntry::new(BaseReg::Fp, off).packed_len(), 1, "offset {off}");
        }
        assert_eq!(GroundEntry::new(BaseReg::Ap, 100).packed_len(), 2);
    }

    #[test]
    fn base_reg_codes_are_two_bits() {
        for base in BaseReg::ALL {
            assert!(base.code() < 4);
            assert_eq!(BaseReg::from_code(base.code()), Some(base));
        }
        assert_eq!(BaseReg::from_code(3), None);
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(11);
        assert!(s.contains(0) && s.contains(11) && !s.contains(5));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 11]);
        assert_eq!(s.to_string(), "{r0,r11}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn regset_rejects_out_of_range() {
        let _ = RegSet::single(NUM_HARD_REGS as u8);
    }

    #[test]
    fn location_roundtrip() {
        let locs = [
            Location::Reg(0),
            Location::Reg(11),
            Location::Slot(BaseReg::Fp, -4),
            Location::Slot(BaseReg::Ap, 2),
            Location::Slot(BaseReg::Sp, 0),
        ];
        for l in locs {
            assert_eq!(Location::from_word(l.to_word()), Some(l));
        }
    }

    #[test]
    fn slot_location_usually_two_bytes() {
        // Paper: "most entries in the derivations table require 2 bytes."
        let w = Location::Slot(BaseReg::Fp, 10).to_word();
        assert_eq!(pack::packed_len(w), 2);
        // Registers stay one byte.
        let w = Location::Reg(5).to_word();
        assert_eq!(pack::packed_len(w), 1);
    }
}
