//! The logical (pre-encoding) gc-map model.
//!
//! The compiler back end produces one [`ProcTables`] per procedure: the
//! procedure's *ground* table (every frame slot that holds a pointer at some
//! gc-point) and, for every gc-point, which ground entries are live, which
//! registers hold pointers, and the derivations of live derived values.
//! [`crate::encode`] turns this model into bytes under a chosen scheme and
//! [`crate::decode`] reads it back at collection time.

use crate::derive::DerivationRecord;
use crate::layout::{GroundEntry, RegSet};

/// Tables for a single gc-point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcPointTables {
    /// Code address (byte offset within the module) of the gc-point. For a
    /// call this is the **return address** — the value actually found in
    /// frames during a stack walk.
    pub pc: u32,
    /// Indices into the owning procedure's ground table of the slots that
    /// contain live tidy pointers here. Sorted ascending.
    pub live_stack: Vec<u32>,
    /// Registers containing live tidy pointers here.
    pub regs: RegSet,
    /// Derivations of the derived values live here, ordered so a derived
    /// value precedes any of its bases.
    pub derivations: Vec<DerivationRecord>,
    /// Indices into the ground table of slots whose contents are **dead**
    /// here: the slot held a pointer at some gc-point, but liveness proved
    /// its current contents are never read again. The collector nulls these
    /// slots instead of tracing them, so dead references retain nothing.
    /// Sorted ascending; disjoint from `live_stack` by construction (the
    /// runtime oracle checks the disjointness so a corrupted table is caught
    /// at collection time rather than silently tracing a "killed" slot).
    pub killed: Vec<u32>,
}

impl GcPointTables {
    /// True if all four tables are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_stack.is_empty()
            && self.regs.is_empty()
            && self.derivations.is_empty()
            && self.killed.is_empty()
    }
}

/// Tables for one procedure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcTables {
    /// Procedure name (diagnostics only; not encoded).
    pub name: String,
    /// Code address of the procedure's first instruction.
    pub entry_pc: u32,
    /// The ground (main) table: every frame slot of this procedure that
    /// contains a pointer at some gc-point.
    pub ground: Vec<GroundEntry>,
    /// Per-gc-point tables, sorted by `pc` ascending.
    pub points: Vec<GcPointTables>,
}

impl ProcTables {
    /// The live tidy-pointer slots at gc-point `index`, resolved through the
    /// ground table.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or a liveness index is not a valid
    /// ground-table index.
    #[must_use]
    pub fn live_slots(&self, index: usize) -> Vec<GroundEntry> {
        self.points[index].live_stack.iter().map(|&i| self.ground[i as usize]).collect()
    }

    /// The killed (dead pointer) slots at gc-point `index`, resolved through
    /// the ground table.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or a killed index is not a valid
    /// ground-table index.
    #[must_use]
    pub fn killed_slots(&self, index: usize) -> Vec<GroundEntry> {
        self.points[index].killed.iter().map(|&i| self.ground[i as usize]).collect()
    }

    /// Checks internal consistency: points sorted by pc, liveness indices in
    /// range and sorted.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_pc = None;
        for (i, p) in self.points.iter().enumerate() {
            if let Some(prev) = last_pc {
                if p.pc <= prev {
                    return Err(format!(
                        "{}: gc-point {i} pc {} not after {prev}",
                        self.name, p.pc
                    ));
                }
            }
            last_pc = Some(p.pc);
            let mut last_idx = None;
            for &idx in &p.live_stack {
                if idx as usize >= self.ground.len() {
                    return Err(format!(
                        "{}: gc-point {i} liveness index {idx} out of range ({} ground entries)",
                        self.name,
                        self.ground.len()
                    ));
                }
                if let Some(prev) = last_idx {
                    if idx <= prev {
                        return Err(format!(
                            "{}: gc-point {i} liveness indices not sorted",
                            self.name
                        ));
                    }
                }
                last_idx = Some(idx);
            }
            let mut last_kill = None;
            for &idx in &p.killed {
                if idx as usize >= self.ground.len() {
                    return Err(format!(
                        "{}: gc-point {i} killed index {idx} out of range ({} ground entries)",
                        self.name,
                        self.ground.len()
                    ));
                }
                if let Some(prev) = last_kill {
                    if idx <= prev {
                        return Err(format!(
                            "{}: gc-point {i} killed indices not sorted",
                            self.name
                        ));
                    }
                }
                last_kill = Some(idx);
            }
        }
        Ok(())
    }
}

/// All gc-map tables for one compiled module, in logical form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleTables {
    /// Per-procedure tables, sorted by `entry_pc`.
    pub procs: Vec<ProcTables>,
}

impl ModuleTables {
    /// Finds the gc-point tables for exactly `pc`, if any.
    #[must_use]
    pub fn point_at(&self, pc: u32) -> Option<(&ProcTables, &GcPointTables)> {
        for proc in &self.procs {
            if let Ok(i) = proc.points.binary_search_by_key(&pc, |p| p.pc) {
                return Some((proc, &proc.points[i]));
            }
        }
        None
    }

    /// Validates every procedure.
    pub fn validate(&self) -> Result<(), String> {
        for p in &self.procs {
            p.validate()?;
        }
        Ok(())
    }

    /// Total number of gc-points across all procedures.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.procs.iter().map(|p| p.points.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BaseReg;

    fn sample() -> ProcTables {
        ProcTables {
            name: "p".into(),
            entry_pc: 100,
            ground: vec![
                GroundEntry::new(BaseReg::Fp, 0),
                GroundEntry::new(BaseReg::Fp, 1),
                GroundEntry::new(BaseReg::Ap, 0),
            ],
            points: vec![
                GcPointTables { pc: 110, live_stack: vec![0, 2], ..Default::default() },
                GcPointTables { pc: 120, live_stack: vec![1], ..Default::default() },
            ],
        }
    }

    #[test]
    fn live_slot_resolution() {
        let p = sample();
        assert_eq!(
            p.live_slots(0),
            vec![GroundEntry::new(BaseReg::Fp, 0), GroundEntry::new(BaseReg::Ap, 0)]
        );
        assert_eq!(p.live_slots(1), vec![GroundEntry::new(BaseReg::Fp, 1)]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unsorted_points() {
        let mut p = sample();
        p.points[1].pc = 105;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_index() {
        let mut p = sample();
        p.points[0].live_stack = vec![7];
        assert!(p.validate().is_err());
    }

    #[test]
    fn module_point_lookup() {
        let m = ModuleTables { procs: vec![sample()] };
        assert!(m.point_at(110).is_some());
        assert!(m.point_at(111).is_none());
        assert_eq!(m.num_points(), 2);
    }

    #[test]
    fn empty_point_detection() {
        let p = GcPointTables { pc: 5, ..Default::default() };
        assert!(p.is_empty());
        let k = GcPointTables { pc: 5, killed: vec![1], ..Default::default() };
        assert!(!k.is_empty());
    }

    #[test]
    fn killed_slot_resolution() {
        let mut p = sample();
        p.points[0].killed = vec![1];
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.killed_slots(0), vec![GroundEntry::new(BaseReg::Fp, 1)]);
    }

    #[test]
    fn validate_rejects_bad_killed() {
        let mut p = sample();
        p.points[0].killed = vec![9];
        assert!(p.validate().is_err());
        p.points[0].killed = vec![1, 1];
        assert!(p.validate().is_err());
    }
}
