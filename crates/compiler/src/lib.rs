//! The end-to-end m3gc compiler: Mini-M3 source → checked AST → IR →
//! optimizer → VM code with gc maps — plus convenience runners.
//!
//! # Example
//!
//! ```
//! use m3gc_compiler::{compile, run_module, Options};
//!
//! let module = compile(
//!     "MODULE Demo;
//!      TYPE List = REF RECORD head: INTEGER; tail: List END;
//!      VAR l: List; i, s: INTEGER;
//!      BEGIN
//!        l := NIL;
//!        FOR i := 1 TO 10 DO
//!          WITH c = NEW(List) DO c.head := i; c.tail := l; l := c; END;
//!        END;
//!        s := 0;
//!        WHILE l # NIL DO s := s + l.head; l := l.tail; END;
//!        PutInt(s);
//!      END Demo.",
//!     &Options::o2(),
//! )
//! .expect("compiles");
//! let outcome = run_module(module, 1 << 16).expect("runs");
//! assert_eq!(outcome.output, "55");
//! ```

use m3gc_codegen::CodegenOptions;
use m3gc_core::encode::Scheme;
use m3gc_frontend::lower::LowerOptions;
use m3gc_frontend::Diagnostic;
use m3gc_opt::{OptLevel, OptOptions, PathStrategy};
use m3gc_runtime::parallel::{ParExecutor, ParOutcome};
use m3gc_runtime::scheduler::{ExecError, ExecOutcome, Executor};
use m3gc_runtime::serve::{ServeExecutor, ServeLoad, ServeOutcome};
use m3gc_runtime::{GcStrategy, RuntimeOptions};
use m3gc_vm::machine::HeapStrategy;
use m3gc_vm::VmModule;

pub use m3gc_codegen::{CallPolicy, GcConfig};
pub use m3gc_runtime::parallel::{ParGcStats, ParOutcome as ParExecOutcome};

/// Complete compiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Lowering options (bounds checks).
    pub lower: LowerOptions,
    /// Optimizer options.
    pub opt: OptOptions,
    /// Code generation / gc-map options.
    pub codegen: CodegenOptions,
}

impl Options {
    /// Unoptimized compilation with full gc support (the paper's
    /// `typereg` etc. rows without `-opt`).
    #[must_use]
    pub fn o0() -> Options {
        Options {
            lower: LowerOptions::default(),
            opt: OptOptions { level: OptLevel::O0, path_strategy: PathStrategy::Variables },
            codegen: CodegenOptions::default(),
        }
    }

    /// Optimized compilation with full gc support (the `-opt` rows).
    #[must_use]
    pub fn o2() -> Options {
        Options {
            lower: LowerOptions::default(),
            opt: OptOptions { level: OptLevel::O2, path_strategy: PathStrategy::Variables },
            codegen: CodegenOptions::default(),
        }
    }

    /// Same as [`Options::o2`] but with gc support disabled — the §6.2
    /// baseline for code-difference measurements.
    #[must_use]
    pub fn o2_no_gc() -> Options {
        let mut o = Options::o2();
        o.codegen.gc.emit_tables = false;
        o
    }

    /// Same as [`Options::o0`] but with gc support disabled.
    #[must_use]
    pub fn o0_no_gc() -> Options {
        let mut o = Options::o0();
        o.codegen.gc.emit_tables = false;
        o
    }

    /// Selects the table encoding scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: Scheme) -> Options {
        self.codegen.scheme = scheme;
        self
    }

    /// Selects the ambiguity resolution strategy (§4 / Figure 2).
    #[must_use]
    pub fn with_path_strategy(mut self, s: PathStrategy) -> Options {
        self.opt.path_strategy = s;
        self
    }

    /// Enables or disables liveness-driven gc-map pruning (on by
    /// default): with it off, every pointer slot stays in every
    /// gc-point's map for its whole frame lifetime and nothing is
    /// killed.
    #[must_use]
    pub fn with_live_maps(mut self, live_maps: bool) -> Options {
        self.codegen.gc.live_maps = live_maps;
        self
    }

    /// Selects the gc configuration.
    #[must_use]
    pub fn with_gc(mut self, gc: GcConfig) -> Options {
        self.codegen.gc = gc;
        self
    }
}

impl Default for Options {
    fn default() -> Self {
        Options::o2()
    }
}

/// Compiles source text to optimized IR (before code generation).
///
/// # Errors
///
/// Returns the first front-end [`Diagnostic`].
pub fn compile_to_ir(source: &str, options: &Options) -> Result<m3gc_ir::Program, Diagnostic> {
    let tokens = m3gc_frontend::lexer::lex(source)?;
    let module = m3gc_frontend::parser::parse(tokens)?;
    let checked = m3gc_frontend::typecheck::check(&module)?;
    let mut prog = m3gc_frontend::lower::lower_with(&module, &checked, options.lower);
    m3gc_ir::verify::verify_program(&prog)
        .unwrap_or_else(|e| panic!("lowering produced invalid IR: {e}"));
    m3gc_opt::optimize_program(&mut prog, &options.opt);
    m3gc_ir::verify::verify_program(&prog)
        .unwrap_or_else(|e| panic!("optimizer produced invalid IR: {e}"));
    Ok(prog)
}

/// Compiles source text to a VM module with gc maps.
///
/// # Errors
///
/// Returns the first front-end [`Diagnostic`].
pub fn compile(source: &str, options: &Options) -> Result<VmModule, Diagnostic> {
    let mut prog = compile_to_ir(source, options)?;
    Ok(m3gc_codegen::compile_program(&mut prog, &options.codegen))
}

/// Runs a compiled module to completion with the given semispace size
/// (words), returning its outcome.
///
/// # Errors
///
/// Propagates [`ExecError`] (traps, heap exhaustion, fuel).
pub fn run_module(module: VmModule, semi_words: usize) -> Result<ExecOutcome, ExecError> {
    run_module_opts(module, RuntimeOptions::new().semi_words(semi_words))
}

/// Runs a compiled module under the single-threaded scheduler with the
/// full [`RuntimeOptions`] surface — the canonical entry point.
///
/// # Errors
///
/// Propagates [`ExecError`].
pub fn run_module_opts(
    module: VmModule,
    options: RuntimeOptions,
) -> Result<ExecOutcome, ExecError> {
    let machine = options.build_machine(module);
    let mut ex = Executor::new(machine, options);
    ex.run_main()
}

/// Runs a compiled module with an explicit executor configuration.
///
/// # Errors
///
/// Propagates [`ExecError`].
pub fn run_module_with(
    module: VmModule,
    semi_words: usize,
    config: impl Into<RuntimeOptions>,
) -> Result<ExecOutcome, ExecError> {
    run_module_opts(module, config.into().semi_words(semi_words))
}

/// Runs a compiled module with an explicit heap strategy (semispace or
/// generational) and executor configuration.
///
/// # Errors
///
/// Propagates [`ExecError`].
pub fn run_module_on(
    module: VmModule,
    semi_words: usize,
    heap: HeapStrategy,
    config: impl Into<RuntimeOptions>,
) -> Result<ExecOutcome, ExecError> {
    let mut options = config.into().semi_words(semi_words);
    match heap {
        HeapStrategy::Semispace => options = options.strategy(GcStrategy::Semispace),
        HeapStrategy::Generational { nursery_words, promote_age } => {
            options = options
                .strategy(GcStrategy::Generational)
                .nursery_words(nursery_words)
                .promote_age(promote_age);
        }
    }
    run_module_opts(module, options)
}

/// Runs a compiled module under the parallel runtime with the full
/// [`RuntimeOptions`] surface — the canonical parallel entry point.
/// `options.threads` copies of the entry procedure run on real OS
/// threads; stop-the-world parallel collection uses
/// `options.gc_workers` workers.
///
/// # Errors
///
/// Propagates [`ExecError`] from the first failing thread.
pub fn run_module_par_opts(
    module: VmModule,
    options: RuntimeOptions,
) -> Result<ParOutcome, ExecError> {
    let vm = options.build_par_machine(module);
    let mut ex = ParExecutor::new(vm, options);
    ex.run_main()
}

/// Runs a compiled module under the allocation-service workload:
/// `options.green_slots` green-thread requests multiplexed over
/// `options.threads` OS threads, each request allocating into a
/// per-request region (see [`RuntimeOptions::serve`]).
///
/// # Errors
///
/// Propagates [`ExecError`] from the first failing scheduler thread.
pub fn run_module_serve(
    module: VmModule,
    options: RuntimeOptions,
    load: ServeLoad,
) -> Result<ServeOutcome, ExecError> {
    let vm = options.build_par_machine(module);
    let mut ex = ServeExecutor::new(vm, options, load);
    ex.run()
}

/// Runs a compiled module under the parallel runtime: `mutators` copies
/// of the entry procedure on real OS threads, stop-the-world parallel
/// collection with `config.gc_workers` workers. Pass `shadow = true` to
/// instrument for the gc-map precision oracle (`config.oracle` then
/// validates every thread before each collection).
///
/// # Errors
///
/// Propagates [`ExecError`] from the first failing thread.
pub fn run_module_par(
    module: VmModule,
    semi_words: usize,
    mutators: usize,
    shadow: bool,
    config: impl Into<RuntimeOptions>,
) -> Result<ParOutcome, ExecError> {
    let mut options =
        config.into().strategy(GcStrategy::Parallel).semi_words(semi_words).threads(mutators);
    options.shadow = options.shadow || shadow;
    run_module_par_opts(module, options)
}

/// Compiles and runs in one step (convenience for tests and examples).
///
/// # Errors
///
/// Returns the diagnostic as a string, or the execution error.
pub fn compile_and_run(
    source: &str,
    options: &Options,
    semi_words: usize,
) -> Result<ExecOutcome, String> {
    let module = compile(source, options).map_err(|d| d.to_string())?;
    run_module(module, semi_words).map_err(|e| e.to_string())
}

/// Reference semantics: run the *unoptimized IR* under the interpreter
/// that never collects. Differential tests compare everything against
/// this.
///
/// # Errors
///
/// Returns the diagnostic or trap as a string.
pub fn reference_output(source: &str) -> Result<String, String> {
    let prog = m3gc_frontend::compile_to_ir(source).map_err(|d| d.to_string())?;
    let out = m3gc_ir::interp::run_program(&prog).map_err(|t| t.to_string())?;
    Ok(out.output)
}

pub mod driver;

#[cfg(test)]
mod tests;
