//! The guts of the `m3c` command-line tool: each subcommand as a testable
//! function from (source, options) to printable output.

use std::fmt::Write as _;

use m3gc_core::decode::{DecodeCache, DecodeError};
use m3gc_core::encode::Scheme;
use m3gc_core::stats::{size_report, table_stats};
use m3gc_frontend::error::{Diagnostic, Phase};
use m3gc_ir::verify::VerifyError;
use m3gc_runtime::scheduler::{ExecError, Executor};
use m3gc_runtime::{GcStrategy, ParExecutor, RuntimeOptions, ServeLoad, StatsReport};

use crate::{compile, compile_to_ir, run_module_serve, Options};

/// Default per-request region size (words) when `m3c serve` is invoked
/// without `--region-words`.
pub const DEFAULT_REGION_WORDS: usize = 1 << 12;

/// Errors surfaced to the CLI user, structured by pipeline stage.
///
/// Each variant wraps the underlying error type, so callers can match on
/// the failing stage and walk [`std::error::Error::source`]; `Display`
/// remains exactly the wrapped error's message (what the CLI prints).
#[derive(Debug)]
#[non_exhaustive]
pub enum DriverError {
    /// Lexical analysis failed.
    Lex(Diagnostic),
    /// Parsing failed.
    Parse(Diagnostic),
    /// Type checking failed.
    Type(Diagnostic),
    /// Code generation produced invalid IR or code.
    Codegen(VerifyError),
    /// The compiled module's gc tables failed to decode.
    Decode(DecodeError),
    /// Execution failed (trap, fuel, stuck thread).
    Runtime(ExecError),
    /// Malformed command line.
    Usage(String),
}

impl DriverError {
    fn usage(msg: impl Into<String>) -> DriverError {
        DriverError::Usage(msg.into())
    }
}

impl From<Diagnostic> for DriverError {
    /// Classifies a front-end diagnostic by its reporting phase.
    fn from(d: Diagnostic) -> DriverError {
        match d.phase {
            Phase::Lex => DriverError::Lex(d),
            Phase::Parse => DriverError::Parse(d),
            Phase::Type => DriverError::Type(d),
        }
    }
}

impl From<VerifyError> for DriverError {
    fn from(e: VerifyError) -> DriverError {
        DriverError::Codegen(e)
    }
}

impl From<DecodeError> for DriverError {
    fn from(e: DecodeError) -> DriverError {
        DriverError::Decode(e)
    }
}

impl From<ExecError> for DriverError {
    fn from(e: ExecError) -> DriverError {
        DriverError::Runtime(e)
    }
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Lex(d) | DriverError::Parse(d) | DriverError::Type(d) => d.fmt(f),
            DriverError::Codegen(e) => e.fmt(f),
            DriverError::Decode(e) => e.fmt(f),
            DriverError::Runtime(e) => e.fmt(f),
            DriverError::Usage(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Lex(d) | DriverError::Parse(d) | DriverError::Type(d) => Some(d),
            DriverError::Codegen(e) => Some(e),
            DriverError::Decode(e) => Some(e),
            DriverError::Runtime(e) => Some(e),
            DriverError::Usage(_) => None,
        }
    }
}

/// `m3c check`: parse and type-check only.
///
/// # Errors
///
/// Returns the first diagnostic.
pub fn check(source: &str) -> Result<String, DriverError> {
    let tokens = m3gc_frontend::lexer::lex(source)?;
    let module = m3gc_frontend::parser::parse(tokens)?;
    let checked = m3gc_frontend::typecheck::check(&module)?;
    Ok(format!(
        "module `{}`: {} procedure(s), {} global(s) — ok\n",
        module.name,
        module.procs.len(),
        checked.globals.len()
    ))
}

/// `m3c run`: compile and execute, returning program output (and
/// optionally gc statistics).
///
/// # Errors
///
/// Returns compile diagnostics or execution errors.
pub fn run(
    source: &str,
    options: &Options,
    config: impl Into<RuntimeOptions>,
) -> Result<String, DriverError> {
    let opts = config.into();
    let module = compile(source, options)?;
    // Surface malformed gc tables as a Decode error up front instead of a
    // panic inside the executor.
    let cache = DecodeCache::build(&module.gc_maps)?;
    if matches!(opts.strategy, GcStrategy::Parallel | GcStrategy::Cms) {
        return run_parallel(module, opts);
    }
    let total_points = cache.index().gc_point_pcs().count();
    let machine = opts.build_machine(module);
    let mut ex = Executor::try_new(machine, opts)?;
    let out = ex.run_main()?;
    let mut s = out.output.clone();
    if opts.stats {
        let mut rep = StatsReport::new("run");
        rep.add_collector_summary(out.collections, &out.gc_total, out.steps);
        rep.add_decode_cache(
            out.gc_total.decode_hits,
            out.gc_total.decode_misses,
            out.gc_total.decode_ops,
            Some(total_points),
        );
        if opts.strategy == GcStrategy::Generational {
            rep.add_generational(
                out.minor_collections,
                out.major_collections,
                out.gc_total.promoted_objects,
                out.remembered_len,
                (
                    out.barrier.executed,
                    out.barrier.recorded,
                    out.barrier.deduped,
                    out.barrier.filtered(),
                ),
            );
            rep.add_watermark(out.gc_total.frames_spliced, out.gc_total.frames_traced);
        }
        rep.add_livemap(out.gc_total.roots_killed, out.gc_total.float_words_avoided);
        if let Some(jit) = ex.jit_summary() {
            rep.add_jit(&jit);
        }
        s.push_str(&rep.to_text());
    }
    Ok(s)
}

/// The `--gc=par` / `--gc=cms` path of [`run`]: `threads` OS-thread
/// mutators, each running the module body, with stop-the-world parallel
/// collection (or, for cms, concurrent SATB marking and a parallel
/// bitmap evacuation in the final pause).
fn run_parallel(module: m3gc_vm::VmModule, opts: RuntimeOptions) -> Result<String, DriverError> {
    let vm = opts.build_par_machine(module);
    let mut ex = ParExecutor::new(vm, opts);
    let out = ex.run_main()?;
    let mut s = out.output.clone();
    if opts.stats {
        let name = if opts.strategy == GcStrategy::Cms { "run-cms" } else { "run-par" };
        let mut rep = StatsReport::new(name);
        rep.add_parallel(
            opts.threads.max(1),
            opts.gc_workers.max(1),
            out.collections,
            out.steps,
            &out.gc_each,
        );
        if opts.strategy == GcStrategy::Cms {
            rep.add_cms(
                opts.conc_workers.max(1),
                out.satb_enqueued,
                out.satb_drained,
                &out.gc_each,
            );
            if opts.conc_evac {
                rep.add_evac(
                    out.evac_objects,
                    out.evac_words,
                    out.evac_healed_loads,
                    out.evac_healed_stores,
                    &out.gc_each,
                );
            }
        }
        rep.add_tlab(opts.tlab_words, out.tlab_refills, out.tlab_allocs, out.tlab_waste_words);
        rep.add_watermark(
            out.gc_each.iter().map(|g| g.frames_spliced).sum(),
            out.gc_each.iter().map(|g| g.frames_traced).sum(),
        );
        rep.add_livemap(
            out.gc_each.iter().map(|g| g.roots_killed).sum(),
            out.gc_each.iter().map(|g| g.float_words_avoided).sum(),
        );
        if let Some(jit) = ex.jit_summary() {
            rep.add_jit(&jit);
        }
        s.push_str(&rep.to_text());
    }
    Ok(s)
}

/// `m3c serve`: compile and run the allocation-service workload —
/// `load.requests` green-thread requests multiplexed over `threads` OS
/// threads, each allocating into a per-request region.
///
/// Serve defaults are applied here: a missing `--region-words` becomes
/// [`DEFAULT_REGION_WORDS`] and a missing `--green` becomes four slots
/// per OS thread. The report is always printed (the whole point of the
/// subcommand); `--stats` adds nothing.
///
/// # Errors
///
/// Returns compile diagnostics or the first failing request's error.
pub fn serve(
    source: &str,
    options: &Options,
    config: impl Into<RuntimeOptions>,
    mut load: ServeLoad,
) -> Result<String, DriverError> {
    let mut opts = config.into();
    if opts.region_words == 0 {
        opts.region_words = DEFAULT_REGION_WORDS;
    }
    if opts.green_slots == 0 {
        opts.green_slots = opts.threads.max(1) * 4;
    }
    if load.requests == 0 {
        load.requests = 100;
    }
    let module = compile(source, options)?;
    DecodeCache::build(&module.gc_maps)?;
    let view = m3gc_runtime::ServeConfigView {
        threads: opts.threads.max(1),
        green_slots: opts.green_slots,
        region_words: opts.region_words,
        quantum: opts.quantum.max(1),
    };
    let out = run_module_serve(module, opts, load)?;
    let mut rep = StatsReport::new("serve");
    rep.add_serve(view, &out.stats);
    Ok(rep.to_text())
}

/// `m3c ir`: dump the (optimized) IR.
///
/// # Errors
///
/// Returns compile diagnostics.
pub fn ir(source: &str, options: &Options) -> Result<String, DriverError> {
    let prog = compile_to_ir(source, options)?;
    Ok(m3gc_ir::pretty::program_to_string(&prog))
}

/// `m3c disasm`: dump the generated machine code with gc-points marked.
///
/// # Errors
///
/// Returns compile diagnostics.
pub fn disasm(source: &str, options: &Options) -> Result<String, DriverError> {
    let module = compile(source, options)?;
    Ok(m3gc_vm::disasm::disassemble(&module))
}

/// `m3c tables`: dump the gc-map tables in logical form.
///
/// # Errors
///
/// Returns compile diagnostics.
pub fn tables(source: &str, options: &Options) -> Result<String, DriverError> {
    let module = compile(source, options)?;
    let mut s = String::new();
    for proc in &module.logical_maps.procs {
        let _ = writeln!(s, "procedure `{}` (entry pc {}):", proc.name, proc.entry_pc);
        let _ = writeln!(
            s,
            "  ground table: {:?}",
            proc.ground.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        for pt in &proc.points {
            let slots: Vec<String> =
                pt.live_stack.iter().map(|&i| proc.ground[i as usize].to_string()).collect();
            if pt.killed.is_empty() {
                let _ =
                    writeln!(s, "  gc-point pc {:>5}: stack {:?} regs {}", pt.pc, slots, pt.regs);
            } else {
                let killed: Vec<String> =
                    pt.killed.iter().map(|&i| proc.ground[i as usize].to_string()).collect();
                let _ = writeln!(
                    s,
                    "  gc-point pc {:>5}: stack {:?} regs {} killed {:?}",
                    pt.pc, slots, pt.regs, killed
                );
            }
            for d in &pt.derivations {
                let _ = writeln!(s, "     derivation {d}");
            }
        }
    }
    Ok(s)
}

/// `m3c stats`: code size, Table-1 statistics and Table-2 percentages.
///
/// # Errors
///
/// Returns compile diagnostics.
pub fn stats(source: &str, options: &Options) -> Result<String, DriverError> {
    let module = compile(source, options)?;
    let st = table_stats(&module.logical_maps);
    let mut s = String::new();
    let _ = writeln!(s, "code size:        {} bytes", module.code_size());
    let _ = writeln!(s, "gc-points:        {} ({} non-empty)", st.total_gc_points, st.ngc);
    let _ = writeln!(
        s,
        "tables:           NPTRS {} NDEL {} NREG {} NDER {}",
        st.nptrs, st.ndel, st.nreg, st.nder
    );
    for scheme in Scheme::TABLE2 {
        let r = size_report(&module.logical_maps, scheme, module.code_size());
        let _ = writeln!(
            s,
            "  {:<32} {:>6} B  {:>5.1}%",
            scheme.to_string(),
            r.total_bytes,
            r.percent_of_code
        );
    }
    Ok(s)
}

/// Parses CLI-style option flags shared by the subcommands.
///
/// # Errors
///
/// Returns a usage error for unknown flags or malformed values.
pub fn parse_options(args: &[String]) -> Result<(Options, RuntimeOptions), DriverError> {
    let (options, config, _) = parse_all(args)?;
    if config.threads > 1
        && !matches!(config.strategy, GcStrategy::Parallel | GcStrategy::Cms)
        && config.region_words == 0
    {
        return Err(DriverError::usage("--threads requires --gc par or --gc cms"));
    }
    Ok((options, config))
}

/// Parses flags for `m3c serve`: everything [`parse_options`] accepts
/// plus the load shape (`--requests`, `--burst`, `--entry`). Multiple
/// OS threads are always legal here — serve is the parallel runtime.
///
/// # Errors
///
/// Returns a usage error for unknown flags or malformed values.
pub fn parse_serve_options(
    args: &[String],
) -> Result<(Options, RuntimeOptions, ServeLoad), DriverError> {
    parse_all(args)
}

fn parse_all(args: &[String]) -> Result<(Options, RuntimeOptions, ServeLoad), DriverError> {
    let mut options = Options::o2();
    let mut config = RuntimeOptions::new();
    let mut load = ServeLoad::default();
    let mut it = args.iter();
    // A required numeric flag value, parsed or a usage error.
    fn value<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> Result<T, DriverError> {
        let v = v.ok_or_else(|| DriverError::usage(format!("{flag} needs a value")))?;
        v.parse().map_err(|_| DriverError::usage(format!("bad {flag} value `{v}`")))
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--o0" => options = Options::o0().with_scheme(options.codegen.scheme),
            "--o2" => {}
            "--no-gc" => options.codegen.gc.emit_tables = false,
            "--live-maps" => options.codegen.gc.live_maps = true,
            "--no-live-maps" => options.codegen.gc.live_maps = false,
            "--split-paths" => {
                options = options.with_path_strategy(m3gc_opt::PathStrategy::Splitting);
            }
            "--torture" => config = config.torture(true),
            "--stats" => config = config.stats(true),
            "--oracle" => config = config.oracle(true),
            "--jit" => config = config.jit(true),
            "--heap" => config.semi_words = value("--heap", it.next())?,
            "--gc" | "--gc=semispace" | "--gc=gen" | "--gc=par" | "--gc=cms" => {
                let owned;
                let v = if let Some(eq) = a.strip_prefix("--gc=") {
                    owned = eq.to_string();
                    &owned
                } else {
                    it.next().ok_or_else(|| DriverError::usage("--gc needs a value"))?
                };
                config.strategy = match v.as_str() {
                    "gen" => GcStrategy::Generational,
                    "semispace" => GcStrategy::Semispace,
                    "par" => GcStrategy::Parallel,
                    "cms" => GcStrategy::Cms,
                    other => {
                        return Err(DriverError::usage(format!(
                            "unknown collector `{other}` (expected `semispace`, `gen`, `par` or \
                             `cms`)"
                        )))
                    }
                };
            }
            "--threads" => {
                config.threads = value::<usize>("--threads", it.next())?;
                if config.threads < 1 {
                    return Err(DriverError::usage("bad --threads value `0`"));
                }
            }
            "--gc-workers" => {
                config.gc_workers = value::<usize>("--gc-workers", it.next())?;
                if config.gc_workers < 1 {
                    return Err(DriverError::usage("bad --gc-workers value `0`"));
                }
            }
            "--conc-workers" => {
                config.conc_workers = value::<usize>("--conc-workers", it.next())?;
                if config.conc_workers < 1 {
                    return Err(DriverError::usage("bad --conc-workers value `0`"));
                }
            }
            "--conc-evac" => config = config.conc_evac(true),
            "--evac-region-words" => {
                let words = value::<usize>("--evac-region-words", it.next())?;
                if words < 1 {
                    return Err(DriverError::usage("bad --evac-region-words value `0`"));
                }
                config = config.evac_region_words(words);
            }
            "--tlab-words" => config.tlab_words = value("--tlab-words", it.next())?,
            "--nursery" => config.nursery_words = Some(value("--nursery", it.next())?),
            "--region-words" => {
                config.region_words = value::<usize>("--region-words", it.next())?;
                if config.region_words < 1 {
                    return Err(DriverError::usage("bad --region-words value `0`"));
                }
            }
            "--green" => {
                config.green_slots = value::<usize>("--green", it.next())?;
                if config.green_slots < 1 {
                    return Err(DriverError::usage("bad --green value `0`"));
                }
            }
            "--quantum" => config.quantum = value("--quantum", it.next())?,
            "--requests" => load.requests = value("--requests", it.next())?,
            "--burst" => load.burst = value("--burst", it.next())?,
            "--entry" => {
                let v = it.next().ok_or_else(|| DriverError::usage("--entry needs a value"))?;
                load.entry = Some(v.clone());
            }
            "--scheme" => {
                let v = it.next().ok_or_else(|| DriverError::usage("--scheme needs a value"))?;
                let scheme = match v.as_str() {
                    "full" => Scheme::FULL_PLAIN,
                    "full-packed" => Scheme::FULL_PACKED,
                    "delta" => Scheme::DELTA_PLAIN,
                    "delta-previous" => Scheme::DELTA_PREVIOUS,
                    "delta-packed" => Scheme::DELTA_PACKED,
                    "pp" => Scheme::DELTA_MAIN_PP,
                    other => return Err(DriverError::usage(format!("unknown scheme `{other}`"))),
                };
                options = options.with_scheme(scheme);
            }
            other => return Err(DriverError::usage(format!("unknown option `{other}`"))),
        }
    }
    Ok((options, config, load))
}

#[cfg(test)]
mod tests {
    use m3gc_vm::DEFAULT_TLAB_WORDS;

    use super::*;

    const HELLO: &str = "MODULE H; VAR x: INTEGER; BEGIN x := 41 + 1; PutInt(x); END H.";
    const ALLOCATING: &str = "MODULE A;
        TYPE R = REF RECORD v: INTEGER END;
        VAR r: R; i, s: INTEGER;
        BEGIN
          s := 0;
          FOR i := 1 TO 50 DO r := NEW(R); r.v := i; s := s + r.v; END;
          PutInt(s);
        END A.";

    #[test]
    fn check_reports_module_shape() {
        let out = check(HELLO).unwrap();
        assert!(out.contains("module `H`"));
        assert!(out.contains("ok"));
    }

    #[test]
    fn check_surfaces_diagnostics() {
        let e = check("MODULE X; VAR b: BOOLEAN; BEGIN b := 3; END X.").unwrap_err();
        assert!(e.to_string().contains("cannot assign"), "{e}");
    }

    #[test]
    fn run_executes() {
        let (o, c) = parse_options(&[]).unwrap();
        assert_eq!(run(HELLO, &o, c).unwrap(), "42");
    }

    #[test]
    fn run_with_stats_and_torture() {
        let (o, mut c) = parse_options(&["--torture".into(), "--stats".into()]).unwrap();
        c.semi_words = 4096;
        let out = run(ALLOCATING, &o, c).unwrap();
        assert!(out.starts_with("1275"), "{out}");
        assert!(out.contains("collection(s)"), "{out}");
    }

    #[test]
    fn run_with_jit_matches_and_reports() {
        let (o, mut c) = parse_options(&["--torture".into(), "--stats".into()]).unwrap();
        c.semi_words = 4096;
        let baseline = run(ALLOCATING, &o, c).unwrap();
        let (oj, mut cj) =
            parse_options(&["--jit".into(), "--torture".into(), "--stats".into()]).unwrap();
        assert!(cj.jit);
        cj.semi_words = 4096;
        let out = run(ALLOCATING, &oj, cj).unwrap();
        assert_eq!(
            out.lines().next(),
            baseline.lines().next(),
            "jit output must match the interpreter"
        );
        assert!(out.contains("--- jit:"), "{out}");
        assert!(out.contains("proc(s) compiled"), "{out}");
    }

    #[test]
    fn stats_report_decode_cache_counters() {
        let (o, mut c) = parse_options(&["--torture".into(), "--stats".into()]).unwrap();
        c.semi_words = 4096;
        let out = run(ALLOCATING, &o, c).unwrap();
        assert!(out.contains("decode cache:"), "{out}");
        assert!(out.contains("hit(s)") && out.contains("miss(es)"), "{out}");
        // Torture mode collects at every allocation: warm lookups dominate,
        // so the report must show real hits.
        let hits: u64 = out
            .lines()
            .find(|l| l.contains("decode cache"))
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("unparsable stats line in {out}"));
        assert!(hits > 0, "{out}");
    }

    #[test]
    fn errors_are_classified_by_stage() {
        let lex = check("MODULE X; VAR a: INTEGER; BEGIN a := 1 ? 2; END X.").unwrap_err();
        assert!(matches!(lex, DriverError::Lex(_)), "{lex:?}");
        let parse = check("MODULE X; BEGIN BEGIN END X.").unwrap_err();
        assert!(matches!(parse, DriverError::Parse(_)), "{parse:?}");
        let ty = check("MODULE X; VAR b: BOOLEAN; BEGIN b := 3; END X.").unwrap_err();
        assert!(matches!(ty, DriverError::Type(_)), "{ty:?}");
        let usage = parse_options(&["--bogus".into()]).unwrap_err();
        assert!(matches!(usage, DriverError::Usage(_)), "{usage:?}");
        let (o, mut c) = parse_options(&[]).unwrap();
        c.semi_words = 64; // far too small for a 100-element live list
        let rt = run(
            "MODULE Oom;
             TYPE L = REF RECORD v: INTEGER; next: L END;
             VAR l: L; i: INTEGER;
             BEGIN
               l := NIL;
               FOR i := 1 TO 100 DO
                 WITH c = NEW(L) DO c.v := i; c.next := l; l := c; END;
               END;
               PutInt(l.v);
             END Oom.",
            &o,
            c,
        )
        .unwrap_err();
        assert!(matches!(rt, DriverError::Runtime(_)), "{rt:?}");
    }

    #[test]
    fn errors_expose_their_source() {
        use std::error::Error as _;
        let e = check("MODULE X; VAR b: BOOLEAN; BEGIN b := 3; END X.").unwrap_err();
        let src = e.source().expect("diagnostic source");
        // Display stays byte-identical to the wrapped error's.
        assert_eq!(e.to_string(), src.to_string());
        let usage = parse_options(&["--bogus".into()]).unwrap_err();
        assert!(usage.source().is_none());
        assert_eq!(usage.to_string(), "unknown option `--bogus`");
    }

    #[test]
    fn ir_and_disasm_render() {
        let (o, _) = parse_options(&[]).unwrap();
        let ir_text = ir(HELLO, &o).unwrap();
        assert!(ir_text.contains("func main"));
        let asm = disasm(HELLO, &o).unwrap();
        assert!(asm.contains("sys"), "{asm}");
    }

    #[test]
    fn tables_show_gc_points() {
        let (o, _) = parse_options(&[]).unwrap();
        let t = tables(ALLOCATING, &o).unwrap();
        assert!(t.contains("gc-point pc"), "{t}");
        assert!(t.contains("ground table"), "{t}");
    }

    #[test]
    fn stats_include_all_schemes() {
        let (o, _) = parse_options(&[]).unwrap();
        let s = stats(ALLOCATING, &o).unwrap();
        assert!(s.contains("delta-main+previous+packing"), "{s}");
        assert!(s.contains("full-info"), "{s}");
    }

    #[test]
    fn run_generational_matches_semispace_output() {
        let (o, mut c) = parse_options(&["--gc".into(), "gen".into()]).unwrap();
        assert_eq!(c.strategy, GcStrategy::Generational);
        c.semi_words = 4096;
        c.nursery_words = Some(128);
        let gen_out = run(ALLOCATING, &o, c).unwrap();
        let (o2, mut c2) = parse_options(&[]).unwrap();
        c2.semi_words = 4096;
        let semi_out = run(ALLOCATING, &o2, c2).unwrap();
        assert_eq!(gen_out, semi_out);
        assert_eq!(gen_out, "1275");
    }

    #[test]
    fn gen_stats_report_minor_major_split_and_barriers() {
        let (o, mut c) =
            parse_options(&["--gc=gen".into(), "--nursery".into(), "64".into(), "--stats".into()])
                .unwrap();
        assert_eq!(c.strategy, GcStrategy::Generational);
        assert_eq!(c.nursery_words, Some(64));
        c.semi_words = 4096;
        let out = run(ALLOCATING, &o, c).unwrap();
        assert!(out.starts_with("1275"), "{out}");
        // Existing stats lines stay intact...
        assert!(out.contains("collection(s)"), "{out}");
        assert!(out.contains("decode cache:"), "{out}");
        // ...and the generational lines join them.
        let gen_line = out
            .lines()
            .find(|l| l.contains("generational:"))
            .unwrap_or_else(|| panic!("no generational line in {out}"));
        assert!(gen_line.contains("minor") && gen_line.contains("major"), "{gen_line}");
        assert!(gen_line.contains("remembered slot(s)"), "{gen_line}");
        let minors: u64 = gen_line
            .split_whitespace()
            .nth(2)
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("unparsable generational line: {gen_line}"));
        assert!(minors > 0, "{out}");
        assert!(out.contains("barriers:"), "{out}");
        // Semispace runs must not print the generational lines.
        let (o2, mut c2) = parse_options(&["--stats".into()]).unwrap();
        c2.semi_words = 4096;
        let semi = run(ALLOCATING, &o2, c2).unwrap();
        assert!(!semi.contains("generational:"), "{semi}");
        assert!(!semi.contains("barriers:"), "{semi}");
    }

    #[test]
    fn run_parallel_matches_sequential_output() {
        let (o, mut c) =
            parse_options(&["--gc=par".into(), "--gc-workers".into(), "2".into()]).unwrap();
        assert_eq!(c.strategy, GcStrategy::Parallel);
        assert_eq!(c.gc_workers, 2);
        c.semi_words = 4096;
        let par_out = run(ALLOCATING, &o, c).unwrap();
        assert_eq!(par_out, "1275");
    }

    // All state procedure-local: module globals are *shared* between
    // parallel mutators, so a deterministic multi-thread program must
    // not touch them.
    const LOCAL_ALLOCATING: &str = "MODULE P;
        TYPE L = REF RECORD v: INTEGER; next: L END;
        PROCEDURE Work(): INTEGER =
        VAR l: L; i, s: INTEGER;
        BEGIN
          l := NIL;
          FOR i := 1 TO 50 DO
            WITH c = NEW(L) DO c.v := i; c.next := l; l := c; END;
          END;
          s := 0;
          WHILE l # NIL DO s := s + l.v; l := l.next; END;
          RETURN s;
        END Work;
        BEGIN PutInt(Work()); END P.";

    #[test]
    fn run_parallel_multi_thread_concatenates_outputs() {
        let (o, mut c) = parse_options(&[
            "--threads".into(),
            "3".into(),
            "--gc=par".into(),
            "--torture".into(),
            "--stats".into(),
        ])
        .unwrap();
        c.semi_words = 4096;
        let out = run(LOCAL_ALLOCATING, &o, c).unwrap();
        // Three mutators each print 1275, in tid order.
        assert!(out.starts_with("127512751275"), "{out}");
        assert!(out.contains("parallel: 3 mutator(s)"), "{out}");
        assert!(out.contains("handshake:"), "{out}");
        assert!(out.contains("workers: copied words"), "{out}");
    }

    #[test]
    fn option_parsing() {
        let (o, c) = parse_options(&[
            "--o0".into(),
            "--heap".into(),
            "123".into(),
            "--scheme".into(),
            "pp".into(),
        ])
        .unwrap();
        assert_eq!(c.semi_words, 123);
        assert_eq!(o.codegen.scheme, Scheme::DELTA_MAIN_PP);
        assert!(parse_options(&["--bogus".into()]).is_err());
        assert!(parse_options(&["--scheme".into(), "nope".into()]).is_err());
        assert!(parse_options(&["--heap".into()]).is_err());
        let (_, c) = parse_options(&["--gc".into(), "semispace".into()]).unwrap();
        assert_eq!(c.strategy, GcStrategy::Semispace);
        let (_, c) = parse_options(&["--gc=gen".into()]).unwrap();
        assert_eq!(c.strategy, GcStrategy::Generational);
        assert!(parse_options(&["--gc".into(), "mark-sweep".into()]).is_err());
        assert!(parse_options(&["--gc".into()]).is_err());
        assert!(parse_options(&["--nursery".into(), "x".into()]).is_err());
        let (_, c) = parse_options(&["--gc".into(), "par".into()]).unwrap();
        assert_eq!(c.strategy, GcStrategy::Parallel);
        assert_eq!((c.threads, c.gc_workers), (1, 4));
        let (_, c) = parse_options(&["--gc=par".into(), "--threads".into(), "4".into()]).unwrap();
        assert_eq!(c.threads, 4);
        assert!(parse_options(&["--threads".into(), "2".into()]).is_err());
        assert!(parse_options(&["--threads".into(), "0".into(), "--gc=par".into()]).is_err());
        assert!(parse_options(&["--gc-workers".into(), "zero".into()]).is_err());
        let (_, c) = parse_options(&[]).unwrap();
        assert_eq!(c.tlab_words, DEFAULT_TLAB_WORDS);
        let (_, c) = parse_options(&["--tlab-words".into(), "8".into()]).unwrap();
        assert_eq!(c.tlab_words, 8);
        // 0 disables TLABs (shared-frontier CAS per allocation).
        let (_, c) = parse_options(&["--tlab-words".into(), "0".into()]).unwrap();
        assert_eq!(c.tlab_words, 0);
        assert!(parse_options(&["--tlab-words".into(), "lots".into()]).is_err());
        assert!(parse_options(&["--tlab-words".into()]).is_err());
        // Concurrent marking: `--gc cms` with its own marker count.
        let (_, c) = parse_options(&["--gc".into(), "cms".into()]).unwrap();
        assert_eq!(c.strategy, GcStrategy::Cms);
        let (_, c) =
            parse_options(&["--gc=cms".into(), "--conc-workers".into(), "3".into()]).unwrap();
        assert_eq!((c.strategy, c.conc_workers), (GcStrategy::Cms, 3));
        // Multiple mutators are legal under cms, as under par.
        let (_, c) = parse_options(&["--gc=cms".into(), "--threads".into(), "4".into()]).unwrap();
        assert_eq!(c.threads, 4);
        assert!(parse_options(&["--conc-workers".into(), "0".into()]).is_err());
        assert!(parse_options(&["--conc-workers".into()]).is_err());
        // Concurrent evacuation rides on cms.
        let (_, c) = parse_options(&["--gc=cms".into(), "--conc-evac".into()]).unwrap();
        assert!(c.conc_evac);
        let (_, c) = parse_options(&[
            "--gc=cms".into(),
            "--conc-evac".into(),
            "--evac-region-words".into(),
            "256".into(),
        ])
        .unwrap();
        assert_eq!(c.evac_region_words, Some(256));
        assert!(parse_options(&["--evac-region-words".into(), "0".into()]).is_err());
        assert!(parse_options(&["--evac-region-words".into()]).is_err());
        let (_, c) = parse_options(&[]).unwrap();
        assert!(!c.conc_evac);
        assert_eq!(c.evac_region_words, None);
    }

    #[test]
    fn run_cms_matches_sequential_output_and_reports_cycles() {
        let (o, mut c) = parse_options(&[
            "--gc=cms".into(),
            "--threads".into(),
            "2".into(),
            "--conc-workers".into(),
            "2".into(),
            "--torture".into(),
            "--stats".into(),
        ])
        .unwrap();
        c.semi_words = 1 << 14;
        let out = run(LOCAL_ALLOCATING, &o, c).unwrap();
        // Two mutators each print 1275, then the stats sections: the
        // parallel lines plus the cms pause split and SATB ledger.
        assert!(out.starts_with("12751275"), "{out}");
        assert!(out.contains("parallel: 2 mutator(s)"), "{out}");
        let cms_line = out
            .lines()
            .find(|l| l.contains("cms:") && l.contains("cycle(s)"))
            .unwrap_or_else(|| panic!("no cms line in {out}"));
        assert!(cms_line.contains("snapshot pause"), "{cms_line}");
        assert!(cms_line.contains("final pause"), "{cms_line}");
        assert!(out.contains("satb:"), "{out}");
    }

    #[test]
    fn run_cms_conc_evac_matches_output_and_reports_evac_lines() {
        let (o, mut c) = parse_options(&[
            "--gc=cms".into(),
            "--threads".into(),
            "2".into(),
            "--conc-workers".into(),
            "2".into(),
            "--conc-evac".into(),
            "--torture".into(),
            "--stats".into(),
            "--oracle".into(),
        ])
        .unwrap();
        c.semi_words = 1 << 14;
        let out = run(LOCAL_ALLOCATING, &o, c).unwrap();
        assert!(out.starts_with("12751275"), "{out}");
        let evac_line = out
            .lines()
            .find(|l| l.contains("evac:") && l.contains("region(s)"))
            .unwrap_or_else(|| panic!("no evac line in {out}"));
        assert!(evac_line.contains("cycle(s)"), "{evac_line}");
        assert!(out.contains("select pause"), "{out}");
        assert!(out.contains("healed"), "{out}");
    }

    #[test]
    fn par_stats_report_tlab_and_watermark_counters() {
        let (o, mut c) = parse_options(&[
            "--gc=par".into(),
            "--threads".into(),
            "2".into(),
            "--torture".into(),
            "--stats".into(),
            "--tlab-words".into(),
            "16".into(),
        ])
        .unwrap();
        c.semi_words = 4096;
        let out = run(LOCAL_ALLOCATING, &o, c).unwrap();
        assert!(out.starts_with("12751275"), "{out}");
        let tlab_line = out
            .lines()
            .find(|l| l.contains("tlab:"))
            .unwrap_or_else(|| panic!("no tlab line in {out}"));
        assert!(tlab_line.contains("16 word(s) per buffer"), "{tlab_line}");
        assert!(tlab_line.contains("refill(s)"), "{tlab_line}");
        assert!(out.contains("watermark:"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
    }

    #[test]
    fn gen_stats_report_watermark_hit_rate() {
        let (o, mut c) =
            parse_options(&["--gc=gen".into(), "--nursery".into(), "64".into(), "--stats".into()])
                .unwrap();
        c.semi_words = 4096;
        let out = run(ALLOCATING, &o, c).unwrap();
        assert!(out.starts_with("1275"), "{out}");
        assert!(out.contains("watermark:"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        // Semispace full collections always rescan: no watermark line.
        let (o2, mut c2) = parse_options(&["--stats".into()]).unwrap();
        c2.semi_words = 4096;
        let semi = run(ALLOCATING, &o2, c2).unwrap();
        assert!(!semi.contains("watermark:"), "{semi}");
    }

    // A dead-slot shape: `a` lives in a frame slot (it is passed VAR),
    // is dead after `s := a.v`, and every NEW gc-point in the loop is
    // a chance for the liveness-pruned maps to kill it.
    const SLOT_HEAVY: &str = "MODULE K;
        TYPE R = REF RECORD v: INTEGER END;
        PROCEDURE Fill(VAR r: R) = BEGIN r := NEW(R); r.v := 7; END Fill;
        PROCEDURE P() =
        VAR a: R; s, i: INTEGER;
        BEGIN
          Fill(a);
          s := a.v;
          FOR i := 1 TO 20 DO
            WITH d = NEW(R) DO d.v := i; s := s + d.v; END;
          END;
          PutInt(s);
        END P;
        BEGIN P(); END K.";

    #[test]
    fn livemap_flags_parse() {
        let (o, _) = parse_options(&[]).unwrap();
        assert!(o.codegen.gc.live_maps);
        let (o, _) = parse_options(&["--no-live-maps".into()]).unwrap();
        assert!(!o.codegen.gc.live_maps);
        let (o, _) = parse_options(&["--no-live-maps".into(), "--live-maps".into()]).unwrap();
        assert!(o.codegen.gc.live_maps);
    }

    #[test]
    fn livemap_stats_report_roots_killed() {
        let killed_count = |args: &[String]| {
            let (o, mut c) = parse_options(args).unwrap();
            c.semi_words = 4096;
            let out = run(SLOT_HEAVY, &o, c).unwrap();
            assert!(out.starts_with("217"), "{out}");
            let line = out
                .lines()
                .find(|l| l.contains("livemap:"))
                .unwrap_or_else(|| panic!("no livemap line in {out}"));
            // "--- livemap: K root(s) killed, W float word(s) avoided"
            line.split_whitespace()
                .nth(2)
                .and_then(|w| w.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("unparsable livemap line: {line}"))
        };
        let pruned = killed_count(&["--torture".into(), "--stats".into()]);
        assert!(pruned > 0, "liveness pruning should kill dead WITH slots");
        let full = killed_count(&["--torture".into(), "--stats".into(), "--no-live-maps".into()]);
        assert_eq!(full, 0, "full maps must not kill anything");
    }

    #[test]
    fn tables_show_killed_slots() {
        let (o, _) = parse_options(&[]).unwrap();
        let t = tables(SLOT_HEAVY, &o).unwrap();
        assert!(t.contains("killed"), "{t}");
        let (o, _) = parse_options(&["--no-live-maps".into()]).unwrap();
        let t = tables(SLOT_HEAVY, &o).unwrap();
        assert!(!t.contains("killed"), "{t}");
    }

    #[test]
    fn serve_options_parse_load_and_regions() {
        let (_, c, l) = parse_serve_options(&[
            "--requests".into(),
            "12".into(),
            "--green".into(),
            "4".into(),
            "--region-words".into(),
            "256".into(),
            "--burst".into(),
            "3".into(),
            "--threads".into(),
            "2".into(),
            "--oracle".into(),
        ])
        .unwrap();
        assert_eq!(l.requests, 12);
        assert_eq!(l.burst, 3);
        assert_eq!(c.green_slots, 4);
        assert_eq!(c.region_words, 256);
        assert!(c.oracle && c.shadow);
        assert_eq!(c.threads, 2);
        assert!(parse_serve_options(&["--region-words".into(), "0".into()]).is_err());
        assert!(parse_serve_options(&["--requests".into(), "many".into()]).is_err());
        // The run subcommand still rejects multi-thread without `--gc par`.
        assert!(parse_options(&["--threads".into(), "2".into()]).is_err());
    }

    #[test]
    fn serve_reports_region_ledger() {
        let (o, c, l) = parse_serve_options(&[
            "--requests".into(),
            "8".into(),
            "--green".into(),
            "2".into(),
            "--region-words".into(),
            "512".into(),
        ])
        .unwrap();
        let out = serve(LOCAL_ALLOCATING, &o, c, l).unwrap();
        assert!(out.contains("serve: 8 request(s)"), "{out}");
        assert!(out.contains("regions:"), "{out}");
        assert!(out.contains("latency:"), "{out}");
        assert!(out.contains("pauses:"), "{out}");
    }
}
