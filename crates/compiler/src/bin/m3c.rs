//! `m3c` — the Mini-M3 compiler driver.
//!
//! ```text
//! m3c <check|run|ir|disasm|tables|stats> <file.m3> [options]
//!
//! options:
//!   --o0 | --o2          optimization level (default --o2)
//!   --no-gc              disable gc support (§6.2 baseline)
//!   --split-paths        resolve ambiguous derivations by code duplication
//!   --scheme S           table scheme: full, full-packed, delta,
//!                        delta-previous, delta-packed, pp (default pp)
//!   --heap N             semispace size in words (run; default 65536)
//!   --gc C               collector: semispace (default) or gen (run)
//!   --nursery N          nursery size in words with --gc gen (run;
//!                        default: a quarter semispace)
//!   --torture            collect at every allocation (run)
//!   --stats              print gc statistics after the output (run)
//! ```

use m3gc_compiler::driver;

fn usage() -> ! {
    eprintln!(
        "usage: m3c <check|run|ir|disasm|tables|stats> <file.m3> \
         [--o0|--o2] [--no-gc] [--split-paths] [--scheme S] [--heap N] \
         [--gc semispace|gen] [--nursery N] [--torture] [--stats]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let cmd = &args[0];
    let path = &args[1];
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("m3c: cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let (options, config) = match driver::parse_options(&args[2..]) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("m3c: {e}");
            usage();
        }
    };
    let result = match cmd.as_str() {
        "check" => driver::check(&source),
        "run" => driver::run(&source, &options, config),
        "ir" => driver::ir(&source, &options),
        "disasm" => driver::disasm(&source, &options),
        "tables" => driver::tables(&source, &options),
        "stats" => driver::stats(&source, &options),
        _ => usage(),
    };
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("m3c: {e}");
            std::process::exit(1);
        }
    }
}
