//! Differential tests across the full pipeline: for each program, the
//! output must be identical for (a) the reference interpreter (no GC),
//! (b) the unoptimized VM build under a tiny heap, (c) the optimized VM
//! build under a tiny heap, (d) the optimized build with path splitting,
//! and (e) the optimized build under gc-torture (a collection at every
//! allocation).

use crate::{compile, compile_and_run, reference_output, run_module_with, Options};
use m3gc_opt::PathStrategy;
use m3gc_runtime::RuntimeOptions;

fn check_all_configs(src: &str, semi_words: usize) {
    let expected = reference_output(src).unwrap_or_else(|e| panic!("reference: {e}"));
    for (name, opts) in [
        ("O0", Options::o0()),
        ("O2", Options::o2()),
        ("O2+split", Options::o2().with_path_strategy(PathStrategy::Splitting)),
    ] {
        let got = compile_and_run(src, &opts, semi_words).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(got.output, expected, "{name} output mismatch");
    }
    // GC torture on the optimized build.
    let module = compile(src, &Options::o2()).unwrap();
    let out = run_module_with(module, semi_words.max(1 << 14), RuntimeOptions::new().torture(true))
        .unwrap_or_else(|e| panic!("torture: {e}"));
    assert_eq!(out.output, expected, "torture output mismatch");
}

#[test]
fn sum_loop() {
    check_all_configs(
        "MODULE M; VAR i, s: INTEGER;
         BEGIN s := 0; FOR i := 1 TO 100 DO s := s + i; END; PutInt(s); END M.",
        1 << 12,
    );
}

#[test]
fn list_building_and_walking() {
    check_all_configs(
        "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         PROCEDURE Cons(h: INTEGER; t: List): List =
         VAR c: List;
         BEGIN c := NEW(List); c.head := h; c.tail := t; RETURN c; END Cons;
         VAR l: List; i, s: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO 40 DO l := Cons(i, l); END;
           s := 0;
           WHILE l # NIL DO s := s + l.head; l := l.tail; END;
           PutInt(s);
         END M.",
        512,
    );
}

#[test]
fn array_sums_with_lower_bounds() {
    // Exercises virtual array origin + strength reduction at O2.
    check_all_configs(
        "MODULE M;
         TYPE A = REF ARRAY [7..13] OF INTEGER;
         VAR a: A; i, s: INTEGER;
         BEGIN
           a := NEW(A);
           FOR i := 7 TO 13 DO a[i] := i * i; END;
           s := 0;
           FOR i := FIRST(a) TO LAST(a) DO s := s + a[i]; END;
           PutInt(s);
         END M.",
        1 << 12,
    );
}

#[test]
fn nested_procedures_and_var_params() {
    check_all_configs(
        "MODULE M;
         TYPE R = REF RECORD v: INTEGER END;
         PROCEDURE AddInto(VAR acc: INTEGER; x: INTEGER) =
         BEGIN acc := acc + x; END AddInto;
         PROCEDURE Relay(VAR acc: INTEGER; x: INTEGER) =
         BEGIN AddInto(acc, x); END Relay;
         VAR r: R; i: INTEGER;
         BEGIN
           r := NEW(R); r.v := 0;
           FOR i := 1 TO 25 DO
             Relay(r.v, i);
             WITH junk = NEW(R) DO junk.v := i; END;
           END;
           PutInt(r.v);
         END M.",
        256,
    );
}

#[test]
fn string_scanning() {
    check_all_configs(
        "MODULE M;
         TYPE S = REF ARRAY OF CHAR;
         PROCEDURE CountSpaces(s: S): INTEGER =
         VAR i, n: INTEGER;
         BEGIN
           n := 0;
           FOR i := 0 TO LAST(s) DO
             IF s[i] = ' ' THEN INC(n); END;
           END;
           RETURN n;
         END CountSpaces;
         BEGIN
           PutInt(CountSpaces(\"a b c d\"));
         END M.",
        1 << 12,
    );
}

#[test]
fn recursion_with_allocation() {
    check_all_configs(
        "MODULE M;
         TYPE T = REF RECORD left, right: T; v: INTEGER END;
         PROCEDURE Build(d: INTEGER): T =
         VAR t: T;
         BEGIN
           IF d = 0 THEN RETURN NIL; END;
           t := NEW(T);
           t.v := d;
           t.left := Build(d - 1);
           t.right := Build(d - 1);
           RETURN t;
         END Build;
         PROCEDURE Sum(t: T): INTEGER =
         BEGIN
           IF t = NIL THEN RETURN 0; END;
           RETURN t.v + Sum(t.left) + Sum(t.right);
         END Sum;
         BEGIN
           PutInt(Sum(Build(6)));
         END M.",
        2048,
    );
}

#[test]
fn repeat_and_exit_and_elsif() {
    check_all_configs(
        "MODULE M;
         VAR i, s: INTEGER;
         BEGIN
           i := 0; s := 0;
           LOOP
             INC(i);
             IF i MOD 3 = 0 THEN s := s + 1;
             ELSIF i MOD 3 = 1 THEN s := s + 10;
             ELSE s := s + 100;
             END;
             IF i = 12 THEN EXIT; END;
           END;
           REPEAT DEC(i); UNTIL i = 0;
           PutInt(s); PutInt(i);
         END M.",
        1 << 12,
    );
}

#[test]
fn optimizer_reduces_instruction_count() {
    let src = "MODULE M;
         TYPE A = REF ARRAY [1..50] OF INTEGER;
         VAR a: A; i, s: INTEGER;
         BEGIN
           a := NEW(A);
           FOR i := 1 TO 50 DO a[i] := i; END;
           s := 0;
           FOR i := 1 TO 50 DO s := s + a[i]; END;
           PutInt(s);
         END M.";
    let ir0 = crate::compile_to_ir(src, &Options::o0()).unwrap();
    let ir2 = crate::compile_to_ir(src, &Options::o2()).unwrap();
    let count = |p: &m3gc_ir::Program| -> usize { p.funcs.iter().map(|f| f.instr_count()).sum() };
    assert!(
        count(&ir2) < count(&ir0),
        "O2 ({}) should be smaller than O0 ({})",
        count(&ir2),
        count(&ir0)
    );
    // And faster on the interpreter.
    let steps0 = m3gc_ir::interp::run_program(&ir0).unwrap().steps;
    let steps2 = m3gc_ir::interp::run_program(&ir2).unwrap().steps;
    assert!(steps2 < steps0, "O2 ({steps2} steps) vs O0 ({steps0} steps)");
}

#[test]
fn optimized_build_executes_fewer_vm_steps() {
    let src = "MODULE M;
         TYPE A = REF ARRAY [1..20] OF INTEGER;
         VAR a: A; i, s: INTEGER;
         BEGIN
           a := NEW(A);
           FOR i := 1 TO 20 DO a[i] := i * 2; END;
           s := 0;
           FOR i := 1 TO 20 DO s := s + a[i]; END;
           PutInt(s);
         END M.";
    let s0 = crate::run_module(compile(src, &Options::o0()).unwrap(), 1 << 12).unwrap().steps;
    let s2 = crate::run_module(compile(src, &Options::o2()).unwrap(), 1 << 12).unwrap().steps;
    assert!(s2 < s0, "O2 executed {s2} steps, O0 {s0}");
}

#[test]
fn gc_disabled_build_has_no_tables() {
    let src = "MODULE M; TYPE R = REF RECORD x: INTEGER END; VAR r: R;
               BEGIN r := NEW(R); r.x := 1; PutInt(r.x); END M.";
    let m = compile(src, &Options::o2_no_gc()).unwrap();
    assert!(m.logical_maps.procs.is_empty());
    // The gc-supporting build has tables and the same code size (§6.2: no
    // effect on optimized code is the expected result on a load/store
    // machine).
    let mg = compile(src, &Options::o2()).unwrap();
    assert!(!mg.logical_maps.procs.is_empty());
}

#[test]
fn scheme_choice_does_not_change_semantics() {
    use m3gc_core::encode::Scheme;
    let src = "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         VAR l: List; i, s: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO 30 DO
             WITH junk = NEW(List) DO junk.head := i; END;
             WITH c = NEW(List) DO c.head := i; c.tail := l; l := c; END;
             IF i MOD 10 = 0 THEN l := NIL; END;
           END;
           s := 0;
           WHILE l # NIL DO s := s + l.head; l := l.tail; END;
           PutInt(s);
         END M.";
    let expected = reference_output(src).unwrap();
    for scheme in Scheme::TABLE2 {
        let out = compile_and_run(src, &Options::o2().with_scheme(scheme), 96)
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(out.output, expected, "{scheme}");
        assert!(out.collections > 0, "{scheme} should collect");
    }
}
