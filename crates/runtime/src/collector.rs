//! The compacting copying collector.
//!
//! A classic two-space Cheney collector, made possible by the tables: all
//! roots (globals, stack slots, registers) are known precisely, so every
//! object can move. Derived values are updated in the paper's two steps
//! (§3): first `E := derived − Σ ±base` using the old base values (in
//! un-derive order: callee frames before callers, derived values before
//! their bases), then the graph is evacuated, then `derived := E + Σ
//! ±base` using the relocated bases, in exactly the reverse order.

use std::time::{Duration, Instant};

use m3gc_core::decode::{DecodeCache, DecodeCounters};
use m3gc_core::heap::{HeapType, TypeId, ARRAY_HEADER_WORDS};
use m3gc_core::stats::GcKind;
use m3gc_vm::machine::Machine;

use crate::trace::{
    gather_global_roots, gather_stack_roots, read_root, write_root, RootRef, StackRoots,
};

/// Statistics for one collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// What kind of collection this was (full / minor / major).
    pub kind: GcKind,
    /// Objects evacuated.
    pub objects_copied: u64,
    /// Words evacuated (including headers).
    pub words_copied: u64,
    /// Objects promoted from the nursery to tenured space (generational
    /// collections only; a subset of `objects_copied`).
    pub promoted_objects: u64,
    /// Words promoted to tenured space.
    pub promoted_words: u64,
    /// Remembered-set slots drained and processed (minor collections).
    pub remembered_processed: u64,
    /// Remembered-set slots re-recorded for surviving old→young edges
    /// (minor collections).
    pub remembered_added: u64,
    /// Tidy root references processed.
    pub roots: u64,
    /// Killed slots nulled before tracing: frame words the liveness-pruned
    /// maps list as dead references.
    pub roots_killed: u64,
    /// Words of heap the nulled slots referenced directly (an estimate of
    /// float avoided — transitively retained words are not counted).
    pub float_words_avoided: u64,
    /// Derived values un-derived and re-derived.
    pub derived_updated: u64,
    /// Stack frames traced (spliced frames included).
    pub frames_traced: u64,
    /// Of `frames_traced`, frames satisfied from the watermark cache
    /// without decoding or re-resolving (minor collections only; a full
    /// or major collection always rescans and invalidates).
    pub frames_spliced: u64,
    /// Gc-point table lookups served from the decode cache's memos.
    pub decode_hits: u64,
    /// Gc-point table lookups that had to decode at least one point.
    pub decode_misses: u64,
    /// Individual gc-point decode operations performed (the §6.3 decoding
    /// cost; bounded by the module's gc-point count over a machine's
    /// lifetime thanks to the cache).
    pub decode_ops: u64,
    /// Time spent locating+decoding tables and walking stacks (the §6.3
    /// "stack tracing" cost), including the derived-value updates.
    pub trace_time: Duration,
    /// Total collection time.
    pub total_time: Duration,
}

/// Step 1 of the derived-value update (§3): recover `E := derived − Σ
/// ±base` using the old base values, in un-derive order (callee frames
/// before callers, derived values before their bases, as gathered).
pub(crate) fn un_derive(m: &mut Machine, stack: &StackRoots) {
    for d in &stack.derivations {
        let mut v = read_root(m, d.target);
        for &(b, sign) in &d.bases {
            v -= sign.factor() * read_root(m, b);
        }
        write_root(m, d.target, v);
    }
}

/// Step 2 of the derived-value update (§3): `derived := E + Σ ±base` from
/// the relocated bases, in exactly the reverse of the un-derive order.
pub(crate) fn re_derive(m: &mut Machine, stack: &StackRoots) {
    for d in stack.derivations.iter().rev() {
        let mut v = read_root(m, d.target);
        for &(b, sign) in &d.bases {
            v += sign.factor() * read_root(m, b);
        }
        write_root(m, d.target, v);
    }
}

/// Nulls the killed slots of a gathered root set: each is a frame word
/// whose gc-point tables prove the reference dead, so zeroing it is
/// invisible to the program and lets this collection (and every later
/// one) drop the referent. Shadow tags follow (a nulled slot is no longer
/// a pointer). Returns `(roots_killed, float_words_avoided)` where the
/// float estimate counts the directly referenced object's words when the
/// referent lies in one of the live `ranges` (transitively retained words
/// are not chased — this is a statistic, not a semantics).
pub(crate) fn apply_kills(
    m: &mut Machine,
    killed: &[RootRef],
    ranges: &[(i64, i64)],
) -> (u64, u64) {
    let types = m.module.types.clone();
    let mut roots_killed = 0u64;
    let mut float_words = 0u64;
    for &r in killed {
        // Killed entries are always frame words (slots are never
        // register-allocated), but stay total just in case.
        let RootRef::Mem(a) = r else { continue };
        let v = m.mem[a as usize];
        if v == 0 {
            continue; // already NIL (or killed by an earlier collection)
        }
        roots_killed += 1;
        if ranges.iter().any(|&(s, e)| (s..e).contains(&v)) {
            let header = m.mem[v as usize];
            if header >= 0 {
                let ty = types.get(TypeId(header as u32));
                let len = match ty {
                    HeapType::Array { .. } => m.mem[v as usize + 1],
                    HeapType::Record { .. } => 0,
                };
                float_words += u64::from(ty.object_words(len as u32));
            }
        }
        m.mem[a as usize] = 0;
        if let Some(sh) = m.shadow.as_deref_mut() {
            sh.set_mem(a, m3gc_vm::shadow::Tag::NonPtr);
        }
    }
    (roots_killed, float_words)
}

/// Forwards one object pointer, copying the object on first visit.
/// Returns the new address. `addr` must point at an object header in
/// from-space. Shadow tags (when the oracle's shadow mode is on) travel
/// with the object so instrumented execution stays truthful after the
/// flip.
fn forward(
    mem: &mut [i64],
    shadow: &mut Option<Box<m3gc_vm::shadow::Shadow>>,
    types: &m3gc_core::heap::TypeTable,
    free: &mut i64,
    stats: &mut GcStats,
    addr: i64,
) -> i64 {
    let header = mem[addr as usize];
    if header < 0 {
        // Already forwarded: header holds -(new+1).
        return -(header + 1);
    }
    let ty = types.get(TypeId(header as u32));
    let len = match ty {
        HeapType::Array { .. } => mem[addr as usize + 1],
        HeapType::Record { .. } => 0,
    };
    let words = i64::from(ty.object_words(len as u32));
    let new = *free;
    mem.copy_within(addr as usize..(addr + words) as usize, new as usize);
    if let Some(sh) = shadow.as_deref_mut() {
        sh.copy_words(addr, new, words);
    }
    *free += words;
    mem[addr as usize] = -(new + 1);
    stats.objects_copied += 1;
    stats.words_copied += words as u64;
    new
}

/// Runs a full collection. Every non-finished thread must be stopped at a
/// gc-point.
///
/// # Panics
///
/// Panics on corrupted heap state or missing tables (compiler/runtime
/// bugs — the tables make precise collection possible, so imprecision is
/// always a bug here).
pub fn collect(m: &mut Machine, cache: &mut DecodeCache) -> GcStats {
    let t0 = Instant::now();
    let mut stats = GcStats::default();

    // --- Locate tables and walk the stacks (the traced part). ---
    let before = cache.counters();
    let stack = gather_stack_roots(m, cache);
    let globals = gather_global_roots(m);
    record_decode_work(&mut stats, cache.counters().since(before));
    stats.frames_traced = stack.frames as u64;
    stats.roots = (stack.tidy.len() + globals.len()) as u64;
    stats.derived_updated = stack.derivations.len() as u64;

    // Step 1 of the derived-value update: recover E from the old bases,
    // derived-before-base order (as emitted), callee frames first.
    un_derive(m, &stack);
    let trace_end = t0.elapsed();

    // Null the killed slots before evacuating, so their referents are
    // not retained by this collection.
    let (from_start, from_end) = m.from_space();
    let (rk, fw) = apply_kills(m, &stack.killed, &[(from_start, m.alloc_ptr)]);
    stats.roots_killed = rk;
    stats.float_words_avoided = fw;

    // --- Evacuate. ---
    let (to_start, _) = m.to_space();
    let mut free = to_start;
    let types = m.module.types.clone();

    let mut forward_root = |mem: &mut Vec<i64>,
                            threads: &mut Vec<m3gc_vm::machine::Thread>,
                            shadow: &mut Option<Box<m3gc_vm::shadow::Shadow>>,
                            r: RootRef,
                            stats: &mut GcStats| {
        let v = match r {
            RootRef::Mem(a) => mem[a as usize],
            RootRef::Reg { thread, reg } => threads[thread as usize].regs[reg as usize],
        };
        if v == 0 {
            return; // NIL
        }
        if !(from_start..from_end).contains(&v) {
            // Already-updated duplicate root (e.g. a pointer parameter
            // listed both in a register and its AP home after the first
            // copy was forwarded): forwarding is idempotent.
            debug_assert!(
                (m3gc_vm::machine::GLOBAL_BASE as i64..from_end).contains(&v),
                "tidy root {v} outside every space"
            );
            return;
        }
        let new = forward(mem, shadow, &types, &mut free, stats, v);
        match r {
            RootRef::Mem(a) => mem[a as usize] = new,
            RootRef::Reg { thread, reg } => threads[thread as usize].regs[reg as usize] = new,
        }
    };

    // Split-borrow the machine: the trace is done with it; mutate freely.
    {
        let Machine { mem, threads, shadow, .. } = m;
        for &r in &globals {
            forward_root(mem, threads, shadow, r, &mut stats);
        }
        for &r in &stack.tidy {
            forward_root(mem, threads, shadow, r, &mut stats);
        }
        // Cheney scan.
        let mut scan = to_start;
        while scan < free {
            let header = mem[scan as usize];
            assert!(header >= 0, "forwarded header in to-space at {scan}");
            let ty = types.get(TypeId(header as u32));
            let len = match ty {
                HeapType::Array { .. } => mem[scan as usize + 1],
                HeapType::Record { .. } => 0,
            };
            let words = i64::from(ty.object_words(len as u32));
            for off in ty.pointer_offset_iter(len as u32) {
                let slot = scan + i64::from(off);
                let v = mem[slot as usize];
                if v == 0 {
                    continue;
                }
                if (from_start..from_end).contains(&v) {
                    mem[slot as usize] = forward(mem, shadow, &types, &mut free, &mut stats, v);
                }
            }
            scan += words;
        }
        let _ = ARRAY_HEADER_WORDS; // (sizes come from descriptors)
    }

    // Step 2: re-derive from the relocated bases, in reverse order.
    let t2 = Instant::now();
    re_derive(m, &stack);
    let rederive_time = t2.elapsed();

    m.finish_collection(free);
    stats.trace_time = trace_end + rederive_time;
    stats.total_time = t0.elapsed();
    stats
}

/// Folds one stack walk's decode-cache counter delta into the stats.
pub(crate) fn record_decode_work(stats: &mut GcStats, delta: DecodeCounters) {
    stats.decode_hits = delta.hits;
    stats.decode_misses = delta.misses;
    stats.decode_ops = delta.points_decoded;
}

/// Performs only the table-decoding stack walk and the un-derive/re-derive
/// round trip, without moving any object. Used by the §6.3 measurement
/// ("collection being a stack trace") — values are restored exactly.
pub fn trace_only(m: &mut Machine, cache: &mut DecodeCache) -> GcStats {
    let t0 = Instant::now();
    let mut stats = GcStats::default();
    let before = cache.counters();
    let stack = gather_stack_roots(m, cache);
    let globals = gather_global_roots(m);
    record_decode_work(&mut stats, cache.counters().since(before));
    stats.frames_traced = stack.frames as u64;
    stats.roots = (stack.tidy.len() + globals.len()) as u64;
    stats.derived_updated = stack.derivations.len() as u64;
    un_derive(m, &stack);
    re_derive(m, &stack);
    stats.trace_time = t0.elapsed();
    stats.total_time = stats.trace_time;
    stats
}
